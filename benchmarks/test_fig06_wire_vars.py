"""Fig 6 — wire-variable insertion when both branches write.

Paper: chaining operation 3 with operations 1 and 2 introduces
wire-variable ``t1`` and copy operations 4 and 5 in both branches; in
hardware "t1 becomes a wire and o1 a register".

The bench runs wire insertion + binding on the paper's example and
checks the structural claims: a wire variable exists, it is never
bound to a register, the copies land in both branches, and the
single-cycle RTL is equivalent.
"""

from __future__ import annotations

import pytest

from repro import DesignInterface, SparkSession, SynthesisScript
from repro.ir.builder import design_from_source
from repro.transforms.chaining import WireVariableInserter

from benchmarks.conftest import FIG6_SOURCE, FigureReport, total_ops


def insert_wires():
    design = design_from_source(FIG6_SOURCE)
    before = total_ops(design)
    report = WireVariableInserter().run_on_function(design.main, design)
    return design, before, report


def test_wire_insertion(benchmark):
    design, before, _ = benchmark(insert_wires)
    assert design.main.wire_variables, "a wire-variable must be created"
    # The two copy ops of Fig 6(b) (ops 4 and 5).
    copies = [
        op for op in design.main.walk_operations() if op.is_wire_copy
    ]
    assert len(copies) >= 2


def test_wires_never_bound_to_registers():
    script = SynthesisScript(
        enable_speculation=False,
        clock_period=1_000.0,
        output_scalars={"o2"},
    )
    sess = SparkSession(
        FIG6_SOURCE,
        script=script,
        interface=DesignInterface(
            name="fig6",
            scalar_inputs=["cond", "a", "b", "d", "e"],
            scalar_outputs=["o2"],
        ),
    )
    result = sess.run()
    wires = result.design.main.wire_variables
    if wires:
        bound = set(result.register_binding.assignment)
        assert not (wires & bound), "wire-variables must not get registers"


@pytest.mark.parametrize("cond", [0, 1])
def test_equivalence_after_wires(cond):
    design, _, _ = insert_wires()
    reference = design_from_source(FIG6_SOURCE)
    from repro.interp import run_design

    inputs = {"cond": cond, "a": 2, "b": 3, "d": 11, "e": 5}
    got = run_design(design, inputs=inputs).scalars["o2"]
    want = run_design(reference, inputs=inputs).scalars["o2"]
    assert got == want


def test_fig6_report():
    report = FigureReport("Fig 6: wire-variable insertion (both branches write)")
    design, before, pass_report = insert_wires()
    copies = [op for op in design.main.walk_operations() if op.is_wire_copy]
    report.row(f"ops before        : {before}")
    report.row(f"ops after         : {total_ops(design)}")
    report.row(f"wire variables    : {sorted(design.main.wire_variables)}")
    report.row(f"copy ops inserted : {len(copies)}  (paper: ops 4 and 5)")
    report.emit()
