"""Fig 15 — the maximally parallel single-cycle ILD architecture.

Paper: "This leads to a design, where all the data for all the bytes
is calculated concurrently, followed by a control logic unit ... and
finally, a ripple control logic unit that determines the actual
instruction start bytes.  This is a maximally parallel architecture
that can be targeted for implementation in a single cycle."

The bench runs the full pipeline to a single-cycle schedule, checks
the synthesized schedule against the analytic Fig 15(b) architecture
model (area linear in n, ripple-dominated critical path), and
validates the structural simulation against the golden decoder.
"""

from __future__ import annotations

import random

import pytest

from repro.ild import (
    GoldenILD,
    ILDPipeline,
    architecture_for,
    random_buffer,
)

from benchmarks.conftest import FigureReport


def synthesize_single_cycle(n: int):
    pipeline = ILDPipeline(n=n)
    sm = pipeline.run_all()
    return pipeline, sm


@pytest.mark.parametrize("n", [4, 8])
def test_single_cycle_schedule(benchmark, n):
    pipeline, sm = benchmark(synthesize_single_cycle, n)
    assert sm.is_single_cycle()
    assert sm.total_operations() > 0


@pytest.mark.parametrize("n", [4, 8, 16, 32])
def test_architecture_model_matches_golden(n):
    rng = random.Random(n)
    arch = architecture_for(n)
    golden = GoldenILD(n=n)
    for _ in range(20):
        buffer = random_buffer(n, rng=rng)
        mark, lengths, _ = golden.decode(buffer)
        arch_mark, arch_lengths, _ = arch.simulate(buffer)
        assert arch_mark == mark
        # Candidate lengths agree wherever an instruction actually starts.
        for i in range(1, n + 1):
            if mark[i]:
                assert arch_lengths[i] == lengths[i]


def test_area_grows_linearly_in_n():
    """The paper's trade: unlimited resources for single-cycle latency
    — n parallel DataCalculation/ControlLogic copies."""
    areas = {n: architecture_for(n).area() for n in (4, 8, 16, 32)}
    for small, large in ((4, 8), (8, 16), (16, 32)):
        ratio = areas[large] / areas[small]
        assert 1.8 < ratio < 2.2


def test_critical_path_dominated_by_ripple():
    """Data and control stages are n-independent; only the ripple
    chain grows with n."""
    cp = {n: architecture_for(n).critical_path() for n in (4, 8, 16, 32)}
    # Ripple step cost from consecutive differences: constant.
    step_8 = (cp[8] - cp[4]) / 4
    step_16 = (cp[16] - cp[8]) / 8
    step_32 = (cp[32] - cp[16]) / 16
    assert abs(step_8 - step_16) < 1e-9
    assert abs(step_16 - step_32) < 1e-9


def test_schedule_area_tracks_architecture_model():
    """The synthesized design's op counts scale like the analytic
    model's component counts (both linear in n)."""
    ops = {}
    for n in (4, 8):
        _, sm = synthesize_single_cycle(n)
        ops[n] = sm.total_operations()
    assert 1.6 < ops[8] / ops[4] < 2.6


def test_fig15_report():
    report = FigureReport("Fig 15: maximally parallel single-cycle ILD")
    report.row(
        f"{'n':>4} {'states':>7} {'sched ops':>10} {'model area':>11} "
        f"{'model cp':>9}"
    )
    for n in (4, 8):
        pipeline, sm = synthesize_single_cycle(n)
        arch = architecture_for(n)
        report.row(
            f"{n:>4} {sm.num_states:>7} {sm.total_operations():>10} "
            f"{arch.area():>11.0f} {arch.critical_path():>9.1f}"
        )
    report.row("")
    report.row("area breakdown (n=8):")
    for stage, area in architecture_for(8).area_breakdown().items():
        report.row(f"  {stage:<16} {area:>8.0f}")
    report.emit()
