"""Fig 12 — inlining CalculateLength into the decode loop.

Paper: "Inlining refers to replacing a call to a function or a
subroutine with the body of the function ... This transformation
allows the optimization of the inlined function with the rest of the
code."  The paper also notes the orders commute: "In practice, Spark
performs inlining first, but speculation within the CalculateLength
has been shown first to simplify explanation."

The bench measures the inline stage and verifies the commutation
claim: speculate-then-inline and inline-then-speculate reach
behaviorally identical designs.
"""

from __future__ import annotations

import random

import pytest

from repro.ild import GoldenILD, ILDPipeline, ild_externals, random_buffer
from repro.interp import run_design

from benchmarks.conftest import FigureReport


def run_through_fig12(n: int = 8) -> ILDPipeline:
    pipeline = ILDPipeline(n=n)
    pipeline.stage_fig11_speculation()
    pipeline.stage_fig12_inline()
    return pipeline


def practice_order(n: int = 8) -> ILDPipeline:
    """The order Spark actually uses: inline first, then speculate."""
    pipeline = ILDPipeline(n=n)
    pipeline.stage_fig12_inline()
    pipeline.stage_fig11_speculation()
    return pipeline


def marks(pipeline: ILDPipeline, buffer):
    n = pipeline.n
    state = run_design(
        pipeline.design,
        externals=ild_externals(n),
        array_inputs={"Buffer": list(buffer)},
    )
    return state.arrays["Mark"][1 : n + 1]


def test_inline_stage(benchmark):
    pipeline = benchmark(run_through_fig12)
    # The call is gone: main no longer references CalculateLength.
    for op in pipeline.design.main.walk_operations():
        for call_name in _call_names(op):
            assert call_name != "CalculateLength"


def _call_names(op):
    from repro.ir import expr_utils

    names = [call.name for call in expr_utils.calls_in(op.expr)]
    return names


@pytest.mark.parametrize("n", [4, 8])
def test_equivalence_after_inline(n):
    rng = random.Random(n)
    pipeline = run_through_fig12(n)
    golden = GoldenILD(n=n)
    for _ in range(15):
        buffer = random_buffer(n, rng=rng)
        mark, _, _ = golden.decode(buffer)
        assert marks(pipeline, buffer) == mark[1 : n + 1]


def test_presentation_and_practice_orders_commute():
    """Paper footnote-level claim: the figure order (speculate, then
    inline) and the tool order (inline, then speculate) agree."""
    n = 8
    rng = random.Random(99)
    presented = run_through_fig12(n)
    practiced = practice_order(n)
    for _ in range(15):
        buffer = random_buffer(n, rng=rng)
        assert marks(presented, buffer) == marks(practiced, buffer)


def test_fig12_report():
    report = FigureReport("Fig 12: CalculateLength inlined into main")
    pipeline = run_through_fig12()
    for stage in pipeline.stages:
        report.row(str(stage))
    report.emit()
