#!/usr/bin/env python
"""Benchmark regression gate for the DSE dispatch-overhead baseline.

Compares a freshly-produced ``bench_dse.py`` report against the
committed baseline (``benchmarks/BENCH_dse.json``) and fails when the
warm per-corner dispatch overhead regresses beyond the tolerance:

* ``warm_batched.dispatch_overhead_per_corner_s`` must not exceed the
  baseline value by more than ``--tolerance`` (default 25%);
* ``overhead_reduction_batched`` (the unbatched/batched ratio — a
  within-run relative number, so robust to machine-speed differences)
  must not fall below the baseline ratio by more than the same
  tolerance;
* ``search_beam`` (the adaptive-search headline) must keep its
  seeded, machine-independent quality bar: best beam latency within
  5% of the exhaustive-grid optimum while settling at most 40% of the
  grid's corners.  No tolerance applies — the numbers are
  deterministic for a pinned seed, so any drift is a code change.
* ``verify_overhead`` (the static-verifier budget) must show
  ``--verify-each`` adding at most 15% wall clock to the warm sweep
  phase.  A within-run relative number, so no tolerance applies.
* ``rtl_lint_overhead`` (the emit-stage RTL-lint budget) must show
  the linter adding at most 15% wall clock to the same phase.  Also
  within-run relative, so no tolerance applies.
* ``cache_contention`` (the sharded-locking headline) must show the
  sharded backend's summed maintenance-lock wait at or below the
  single-lock flat baseline's (``lock_wait_ratio <= 1.0``) — unless
  the sharded side's absolute wait is negligible, in which case the
  run was uncontended and the ratio carries no signal.  Within-run
  relative, so no tolerance applies.

Usage::

    PYTHONPATH=src python benchmarks/bench_dse.py --output /tmp/bench.json
    python benchmarks/check_bench.py --current /tmp/bench.json \
        [--baseline benchmarks/BENCH_dse.json] [--tolerance 0.25]

Exit status 0 when within tolerance, 1 on regression, 2 on malformed
input.  Absolute seconds vary across machines; the ratio check is the
primary cross-machine gate, and the absolute check holds the line on
same-machine trend tracking.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

OVERHEAD_KEY = "dispatch_overhead_per_corner_s"
RATIO_KEY = "overhead_reduction_batched"

#: The search_beam quality bar (matches bench_dse.py's --check).
SEARCH_LATENCY_RATIO_MAX = 1.05
SEARCH_EVALUATED_FRACTION_MAX = 0.4

#: The verifier budget (matches bench_dse.py's VERIFY_OVERHEAD_MAX).
VERIFY_OVERHEAD_RATIO_MAX = 1.15

#: The RTL-lint budget (matches bench_dse.py's LINT_OVERHEAD_MAX).
RTL_LINT_OVERHEAD_RATIO_MAX = 1.15

#: The sharded-locking bar (matches bench_dse.py's
#: CONTENTION_RATIO_MAX / CONTENTION_WAIT_FLOOR_S).
CONTENTION_RATIO_MAX = 1.0
CONTENTION_WAIT_FLOOR_S = 0.05


def _load(path: Path) -> dict:
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as error:
        raise SystemExit(f"check_bench: cannot read {path}: {error}")


def _overhead(report: dict, path: Path) -> float:
    phase = report.get("warm_batched") or {}
    value = phase.get(OVERHEAD_KEY)
    if not isinstance(value, (int, float)) or value <= 0:
        print(
            f"check_bench: {path} has no usable warm_batched."
            f"{OVERHEAD_KEY} (got {value!r})",
            file=sys.stderr,
        )
        raise SystemExit(2)
    return float(value)


def _check_search(current: dict, path: Path) -> list:
    """The seeded search_beam quality gate: absolute thresholds, no
    tolerance (deterministic for a pinned seed)."""
    phase = current.get("search_beam")
    if not isinstance(phase, dict):
        print(
            f"check_bench: {path} has no search_beam phase",
            file=sys.stderr,
        )
        raise SystemExit(2)
    failures = []
    ratio = float(phase.get("latency_ratio") or 0.0)
    fraction = float(phase.get("evaluated_fraction") or 0.0)
    if ratio <= 0 or fraction <= 0:
        print(
            f"check_bench: {path} search_beam is malformed: "
            f"latency_ratio={phase.get('latency_ratio')!r}, "
            f"evaluated_fraction={phase.get('evaluated_fraction')!r}",
            file=sys.stderr,
        )
        raise SystemExit(2)
    if ratio > SEARCH_LATENCY_RATIO_MAX:
        failures.append(
            f"beam search quality regressed: latency ratio {ratio:.4f}x "
            f"> {SEARCH_LATENCY_RATIO_MAX}x of the exhaustive optimum"
        )
    if fraction > SEARCH_EVALUATED_FRACTION_MAX:
        failures.append(
            f"beam search cost regressed: settled {fraction:.0%} of the "
            f"grid > {SEARCH_EVALUATED_FRACTION_MAX:.0%} cap"
        )
    print(
        f"search_beam: latency ratio {ratio:.4f}x "
        f"(cap {SEARCH_LATENCY_RATIO_MAX}x), evaluated "
        f"{fraction:.0%} of grid (cap {SEARCH_EVALUATED_FRACTION_MAX:.0%})"
    )
    return failures


def _check_verify(current: dict, path: Path) -> list:
    """The static-verifier budget gate: ``--verify-each`` may add at
    most 15% wall clock to the warm sweep phase.  Within-run relative
    number, so no tolerance."""
    phase = current.get("verify_overhead")
    if not isinstance(phase, dict):
        print(
            f"check_bench: {path} has no verify_overhead phase",
            file=sys.stderr,
        )
        raise SystemExit(2)
    ratio = float(phase.get("verify_overhead_ratio") or 0.0)
    if ratio <= 0:
        print(
            f"check_bench: {path} verify_overhead is malformed: "
            f"verify_overhead_ratio="
            f"{phase.get('verify_overhead_ratio')!r}",
            file=sys.stderr,
        )
        raise SystemExit(2)
    failures = []
    if ratio > VERIFY_OVERHEAD_RATIO_MAX:
        failures.append(
            f"--verify-each overhead regressed: {ratio:.4f}x of the "
            f"plain warm sweep > {VERIFY_OVERHEAD_RATIO_MAX}x budget"
        )
    print(
        f"verify_overhead: {ratio:.4f}x of the plain warm sweep "
        f"(budget {VERIFY_OVERHEAD_RATIO_MAX}x)"
    )
    return failures


def _check_lint(current: dict, path: Path) -> list:
    """The emit-stage RTL-lint budget gate: arming the linter may add
    at most 15% wall clock to the warm sweep phase.  Within-run
    relative number, so no tolerance."""
    phase = current.get("rtl_lint_overhead")
    if not isinstance(phase, dict):
        print(
            f"check_bench: {path} has no rtl_lint_overhead phase",
            file=sys.stderr,
        )
        raise SystemExit(2)
    ratio = float(phase.get("rtl_lint_overhead_ratio") or 0.0)
    if ratio <= 0:
        print(
            f"check_bench: {path} rtl_lint_overhead is malformed: "
            f"rtl_lint_overhead_ratio="
            f"{phase.get('rtl_lint_overhead_ratio')!r}",
            file=sys.stderr,
        )
        raise SystemExit(2)
    failures = []
    if ratio > RTL_LINT_OVERHEAD_RATIO_MAX:
        failures.append(
            f"RTL-lint overhead regressed: {ratio:.4f}x of the "
            f"plain warm sweep > {RTL_LINT_OVERHEAD_RATIO_MAX}x budget"
        )
    print(
        f"rtl_lint_overhead: {ratio:.4f}x of the plain warm sweep "
        f"(budget {RTL_LINT_OVERHEAD_RATIO_MAX}x)"
    )
    return failures


def _check_contention(current: dict, path: Path) -> list:
    """The sharded-locking gate: under a parallel warm sweep with
    interleaved gc, the sharded backend's summed lock wait must not
    exceed the single-lock flat baseline's.  Within-run relative, so
    no tolerance — but vacuous when the sharded side barely waited at
    all (an uncontended run has no signal to compare)."""
    phase = current.get("cache_contention")
    if not isinstance(phase, dict):
        print(
            f"check_bench: {path} has no cache_contention phase",
            file=sys.stderr,
        )
        raise SystemExit(2)
    ratio = phase.get("lock_wait_ratio")
    sharded_wait = float((phase.get("sharded") or {}).get(
        "lock_wait_s", 0.0
    ))
    flat_wait = float((phase.get("flat") or {}).get("lock_wait_s", 0.0))
    if not isinstance(ratio, (int, float)) or ratio < 0:
        print(
            f"check_bench: {path} cache_contention is malformed: "
            f"lock_wait_ratio={ratio!r}",
            file=sys.stderr,
        )
        raise SystemExit(2)
    failures = []
    if (
        ratio > CONTENTION_RATIO_MAX
        and sharded_wait > CONTENTION_WAIT_FLOOR_S
    ):
        failures.append(
            f"sharded maintenance locking regressed: {sharded_wait:.3f}s "
            f"summed lock wait vs flat baseline {flat_wait:.3f}s "
            f"({ratio:.4f}x > {CONTENTION_RATIO_MAX}x cap)"
        )
    print(
        f"cache_contention: sharded {sharded_wait:.3f}s lock wait vs "
        f"flat {flat_wait:.3f}s (ratio {float(ratio):.4f}x, cap "
        f"{CONTENTION_RATIO_MAX}x)"
    )
    return failures


def check(baseline: dict, current: dict, tolerance: float,
          baseline_path: Path, current_path: Path) -> int:
    base_overhead = _overhead(baseline, baseline_path)
    cur_overhead = _overhead(current, current_path)
    base_ratio = float(baseline.get(RATIO_KEY) or 0.0)
    cur_ratio = float(current.get(RATIO_KEY) or 0.0)

    failures = []
    limit = base_overhead * (1.0 + tolerance)
    if cur_overhead > limit:
        failures.append(
            f"warm-batched per-corner overhead regressed: "
            f"{cur_overhead * 1e3:.3f}ms > {limit * 1e3:.3f}ms "
            f"(baseline {base_overhead * 1e3:.3f}ms "
            f"+{tolerance:.0%} tolerance)"
        )
    floor = base_ratio * (1.0 - tolerance)
    if base_ratio > 0 and cur_ratio < floor:
        failures.append(
            f"batched overhead reduction regressed: "
            f"{cur_ratio:.2f}x < {floor:.2f}x "
            f"(baseline {base_ratio:.2f}x -{tolerance:.0%} tolerance)"
        )
    failures.extend(_check_search(current, current_path))
    failures.extend(_check_verify(current, current_path))
    failures.extend(_check_lint(current, current_path))
    failures.extend(_check_contention(current, current_path))

    print(
        f"warm-batched overhead/corner: current "
        f"{cur_overhead * 1e3:.3f}ms vs baseline "
        f"{base_overhead * 1e3:.3f}ms | reduction: current "
        f"{cur_ratio:.2f}x vs baseline {base_ratio:.2f}x "
        f"(tolerance {tolerance:.0%})"
    )
    for failure in failures:
        print(f"check_bench: FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("check_bench: OK")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--current",
        required=True,
        metavar="PATH",
        help="JSON report from a fresh bench_dse.py run",
    )
    parser.add_argument(
        "--baseline",
        default=str(Path(__file__).parent / "BENCH_dse.json"),
        metavar="PATH",
        help="committed baseline report (default: benchmarks/BENCH_dse.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        metavar="FRAC",
        help="allowed relative regression (default: 0.25 = 25%%)",
    )
    args = parser.parse_args(argv)
    if args.tolerance < 0:
        parser.error("--tolerance must be non-negative")
    baseline_path = Path(args.baseline)
    current_path = Path(args.current)
    return check(
        _load(baseline_path),
        _load(current_path),
        args.tolerance,
        baseline_path,
        current_path,
    )


if __name__ == "__main__":
    sys.exit(main())
