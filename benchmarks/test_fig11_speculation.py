"""Fig 11 — speculation inside CalculateLength.

Paper: "the length contributions due to the bytes, i through i+3, are
calculated speculatively and so are the control variables need2 to
need4 ... the lengths of the instruction for each case of these
control variables (TempLength1 to TempLength3) are also speculatively
computed.  This results in a behavior where all the data calculation
is performed up-front and speculatively."

The bench runs the Fig 11 stage and measures: how many operations got
hoisted above their guards (is_speculated), how the conditional region
thins out to pure steering, and behavioral equivalence.
"""

from __future__ import annotations

import random

import pytest

from repro.ild import GoldenILD, ILDPipeline, ild_externals, random_buffer
from repro.interp import run_design
from repro.ir.htg import BlockNode, IfNode

from benchmarks.conftest import FigureReport


def run_fig11(n: int = 8) -> ILDPipeline:
    pipeline = ILDPipeline(n=n)
    pipeline.stage_fig11_speculation()
    return pipeline


def calculate_length(pipeline: ILDPipeline):
    return pipeline.design.functions["CalculateLength"]


def speculated_ops(func):
    return [op for op in func.walk_operations() if op.is_speculated]


def ops_inside_conditionals(func):
    inside = []

    def visit(nodes):
        for node in nodes:
            if isinstance(node, IfNode):
                for branch in (node.then_branch, node.else_branch):
                    collect(branch)
                    visit(branch)

    def collect(nodes):
        for node in nodes:
            if isinstance(node, BlockNode):
                inside.extend(
                    op for op in node.ops if not op.is_wire_copy
                )
            for child_list in node.child_lists():
                collect(child_list)

    visit(func.body)
    return inside


def test_speculation_stage(benchmark):
    pipeline = benchmark(run_fig11)
    func = calculate_length(pipeline)
    hoisted = speculated_ops(func)
    # lc2..lc4, need3/need4 evaluations and the TempLength adds move up.
    assert len(hoisted) >= 5


def test_conditional_region_reduced_to_selects():
    """After Fig 11 the if-tree only selects among precomputed
    values: no call operations remain under any conditional."""
    pipeline = run_fig11()
    func = calculate_length(pipeline)
    for op in ops_inside_conditionals(func):
        assert not op.has_call(), f"call left under a conditional: {op}"


@pytest.mark.parametrize("n", [4, 8])
def test_equivalence_after_speculation(n):
    rng = random.Random(n)
    pipeline = run_fig11(n)
    golden = GoldenILD(n=n)
    for _ in range(15):
        buffer = random_buffer(n, rng=rng)
        state = run_design(
            pipeline.design,
            externals=ild_externals(n),
            array_inputs={"Buffer": list(buffer)},
        )
        mark, _, _ = golden.decode(buffer)
        assert state.arrays["Mark"][1 : n + 1] == mark[1 : n + 1]


def test_fig11_report():
    report = FigureReport("Fig 11: speculation inside CalculateLength")
    pipeline = run_fig11()
    before, after = pipeline.stages[0], pipeline.stages[1]
    func = calculate_length(pipeline)
    report.row(f"{'stage':<32} {'ops':>5} {'ifs':>5}")
    report.row(f"{before.name:<32} {before.ops:>5} {before.conditionals:>5}")
    report.row(f"{after.name:<32} {after.ops:>5} {after.conditionals:>5}")
    report.row("")
    report.row(f"speculated ops: {len(speculated_ops(func))}")
    report.row(
        f"calls left under conditionals: "
        f"{sum(1 for op in ops_inside_conditionals(func) if op.has_call())}"
    )
    report.emit()
