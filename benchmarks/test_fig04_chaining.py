"""Fig 4 — operation chaining across an if-then-else boundary.

Paper: "To achieve a single cycle schedule for this description, all
the operations in the description have to be chained together, across
the if-then-else conditional block" — the hardware of Fig 4(b) steers
the branch results into Op6 through multiplexors.

The bench runs the full flow on the Fig 4 fragment and checks: one
cycle, the conditional chained inside the state, steering logic
(muxes) present in the area estimate, RTL equivalent to the behavior
for both polarities of ``cond``.
"""

from __future__ import annotations

import pytest

from repro import DesignInterface, SparkSession, SynthesisScript

from benchmarks.conftest import FIG4_SOURCE, FigureReport

INPUTS = {"a": 3, "b": 4, "c": 5, "d": 2, "e": 9}


def session(clock_period: float = 1_000.0) -> SparkSession:
    script = SynthesisScript(
        inline_functions=["*"],
        enable_speculation=False,  # keep the if: Fig 4 chains across it
        clock_period=clock_period,
        output_scalars={"f"},
    )
    return SparkSession(
        FIG4_SOURCE,
        script=script,
        interface=DesignInterface(
            name="fig4",
            scalar_inputs=["a", "b", "c", "d", "e", "cond"],
            scalar_outputs=["f"],
        ),
    )


def synthesize_single_cycle():
    sess = session()
    result = sess.run()
    return sess, result


def test_single_cycle_chained(benchmark):
    _, result = benchmark(synthesize_single_cycle)
    assert result.state_machine.is_single_cycle()
    # Op1..Op6 all placed in the single state.
    only_state = next(iter(result.state_machine.states.values()))
    assert only_state.op_count() >= 6


@pytest.mark.parametrize("cond", [0, 1])
def test_rtl_matches_both_polarities(cond):
    sess, result = synthesize_single_cycle()
    inputs = dict(INPUTS, cond=cond)
    expected = sess.interpret(inputs=inputs).scalars["f"]
    rtl = sess.simulate_rtl(result.state_machine, inputs=inputs)
    assert rtl.scalars["f"] == expected
    assert rtl.cycles == 1


def test_steering_logic_generated():
    """Fig 4(b): the datapath multiplexes t2/t3 on cond — the area
    estimate must charge for muxes."""
    _, result = synthesize_single_cycle()
    assert result.area is not None
    assert result.area.mux_count >= 2
    assert result.area.steering > 0


def test_too_tight_clock_splits_cycle():
    """With a clock shorter than the chained path the schedule cannot
    stay single-cycle; the conditional becomes state-level control."""
    sess = session(clock_period=1.2)
    result = sess.run(bind=False, emit=False)
    assert result.state_machine.num_states > 1


def test_fig4_report():
    report = FigureReport("Fig 4: chaining across the conditional boundary")
    sess, result = synthesize_single_cycle()
    sm = result.state_machine
    report.row(f"states            : {sm.num_states}")
    report.row(f"scheduled ops     : {sm.total_operations()}")
    report.row(f"critical path     : {sm.max_critical_path():.2f}")
    report.row(f"mux count         : {result.area.mux_count}")
    report.row(f"registers         : {result.register_binding.register_count}")
    for cond in (0, 1):
        inputs = dict(INPUTS, cond=cond)
        rtl = sess.simulate_rtl(sm, inputs=inputs)
        report.row(f"f (cond={cond})        : {rtl.scalars['f']}")
    report.emit()
