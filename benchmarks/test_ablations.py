"""Ablation benches — each coordinated transformation knocked out.

The paper's thesis is *coordination*: "we have found no single code
motion technique ... to be universally useful [but] a judicious
balance of a number of these techniques ... is likely to yield HLS
results that compare in quality to the manually designed functional
blocks."  These benches quantify what each member of the suite
contributes to the ILD result (DESIGN.md section 5 calls these out as
the design choices to ablate).

Measured effects (shape, not absolute):

* no unrolling      -> the design cannot reach a single cycle;
* no const-prop     -> longer chained critical path and more area
                       (index arithmetic survives into the datapath);
* no speculation    -> chaining still reaches one cycle (Section 3.1
                       carries the weight) but with more steering area;
* no DCE            -> dead index/copy operations inflate the op count;
* no code motion    -> at tight clocks the in-order scheduler cannot
                       recover the Fig 3(b) two-level schedule: states
                       grow with N instead of staying constant.
"""

from __future__ import annotations

import pytest

from repro import SparkSession, SynthesisScript
from repro.ild import build_ild_source, ild_externals, ild_interface, ild_library
from repro.scheduler.list_scheduler import ChainingScheduler
from repro.scheduler.resources import ResourceAllocation, ResourceLibrary
from repro.transforms.code_motion import DataflowLevelReorder
from repro.transforms.const_prop import ConstantPropagation
from repro.transforms.copy_prop import CopyPropagation
from repro.transforms.dce import DeadCodeElimination
from repro.transforms.unroll import LoopUnroller

from benchmarks.conftest import (
    FigureReport,
    fig2_externals,
    fig2_loop_source,
    fresh_design,
)

N = 4


def synthesize_ild(**overrides):
    """The full µP-block flow with selected knobs overridden."""
    pure = set(ild_externals(N))
    script = SynthesisScript.microprocessor_block(pure_functions=pure)
    for knob, value in overrides.items():
        setattr(script, knob, value)
    session = SparkSession(
        build_ild_source(N),
        script=script,
        library=ild_library(),
        interface=ild_interface(N),
        externals=ild_externals(N),
    )
    return session.run(bind=True, emit=False)


def test_full_configuration(benchmark):
    result = benchmark(synthesize_ild)
    assert result.state_machine.is_single_cycle()


def test_ablate_unrolling():
    """Without unrolling, the loop forces a multi-cycle FSM — the
    latency bound is unreachable."""
    result = synthesize_ild(unroll_loops={})
    assert not result.state_machine.is_single_cycle()
    assert result.state_machine.num_states > 1


def test_ablate_constant_propagation():
    """The surviving index arithmetic lengthens the chained critical
    path and inflates the datapath."""
    full = synthesize_ild()
    ablated = synthesize_ild(enable_constant_propagation=False)
    assert ablated.state_machine.is_single_cycle()
    assert (
        ablated.state_machine.max_critical_path()
        > full.state_machine.max_critical_path()
    )
    assert ablated.area.total > full.area.total


def test_ablate_speculation():
    """Chaining across conditional boundaries still reaches one cycle
    (Section 3.1 was designed for exactly this), at equal-or-worse
    steering cost."""
    full = synthesize_ild()
    ablated = synthesize_ild(enable_speculation=False)
    assert ablated.state_machine.is_single_cycle()
    assert ablated.area.total >= full.area.total


def test_ablate_dce():
    """Dead index updates and copies survive into the schedule."""
    full = synthesize_ild()
    ablated = synthesize_ild(enable_dce=False)
    assert (
        ablated.state_machine.total_operations()
        > full.state_machine.total_operations()
    )


@pytest.mark.parametrize("n", [8, 16])
def test_ablate_code_motion_at_tight_clock(n):
    """Fig 3's enabler, measured on the Op1/Op2 loop: with the
    dataflow-level reorder the tight-clock schedule is 2 states for
    any N; without it the in-order scheduler needs O(N) states."""
    pure = set(fig2_externals())

    def prepare(with_motion: bool):
        design = fresh_design(fig2_loop_source(n))
        LoopUnroller({"*": 0}).run_on_design(design)
        ConstantPropagation().run_on_design(design)
        CopyPropagation().run_on_design(design)
        DeadCodeElimination(pure_functions=pure).run_on_design(design)
        if with_motion:
            DataflowLevelReorder(pure_functions=pure).run_on_design(design)
        scheduler = ChainingScheduler(
            library=ResourceLibrary(),
            clock_period=3.0,
            allocation=ResourceAllocation.unlimited(),
        )
        return scheduler.schedule(design.main)

    with_motion = prepare(True)
    without_motion = prepare(False)
    assert with_motion.num_states == 2
    assert without_motion.num_states >= n


def test_ablations_report():
    report = FigureReport(f"Ablations on the single-cycle ILD flow (n={N})")
    report.row(
        f"{'configuration':<26} {'states':>7} {'ops':>5} "
        f"{'crit.path':>10} {'area':>7}"
    )
    configurations = [
        ("full", {}),
        ("no speculation", {"enable_speculation": False}),
        ("no unroll", {"unroll_loops": {}}),
        ("no const-prop", {"enable_constant_propagation": False}),
        ("no dce", {"enable_dce": False}),
        ("no cse", {"enable_cse": False}),
    ]
    for name, overrides in configurations:
        result = synthesize_ild(**overrides)
        sm = result.state_machine
        report.row(
            f"{name:<26} {sm.num_states:>7} {sm.total_operations():>5} "
            f"{sm.max_critical_path():>10.2f} {result.area.total:>7.0f}"
        )
    report.emit()
