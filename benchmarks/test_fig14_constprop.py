"""Fig 14 — constant propagation of the loop index through the
unrolled ILD.

Paper: "since the loop has been completely unrolled, the constant
assignment of i = 1 can be propagated throughout the code and the loop
index variable i can be eliminated."

The bench measures the elimination: zero reads of ``i`` remain, the
per-byte conditionals now compare NextStartByte against constants, and
behavior is preserved.
"""

from __future__ import annotations

import random

import pytest

from repro.ild import GoldenILD, ILDPipeline, ild_externals, random_buffer
from repro.interp import run_design

from benchmarks.conftest import FigureReport


def run_through_fig14(n: int) -> ILDPipeline:
    pipeline = ILDPipeline(n=n)
    pipeline.stage_fig11_speculation()
    pipeline.stage_fig12_inline()
    pipeline.stage_fig13_unroll()
    pipeline.stage_fig14_constant_propagation()
    return pipeline


def index_reads(pipeline: ILDPipeline) -> int:
    return sum(
        1
        for op in pipeline.design.main.walk_operations()
        if "i" in op.reads()
    )


@pytest.mark.parametrize("n", [4, 8, 16])
def test_index_variable_eliminated(benchmark, n):
    pipeline = benchmark(run_through_fig14, n)
    assert index_reads(pipeline) == 0


def test_ops_shrink_from_fig13():
    """Constant propagation plus DCE removes the index arithmetic."""
    n = 8
    pipeline = run_through_fig14(n)
    fig13_ops = pipeline.stages[-2].ops
    fig14_ops = pipeline.stages[-1].ops
    assert fig14_ops < fig13_ops


@pytest.mark.parametrize("n", [4, 8])
def test_equivalence_after_constprop(n):
    rng = random.Random(n)
    pipeline = run_through_fig14(n)
    golden = GoldenILD(n=n)
    for _ in range(10):
        buffer = random_buffer(n, rng=rng)
        state = run_design(
            pipeline.design,
            externals=ild_externals(n),
            array_inputs={"Buffer": list(buffer)},
        )
        mark, _, _ = golden.decode(buffer)
        assert state.arrays["Mark"][1 : n + 1] == mark[1 : n + 1]


def test_fig14_report():
    report = FigureReport("Fig 14: loop index constant-propagated away")
    report.row(f"{'n':>4} {'fig13 ops':>10} {'fig14 ops':>10} {'i-reads':>8}")
    for n in (4, 8, 16):
        pipeline = run_through_fig14(n)
        report.row(
            f"{n:>4} {pipeline.stages[-2].ops:>10} "
            f"{pipeline.stages[-1].ops:>10} {index_reads(pipeline):>8}"
        )
    report.emit()
