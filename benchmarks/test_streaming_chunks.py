"""Section 5 extension — streaming decode with cross-chunk carry.

The paper lists the simplifications its ILD model makes and what the
real block needs: an infinite outer loop broken "into chunks of n
iterations each" with "the intermediate length calculation information
... saved across buffer decodes and passed to the next cycle."  This
bench exercises that un-simplified model (repro.ild.streaming):
per-chunk decode throughput over chunk-size sweeps, carry-state
statistics (how often walks straddle boundaries), and the progress
property that makes chunked hardware decode possible at all.
"""

from __future__ import annotations

import random

import pytest

from repro.ild import (
    STREAMING_ISA,
    StreamingILD,
    flat_reference_marks,
)
from repro.ild.isa import DEFAULT_ISA

from benchmarks.conftest import FigureReport

STREAM_LENGTH = 1024


def make_stream(seed: int = 7, length: int = STREAM_LENGTH):
    rng = random.Random(seed)
    return [rng.randrange(256) for _ in range(length)]


@pytest.mark.parametrize("n", [4, 8, 16, 64])
def test_stream_decode_throughput(benchmark, n):
    stream = make_stream()
    decoder = StreamingILD(n=n)
    marks, carry, chunks = benchmark(decoder.decode_stream, stream)
    assert marks == flat_reference_marks(stream, isa=STREAMING_ISA)
    assert len(chunks) == (len(stream) + n - 1) // n


def test_carry_statistics():
    """Walks straddle chunk boundaries often enough to matter — the
    case the paper says the real decoder must handle."""
    stream = make_stream(seed=11)
    decoder = StreamingILD(n=8)
    _, _, chunks = decoder.decode_stream(stream)
    pending = sum(1 for c in chunks if c.carry_out.walk_pending)
    skipping = sum(1 for c in chunks if c.carry_out.skip > 0)
    assert pending > 0, "no boundary-straddling walks in 1 KiB?"
    assert skipping > 0, "no instructions spanning chunks in 1 KiB?"


def test_progress_property_is_required():
    """With the progress-violating ISA, chunked decode genuinely
    diverges from the flat decode — quantified miss rate."""
    rng = random.Random(23)
    divergent = 0
    trials = 200
    for _ in range(trials):
        stream = [rng.randrange(256) for _ in range(32)]
        chunked, _, _ = StreamingILD(
            n=4, isa=DEFAULT_ISA, strict=False
        ).decode_stream(stream)
        if chunked != flat_reference_marks(stream, isa=DEFAULT_ISA):
            divergent += 1
    assert divergent > 0


def test_streaming_report():
    report = FigureReport("Section 5: streaming decode with carry (1 KiB)")
    stream = make_stream()
    report.row(
        f"{'chunk n':>8} {'chunks':>7} {'pending walks':>14} "
        f"{'skip carries':>13} {'marks':>6}"
    )
    for n in (4, 8, 16, 64):
        decoder = StreamingILD(n=n)
        marks, _, chunks = decoder.decode_stream(stream)
        pending = sum(1 for c in chunks if c.carry_out.walk_pending)
        skipping = sum(1 for c in chunks if c.carry_out.skip > 0)
        report.row(
            f"{n:>8} {len(chunks):>7} {pending:>14} {skipping:>13} "
            f"{sum(marks):>6}"
        )
    report.row("")
    report.row(
        "progress property: DEFAULT_ISA deficit "
        f"{DEFAULT_ISA.streaming_progress_deficit()} (unsafe), "
        f"STREAMING_ISA deficit "
        f"{STREAMING_ISA.streaming_progress_deficit()} (safe)"
    )
    report.emit()
