"""Per-figure benchmark harness (see DESIGN.md section 3)."""
