"""Fig 2 — loop unrolling of the synthetic Op1/Op2 loop.

Paper: "This loop can be unrolled completely, i.e., N times" (Fig 2b).
The bench fully unrolls the loop for a sweep of N and checks the
unrolled body materializes N copies of each operation with the loop
construct gone, while behavior is preserved.
"""

from __future__ import annotations

import pytest

from repro.interp import run_design
from repro.ir.htg import LoopNode
from repro.transforms.unroll import LoopUnroller

from benchmarks.conftest import (
    FigureReport,
    fig2_externals,
    fig2_loop_source,
    fresh_design,
    total_ops,
)


def unroll_fully(n: int):
    design = fresh_design(fig2_loop_source(n))
    LoopUnroller({"*": 0}).run_on_design(design)
    return design


def loop_count(design) -> int:
    return sum(
        1
        for func in design.functions.values()
        for node in func.walk_nodes()
        if isinstance(node, LoopNode)
    )


@pytest.mark.parametrize("n", [4, 8, 16, 32])
def test_full_unroll_materializes_all_iterations(benchmark, n):
    design = benchmark(unroll_fully, n)
    assert loop_count(design) == 0
    # Each iteration contributes its Op1 and Op2 calls.
    calls = total_ops(design)
    assert calls >= 2 * n


@pytest.mark.parametrize("n", [4, 8, 16])
def test_unroll_preserves_behavior(n):
    externals = fig2_externals()
    before = fresh_design(fig2_loop_source(n))
    after = unroll_fully(n)
    state_before = run_design(before, externals=externals)
    state_after = run_design(after, externals=externals)
    assert state_before.snapshot()["arrays"] == state_after.snapshot()["arrays"]


def test_partial_unroll_keeps_loop():
    """Paper: compilers unroll 'one iteration at a time'; factor-2
    unrolling leaves a loop with a doubled body."""
    design = fresh_design(fig2_loop_source(8))
    before_ops = total_ops(design)
    LoopUnroller({"*": 2}).run_on_design(design)
    assert loop_count(design) == 1
    assert total_ops(design) > before_ops


def test_fig2_report():
    report = FigureReport("Fig 2: full loop unrolling (Op1/Op2 loop)")
    report.row(f"{'N':>4} {'ops before':>11} {'ops after':>10} {'loops after':>12}")
    for n in (4, 8, 16, 32):
        before = fresh_design(fig2_loop_source(n))
        ops_before = total_ops(before)
        after = unroll_fully(n)
        report.row(
            f"{n:>4} {ops_before:>11} {total_ops(after):>10} "
            f"{loop_count(after):>12}"
        )
    report.emit()
