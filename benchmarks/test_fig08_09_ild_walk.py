"""Figs 8 & 9 — the ILD decode walk: first and second instruction.

Paper Fig 8: the decoder examines LengthContribution_1 of the first
byte, consults Need_2nd_Byte, and so on for up to 4 bytes.  Fig 9: if
the first instruction is two bytes long, decoding restarts at byte 3.

The bench exercises the golden model's walk: per-instruction traces
(bytes examined, contributions), decoder restart at NextStartByte, and
whole-buffer decode throughput over buffer-size and instruction-mix
sweeps.
"""

from __future__ import annotations

import random

import pytest

from repro.ild import GoldenILD, decode_buffer, random_buffer
from repro.ild.isa import DEFAULT_ISA, crafted_buffer

from benchmarks.conftest import FigureReport


def test_fig8_first_instruction_walk():
    """A crafted buffer whose first instruction needs all four bytes."""
    # byte with bit7 set -> need 2nd; bit6 -> need 3rd; bit5 -> need 4th
    buffer = [0, 0x83, 0x47, 0x2A, 0x40] + [0] * 8
    ild = GoldenILD(n=12)
    trace = ild.calculate_length(buffer, 1)
    assert trace.bytes_examined == 4
    assert trace.length == sum(trace.contributions)
    assert trace.contributions[0] == 1 + (0x83 & 3)


def test_fig9_decode_restarts_at_next_start():
    """First instruction 2 bytes -> second decode begins at byte 3."""
    buffer = [0] + crafted_buffer([2, 3, 1], n=8)
    ild = GoldenILD(n=8)
    mark, lengths, traces = ild.decode(buffer)
    assert mark[1] == 1
    assert lengths[1] == 2
    assert traces[1].start == 3
    assert mark[3] == 1


@pytest.mark.parametrize("n", [8, 16, 64, 256])
def test_decode_throughput(benchmark, n):
    rng = random.Random(7)
    buffer = random_buffer(n, rng=rng)
    ild = GoldenILD(n=n)
    mark, lengths, traces = benchmark(ild.decode, buffer)
    # Decoding always advances; every start is marked exactly once.
    starts = [i for i in range(1, n + 1) if mark[i]]
    assert starts[0] == 1
    for a, b in zip(starts, starts[1:]):
        assert b - a == lengths[a]


def test_instruction_lengths_within_paper_bounds():
    """Lengths range 1..11 bytes (paper Section 5)."""
    rng = random.Random(21)
    ild = GoldenILD(n=64)
    for _ in range(200):
        buffer = random_buffer(64, rng=rng)
        _, lengths, traces = ild.decode(buffer)
        for trace in traces:
            assert 1 <= trace.length <= 11
            assert 1 <= trace.bytes_examined <= 4


def test_fig8_9_report():
    report = FigureReport("Figs 8/9: golden ILD decode walk")
    buffer = [0] + crafted_buffer([2, 4, 1, 3], n=12)
    ild = GoldenILD(n=12)
    mark, lengths, traces = ild.decode(buffer)
    report.row(f"{'start':>6} {'length':>7} {'bytes examined':>15}")
    for trace in traces:
        report.row(
            f"{trace.start:>6} {trace.length:>7} {trace.bytes_examined:>15}"
        )
    report.row("")
    report.row(f"mark vector: {mark[1:]}")
    report.emit()
