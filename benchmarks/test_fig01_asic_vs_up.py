"""Fig 1 — the architectural contrast: ASIC vs microprocessor block.

Paper: ASICs are "typically multi-cycle and pipelined ... usually area
constrained, which often limits the extent of parallelism"; µP blocks
"are often single cycle ... with little or no resource constraints but
tight bounds on the cycle time."

The bench synthesizes the *same* ILD description under both regimes
and measures the trade: the ASIC script (2 ALUs, rolled loop, short
clock) yields a small multi-cycle FSM; the µP script (unlimited
allocation, full unroll, chained single cycle) yields one state and a
much larger datapath.
"""

from __future__ import annotations

import random

import pytest

from repro import SparkSession, SynthesisScript
from repro.ild import (
    GoldenILD,
    build_ild_source,
    ild_externals,
    ild_interface,
    ild_library,
    random_buffer,
)

from benchmarks.conftest import FigureReport

N = 4


def make_session(script: SynthesisScript) -> SparkSession:
    return SparkSession(
        build_ild_source(N),
        script=script,
        library=ild_library(),
        interface=ild_interface(N),
        externals=ild_externals(N),
    )


def up_script() -> SynthesisScript:
    return SynthesisScript.microprocessor_block(
        pure_functions=set(ild_externals(N))
    )


def asic_script() -> SynthesisScript:
    script = SynthesisScript.asic(clock_period=4.0)
    script.pure_functions = set(ild_externals(N))
    return script


def synthesize_both():
    up = make_session(up_script()).run()
    asic = make_session(asic_script()).run()
    return up, asic


def test_both_regimes(benchmark):
    up, asic = benchmark(synthesize_both)
    assert up.state_machine.is_single_cycle()
    assert asic.state_machine.num_states > 1


def test_up_single_cycle_asic_multi_cycle():
    up, asic = synthesize_both()
    rng = random.Random(5)
    buffer = random_buffer(N, rng=rng)
    up_sess = make_session(up_script())
    up_result = up_sess.run(bind=False, emit=False)
    rtl = up_sess.simulate_rtl(
        up_result.state_machine, array_inputs={"Buffer": list(buffer)}
    )
    assert rtl.cycles == 1

    asic_sess = make_session(asic_script())
    asic_result = asic_sess.run(bind=False, emit=False)
    asic_rtl = asic_sess.simulate_rtl(
        asic_result.state_machine, array_inputs={"Buffer": list(buffer)}
    )
    assert asic_rtl.cycles > rtl.cycles
    # Both decode correctly.
    golden = GoldenILD(n=N)
    mark, _, _ = golden.decode(buffer)
    assert rtl.arrays["Mark"][1 : N + 1] == mark[1 : N + 1]
    assert asic_rtl.arrays["Mark"][1 : N + 1] == mark[1 : N + 1]


def test_asic_respects_resource_limits():
    _, asic = synthesize_both()
    counts = asic.fu_binding.instance_counts
    assert counts.get("alu", 0) <= 2
    assert counts.get("cmp", 0) <= 1


def test_up_buys_speed_with_area():
    """The paper's trade quantified: the µP block has strictly more FU
    instances but strictly fewer cycles."""
    up, asic = synthesize_both()
    assert (
        up.fu_binding.total_instances() > asic.fu_binding.total_instances()
    )
    assert up.state_machine.num_states < asic.state_machine.num_states


def test_fig1_report():
    report = FigureReport("Fig 1: ASIC regime vs microprocessor-block regime")
    up, asic = synthesize_both()
    report.row(f"{'':<22} {'ASIC':>12} {'uP block':>12}")
    report.row(
        f"{'states':<22} {asic.state_machine.num_states:>12} "
        f"{up.state_machine.num_states:>12}"
    )
    report.row(
        f"{'fu instances':<22} {asic.fu_binding.total_instances():>12} "
        f"{up.fu_binding.total_instances():>12}"
    )
    report.row(
        f"{'registers':<22} {asic.register_binding.register_count:>12} "
        f"{up.register_binding.register_count:>12}"
    )
    report.row(
        f"{'area total':<22} {asic.area.total:>12.0f} {up.area.total:>12.0f}"
    )
    report.row(
        f"{'critical path':<22} "
        f"{asic.state_machine.max_critical_path():>12.2f} "
        f"{up.state_machine.max_critical_path():>12.2f}"
    )
    report.emit()
