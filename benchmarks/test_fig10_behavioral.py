"""Fig 10 — the behavioral "C" description of the ILD.

The bench parses the generated Fig 10 source for a sweep of buffer
sizes and interprets it on random byte streams, cross-checking the
Mark bit vector against the golden decoder — the validation the whole
reproduction rests on.
"""

from __future__ import annotations

import random

import pytest

from repro.ild import GoldenILD, build_ild_source, ild_externals, random_buffer
from repro.interp import run_design
from repro.ir.builder import design_from_source

from benchmarks.conftest import FigureReport


def parse(n: int):
    return design_from_source(build_ild_source(n))


def interpret_marks(design, n: int, buffer):
    state = run_design(
        design,
        externals=ild_externals(n),
        array_inputs={"Buffer": list(buffer)},
    )
    return state.arrays["Mark"][1 : n + 1]


@pytest.mark.parametrize("n", [4, 8, 16])
def test_parse_behavioral_source(benchmark, n):
    design = benchmark(parse, n)
    assert "CalculateLength" in design.functions
    assert design.main.count_operations() > 0


@pytest.mark.parametrize("n", [4, 8, 16])
def test_behavioral_matches_golden(n):
    rng = random.Random(n)
    design = parse(n)
    golden = GoldenILD(n=n)
    for _ in range(25):
        buffer = random_buffer(n, rng=rng)
        mark, _, _ = golden.decode(buffer)
        assert interpret_marks(design, n, buffer) == mark[1 : n + 1]


def test_interpretation_throughput(benchmark):
    n = 16
    design = parse(n)
    rng = random.Random(3)
    buffer = random_buffer(n, rng=rng)

    marks = benchmark(interpret_marks, design, n, buffer)
    assert marks[0] == 1  # an instruction always starts at byte 1


def test_fig10_report():
    report = FigureReport("Fig 10: behavioral ILD vs golden decoder")
    report.row(f"{'n':>4} {'ops':>5} {'functions':>10} {'random checks':>14}")
    for n in (4, 8, 16):
        design = parse(n)
        rng = random.Random(n)
        golden = GoldenILD(n=n)
        checks = 0
        for _ in range(10):
            buffer = random_buffer(n, rng=rng)
            mark, _, _ = golden.decode(buffer)
            assert interpret_marks(design, n, buffer) == mark[1 : n + 1]
            checks += 1
        total_ops = sum(
            f.count_operations() for f in design.functions.values()
        )
        report.row(
            f"{n:>4} {total_ops:>5} {len(design.functions):>10} "
            f"{checks:>14}"
        )
    report.emit()
