"""Fig 16 — the succinct, natural while(1) description.

Paper: "A more natural and succinct way to describe the ILD's behavior
could be as shown in Figure 16 ... future work in developing a new set
of source-level transformations that can transform these sort of
descriptions into more easily synthesizable behavioral descriptions."

This reproduction implements that future-work transformation
(:class:`WhileToForRewrite`): the bench rewrites the natural form into
the Fig 10 loop form and proves equivalence on random streams, then
pushes the rewritten design through the full single-cycle flow.
"""

from __future__ import annotations

import random

import pytest

from repro.ild import (
    GoldenILD,
    build_ild_source,
    build_natural_ild_source,
    ild_externals,
    random_buffer,
)
from repro.interp import run_design
from repro.ir.builder import design_from_source
from repro.ir.htg import LoopNode
from repro.transforms.loop_rewrite import WhileToForRewrite

from benchmarks.conftest import FigureReport


def rewrite(n: int):
    design = design_from_source(build_natural_ild_source(n))
    rewriter = WhileToForRewrite("NextStartByte", bound=n)
    report = rewriter.run_on_function(design.main, design)
    return design, report


def marks(design, n: int, buffer):
    state = run_design(
        design,
        externals=ild_externals(n),
        array_inputs={"Buffer": list(buffer)},
    )
    return state.arrays["Mark"][1 : n + 1]


@pytest.mark.parametrize("n", [4, 8, 16])
def test_rewrite_produces_bounded_loop(benchmark, n):
    design, report = benchmark(rewrite, n)
    assert report.changed
    loops = [
        node
        for node in design.main.walk_nodes()
        if isinstance(node, LoopNode)
    ]
    assert loops and all(loop.kind == "for" for loop in loops)


@pytest.mark.parametrize("n", [4, 8])
def test_natural_form_equivalent_to_fig10(n):
    rng = random.Random(n)
    rewritten, _ = rewrite(n)
    fig10 = design_from_source(build_ild_source(n))
    golden = GoldenILD(n=n)
    for _ in range(15):
        buffer = random_buffer(n, rng=rng)
        mark, _, _ = golden.decode(buffer)
        assert marks(rewritten, n, buffer) == mark[1 : n + 1]
        assert marks(fig10, n, buffer) == mark[1 : n + 1]


def test_rewritten_design_reaches_single_cycle():
    """The future-work path end-to-end: natural description ->
    source-level rewrite -> coordinated transformations -> 1 cycle."""
    from repro import SparkSession, SynthesisScript
    from repro.ild import ild_interface, ild_library

    n = 4
    design, _ = rewrite(n)
    externals = ild_externals(n)
    session = SparkSession.from_design(
        design,
        script=SynthesisScript.microprocessor_block(
            pure_functions=set(externals)
        ),
        library=ild_library(),
        interface=ild_interface(n),
        externals=externals,
    )
    result = session.run()
    assert result.state_machine.is_single_cycle()


def test_fig16_report():
    report = FigureReport("Fig 16: natural while(1) form, rewritten")
    report.row(f"{'n':>4} {'rewritten loops':>16} {'equiv checks':>13}")
    for n in (4, 8):
        design, _ = rewrite(n)
        rng = random.Random(n)
        golden = GoldenILD(n=n)
        checks = 0
        for _ in range(10):
            buffer = random_buffer(n, rng=rng)
            mark, _, _ = golden.decode(buffer)
            assert marks(design, n, buffer) == mark[1 : n + 1]
            checks += 1
        loops = sum(
            1
            for node in design.main.walk_nodes()
            if isinstance(node, LoopNode)
        )
        report.row(f"{n:>4} {loops:>16} {checks:>13}")
    report.emit()
