"""Conclusion-claim bench — the methodology across a block suite.

Paper conclusion: "Similar, short behavioral descriptions can be used
to describe several such low latency functional blocks in
microprocessors."  This bench runs the full coordinated flow over the
four-block library (priority encoder, leading-zero counter, popcount,
tag comparator) and regenerates a summary table a fuller evaluation
section would have reported: single-cycle yes/no, op count, critical
path, area, and the ASIC-regime contrast per block.
"""

from __future__ import annotations

import random

import pytest

from repro import SynthesisScript
from repro.blocks import BLOCKS

from benchmarks.conftest import FigureReport


@pytest.mark.parametrize("name", sorted(BLOCKS))
def test_block_synthesis(benchmark, name):
    block = BLOCKS[name]()

    def flow():
        return block.synthesize()

    _, result = benchmark(flow)
    assert result.state_machine.is_single_cycle()


@pytest.mark.parametrize("name", sorted(BLOCKS))
def test_block_correct_on_random_stimuli(name):
    block = BLOCKS[name]()
    session, result = block.synthesize()
    rng = random.Random(hash(name) & 0xFFFF)
    for _ in range(30):
        if name == "tag_comparator":
            entries = block.width
            tags = [rng.randrange(8) for _ in range(entries)]
            valid = [rng.randrange(2) for _ in range(entries)]
            lookup = rng.randrange(8)
            want = block.golden([0] + tags + valid + [lookup])
            rtl = session.simulate_rtl(
                result.state_machine,
                inputs={"lookup": lookup},
                array_inputs={"tags": [0] + tags, "valid": [0] + valid},
            )
        else:
            bits = block.random_vector(rng)
            want = block.golden(bits)
            rtl = session.simulate_rtl(
                result.state_machine, array_inputs={"bits": bits}
            )
        for output in block.outputs:
            assert rtl.scalars[output] == want[output]
        assert rtl.cycles == 1


def test_block_spectrum():
    """The suite spans the control/data spectrum: popcount is pure
    data (no muxes needed beyond FU steering); the tag comparator and
    encoders are steering-dominated."""
    results = {name: BLOCKS[name]().synthesize()[1] for name in BLOCKS}
    pop = results["popcount"]
    tag = results["tag_comparator"]
    assert pop.area.mux_count <= tag.area.mux_count
    assert pop.state_machine.total_operations() < (
        tag.state_machine.total_operations()
    )


def test_blocks_report():
    report = FigureReport("Block suite under the coordinated flow")
    report.row(
        f"{'block':<22} {'1-cyc':>5} {'ops':>5} {'cp':>6} {'area':>7} "
        f"{'muxes':>6} | {'ASIC states':>11}"
    )
    for name in sorted(BLOCKS):
        block = BLOCKS[name]()
        _, up = block.synthesize()
        _, asic = block.synthesize(
            script=SynthesisScript.asic(clock_period=3.0)
        )
        sm = up.state_machine
        report.row(
            f"{name:<22} {str(sm.is_single_cycle()):>5} "
            f"{sm.total_operations():>5} {sm.max_critical_path():>6.1f} "
            f"{up.area.total:>7.0f} {up.area.mux_count:>6} | "
            f"{asic.state_machine.num_states:>11}"
        )
    report.emit()
