"""Fig 3 — constant propagation of the loop index + parallel execution.

Paper: after full unrolling, "the initial value assigned to the loop
index variable can be propagated as a constant throughout all the
iterations ... the code motion transformations can execute the Op1
operations concurrently followed by the concurrent execution of all
Op2 operations."

The bench runs unroll + constant propagation and schedules with an
unlimited allocation: the state count must be *independent of N* (the
Op1 level then the Op2 level, exactly Fig 3b), and with a generous
clock the whole design collapses to a single cycle.
"""

from __future__ import annotations

import pytest

from repro.scheduler.list_scheduler import ChainingScheduler
from repro.scheduler.resources import ResourceAllocation, ResourceLibrary
from repro.transforms.code_motion import DataflowLevelReorder
from repro.transforms.const_prop import ConstantPropagation
from repro.transforms.copy_prop import CopyPropagation
from repro.transforms.dce import DeadCodeElimination
from repro.transforms.unroll import LoopUnroller

from benchmarks.conftest import (
    FigureReport,
    fig2_externals,
    fig2_loop_source,
    fresh_design,
)

PURE = set(fig2_externals())


def parallelize(n: int):
    """Unroll fully, propagate the index away, clean up."""
    design = fresh_design(fig2_loop_source(n))
    LoopUnroller({"*": 0}).run_on_design(design)
    ConstantPropagation().run_on_design(design)
    CopyPropagation().run_on_design(design)
    DeadCodeElimination(pure_functions=PURE).run_on_design(design)
    # The paper's parallelizing code motions produce the Fig 3(b)
    # interleaving: every Op1, then every Op2.
    DataflowLevelReorder(pure_functions=PURE).run_on_design(design)
    return design


def schedule(design, clock_period: float):
    scheduler = ChainingScheduler(
        library=ResourceLibrary(),
        clock_period=clock_period,
        allocation=ResourceAllocation.unlimited(),
    )
    return scheduler.schedule(design.main)


def index_variable_reads(design) -> int:
    """Reads of the loop index variable left after constant
    propagation (paper: 'the loop index variable is completely
    eliminated from the code')."""
    count = 0
    for func in design.functions.values():
        for op in func.walk_operations():
            if "i" in op.reads():
                count += 1
    return count


@pytest.mark.parametrize("n", [4, 8, 16])
def test_transform_and_schedule(benchmark, n):
    def flow():
        design = parallelize(n)
        return design, schedule(design, clock_period=10_000.0)

    design, sm = benchmark(flow)
    assert index_variable_reads(design) == 0
    assert sm.is_single_cycle()


@pytest.mark.parametrize("n", [4, 8, 16, 32])
def test_state_count_independent_of_n(n):
    """Fig 3(b)'s two parallel levels: the schedule depth is set by
    the Op1->Op2 dependency chain, not by N."""
    design = parallelize(n)
    sm = schedule(design, clock_period=3.0)
    baseline = schedule(parallelize(4), clock_period=3.0)
    assert sm.num_states == baseline.num_states


def test_constant_propagation_unlocks_parallelism():
    """Without constant propagation the index dependency serializes
    the iterations; with it the schedule collapses."""
    n = 8
    with_cp = parallelize(n)
    sm_with = schedule(with_cp, clock_period=10_000.0)

    without_cp = fresh_design(fig2_loop_source(n))
    LoopUnroller({"*": 0}).run_on_design(without_cp)
    sm_without = schedule(without_cp, clock_period=10_000.0)
    assert sm_with.num_states <= sm_without.num_states
    assert sm_with.is_single_cycle()


def test_fig3_report():
    report = FigureReport(
        "Fig 3: const-prop of loop index -> parallel Op1/Op2 levels"
    )
    report.row(
        f"{'N':>4} {'index reads':>12} {'states(tight)':>14} "
        f"{'states(loose)':>14}"
    )
    for n in (4, 8, 16, 32):
        design = parallelize(n)
        tight = schedule(design, clock_period=3.0)
        loose = schedule(parallelize(n), clock_period=10_000.0)
        report.row(
            f"{n:>4} {index_variable_reads(design):>12} "
            f"{tight.num_states:>14} {loose.num_states:>14}"
        )
    report.emit()
