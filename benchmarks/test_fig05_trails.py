"""Fig 5 — chaining-trail enumeration across nested conditionals.

Paper: scheduling operation 4 with operations 1, 2 and 3 requires
checking "all trails up from basic block BB8"; the example has exactly
three trails, each containing one write to ``o1``.

The bench enumerates trails on the paper's HTG and on deeper nested
variants (trail count doubles per nesting level — the cost the
chaining heuristic pays), and validates chained single-cycle synthesis
of the Fig 5 code.
"""

from __future__ import annotations

import pytest

from repro import DesignInterface, SparkSession, SynthesisScript
from repro.ir.builder import design_from_source
from repro.ir.htg import BlockNode
from repro.transforms.chaining import chaining_sources, enumerate_chaining_trails

from benchmarks.conftest import FIG5_SOURCE, FigureReport, find_writer


def nested_if_source(depth: int) -> str:
    """A write to o1 in every leaf of a depth-*depth* condition tree,
    then one reader — 2**depth trails."""
    def tree(level: int, leaf_id: int) -> str:
        if level == 0:
            return f"o1 = a + {leaf_id};"
        return (
            f"if (c{level}) {{ {tree(level - 1, leaf_id * 2)} }} "
            f"else {{ {tree(level - 1, leaf_id * 2 + 1)} }}"
        )

    return f"int o1; int o2;\n{tree(depth, 0)}\no2 = o1 + d;"


def trails_for(source: str):
    design = design_from_source(source)
    reader = find_writer(design.main, "o2")
    target = next(
        node.block
        for node in design.main.walk_nodes()
        if isinstance(node, BlockNode) and reader in node.ops
    )
    return design, reader, enumerate_chaining_trails(design.main, target)


def test_fig5_exactly_three_trails(benchmark):
    _, _, trails = benchmark(trails_for, FIG5_SOURCE)
    assert len(trails) == 3


def test_fig5_one_o1_writer_per_trail():
    design, reader, trails = trails_for(FIG5_SOURCE)
    sources = chaining_sources(design.main, reader, "o1")
    assert len(sources) == 3
    for trail, writers in sources.items():
        assert len(writers) == 1


@pytest.mark.parametrize("depth", [1, 2, 3, 4, 5])
def test_trail_count_doubles_with_nesting(benchmark, depth):
    _, _, trails = benchmark(trails_for, nested_if_source(depth))
    assert len(trails) == 2 ** depth


def test_fig5_single_cycle_synthesis():
    """Operation 4 schedules in the same cycle as operations 1-3 and
    the RTL picks the right o1 per condition pair."""
    script = SynthesisScript(
        enable_speculation=False,
        clock_period=1_000.0,
        output_scalars={"o2"},
    )
    for cond1 in (0, 1):
        for cond2 in (0, 1):
            sess = SparkSession(
                FIG5_SOURCE,
                script=script,
                interface=DesignInterface(
                    name="fig5",
                    scalar_inputs=["cond1", "cond2", "a", "b", "c", "d"],
                    scalar_outputs=["o2"],
                ),
            )
            inputs = {
                "cond1": cond1, "cond2": cond2,
                "a": 10, "b": 20, "c": 30, "d": 7,
            }
            expected = sess.interpret(inputs=inputs).scalars["o2"]
            result = sess.run(bind=False, emit=False)
            assert result.state_machine.is_single_cycle()
            rtl = sess.simulate_rtl(result.state_machine, inputs=inputs)
            assert rtl.scalars["o2"] == expected


def test_fig5_report():
    report = FigureReport("Fig 5: chaining trails up from BB8")
    design, reader, trails = trails_for(FIG5_SOURCE)
    report.row(f"trails found: {len(trails)}  (paper: 3)")
    for trail in trails:
        writers = trail.writes_to("o1")
        report.row(f"  {trail}  o1 writers on trail: {len(writers)}")
    report.row("")
    report.row("trail growth with conditional nesting depth:")
    for depth in (1, 2, 3, 4, 5):
        _, _, deep = trails_for(nested_if_source(depth))
        report.row(f"  depth {depth}: {len(deep)} trails")
    report.emit()
