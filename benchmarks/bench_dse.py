#!/usr/bin/env python
"""Cold-vs-warm sweep benchmark: the DSE perf trajectory, measured.

Runs one reference design-space sweep three ways against a fresh
cache directory and emits ``BENCH_dse.json``:

* **cold** — empty caches: every corner parses, transforms,
  schedules, binds, estimates;
* **stage-warm** — outcome entries wiped, stage artifacts kept: every
  corner re-executes, but the shared frontend/transform (and
  per-corner schedule) snapshots are recalled — this isolates what
  the staged flow buys when the sweep itself changes (new corners,
  new stimulus) while the design does not;
* **outcome-warm** — both caches intact: the all-hit re-run.

It also sweeps a second, disjoint grid over the same design
(schedule-stage axes only) to measure the incremental-sweep case:
outcome misses everywhere, transform work served entirely from stage
artifacts.

Every phase reports ``dispatch_overhead_per_corner_s`` — sweep
wall-clock minus the summed fresh stage time, divided by corners
executed.  That residue is what the engine and flow spend *around*
the real synthesis work: job hashing, cache probes, snapshot
unpickling, bookkeeping.

A second workload (``BATCH_SRC``, a fully-unrolled inner product, so
the shared transform snapshot is heavy) measures what batched
dispatch buys: **warm-unbatched** re-loads that snapshot for every
corner, **warm-batched** (``batch_size=8``) loads it once per batch.
``overhead_reduction_batched`` is the per-corner overhead ratio
between the two — the tracked headline for batching.

The **search_beam** phase compares a seeded beam search against the
exhaustive grid on a 54-corner unroll x clock x limits space: it
records the best-latency ratio (beam vs grid optimum) and the
fraction of the grid the beam settled — the adaptive-search headline
(within 5% of the optimum at <= 40% of the evaluations), fully
deterministic for the pinned seed.

The **verify_overhead** phase times the reference sweep's warm miss
path (every corner executes against warm stage artifacts) with the
static verifier off and armed; ``verify_overhead_ratio`` is the
tracked budget — ``--verify-each`` may add at most 15% wall clock.

The **rtl_lint_overhead** phase is the same comparison for the
emit-stage RTL linter (:mod:`repro.analysis.rtl`): plain warm sweep vs
one with ``lint_rtl`` armed (both backends emitted and linted on every
corner); ``rtl_lint_overhead_ratio`` carries the same <= 15% budget.

The **cache_contention** phase prices the storage layer's sharded
locking: 8 worker processes run warm get sweeps over a prepopulated
cache, each interleaving full gc passes (generous budget, so nothing
evicts), once against the legacy single-lock flat layout and once
against the 16-way sharded backend.  Both sides report wall clock and
the summed time workers spent blocked on maintenance locks;
``lock_wait_ratio`` (sharded over flat) is the tracked headline —
sharded locking must never wait *longer* than the single lock it
replaced.

Usage::

    PYTHONPATH=src python benchmarks/bench_dse.py [--output BENCH_dse.json]
        [--check]

``--check`` turns the structural expectations into hard assertions
(used as the CI stage-cache smoke): the same grid twice must be 100%
outcome hits, and the disjoint-grid run must report zero fresh
transform executions — ~100% transform-stage hits.

This is a standalone script (not a pytest module) so it can anchor
CI steps and produce a JSON artifact for trend tracking.
"""

from __future__ import annotations

import argparse
import dataclasses
import hashlib
import json
import multiprocessing
import sys
import tempfile
import time
from pathlib import Path

from repro.dse import (
    ExplorationEngine,
    grid_from_specs,
    job_from_point,
    jobs_from_grid,
    make_strategy,
    shared_stages,
)
from repro.dse.cache import ResultCache
from repro.dse.service import CacheService
from repro.dse.storage import KIND_OUTCOME, make_backend
from repro.transforms.base import SynthesisScript

BENCH_SRC = """
int data[34];
int acc[34];
int i; int total;
total = 0;
for (i = 0; i < 32; i++) {
  total = total + data[i];
  acc[i] = total;
}
"""

#: The reference sweep: schedule-stage axes only, so the whole grid
#: shares one transform prefix (the stage cache's best case — and the
#: common one: clock/allocation sweeps over a fixed design).
GRID_SPECS = ["clock=2,3,4,5,6,8", "limits=alu:1,alu:2,none"]

#: Disjoint corners of the same design for the incremental-sweep
#: measurement (no outcome overlap with GRID_SPECS).
EXTEND_SPECS = ["clock=7,9,10,12", "limits=alu:1,alu:2,none"]

#: The batching workload: a fully-unrolled 64-tap inner product plus
#: helper functions that only inflate the *design* (the schedule stage
#: covers ``main`` alone).  The shared transform snapshot is then
#: large enough that re-loading it per corner dominates warm dispatch
#: overhead — the case ``--batch-size`` exists for — while the
#: per-corner schedule snapshots stay modest.
BATCH_SRC = "\n".join(
    f"""
int helper{index}(int x) {{
  int taps{index}[66];
  int j; int s;
  s = 0;
  for (j = 0; j < 64; j++) {{
    s = s + taps{index}[j] * x;
  }}
  return s;
}}
"""
    for index in range(6)
) + """
int data[66];
int acc[66];
int weight[66];
int i; int total; int peak;
total = 0;
peak = 0;
for (i = 0; i < 64; i++) {
  total = total + data[i] * weight[i];
  if (total > peak) {
    peak = total;
  }
  acc[i] = total;
}
"""

#: Corners per batch claim in the warm-batched phase (mirrors the
#: CLI's ``--batch-size``).
BATCH_SIZE = 8

#: The search workload: a 54-corner space mixing a transform-stage
#: axis (unroll) with schedule-stage axes, so beam search has real
#: structure to exploit (late-stage mutations sharing transform
#: prefixes) and an exhaustive sweep is meaningfully larger than the
#: search budget.
SEARCH_SPECS = [
    "unroll=none,*:2,*:0",
    "clock=2,3,4,5,6,8",
    "limits=alu:1,alu:2,none",
]

#: Seed for the tracked beam run — the whole point is a reproducible
#: headline, so the bench pins it.
SEARCH_SEED = 1

#: The beam may settle at most this fraction of the grid's corners
#: (the acceptance bar: reach within 5% of the exhaustive optimum on
#: <= 40% of its evaluations).
SEARCH_BUDGET_FRACTION = 0.4

#: Trials per warm dispatch-overhead phase; unbatched and batched
#: trials are interleaved (so both see the same machine conditions)
#: and the best (minimum overhead) trial of each is reported —
#: standard practice for timing residues this small.
OVERHEAD_TRIALS = 5

#: The verifier budget: arming ``--verify-each`` may add at most this
#: factor to the warm sweep's wall clock (the miss path, where every
#: corner executes against warm stage artifacts — outcome-cache hits
#: never enter the flow, so they see zero verifier cost by
#: construction).
VERIFY_OVERHEAD_MAX = 1.15

#: The RTL-lint budget: arming the emit-stage linter (which also pays
#: for emitting both backends on every corner) may add at most this
#: factor to the plain warm sweep.
LINT_OVERHEAD_MAX = 1.15

#: Pool width for the cache_contention phase.
CONTENTION_WORKERS = 8

#: Prepopulated entries the contention workers sweep (spread across
#: all 16 shards by their SHA-256 keys; large enough that a flat gc's
#: single-lock critical section — one whole-directory scan — is
#: measurably long).
CONTENTION_ENTRIES = 1024

#: Warm get-sweep + gc rounds per worker.
CONTENTION_ROUNDS = 4

#: Outcome payload size for the prepopulated entries.
CONTENTION_PAYLOAD_BYTES = 512

#: Sharded locking must not make workers wait longer than the single
#: lock it replaced: lock_wait_ratio (sharded / flat) stays <= 1.
CONTENTION_RATIO_MAX = 1.0

#: Below this much total sharded lock wait the run was effectively
#: uncontended and the ratio is noise over noise; the gate passes.
CONTENTION_WAIT_FLOOR_S = 0.05


def _fresh_stage_seconds(result) -> float:
    """Summed wall-clock of stages that actually *ran* (not recalled
    from a snapshot) across freshly-executed corners."""
    return sum(
        float(entry.get("elapsed", 0.0))
        for outcome in result.outcomes
        if outcome.provenance == "run"
        for entry in outcome.stages
        if not entry.get("cached")
    )


def _dispatch_overhead(result, elapsed: float):
    """Per-corner engine/flow residue: wall-clock minus fresh stage
    time, divided by corners executed (None when nothing ran)."""
    if result.executed == 0:
        return None
    return round(
        max(elapsed - _fresh_stage_seconds(result), 0.0) / result.executed, 9
    )


def _sweep(jobs, cache_dir, label, batch_size=1):
    engine = ExplorationEngine(
        cache_dir=cache_dir, workers=1, batch_size=batch_size
    )
    started = time.perf_counter()
    result = engine.explore(jobs)
    elapsed = time.perf_counter() - started
    infeasible = sum(1 for outcome in result.outcomes if not outcome.ok)
    return {
        "label": label,
        "points": len(result.outcomes),
        "cache_hits": result.cache_hits,
        "executed": result.executed,
        "pruned": result.pruned,
        "infeasible": infeasible,
        "elapsed_s": round(elapsed, 6),
        "dispatch_overhead_per_corner_s": _dispatch_overhead(result, elapsed),
        "stage_totals": {
            stage: {
                "runs": int(bucket["runs"]),
                "hits": int(bucket["hits"]),
                "elapsed_s": round(bucket["elapsed"], 6),
            }
            for stage, bucket in result.stage_totals().items()
        },
    }


def _overhead_trial(jobs, batch_size, label):
    """One warm sweep with the outcome cache *disabled* (jobs carry
    their own ``stage_cache_dir``), so the measured residue is pure
    dispatch: stage-key hashing, snapshot probes and unpickling,
    engine bookkeeping — exactly the costs batching amortizes."""
    engine = ExplorationEngine(
        use_cache=False, workers=1, batch_size=batch_size
    )
    started = time.perf_counter()
    result = engine.explore(jobs)
    elapsed = time.perf_counter() - started
    if result.executed != len(jobs):
        raise AssertionError(
            f"{label}: expected {len(jobs)} executions, "
            f"got {result.executed}"
        )
    return {
        "label": label,
        "points": len(result.outcomes),
        "executed": result.executed,
        "batch_size": batch_size,
        "elapsed_s": round(elapsed, 6),
        "dispatch_overhead_per_corner_s": _dispatch_overhead(
            result, elapsed
        ),
    }


def _bench_batching():
    """Warm dispatch-overhead comparison: unbatched vs batched over a
    shared stage-artifact directory, trials interleaved."""
    base = SynthesisScript(
        output_scalars={"total", "peak"}, unroll_loops={"*": 0}
    )
    jobs = jobs_from_grid(
        BATCH_SRC, grid_from_specs(GRID_SPECS), base_script=base
    )
    with tempfile.TemporaryDirectory(prefix="bench-batch-") as stage_dir:
        stamped = [
            dataclasses.replace(job, stage_cache_dir=stage_dir)
            for job in jobs
        ]
        # Populate the stage artifacts once; the measured phases below
        # then both run fully warm.
        ExplorationEngine(use_cache=False, workers=1).explore(stamped)
        unbatched_trials, batched_trials = [], []
        for _ in range(OVERHEAD_TRIALS):
            unbatched_trials.append(
                _overhead_trial(stamped, 1, "warm-unbatched")
            )
            batched_trials.append(
                _overhead_trial(stamped, BATCH_SIZE, "warm-batched")
            )
    def pick(trials):
        return min(
            trials, key=lambda trial: trial["dispatch_overhead_per_corner_s"]
        )

    return pick(unbatched_trials), pick(batched_trials)


def _bench_verify():
    """Warm-sweep wall clock with the static verifier off vs armed.

    Every corner executes (outcome cache disabled) against warm stage
    artifacts — the exact phase where ``--verify-each`` does real
    work: the design battery at the transform boundary, the schedule
    and binding batteries after their stages.  Trials are interleaved
    and the best of each side is compared, so the ratio tracks the
    verifier's cost, not machine noise."""
    base = SynthesisScript(output_scalars={"total"})
    jobs = jobs_from_grid(
        BENCH_SRC, grid_from_specs(GRID_SPECS), base_script=base
    )

    def trial(verify):
        engine = ExplorationEngine(
            use_cache=False, workers=1, verify=verify
        )
        started = time.perf_counter()
        result = engine.explore(stamped)
        elapsed = time.perf_counter() - started
        if result.executed != len(stamped):
            raise AssertionError(
                f"verify_overhead: expected {len(stamped)} executions, "
                f"got {result.executed}"
            )
        failures = len(result.verifier_failures)
        if failures:
            raise AssertionError(
                f"verify_overhead: {failures} verifier failure(s) on a "
                f"clean sweep"
            )
        return elapsed

    with tempfile.TemporaryDirectory(prefix="bench-verify-") as stage_dir:
        stamped = [
            dataclasses.replace(job, stage_cache_dir=stage_dir)
            for job in jobs
        ]
        ExplorationEngine(use_cache=False, workers=1).explore(stamped)
        plain_trials, verified_trials = [], []
        for _ in range(OVERHEAD_TRIALS):
            plain_trials.append(trial(verify=False))
            verified_trials.append(trial(verify=True))

    plain = min(plain_trials)
    verified = min(verified_trials)
    return {
        "label": "verify_overhead",
        "points": len(jobs),
        "plain_elapsed_s": round(plain, 6),
        "verified_elapsed_s": round(verified, 6),
        "verify_overhead_ratio": round(verified / max(plain, 1e-9), 4),
    }


def _bench_lint():
    """Warm-sweep wall clock with the emit-stage RTL linter off vs
    armed.  Same protocol as :func:`_bench_verify` — outcome cache
    disabled, warm stage artifacts, interleaved trials, best of each
    side — but isolating the linter: the pass/stage verifier stays off
    on both sides, so the ratio prices exactly what ``lint_rtl`` adds
    (emitting both backends plus the netlist/FSM/cross-layer
    battery)."""
    base = SynthesisScript(output_scalars={"total"})
    jobs = jobs_from_grid(
        BENCH_SRC, grid_from_specs(GRID_SPECS), base_script=base
    )

    def trial(lint_rtl):
        engine = ExplorationEngine(
            use_cache=False, workers=1, lint_rtl=lint_rtl
        )
        started = time.perf_counter()
        result = engine.explore(stamped)
        elapsed = time.perf_counter() - started
        if result.executed != len(stamped):
            raise AssertionError(
                f"rtl_lint_overhead: expected {len(stamped)} executions, "
                f"got {result.executed}"
            )
        failures = len(result.verifier_failures)
        if failures:
            raise AssertionError(
                f"rtl_lint_overhead: {failures} lint failure(s) on a "
                f"clean sweep"
            )
        return elapsed

    with tempfile.TemporaryDirectory(prefix="bench-lint-") as stage_dir:
        stamped = [
            dataclasses.replace(job, stage_cache_dir=stage_dir)
            for job in jobs
        ]
        ExplorationEngine(use_cache=False, workers=1).explore(stamped)
        plain_trials, linted_trials = [], []
        for _ in range(OVERHEAD_TRIALS):
            plain_trials.append(trial(lint_rtl=False))
            linted_trials.append(trial(lint_rtl=True))

    plain = min(plain_trials)
    linted = min(linted_trials)
    return {
        "label": "rtl_lint_overhead",
        "points": len(jobs),
        "plain_elapsed_s": round(plain, 6),
        "linted_elapsed_s": round(linted, 6),
        "rtl_lint_overhead_ratio": round(linted / max(plain, 1e-9), 4),
    }


def _contention_worker(args):
    """Pool worker for the cache_contention phase: warm get sweeps
    over every prepopulated entry, with a full gc pass after each
    sweep.  The gc budget is generous, so a correct run evicts
    nothing and every get hits; what the phase measures is the time
    workers spend blocked on maintenance locks."""
    spec, rounds = args
    backend = make_backend(spec)
    backend.ensure()
    service = CacheService(backend, max_bytes=1 << 30, lock_timeout=120.0)
    keys = [entry.key for entry in backend.entries()]
    misses = 0
    evicted = 0
    for _ in range(rounds):
        for key in keys:
            if backend.get(key, KIND_OUTCOME) is None:
                misses += 1
        evicted += service.gc().evicted
    return {
        "keys": len(keys),
        "misses": misses,
        "evicted": evicted,
        "lock_wait_s": backend.lock_waited,
    }


def _contention_side(kind):
    """One backend's contended run: prepopulate, then hammer it from
    ``CONTENTION_WORKERS`` processes."""
    payload = b"x" * CONTENTION_PAYLOAD_BYTES
    with tempfile.TemporaryDirectory(
        prefix=f"bench-contention-{kind}-"
    ) as root:
        backend = make_backend(root, kind=kind)
        backend.ensure()
        for index in range(CONTENTION_ENTRIES):
            key = hashlib.sha256(f"corner-{index}".encode()).hexdigest()
            backend.put(key, KIND_OUTCOME, payload)
        jobs = [(backend.spec, CONTENTION_ROUNDS)] * CONTENTION_WORKERS
        started = time.perf_counter()
        with multiprocessing.Pool(processes=CONTENTION_WORKERS) as pool:
            workers = pool.map(_contention_worker, jobs)
        elapsed = time.perf_counter() - started
    misses = sum(worker["misses"] for worker in workers)
    evicted = sum(worker["evicted"] for worker in workers)
    if misses or evicted:
        raise AssertionError(
            f"cache_contention[{kind}]: {misses} lost read(s), "
            f"{evicted} eviction(s) under a generous budget"
        )
    return {
        "backend": kind,
        "shards": backend.num_shards,
        "elapsed_s": round(elapsed, 6),
        "lock_wait_s": round(
            sum(worker["lock_wait_s"] for worker in workers), 6
        ),
    }


def _bench_contention():
    """Sharded vs single-lock maintenance under a parallel warm
    sweep: same entries, same worker mix, flat baseline first."""
    flat = _contention_side("flat")
    sharded = _contention_side("fs")
    return {
        "label": "cache_contention",
        "workers": CONTENTION_WORKERS,
        "entries": CONTENTION_ENTRIES,
        "rounds": CONTENTION_ROUNDS,
        "payload_bytes": CONTENTION_PAYLOAD_BYTES,
        "flat": flat,
        "sharded": sharded,
        "lock_wait_ratio": round(
            sharded["lock_wait_s"] / max(flat["lock_wait_s"], 1e-6), 4
        ),
    }


def _bench_search():
    """Beam search vs the exhaustive grid on the same space: how close
    the beam's best latency gets, at what fraction of the grid's
    evaluations.  Both run uncached and unpruned so every settled
    corner is a real evaluation and the comparison is apples to
    apples."""
    base = SynthesisScript(output_scalars={"total"})
    space = grid_from_specs(SEARCH_SPECS)
    jobs = jobs_from_grid(BENCH_SRC, space, base_script=base)

    started = time.perf_counter()
    full = ExplorationEngine(use_cache=False, workers=1).explore(
        jobs, prune=False
    )
    grid_elapsed = time.perf_counter() - started

    budget = int(len(space) * SEARCH_BUDGET_FRACTION)
    started = time.perf_counter()
    result = ExplorationEngine(use_cache=False, workers=1).search(
        make_strategy("beam", space, seed=SEARCH_SEED),
        lambda point: job_from_point(BENCH_SRC, point, base_script=base),
        budget,
        prune=False,
    )
    beam_elapsed = time.perf_counter() - started

    report = result.search
    best_grid = full.best().latency
    best_beam = result.best().latency if result.best() else float("inf")
    return {
        "label": "search_beam",
        "grid": SEARCH_SPECS,
        "grid_points": len(space),
        "seed": SEARCH_SEED,
        "budget": budget,
        "rounds": report.rounds,
        "proposed": report.proposed,
        "evaluated": report.evaluated,
        "deduped": report.deduped,
        "best_latency_grid": round(best_grid, 6),
        "best_latency_beam": round(best_beam, 6),
        "latency_ratio": round(best_beam / max(best_grid, 1e-9), 4),
        "evaluated_fraction": round(report.settled / len(space), 4),
        "grid_elapsed_s": round(grid_elapsed, 6),
        "beam_elapsed_s": round(beam_elapsed, 6),
    }


def run_bench(check: bool = False) -> dict:
    base = SynthesisScript(output_scalars={"total"})
    grid = grid_from_specs(GRID_SPECS)
    jobs = jobs_from_grid(BENCH_SRC, grid, base_script=base)
    extension = jobs_from_grid(
        BENCH_SRC, grid_from_specs(EXTEND_SPECS), base_script=base
    )

    with tempfile.TemporaryDirectory(prefix="bench-dse-") as cache_dir:
        cache = Path(cache_dir)
        cold = _sweep(jobs, cache, "cold")

        # Wipe outcomes, keep stage artifacts: every corner re-executes
        # against a warm stage cache.  (Via the cache client, not a
        # root glob — outcome entries live inside shard directories.)
        wiped = ResultCache(cache).clear()
        if check and not wiped:
            raise AssertionError(
                "outcome wipe removed nothing: the stage-warm phase "
                "would measure an all-hit run"
            )
        stage_warm = _sweep(jobs, cache, "stage-warm")

        # Restore the outcome entries, then measure the all-hit run.
        _sweep(jobs, cache, "repopulate")
        outcome_warm = _sweep(jobs, cache, "outcome-warm")

        # Incremental sweep: new corners, warm stage cache.
        incremental = _sweep(extension, cache, "incremental")

    # Batched dispatch: its own heavier workload and stage directory.
    warm_unbatched, warm_batched = _bench_batching()

    # Beam search vs the exhaustive grid.
    search_beam = _bench_search()

    # Verifier cost on the warm miss path.
    verify_overhead = _bench_verify()

    # RTL-lint cost on the same phase.
    rtl_lint_overhead = _bench_lint()

    # Sharded vs single-lock maintenance under a parallel warm sweep.
    cache_contention = _bench_contention()

    def speedup(reference, other):
        return round(reference["elapsed_s"] / max(other["elapsed_s"], 1e-9), 2)

    report = {
        "bench": "dse-stage-cache",
        "source_lines": len(BENCH_SRC.strip().splitlines()),
        "grid": GRID_SPECS,
        "extension_grid": EXTEND_SPECS,
        "shared_stages": shared_stages(grid),
        "cold": cold,
        "stage_warm": stage_warm,
        "outcome_warm": outcome_warm,
        "incremental": incremental,
        "warm_unbatched": warm_unbatched,
        "warm_batched": warm_batched,
        "search_beam": search_beam,
        "verify_overhead": verify_overhead,
        "rtl_lint_overhead": rtl_lint_overhead,
        "cache_contention": cache_contention,
        "overhead_reduction_batched": round(
            warm_unbatched["dispatch_overhead_per_corner_s"]
            / max(warm_batched["dispatch_overhead_per_corner_s"], 1e-9),
            2,
        ),
        "speedup_outcome_warm_vs_cold": speedup(cold, outcome_warm),
        "speedup_stage_warm_vs_cold": speedup(cold, stage_warm),
        "speedup_incremental_transform": None,
    }
    cold_transform = cold["stage_totals"].get("transform", {})
    incr_transform = incremental["stage_totals"].get("transform", {})
    if cold_transform and incr_transform:
        report["speedup_incremental_transform"] = round(
            max(cold_transform["elapsed_s"], 1e-9)
            / max(incr_transform["elapsed_s"], 1e-9),
            2,
        )

    if check:
        # The stage-cache smoke contract (CI): same grid twice is all
        # outcome hits...
        assert outcome_warm["cache_hits"] == outcome_warm["points"], (
            f"expected 100% outcome hits on the warm re-run, got "
            f"{outcome_warm['cache_hits']}/{outcome_warm['points']}"
        )
        assert outcome_warm["executed"] == 0
        # ...the cold sweep transforms exactly once (one shared
        # transform prefix across the whole grid)...
        assert cold_transform.get("runs") == 1, (
            f"cold sweep should transform once, got {cold_transform}"
        )
        # ...and both re-execution paths serve transform work entirely
        # from stage artifacts: ~100% transform-stage hits.
        for phase in (stage_warm, incremental):
            totals = phase["stage_totals"].get("transform", {})
            assert totals.get("runs", 0) == 0 and totals.get("hits", 0) == (
                phase["executed"]
            ), f"{phase['label']}: expected all-hit transform, got {totals}"
        assert report["speedup_outcome_warm_vs_cold"] >= 1.0
        # Batched dispatch must measurably amortize the shared
        # transform-snapshot reload (the committed baseline tracks the
        # full >=2x headline; CI machines get a noise margin).
        assert report["overhead_reduction_batched"] >= 1.5, (
            f"batched dispatch overhead reduction fell to "
            f"{report['overhead_reduction_batched']}x (warm-unbatched "
            f"{warm_unbatched['dispatch_overhead_per_corner_s']}s vs "
            f"warm-batched "
            f"{warm_batched['dispatch_overhead_per_corner_s']}s per corner)"
        )
        # The adaptive-search acceptance bar: the seeded beam reaches
        # within 5% of the exhaustive optimum while settling at most
        # 40% of the grid's corners.  Both quantities are seeded and
        # deterministic — any drift is a code change, not noise.
        assert search_beam["latency_ratio"] <= 1.05, (
            f"beam search missed the exhaustive optimum: "
            f"{search_beam['best_latency_beam']} vs "
            f"{search_beam['best_latency_grid']} "
            f"({search_beam['latency_ratio']}x)"
        )
        assert search_beam["evaluated_fraction"] <= SEARCH_BUDGET_FRACTION, (
            f"beam search settled {search_beam['evaluated_fraction']:.0%} "
            f"of the grid (cap {SEARCH_BUDGET_FRACTION:.0%})"
        )
        # The verifier budget: --verify-each must stay a cheap
        # always-on option on the warm sweep phase.
        assert (
            verify_overhead["verify_overhead_ratio"] <= VERIFY_OVERHEAD_MAX
        ), (
            f"--verify-each added "
            f"{(verify_overhead['verify_overhead_ratio'] - 1) * 100:.1f}% "
            f"to the warm sweep (budget "
            f"{(VERIFY_OVERHEAD_MAX - 1) * 100:.0f}%): "
            f"{verify_overhead['verified_elapsed_s']}s vs "
            f"{verify_overhead['plain_elapsed_s']}s"
        )
        # The RTL-lint budget: the emit-stage linter must stay cheap
        # enough to arm on every sweep.
        assert (
            rtl_lint_overhead["rtl_lint_overhead_ratio"] <= LINT_OVERHEAD_MAX
        ), (
            f"the RTL linter added "
            f"{(rtl_lint_overhead['rtl_lint_overhead_ratio'] - 1) * 100:.1f}% "
            f"to the warm sweep (budget "
            f"{(LINT_OVERHEAD_MAX - 1) * 100:.0f}%): "
            f"{rtl_lint_overhead['linted_elapsed_s']}s vs "
            f"{rtl_lint_overhead['plain_elapsed_s']}s"
        )
        # Sharded locking must beat (or at worst match) the single
        # lock it replaced; when both sides are effectively
        # uncontended, the ratio carries no signal and the gate
        # passes.
        assert (
            cache_contention["lock_wait_ratio"] <= CONTENTION_RATIO_MAX
            or cache_contention["sharded"]["lock_wait_s"]
            <= CONTENTION_WAIT_FLOOR_S
        ), (
            f"sharded maintenance locking waited longer than the "
            f"single-lock baseline: "
            f"{cache_contention['sharded']['lock_wait_s']}s vs "
            f"{cache_contention['flat']['lock_wait_s']}s "
            f"({cache_contention['lock_wait_ratio']}x, cap "
            f"{CONTENTION_RATIO_MAX}x)"
        )
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        default="BENCH_dse.json",
        metavar="PATH",
        help="where to write the JSON report (default: ./BENCH_dse.json)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="assert the stage-cache smoke expectations (CI mode)",
    )
    args = parser.parse_args(argv)
    report = run_bench(check=args.check)
    Path(args.output).write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(
        f"cold {report['cold']['elapsed_s']:.3f}s | stage-warm "
        f"{report['stage_warm']['elapsed_s']:.3f}s | outcome-warm "
        f"{report['outcome_warm']['elapsed_s']:.3f}s | incremental "
        f"{report['incremental']['elapsed_s']:.3f}s"
    )
    print(
        f"speedups: outcome-warm {report['speedup_outcome_warm_vs_cold']}x, "
        f"stage-warm {report['speedup_stage_warm_vs_cold']}x vs cold"
    )
    print(
        f"dispatch overhead/corner: unbatched "
        f"{report['warm_unbatched']['dispatch_overhead_per_corner_s'] * 1e3:.3f}ms"
        f" | batched(x{BATCH_SIZE}) "
        f"{report['warm_batched']['dispatch_overhead_per_corner_s'] * 1e3:.3f}ms"
        f" | reduction {report['overhead_reduction_batched']}x"
    )
    search = report["search_beam"]
    print(
        f"search: beam {search['best_latency_beam']} vs grid "
        f"{search['best_latency_grid']} "
        f"(ratio {search['latency_ratio']}x) on "
        f"{search['evaluated_fraction']:.0%} of {search['grid_points']} "
        f"corners"
    )
    verify = report["verify_overhead"]
    print(
        f"verify overhead: {verify['verified_elapsed_s']:.3f}s verified vs "
        f"{verify['plain_elapsed_s']:.3f}s plain on the warm sweep "
        f"({verify['verify_overhead_ratio']}x, budget "
        f"{VERIFY_OVERHEAD_MAX}x)"
    )
    lint = report["rtl_lint_overhead"]
    print(
        f"rtl lint overhead: {lint['linted_elapsed_s']:.3f}s linted vs "
        f"{lint['plain_elapsed_s']:.3f}s plain on the warm sweep "
        f"({lint['rtl_lint_overhead_ratio']}x, budget "
        f"{LINT_OVERHEAD_MAX}x)"
    )
    contention = report["cache_contention"]
    print(
        f"cache contention ({contention['workers']} workers): sharded "
        f"{contention['sharded']['lock_wait_s']:.3f}s lock wait vs flat "
        f"{contention['flat']['lock_wait_s']:.3f}s "
        f"(ratio {contention['lock_wait_ratio']}x, cap "
        f"{CONTENTION_RATIO_MAX}x)"
    )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
