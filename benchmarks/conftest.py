"""Shared sources and helpers for the per-figure benchmark harness.

Every benchmark file regenerates one figure of the paper (DESIGN.md
section 3 maps figure -> file).  The benchmarks measure wall-clock of
the implementing transformation/flow via pytest-benchmark *and* assert
the shape results the paper reports (operation counts, trail counts,
cycle counts, who-wins comparisons).  Absolute timings are ours, the
shapes are the paper's.

The generic IR helpers and the :class:`FigureReport` table live in
:mod:`tests.helpers` (shared with the test-suite conftest); they are
re-exported here so benchmark modules keep importing from
``benchmarks.conftest``.
"""

from __future__ import annotations

from typing import Dict

from tests.helpers import (  # noqa: F401  (re-exported for benchmarks)
    FigureReport,
    block_containing,
    find_writer,
    fresh_design,
    total_ops,
)


# --------------------------------------------------------------------------
# Paper code figures as behavioral sources
# --------------------------------------------------------------------------

def fig2_loop_source(n: int) -> str:
    """Fig 2(a): a loop whose body computes r1(i) = Op1(i) then
    r2(i) = Op2(i, r1(i)).  ``Op1``/``Op2`` are pure externals."""
    return f"""
    int r1[{n + 2}];
    int r2[{n + 2}];
    int i;
    for (i = 0; i < {n}; i++) {{
      r1[i] = Op1(i);
      r2[i] = Op2(i, r1[i]);
    }}
    """


def fig2_externals() -> Dict[str, object]:
    """Deterministic pure bindings for Op1/Op2."""
    return {
        "Op1": lambda i: (3 * i + 7) & 0xFF,
        "Op2": lambda i, r: (r + i * i) & 0xFF,
    }


FIG4_SOURCE = """
int t1; int t2; int t3; int f;
t1 = a + b;
if (cond) {
  t2 = t1;
  t3 = c + d;
} else {
  t2 = e;
  t3 = c - d;
}
f = t2 + t3;
"""

FIG5_SOURCE = """
int o1; int o2;
if (cond1) {
  if (cond2) { o1 = a; } else { o1 = b; }
} else { o1 = c; }
o2 = o1 + d;
"""

FIG6_SOURCE = """
int o1; int o2;
if (cond) {
  o1 = a + b;
} else {
  o1 = d;
}
o2 = o1 + e;
"""

FIG7_SOURCE = """
int o1; int o2;
o1 = p;
if (cond) {
  o1 = d;
}
o2 = o1 + b;
"""
