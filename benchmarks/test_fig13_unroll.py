"""Fig 13 — the decode loop unrolled fully.

Paper: "Next, the loop is fully unrolled ... However, the
parallelization transformations are still limited due to a dependency
that still exists between the operations and the loop index variable
i."

The bench unrolls for a sweep of buffer sizes and measures code growth
(linear in n — the paper's "loop unrolling can lead to code
explosion") and the index dependency Fig 14 will remove.
"""

from __future__ import annotations

import random

import pytest

from repro.ild import GoldenILD, ILDPipeline, ild_externals, random_buffer
from repro.interp import run_design
from repro.ir.htg import LoopNode

from benchmarks.conftest import FigureReport


def run_through_fig13(n: int) -> ILDPipeline:
    pipeline = ILDPipeline(n=n)
    pipeline.stage_fig11_speculation()
    pipeline.stage_fig12_inline()
    pipeline.stage_fig13_unroll()
    return pipeline


def loops_left(pipeline: ILDPipeline) -> int:
    return sum(
        1
        for func in pipeline.design.functions.values()
        for node in func.walk_nodes()
        if isinstance(node, LoopNode)
    )


def index_reads(pipeline: ILDPipeline) -> int:
    return sum(
        1
        for op in pipeline.design.main.walk_operations()
        if "i" in op.reads()
    )


@pytest.mark.parametrize("n", [4, 8, 16])
def test_full_unroll(benchmark, n):
    pipeline = benchmark(run_through_fig13, n)
    assert loops_left(pipeline) == 0
    # The index dependency the paper calls out is still there.
    assert index_reads(pipeline) > 0


def test_code_growth_linear_in_n():
    sizes = {}
    for n in (4, 8, 16):
        pipeline = run_through_fig13(n)
        sizes[n] = pipeline.stages[-1].ops
    growth_8 = sizes[8] / sizes[4]
    growth_16 = sizes[16] / sizes[8]
    # Doubling n roughly doubles the op count.
    assert 1.6 < growth_8 < 2.6
    assert 1.6 < growth_16 < 2.6


@pytest.mark.parametrize("n", [4, 8])
def test_equivalence_after_unroll(n):
    rng = random.Random(n)
    pipeline = run_through_fig13(n)
    golden = GoldenILD(n=n)
    for _ in range(10):
        buffer = random_buffer(n, rng=rng)
        state = run_design(
            pipeline.design,
            externals=ild_externals(n),
            array_inputs={"Buffer": list(buffer)},
        )
        mark, _, _ = golden.decode(buffer)
        assert state.arrays["Mark"][1 : n + 1] == mark[1 : n + 1]


def test_fig13_report():
    report = FigureReport("Fig 13: decode loop fully unrolled")
    report.row(f"{'n':>4} {'ops':>6} {'loops':>6} {'i-reads':>8}")
    for n in (4, 8, 16):
        pipeline = run_through_fig13(n)
        report.row(
            f"{n:>4} {pipeline.stages[-1].ops:>6} "
            f"{loops_left(pipeline):>6} {index_reads(pipeline):>8}"
        )
    report.emit()
