"""Fig 7 — wire-variable insertion when only one branch writes.

Paper: ``o1`` is written only in the true branch, so to chain, "a
variable copy to wire-variable t1 has to be inserted in both branches
of the conditional block" — the else branch forwards the *previous*
value of o1.

The bench checks copies appear on every chaining trail (including the
write-free else trail) and that the semantics — reader sees the old
value when the condition is false — survive synthesis.
"""

from __future__ import annotations

import pytest

from repro import DesignInterface, SparkSession, SynthesisScript
from repro.interp import run_design
from repro.ir.builder import design_from_source
from repro.ir.htg import IfNode
from repro.transforms.chaining import WireVariableInserter

from benchmarks.conftest import FIG7_SOURCE, FigureReport, total_ops


def insert_wires():
    design = design_from_source(FIG7_SOURCE)
    WireVariableInserter().run_on_function(design.main, design)
    return design


def branch_copy_counts(design):
    """Wire copies in (then, else) branches of the conditional."""
    if_node = next(
        node for node in design.main.walk_nodes() if isinstance(node, IfNode)
    )

    def copies(branch):
        from repro.ir.htg import BlockNode

        count = 0
        for node in branch:
            if isinstance(node, BlockNode):
                count += sum(1 for op in node.ops if op.is_wire_copy)
        return count

    return copies(if_node.then_branch), copies(if_node.else_branch)


def test_wire_written_on_every_trail(benchmark):
    """Section 3.1.2's requirement: "writes to wire-variables have to
    be inserted in all the trails leading back from the chained
    operation."  The paper's Fig 7(b) adds a copy in the empty else
    branch; this implementation threads the previous value through the
    wire *above* the conditional — the same mux structure — so the
    check is the trail invariant itself: every trail to the reader
    carries a write to the wire."""
    design = benchmark(insert_wires)
    wire = next(iter(design.main.wire_variables))

    from repro.ir.htg import BlockNode
    from repro.transforms.chaining import enumerate_chaining_trails

    reader = next(
        op for op in design.main.walk_operations() if "o2" in op.writes()
    )
    target = next(
        node.block
        for node in design.main.walk_nodes()
        if isinstance(node, BlockNode) and reader in node.ops
    )
    trails = enumerate_chaining_trails(design.main, target)
    assert len(trails) == 2
    for trail in trails:
        assert trail.writes_to(wire), f"no wire write on {trail}"


@pytest.mark.parametrize("cond", [0, 1])
def test_false_path_forwards_previous_value(cond):
    design = insert_wires()
    reference = design_from_source(FIG7_SOURCE)
    inputs = {"cond": cond, "p": 42, "d": 7, "b": 100}
    got = run_design(design, inputs=inputs).scalars["o2"]
    want = run_design(reference, inputs=inputs).scalars["o2"]
    assert got == want
    if not cond:
        assert want == 142  # o1 keeps p's value: 42 + 100


@pytest.mark.parametrize("cond", [0, 1])
def test_single_cycle_rtl(cond):
    script = SynthesisScript(
        enable_speculation=False,
        clock_period=1_000.0,
        output_scalars={"o2"},
    )
    sess = SparkSession(
        FIG7_SOURCE,
        script=script,
        interface=DesignInterface(
            name="fig7",
            scalar_inputs=["cond", "p", "d", "b"],
            scalar_outputs=["o2"],
        ),
    )
    inputs = {"cond": cond, "p": 42, "d": 7, "b": 100}
    expected = sess.interpret(inputs=inputs).scalars["o2"]
    result = sess.run(bind=False, emit=False)
    assert result.state_machine.is_single_cycle()
    rtl = sess.simulate_rtl(result.state_machine, inputs=inputs)
    assert rtl.scalars["o2"] == expected


def test_fig7_report():
    report = FigureReport("Fig 7: wire copies on the write-free trail")
    design = insert_wires()
    then_copies, else_copies = branch_copy_counts(design)
    report.row(f"ops after insertion      : {total_ops(design)}")
    report.row(f"wire variables           : {sorted(design.main.wire_variables)}")
    report.row(f"copies in true branch    : {then_copies}  (paper: op 3)")
    report.row(f"copies in else branch    : {else_copies}  (paper: op 4)")
    report.emit()
