"""Section 6 end-to-end — the whole Fig 10 -> Fig 15 pipeline.

Regenerates the per-stage metrics table (the quantitative skeleton of
the paper's Section 6 walk-through) and validates the final design:
single cycle, RTL equivalent to the golden decoder, VHDL/Verilog
emitted with the wire/register split of footnote 1.
"""

from __future__ import annotations

import random

import pytest

from repro.backend.rtl_sim import RTLSimulator
from repro.backend.vhdl import emit_vhdl
from repro.ild import GoldenILD, ILDPipeline, ild_externals, ild_interface, random_buffer

from benchmarks.conftest import FigureReport


def full_pipeline(n: int):
    pipeline = ILDPipeline(n=n)
    sm = pipeline.run_all()
    return pipeline, sm


@pytest.mark.parametrize("n", [4, 8])
def test_end_to_end(benchmark, n):
    pipeline, sm = benchmark(full_pipeline, n)
    assert sm.is_single_cycle()
    assert len(pipeline.stages) == 7  # Fig 10..15a + wire insertion


@pytest.mark.parametrize("n", [4, 8])
def test_final_rtl_equivalent_to_golden(n):
    pipeline, sm = full_pipeline(n)
    golden = GoldenILD(n=n)
    rng = random.Random(n * 13)
    sim = RTLSimulator(sm, externals=ild_externals(n))
    for _ in range(15):
        buffer = random_buffer(n, rng=rng)
        mark, _, _ = golden.decode(buffer)
        result = sim.run(array_inputs={"Buffer": list(buffer)})
        assert result.cycles == 1
        assert result.arrays["Mark"][1 : n + 1] == mark[1 : n + 1]


def test_stage_metrics_monotonicity():
    """The shape of the Section 6 walk: unrolling explodes the op
    count, constant propagation + DCE then shrink it, speculation
    flattens the conditionals."""
    pipeline, _ = full_pipeline(8)
    by_fig = pipeline.stage_metrics()
    assert by_fig["Fig 13"]["ops"] > by_fig["Fig 12"]["ops"]
    assert by_fig["Fig 14"]["ops"] < by_fig["Fig 13"]["ops"]
    assert by_fig["Fig 13"]["loops"] == 0
    assert by_fig["Fig 15a"]["conditionals"] <= by_fig["Fig 14"]["conditionals"]


def test_vhdl_wire_register_split():
    """Footnote 1: registers map to VHDL signals, wires to VHDL
    variables."""
    pipeline, sm = full_pipeline(4)
    vhdl = emit_vhdl(sm, ild_interface(4))
    assert "signal" in vhdl
    assert "variable" in vhdl
    wires = pipeline.design.main.wire_variables
    assert wires, "the chained design must contain wire-variables"


def test_pipeline_report():
    report = FigureReport("Section 6: Fig 10 -> Fig 15 stage metrics (n=8)")
    pipeline, sm = full_pipeline(8)
    for stage in pipeline.stages:
        report.row(str(stage))
    report.row("")
    report.row(f"final states        : {sm.num_states}")
    report.row(f"final scheduled ops : {sm.total_operations()}")
    report.row(f"critical path       : {sm.max_critical_path():.2f}")
    report.emit()
