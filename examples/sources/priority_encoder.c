int req[9];
int pos; int found; int i;
pos = 0;
found = 0;
for (i = 1; i <= 8; i++) {
  if (found == 0) {
    if (req[i] != 0) {
      pos = i;
      found = 1;
    }
  }
}
