int o1; int o2;
o1 = p;
if (cond) {
  o1 = d;
}
o2 = o1 + b;
