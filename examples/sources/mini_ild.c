int CalculateLength(i) {
  int lc1; int lc2; int Length;
  lc1 = LengthContribution_1(i);
  if (Need_2nd_Byte(i)) {
    lc2 = LengthContribution_2(i + 1);
    Length = lc1 + lc2;
  } else Length = lc1;
  return Length;
}
int Mark[10];
int len[10];
int NextStartByte;
int i;
NextStartByte = 1;
for (i = 1; i <= 8; i++) {
  if (i == NextStartByte) {
    Mark[i] = 1;
    len[i] = CalculateLength(i);
    NextStartByte += len[i];
  }
}
