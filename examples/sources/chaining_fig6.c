int o1; int o2;
if (cond) {
  o1 = a + b;
} else {
  o1 = d;
}
o2 = o1 + e;
