int t1; int t2; int t3; int f;
int a; int b; int c; int d; int e; int cond;
a = 3; b = 4; c = 5; d = 2; e = 9; cond = 1;
t1 = a + b;
if (cond) {
  t2 = t1;
  t3 = c + d;
} else {
  t2 = e;
  t3 = c - d;
}
f = t2 + t3;
