int acc[12];
int i;
int total;
total = 0;
for (i = 0; i < 10; i++) {
  total = total + i;
  acc[i] = total;
}
