int t1; int t2; int t3; int f;
t1 = a + b;
if (cond) {
  t2 = t1;
  t3 = c + d;
} else {
  t2 = e;
  t3 = c - d;
}
f = t2 + t3;
