// Instruction Length Decoder -- behavioral description (paper Fig 10)
int CalculateLength(i) {
  int lc1; int lc2; int lc3; int lc4;
  int Length;
  lc1 = LengthContribution_1(i);
  if (Need_2nd_Byte(i)) {
    lc2 = LengthContribution_2(i + 1);
    if (Need_3rd_Byte(i + 1)) {
      lc3 = LengthContribution_3(i + 2);
      if (Need_4th_Byte(i + 2)) {
        lc4 = LengthContribution_4(i + 3);
        Length = lc1 + lc2 + lc3 + lc4;
      } else Length = lc1 + lc2 + lc3;
    } else Length = lc1 + lc2;
  } else Length = lc1;
  return Length;
}

int Buffer[5];
int Mark[5];
int len[5];
int NextStartByte;
int i;
NextStartByte = 1;
for (i = 1; i <= 4; i++) {
  if (i == NextStartByte) {
    Mark[i] = 1;
    len[i] = CalculateLength(i);
    NextStartByte += len[i];
  }
}
