int o1; int o2;
if (cond1) {
  if (cond2) { o1 = a; } else { o1 = b; }
} else { o1 = c; }
o2 = o1 + d;
