int helper(x, y) {
  int r;
  if (x > y) {
    r = x - y;
  } else {
    r = y - x;
  }
  return r;
}
int out;
int p; int q;
p = 10; q = 4;
out = helper(p, q) + helper(q, p);
