#!/usr/bin/env python3
"""Quickstart: behavioral C in, single-cycle RTL out.

Synthesizes the paper's Fig 4 fragment — an if-then-else whose
operations must chain across the conditional boundary to fit in one
cycle — and prints every artifact of the flow: the transformed code,
the schedule, the binding, the area/timing estimates and the VHDL.

Run:  python examples/quickstart.py
"""

from repro import DesignInterface, SparkSession, SynthesisScript

SOURCE = """
int t1; int t2; int t3; int f;
t1 = a + b;
if (cond) {
  t2 = t1;
  t3 = c + d;
} else {
  t2 = e;
  t3 = c - d;
}
f = t2 + t3;
"""


def main() -> None:
    script = SynthesisScript(
        enable_speculation=False,   # keep the if: we chain across it
        clock_period=1_000.0,       # generous clock -> single cycle
        output_scalars={"f"},
    )
    session = SparkSession(
        SOURCE,
        script=script,
        interface=DesignInterface(
            name="quickstart",
            scalar_inputs=["a", "b", "c", "d", "e", "cond"],
            scalar_outputs=["f"],
        ),
    )

    print("== input behavior ==")
    print(session.print_code())

    result = session.run()

    print("== synthesis summary ==")
    print(result.summary())
    print()

    # Validate: RTL simulation against the behavioral interpreter.
    inputs = {"a": 3, "b": 4, "c": 5, "d": 2, "e": 9, "cond": 1}
    expected = session.interpret(inputs=inputs).scalars["f"]
    rtl = session.simulate_rtl(result.state_machine, inputs=inputs)
    print(f"behavioral f = {expected}, RTL f = {rtl.scalars['f']}, "
          f"cycles = {rtl.cycles}")
    assert rtl.scalars["f"] == expected

    print()
    print("== generated VHDL ==")
    print(result.vhdl)


if __name__ == "__main__":
    main()
