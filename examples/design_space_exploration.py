#!/usr/bin/env python3
"""Design-space exploration with the parallel sweep engine.

Paper Section 4: "The rich set of tunable transformations in Spark
enable the system to aid in exploration of several alternative
designs ... the designer may specify which loops to unroll and by how
much."

The first version of this example swept four hand-written scripts
serially.  This version drives the ``repro.dse`` engine instead: a
12-point grid (preset x clock x unroll) over the ILD description is
expanded into picklable jobs, *streamed* through a process pool (each
point prints the moment it settles, not at an end-of-sweep barrier),
validated against the golden decoder, memoized on disk, and ranked
into the paper's latency/area trade-off table — plus the Pareto
frontier the designer actually chooses from.  Run it twice to see the
cache short-circuit the whole sweep.

Run:  python examples/design_space_exploration.py
"""

import random
import tempfile

from repro import SparkSession, SynthesisScript
from repro.dse import (
    ExplorationEngine,
    ParameterGrid,
    format_frontier,
    format_table,
    jobs_from_grid,
    summarize,
)
from repro.ild import GoldenILD, build_ild_source, ild_externals, random_buffer

N = 4
WORKERS = 4


def build_grid() -> ParameterGrid:
    """preset x clock x unroll: the uP corner, ASIC corners, hybrids."""
    return ParameterGrid(
        [
            ("preset", ["up", "asic"]),
            ("clock", [4.0, 8.0, 1000.0]),
            ("unroll", [{}, {"*": 2}]),
        ]
    )


def main() -> None:
    source = build_ild_source(N)
    pure = set(ild_externals(N))
    rng = random.Random(42)
    buffer = list(random_buffer(N, rng=rng))

    # The stimulus lets every job measure real cycle counts through the
    # RTL simulator; the engine also cross-checks nothing silently
    # broke, since infeasible corners come back ok=False.
    jobs = jobs_from_grid(
        source,
        build_grid(),
        base_script=SynthesisScript(pure_functions=pure),
        entity="ild",
        environment="repro.ild:ild_environment",
        environment_args=(N,),
        array_inputs={"Buffer": buffer},
        measure=True,
    )
    print(f"exploring {len(jobs)} design points "
          f"({WORKERS} workers, cache under the system temp dir)\n")

    cache_dir = tempfile.gettempdir() + "/repro-dse-example-cache"
    engine = ExplorationEngine(cache_dir=cache_dir, workers=WORKERS)

    def stream(outcome):
        status = (
            f"{outcome.cycles} cycles @ clk {outcome.clock_period:g}"
            if outcome.ok
            else "infeasible"
        )
        print(f"  [{outcome.provenance:>6}] {outcome.label}: {status}")

    result = engine.explore(jobs, on_outcome=stream)

    print()
    print(format_table(result.outcomes))
    print()
    print(format_frontier(result.frontier))
    print()
    print(summarize(result))

    # Validate the winner against the golden (software) decoder: re-run
    # its job in-process and compare the decoded Mark vector.
    best = result.best()
    assert best is not None, "every corner failed to synthesize"
    best_job = next(job for job in jobs if job.label == best.label)
    session = SparkSession.from_job(best_job)
    rtl = session.simulate_rtl(
        session.run(bind=False, emit=False).state_machine,
        array_inputs={"Buffer": buffer},
    )
    golden_mark, _, _ = GoldenILD(n=N).decode(buffer)
    assert rtl.arrays["Mark"][1: N + 1] == golden_mark[1: N + 1], (
        "best point miscompiled the decode"
    )
    assert rtl.cycles == best.measured_cycles
    print(f"\nbest point: {best.label} (golden-validated)")
    print(f"  {best.cycles} cycle(s) at clock {best.clock_period:.0f} "
          f"-> latency {best.latency:.1f}, area {best.area_total:.0f}")

    # The designer loop with a stopping rule: once any corner meets the
    # latency target, the rest of the sweep is redundant and is skipped
    # (here it answers from the cache the exhaustive sweep just filled).
    targeted = engine.explore(jobs, target_latency=best.latency)
    print(f"\nwith --target-latency {best.latency:g}: "
          f"{targeted.executed} synthesized, {targeted.cache_hits} recalled, "
          f"{targeted.skipped} skipped (goal met: {targeted.goal_met})")

    print("\nThe paper's trade, quantified: the uP corner packs the whole")
    print("decode into one (long) cycle by spending functional units;")
    print("the ASIC corners re-use bounded ALUs across many short cycles.")
    print("Run this example again: the sweep returns from cache.")
    print("Maintain the shared cache with: python -m repro cache stats|gc")


if __name__ == "__main__":
    main()
