#!/usr/bin/env python3
"""Design-space exploration with scripted transformations.

Paper Section 4: "The rich set of tunable transformations in Spark
enable the system to aid in exploration of several alternative
designs ... the designer may specify which loops to unroll and by how
much."

This example synthesizes the same ILD description under a grid of
scripts — unroll factor x clock period x resource regime — and prints
the resulting latency/area trade-off table: the µP corner (unlimited,
fully unrolled, one long cycle) versus ASIC corners (bounded ALUs,
rolled or partially unrolled loops, short cycles).

Run:  python examples/design_space_exploration.py
"""

import random

from repro import SparkSession, SynthesisScript
from repro.ild import (
    GoldenILD,
    build_ild_source,
    ild_externals,
    ild_interface,
    ild_library,
    random_buffer,
)

N = 4


def synthesize(name: str, script: SynthesisScript):
    session = SparkSession(
        build_ild_source(N),
        script=script,
        library=ild_library(),
        interface=ild_interface(N),
        externals=ild_externals(N),
    )
    result = session.run()

    # Measure actual latency on a random buffer, and validate.
    rng = random.Random(42)
    buffer = random_buffer(N, rng=rng)
    golden_mark, _, _ = GoldenILD(n=N).decode(buffer)
    rtl = session.simulate_rtl(
        result.state_machine, array_inputs={"Buffer": list(buffer)}
    )
    assert rtl.arrays["Mark"][1: N + 1] == golden_mark[1: N + 1]

    return {
        "name": name,
        "states": result.state_machine.num_states,
        "cycles": rtl.cycles,
        "clock": script.clock_period,
        "fus": result.fu_binding.total_instances(),
        "regs": result.register_binding.register_count,
        "area": result.area.total,
        "cp": result.state_machine.max_critical_path(),
    }


def main() -> None:
    pure = set(ild_externals(N))

    design_points = [
        synthesize(
            "uP block (full unroll, unlimited)",
            SynthesisScript.microprocessor_block(pure_functions=pure),
        ),
        synthesize(
            "ASIC (rolled, 2 ALUs, clk=4)",
            _asic(clock=4.0, pure=pure),
        ),
        synthesize(
            "ASIC (rolled, 2 ALUs, clk=6)",
            _asic(clock=6.0, pure=pure),
        ),
        synthesize(
            "hybrid (unroll x2, unlimited, clk=8)",
            SynthesisScript(
                unroll_loops={"*": 2},
                inline_functions=["*"],
                enable_speculation=True,
                enable_cse=True,
                pure_functions=pure,
                clock_period=8.0,
            ),
        ),
    ]

    header = (
        f"{'design point':<38} {'states':>6} {'cycles':>7} {'clk':>6} "
        f"{'FUs':>4} {'regs':>5} {'area':>7} {'crit.path':>10}"
    )
    print(header)
    print("-" * len(header))
    for point in design_points:
        print(
            f"{point['name']:<38} {point['states']:>6} {point['cycles']:>7} "
            f"{point['clock']:>6.0f} {point['fus']:>4} {point['regs']:>5} "
            f"{point['area']:>7.0f} {point['cp']:>10.2f}"
        )

    print()
    print("The paper's trade, quantified: the uP corner packs the whole")
    print("decode into one (long) cycle by spending functional units;")
    print("the ASIC corners re-use 2 ALUs across many short cycles.")


def _asic(clock: float, pure) -> SynthesisScript:
    script = SynthesisScript.asic(clock_period=clock)
    script.pure_functions = set(pure)
    return script


if __name__ == "__main__":
    main()
