#!/usr/bin/env python3
"""A second microprocessor functional block: a priority encoder.

The paper's conclusion argues that "similar, short behavioral
descriptions can be used to describe several such low latency
functional blocks in microprocessors."  This example applies the same
coordinated transformations to a find-first-set (priority encoder)
block — the kind of ripple structure that appears in schedulers,
allocators and the ILD's own instruction-marking chain:

* behavioral description: a loop scanning an 8-bit request vector;
* transformations: full unroll + constant propagation + speculation;
* result: a single-cycle encoder, validated exhaustively against all
  256 request vectors.

Run:  python examples/priority_encoder.py
"""

from repro import DesignInterface, SparkSession, SynthesisScript

WIDTH = 8

SOURCE = f"""
int req[{WIDTH + 1}];
int pos; int found; int i;
pos = 0;
found = 0;
for (i = 1; i <= {WIDTH}; i++) {{
  if (found == 0) {{
    if (req[i] != 0) {{
      pos = i;
      found = 1;
    }}
  }}
}}
"""


def make_session() -> SparkSession:
    return SparkSession(
        SOURCE,
        script=SynthesisScript.microprocessor_block(),
        interface=DesignInterface(
            name="priority_encoder",
            input_arrays={"req": WIDTH + 1},
            scalar_outputs=["pos", "found"],
        ),
    )


def reference(vector: int) -> tuple:
    """First set bit, scanning positions 1..WIDTH (LSB-first)."""
    for position in range(1, WIDTH + 1):
        if (vector >> (position - 1)) & 1:
            return position, 1
    return 0, 0


def main() -> None:
    session = make_session()
    print("== behavioral description ==")
    print(session.print_code())

    result = session.run()
    print("== synthesis summary ==")
    print(result.summary())
    assert result.state_machine.is_single_cycle()

    print()
    print("== exhaustive validation: all 256 request vectors ==")
    for vector in range(2 ** WIDTH):
        req = [0] + [(vector >> (k - 1)) & 1 for k in range(1, WIDTH + 1)]
        rtl = session.simulate_rtl(
            result.state_machine, array_inputs={"req": req}
        )
        want_pos, want_found = reference(vector)
        assert rtl.scalars["pos"] == want_pos, (vector, rtl.scalars)
        assert rtl.scalars["found"] == want_found
        assert rtl.cycles == 1
    print("256/256 vectors correct, single cycle each")

    print()
    print("== same block under the ASIC regime ==")
    asic = SparkSession(
        SOURCE,
        script=SynthesisScript.asic(clock_period=3.0),
        interface=DesignInterface(
            name="priority_encoder_asic",
            input_arrays={"req": WIDTH + 1},
            scalar_outputs=["pos", "found"],
        ),
    )
    asic_result = asic.run()
    req = [0] + [0, 0, 0, 1, 0, 0, 0, 0]
    rtl = asic.simulate_rtl(
        asic_result.state_machine, array_inputs={"req": req}
    )
    print(f"ASIC: {asic_result.state_machine.num_states} states, "
          f"{rtl.cycles} cycles for req bit 4 "
          f"(vs 1 cycle single-state uP block)")


if __name__ == "__main__":
    main()
