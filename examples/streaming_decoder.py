#!/usr/bin/env python3
"""The un-simplified ILD: decoding an instruction *stream* in chunks.

The paper's Section 5 notes the model it walks through is simplified,
and that the real decoder must (a) run an infinite outer loop broken
into chunks of n bytes, and (b) save intermediate length-calculation
information across buffer decodes "and passed to the next cycle."

This example decodes a pseudo-random 64-byte stream with an 8-byte
chunk decoder, printing the carry registers between cycles: `skip`
(bytes of the next chunk consumed by an instruction that already
decided its length) and the pending length walk (contributions
accumulated so far when the length-determining bytes straddle the
boundary).  The chunked marks are then checked against decoding the
whole stream at once.

Run:  python examples/streaming_decoder.py
"""

import random

from repro.ild import StreamingILD, flat_reference_marks
from repro.ild.isa import STREAMING_ISA


def main() -> None:
    rng = random.Random(2002)
    stream = [rng.randrange(256) for _ in range(64)]
    n = 8
    decoder = StreamingILD(n=n)

    print(f"stream ({len(stream)} bytes), chunk size {n}")
    print()
    marks, final_carry, chunks = decoder.decode_stream(stream)

    for cycle, chunk_result in enumerate(chunks):
        base = cycle * n
        chunk_bytes = stream[base : base + n]
        mark_bits = "".join(str(b) for b in chunk_result.mark[1:])
        carry = chunk_result.carry_out
        if carry.walk_pending:
            carry_text = (
                f"pending walk: contributions={carry.walk_contributions} "
                f"next byte k={carry.walk_next_k} "
                f"(instruction started at byte {carry.walk_start_global})"
            )
        elif carry.skip:
            carry_text = f"skip {carry.skip} byte(s) of the next chunk"
        else:
            carry_text = "idle (next chunk starts on a boundary)"
        print(f"cycle {cycle:>2}: bytes={[f'{b:02x}' for b in chunk_bytes]}")
        print(f"          marks={mark_bits}   carry-out: {carry_text}")

    print()
    reference = flat_reference_marks(stream, isa=STREAMING_ISA)
    assert marks == reference
    starts = [i for i in range(1, len(stream) + 1) if marks[i]]
    print(f"chunked decode == whole-stream decode: {len(starts)} "
          f"instructions at {starts}")


if __name__ == "__main__":
    main()
