#!/usr/bin/env python3
"""The paper's Section 6 walk-through, regenerated.

Takes the Instruction Length Decoder from its behavioral description
(Fig 10) through every coordinated transformation — speculation
(Fig 11), inlining (Fig 12), full loop unrolling (Fig 13), constant
propagation of the loop index (Fig 14), a second parallelization round
(Fig 15a), wire-variable insertion (§3.1.2) — to the single-cycle
schedule of Fig 15(b), printing the code after each stage and the
final stage-metrics table.

Run:  python examples/ild_walkthrough.py [n]
"""

import random
import sys

from repro.backend.rtl_sim import RTLSimulator
from repro.ild import GoldenILD, ILDPipeline, ild_externals, random_buffer


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 4

    pipeline = ILDPipeline(n=n)
    print(f"== Fig 10: behavioral description (n={n}) ==")
    print(pipeline.stages[0].code())

    for stage_fn, figure in [
        (pipeline.stage_fig11_speculation, "Fig 11: speculation"),
        (pipeline.stage_fig12_inline, "Fig 12: inlining"),
        (pipeline.stage_fig13_unroll, "Fig 13: full unroll"),
        (pipeline.stage_fig14_constant_propagation, "Fig 14: const-prop"),
        (pipeline.stage_fig15_parallelize, "Fig 15a: maximally parallel"),
        (pipeline.insert_wires, "3.1.2: wire-variables"),
    ]:
        stage = stage_fn()
        print(f"== {figure} ==")
        print(stage.code())

    sm = pipeline.schedule_single_cycle()
    print("== stage metrics (the Section 6 table) ==")
    print(pipeline.stage_table())
    print()
    print(f"final schedule: {sm.num_states} state(s), "
          f"{sm.total_operations()} ops, "
          f"critical path {sm.max_critical_path():.1f}")
    assert sm.is_single_cycle()

    # Cross-check the synthesized single-cycle design on random streams.
    golden = GoldenILD(n=n)
    sim = RTLSimulator(sm, externals=ild_externals(n))
    rng = random.Random(0)
    for trial in range(5):
        buffer = random_buffer(n, rng=rng)
        mark, _, _ = golden.decode(buffer)
        result = sim.run(array_inputs={"Buffer": list(buffer)})
        assert result.arrays["Mark"][1: n + 1] == mark[1: n + 1]
        assert result.cycles == 1
        print(f"trial {trial}: buffer={buffer[1:]} -> "
              f"Mark={result.arrays['Mark'][1:]} (1 cycle, matches golden)")


if __name__ == "__main__":
    main()
