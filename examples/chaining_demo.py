#!/usr/bin/env python3
"""Operation chaining across conditional boundaries (paper §3.1).

Walks the three examples of Figures 5, 6 and 7:

* Fig 5 — enumerate the chaining trails leading up from the block of
  a chained operation across nested conditionals;
* Fig 6 — insert a wire-variable and copy operations when *both*
  branches write the chained value;
* Fig 7 — insert wire writes on every trail when only *one* branch
  writes (the false path forwards the previous value).

Run:  python examples/chaining_demo.py
"""

from repro import DesignInterface, SparkSession, SynthesisScript
from repro.ir.builder import design_from_source
from repro.ir.htg import BlockNode
from repro.ir.printer import print_design
from repro.transforms.chaining import (
    WireVariableInserter,
    chaining_sources,
    enumerate_chaining_trails,
)

FIG5 = """
int o1; int o2;
if (cond1) {
  if (cond2) { o1 = a; } else { o1 = b; }
} else { o1 = c; }
o2 = o1 + d;
"""

FIG6 = """
int o1; int o2;
if (cond) {
  o1 = a + b;
} else {
  o1 = d;
}
o2 = o1 + e;
"""

FIG7 = """
int o1; int o2;
o1 = p;
if (cond) {
  o1 = d;
}
o2 = o1 + b;
"""


def reader_block(design, result_var):
    reader = next(
        op
        for op in design.main.walk_operations()
        if result_var in op.writes()
    )
    block = next(
        node.block
        for node in design.main.walk_nodes()
        if isinstance(node, BlockNode) and reader in node.ops
    )
    return reader, block


def fig5_trails() -> None:
    print("== Fig 5: chaining trails across nested conditionals ==")
    design = design_from_source(FIG5)
    reader, block = reader_block(design, "o2")
    trails = enumerate_chaining_trails(design.main, block)
    print(f"operation `o2 = o1 + d` has {len(trails)} trails "
          f"(paper: <BB8,BB7,BB5,BB3,BB2,BB1>, <...BB4...>, <...BB6...>):")
    for trail in trails:
        writers = trail.writes_to("o1")
        print(f"  {trail}  -> o1 written by: "
              f"{', '.join(str(w) for w in writers)}")
    sources = chaining_sources(design.main, reader, "o1")
    assert len(sources) == 3
    print()


def wire_insertion(title: str, source: str) -> None:
    print(f"== {title} ==")
    design = design_from_source(source)
    print("before:")
    print(print_design(design))
    WireVariableInserter().run_on_function(design.main, design)
    print("after wire-variable insertion:")
    print(print_design(design))
    print(f"wire variables: {sorted(design.main.wire_variables)}")
    copies = [op for op in design.main.walk_operations() if op.is_wire_copy]
    print(f"copy operations inserted: {len(copies)}")
    print()


def single_cycle_hardware() -> None:
    """Fig 6(c): t1 becomes a wire, o1/o2 registers; one cycle."""
    print("== Fig 6(c): synthesized single-cycle hardware ==")
    session = SparkSession(
        FIG6,
        script=SynthesisScript(
            enable_speculation=False,
            clock_period=1_000.0,
            output_scalars={"o1", "o2"},
        ),
        interface=DesignInterface(
            name="fig6",
            scalar_inputs=["cond", "a", "b", "d", "e"],
            scalar_outputs=["o1", "o2"],
        ),
    )
    result = session.run()
    print(result.summary())
    wires = result.design.main.wire_variables
    registers = set(result.register_binding.assignment)
    print(f"wires     : {sorted(wires)}")
    print(f"registers : {sorted(registers)}")
    assert not (wires & registers)
    for cond in (0, 1):
        inputs = {"cond": cond, "a": 2, "b": 3, "d": 11, "e": 5}
        rtl = session.simulate_rtl(result.state_machine, inputs=inputs)
        print(f"cond={cond}: o2={rtl.scalars['o2']} in {rtl.cycles} cycle")


def main() -> None:
    fig5_trails()
    wire_insertion("Fig 6: both branches write o1", FIG6)
    wire_insertion("Fig 7: only the true branch writes o1", FIG7)
    single_cycle_hardware()


if __name__ == "__main__":
    main()
