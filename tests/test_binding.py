"""Unit tests for lifetime analysis, register binding and FU binding."""

import pytest

from repro.binding.fu_binding import bind_functional_units
from repro.binding.lifetimes import LifetimeAnalysis
from repro.binding.register_binding import bind_registers
from repro.ir.builder import design_from_source
from repro.scheduler.list_scheduler import ChainingScheduler
from repro.scheduler.resources import ResourceAllocation, ResourceLibrary
from repro.transforms.chaining import WireVariableInserter


LIB = ResourceLibrary()


def schedule(source, clock=10.0, limits=None, wires=False):
    design = design_from_source(source)
    if wires:
        WireVariableInserter().run_on_design(design)
    scheduler = ChainingScheduler(
        library=LIB,
        clock_period=clock,
        allocation=ResourceAllocation(limits=limits or {}),
    )
    return scheduler.schedule(design.main), design


class TestLifetimes:
    def test_single_cycle_needs_no_registers(self):
        sm, _ = schedule("int out[1]; int a; a = x + 1; out[0] = a;")
        analysis = LifetimeAnalysis(sm)
        # x is an input read at cycle start: it is live-in of S0.
        regs = analysis.registers()
        assert "a" not in regs

    def test_cross_cycle_value_needs_register(self):
        sm, _ = schedule(
            "int out[1]; int a; int b; a = x + 1; b = a + 2; out[0] = b;",
            clock=1.5,
        )
        assert sm.num_states >= 2
        regs = LifetimeAnalysis(sm).registers()
        assert "a" in regs

    def test_boundary_live_outputs_registered(self):
        sm, _ = schedule("int r; r = x + 1;")
        analysis = LifetimeAnalysis(sm, boundary_live={"r"})
        # r is written in the only state and observable after halt: it
        # appears in the halting state's live-out via the boundary.
        assert analysis.info[sm.entry_state].live_out >= set()

    def test_loop_carried_variable_registered(self):
        sm, _ = schedule(
            "int out[1]; int i; int s; s = 0;"
            "for (i = 0; i < 4; i++) { s = s + i; }"
            "out[0] = s;"
        )
        regs = LifetimeAnalysis(sm).registers()
        assert "s" in regs
        assert "i" in regs

    def test_wire_variables_never_registered(self):
        sm, design = schedule(
            "int out[1]; int a; a = x + 1; out[0] = a;", wires=True
        )
        assert design.main.wire_variables
        regs = LifetimeAnalysis(sm).registers()
        assert not (regs & design.main.wire_variables)

    def test_lifetime_states_reported(self):
        sm, _ = schedule(
            "int out[1]; int a; int b; a = x + 1; b = a + 2; out[0] = b;",
            clock=1.5,
        )
        analysis = LifetimeAnalysis(sm)
        states = analysis.lifetime_states("a")
        assert states, "a crosses a boundary so it is live somewhere"


class TestRegisterBinding:
    def test_disjoint_lifetimes_share_register(self):
        # a dies (last read) before c is born: they can share.
        sm, _ = schedule(
            "int out[2]; int a; int c;"
            "a = x + 1; out[0] = a + 1;"
            "c = y + 2; out[1] = c + 1;",
            clock=1.9,
        )
        binding = bind_registers(sm)
        assert "a" in binding.assignment and "c" in binding.assignment
        assert binding.shares("a", "c")

    def test_overlapping_lifetimes_get_distinct_registers(self):
        # a and b are produced in cycle 1 and consumed together in
        # cycle 2: both live at the boundary, so they cannot share.
        sm, _ = schedule(
            "int out[1]; int a; int b;"
            "a = x + 1; b = y + 2;"
            "out[0] = a + b;",
            clock=1.9,
        )
        assert sm.num_states == 2
        binding = bind_registers(sm)
        assert "a" in binding.assignment and "b" in binding.assignment
        assert not binding.shares("a", "b")

    def test_register_count_bounded_by_variables(self):
        sm, _ = schedule(
            "int out[1]; int a; int b; int c;"
            "a = x + 1; b = a + 1; c = b + 1; out[0] = c;",
            clock=1.0,
        )
        binding = bind_registers(sm)
        assert binding.register_count <= 3

    def test_groups_consistent_with_assignment(self):
        sm, _ = schedule(
            "int out[1]; int a; int b; a = x + 1; b = a + 2; out[0] = b;",
            clock=1.5,
        )
        binding = bind_registers(sm)
        for reg_index, group in enumerate(binding.groups):
            for var in group:
                assert binding.assignment[var] == reg_index

    def test_single_cycle_design_only_input_registered(self):
        sm, _ = schedule(
            "int out[1]; int a; a = x + 1; out[0] = a;", wires=True
        )
        binding = bind_registers(sm)
        # The internal value `a` is fully chained: no register.  Only
        # the primary input x (live at cycle start) holds state.
        assert "a" not in binding.assignment
        assert set(binding.assignment) <= {"x"}


class TestFUBinding:
    def test_instance_counts_match_peak_usage(self):
        sm, _ = schedule("int a; int b; a = x + 1; b = y + 2;")
        binding = bind_functional_units(sm, LIB)
        assert binding.instances_of("alu") == 2

    def test_instances_reused_across_states(self):
        sm, _ = schedule(
            "int a; int b; a = x + 1; b = y + 2;", limits={"alu": 1}
        )
        assert sm.num_states == 2
        binding = bind_functional_units(sm, LIB)
        assert binding.instances_of("alu") == 1
        assert binding.sharing_factor() >= 2.0

    def test_mutually_exclusive_branches_share_instances(self):
        sm, _ = schedule(
            "int x; if (c) { x = a + 1; } else { x = b + 2; }"
        )
        binding = bind_functional_units(sm, LIB)
        # One ALU instance serves both branches (Section 2).
        assert binding.instances_of("alu") == 1

    def test_external_blocks_counted_per_name(self):
        lib = ResourceLibrary()
        lib.register_external("f", delay=0.5)
        design = design_from_source("int a; int b; a = f(1); b = f(2);")
        scheduler = ChainingScheduler(library=lib, clock_period=10.0)
        sm = scheduler.schedule(design.main)
        binding = bind_functional_units(sm, lib)
        assert binding.instances_of("ext:f") == 2

    def test_op_assignment_recorded(self):
        sm, design = schedule("int a; a = x + y;")
        binding = bind_functional_units(sm, LIB)
        op = next(design.main.walk_operations())
        assert binding.op_assignment[op.uid] == [("alu", 0)]

    def test_sequential_ops_in_one_state_use_distinct_instances(self):
        sm, _ = schedule("int a; int b; a = x + 1; b = a + 2;")
        binding = bind_functional_units(sm, LIB)
        # Chained same-cycle ops cannot share an instance.
        assert binding.instances_of("alu") == 2
