"""Unit tests for the RTL simulator and the VHDL/Verilog emitters."""

import pytest

from repro.backend.interface import DesignInterface
from repro.backend.rtl_sim import RTLSimulationError, RTLSimulator
from repro.backend.verilog import emit_verilog
from repro.backend.vhdl import emit_vhdl
from repro.interp import run_design
from repro.ir.builder import design_from_source
from repro.scheduler.list_scheduler import ChainingScheduler
from repro.scheduler.resources import ResourceAllocation, ResourceLibrary


def build(source, clock=10.0, limits=None, externals=None):
    design = design_from_source(source)
    scheduler = ChainingScheduler(
        library=ResourceLibrary(),
        clock_period=clock,
        allocation=ResourceAllocation(limits=limits or {}),
    )
    return scheduler.schedule(design.main), design


class TestRTLSimulator:
    def test_single_cycle_result(self):
        sm, _ = build("int out[1]; int a; a = 2 + 3; out[0] = a * 2;")
        result = RTLSimulator(sm).run()
        assert result.cycles == 1
        assert result.arrays["out"] == [10]

    def test_multi_cycle_counts(self):
        sm, _ = build(
            "int out[1]; int a; int b; a = x + 1; b = a + 2; out[0] = b;",
            clock=1.5,
        )
        result = RTLSimulator(sm).run(inputs={"x": 0})
        assert result.cycles == sm.num_states

    def test_state_trace_records_path(self):
        sm, _ = build("int a; int b; a = 1; b = 2;", clock=10.0)
        result = RTLSimulator(sm).run()
        assert result.state_trace[0] == sm.entry_state

    def test_matches_interpreter_on_conditionals(self):
        source = (
            "int out[1]; int x;"
            "if (c > 2) { x = 10; } else { x = 20; }"
            "out[0] = x;"
        )
        for c in (0, 5):
            sm, design = build(source)
            expected = run_design(design, inputs={"c": c}).arrays["out"]
            got = RTLSimulator(sm).run(inputs={"c": c}).arrays["out"]
            assert got == expected

    def test_matches_interpreter_on_loops(self):
        source = (
            "int out[5]; int i; for (i = 0; i < 5; i++) { out[i] = i * 3; }"
        )
        sm, design = build(source)
        expected = run_design(design).arrays["out"]
        assert RTLSimulator(sm).run().arrays["out"] == expected

    def test_externals_bound(self):
        sm, _ = build("int out[1]; out[0] = magic(4);")
        result = RTLSimulator(sm, externals={"magic": lambda v: v + 38}).run()
        assert result.arrays["out"] == [42]

    def test_missing_external_raises(self):
        sm, _ = build("int out[1]; out[0] = magic(4);")
        with pytest.raises(RTLSimulationError):
            RTLSimulator(sm).run()

    def test_runaway_fsm_guard(self):
        sm, _ = build("int x; x = 0; while (1) { x = x + 1; }")
        with pytest.raises(RTLSimulationError):
            RTLSimulator(sm, max_cycles=50).run()

    def test_undriven_net_raises(self):
        sm, _ = build("int y; y = nothing + 1;")
        with pytest.raises(RTLSimulationError):
            RTLSimulator(sm).run()

    def test_array_bounds_checked(self):
        sm, _ = build("int m[2]; m[idx] = 1;")
        with pytest.raises(RTLSimulationError):
            RTLSimulator(sm).run(inputs={"idx": 7})


class TestVHDLEmitter:
    SOURCE = (
        "int Mark[4]; int a; int b;"
        "a = x + 1; b = a + 2; Mark[0] = b;"
    )

    def emit(self, clock=10.0):
        sm, design = build(self.SOURCE, clock=clock)
        interface = DesignInterface(
            name="demo",
            scalar_inputs=["x"],
            output_arrays={"Mark": 4},
        )
        return emit_vhdl(sm, interface), sm

    def test_entity_structure(self):
        text, _ = self.emit()
        assert "entity demo is" in text
        assert "clk : in std_logic;" in text
        assert "x_in : in integer;" in text
        assert "Mark_out : out int_array(0 to 3);" in text

    def test_fsm_skeleton(self):
        text, sm = self.emit()
        assert "case state is" in text
        for state in sm.reachable_states():
            assert f"when S{state.state_id} =>" in text
        assert "rising_edge(clk)" in text

    def test_registers_are_signals_wires_are_variables(self):
        """The paper's footnote 1 mapping."""
        sm, design = build(
            "int out[1]; int a; int b; a = x + 1; b = a + 2; out[0] = b;",
            clock=2.0,
        )
        assert sm.num_states == 2
        text = emit_vhdl(sm, DesignInterface(name="d"))
        # b crosses the state boundary -> signal r_b exists.
        assert "signal r_b : integer" in text
        # a dies inside the first state -> no signal, only a variable.
        assert "signal r_a" not in text
        assert "variable v_a : integer" in text

    def test_wire_variable_annotation(self):
        from repro.transforms.chaining import WireVariableInserter

        design = design_from_source(
            "int out[1]; int a; a = x + 1; out[0] = a;"
        )
        WireVariableInserter().run_on_design(design)
        sm = ChainingScheduler(clock_period=10.0).schedule(design.main)
        text = emit_vhdl(sm, DesignInterface(name="d"))
        assert "wire-variable (never registered)" in text

    def test_black_box_externals_declared(self):
        sm, _ = build("int out[1]; out[0] = decode(1);")
        text = emit_vhdl(sm, DesignInterface(name="d"))
        assert "function decode(arg0 : integer) return integer;" in text

    def test_speculation_comments_survive(self):
        design = design_from_source("int out[1]; int a; a = 1; out[0] = a;")
        op = next(design.main.walk_operations())
        op.is_speculated = True
        sm = ChainingScheduler(clock_period=10.0).schedule(design.main)
        text = emit_vhdl(sm, DesignInterface(name="d"))
        assert "-- speculated" in text

    def test_branch_transition_rendered(self):
        sm, _ = build(
            "int out[4]; int i; for (i = 0; i < 4; i++) { out[i] = i; }"
        )
        text = emit_vhdl(sm, DesignInterface(name="d"))
        assert "if (" in text and "state <=" in text

    def test_done_signal(self):
        text, _ = self.emit()
        assert "done <= '1';" in text


class TestVerilogEmitter:
    def test_module_structure(self):
        sm, _ = build("int out[2]; int a; a = x + 1; out[0] = a;")
        interface = DesignInterface(
            name="demo_v", scalar_inputs=["x"], output_arrays={"out": 2}
        )
        text = emit_verilog(sm, interface)
        assert "module demo_v (" in text
        assert "input wire clk" in text
        assert "always @(posedge clk)" in text
        assert "endmodule" in text

    def test_state_localparams(self):
        sm, _ = build(
            "int out[4]; int i; for (i = 0; i < 4; i++) { out[i] = i; }"
        )
        text = emit_verilog(sm, DesignInterface(name="d"))
        for state in sm.reachable_states():
            assert f"localparam S{state.state_id}" in text

    def test_registers_declared(self):
        sm, _ = build(
            "int out[1]; int a; int b; a = x + 1; b = a + 2; out[0] = b;",
            clock=1.5,
        )
        text = emit_verilog(sm, DesignInterface(name="d"))
        assert "reg signed [31:0] r_a;" in text

    def test_branch_ternary_transition(self):
        sm, _ = build(
            "int out[4]; int i; for (i = 0; i < 4; i++) { out[i] = i; }"
        )
        text = emit_verilog(sm, DesignInterface(name="d"))
        assert "state <= (" in text

    def test_wire_comment_tags(self):
        from repro.transforms.chaining import WireVariableInserter

        design = design_from_source(
            "int out[1]; int a; a = x + 1; out[0] = a;"
        )
        WireVariableInserter().run_on_design(design)
        sm = ChainingScheduler(clock_period=10.0).schedule(design.main)
        text = emit_verilog(sm, DesignInterface(name="d"))
        assert "// wire-variable" in text

    def test_negative_literals(self):
        sm, _ = build("int y; y = 0 - 5;")
        text = emit_verilog(sm, DesignInterface(name="d"))
        assert "32'sd5" in text
