"""Unit tests for resources, timing and the chaining-aware scheduler."""

import pytest

from repro.frontend.parser import parse_expression
from repro.frontend.ast_nodes import Var
from repro.ir.builder import design_from_source
from repro.ir.operations import Operation
from repro.scheduler.list_scheduler import ChainingScheduler, SchedulingError
from repro.scheduler.resources import (
    DEFAULT_UNITS,
    ResourceAllocation,
    ResourceLibrary,
)
from repro.scheduler.schedule import IfItem, OpItem
from repro.scheduler.timing import (
    expr_delay,
    expr_units,
    max_usage,
    merge_usage,
    operation_delay,
    operation_units,
)


LIB = ResourceLibrary()


def schedule(source, clock=10.0, limits=None, branching=True):
    design = design_from_source(source)
    scheduler = ChainingScheduler(
        library=LIB,
        clock_period=clock,
        allocation=ResourceAllocation(limits=limits or {}),
        allow_state_branching=branching,
    )
    return scheduler.schedule(design.main), design


class TestResourceLibrary:
    def test_operator_lookup(self):
        assert LIB.unit_for_operator("+").name == "alu"
        assert LIB.unit_for_operator("==").name == "cmp"
        assert LIB.unit_for_operator("&&").name == "logic"
        assert LIB.unit_for_operator("<<").name == "shift"

    def test_unknown_operator(self):
        with pytest.raises(KeyError):
            LIB.unit_for_operator("**")

    def test_external_registration(self):
        lib = ResourceLibrary()
        lib.register_external("decode", delay=2.5, area=99.0)
        assert lib.external("decode").delay == 2.5

    def test_unregistered_external_gets_default(self):
        lib = ResourceLibrary()
        unit = lib.external("surprise")
        assert unit.delay > 0

    def test_allocation_fits(self):
        alloc = ResourceAllocation(limits={"alu": 2})
        assert alloc.fits({"alu": 2, "cmp": 9})
        assert not alloc.fits({"alu": 3})

    def test_unlimited_allocation(self):
        assert ResourceAllocation.unlimited().fits({"alu": 1000})


class TestTiming:
    def test_literal_and_var_have_zero_delay(self):
        assert expr_delay(parse_expression("5"), LIB) == 0.0
        assert expr_delay(parse_expression("x"), LIB) == 0.0

    def test_binop_adds_unit_delay(self):
        delay = expr_delay(parse_expression("a + b"), LIB)
        assert delay == DEFAULT_UNITS["alu"].delay

    def test_chained_ready_times(self):
        delay = expr_delay(parse_expression("a + b"), LIB, ready={"a": 2.0})
        assert delay == 2.0 + DEFAULT_UNITS["alu"].delay

    def test_tree_critical_path_is_max(self):
        # (a*b) + c: mul (3.0) dominates the other operand.
        delay = expr_delay(parse_expression("a * b + c"), LIB)
        assert delay == DEFAULT_UNITS["mul"].delay + DEFAULT_UNITS["alu"].delay

    def test_array_access_delay(self):
        delay = expr_delay(parse_expression("m[i]"), LIB)
        assert delay == DEFAULT_UNITS["mem"].delay

    def test_call_uses_external_delay(self):
        lib = ResourceLibrary()
        lib.register_external("f", delay=4.0)
        assert expr_delay(parse_expression("f(x)"), lib) == 4.0

    def test_ternary_adds_mux(self):
        delay = expr_delay(parse_expression("c ? a : b"), LIB)
        assert delay == DEFAULT_UNITS["mux"].delay

    def test_operation_delay_array_store(self):
        op = Operation.assign(
            parse_expression("m[i]"), parse_expression("a + b")
        )
        delay = operation_delay(op, LIB)
        assert delay == DEFAULT_UNITS["alu"].delay + DEFAULT_UNITS["mem"].delay

    def test_expr_units_counting(self):
        units = expr_units(parse_expression("a + b + c * d"), LIB)
        assert units == {"alu": 2, "mul": 1}

    def test_operation_units_array_store(self):
        op = Operation.assign(parse_expression("m[i]"), parse_expression("x"))
        assert operation_units(op, LIB) == {"mem": 1}

    def test_merge_and_max_usage(self):
        assert merge_usage({"alu": 1}, {"alu": 2, "cmp": 1}) == {
            "alu": 3,
            "cmp": 1,
        }
        assert max_usage({"alu": 1}, {"alu": 2, "cmp": 1}) == {
            "alu": 2,
            "cmp": 1,
        }


class TestStraightLineScheduling:
    def test_single_cycle_when_fits(self):
        sm, _ = schedule("int a; int b; a = x + 1; b = a + 2;", clock=10.0)
        assert sm.num_states == 1
        assert sm.is_single_cycle()

    def test_chaining_accumulates_delay(self):
        sm, _ = schedule("int a; int b; a = x + 1; b = a + 2;", clock=10.0)
        state = sm.states[sm.entry_state]
        items = list(state.operations())
        assert items[0].finish == pytest.approx(1.0)
        assert items[1].start == pytest.approx(1.0)
        assert items[1].finish == pytest.approx(2.0)

    def test_splits_when_clock_exceeded(self):
        sm, _ = schedule("int a; int b; a = x + 1; b = a + 2;", clock=1.5)
        assert sm.num_states == 2

    def test_independent_ops_share_cycle(self):
        sm, _ = schedule("int a; int b; a = x + 1; b = y + 2;", clock=1.0)
        assert sm.num_states == 1

    def test_op_slower_than_clock_raises(self):
        with pytest.raises(SchedulingError):
            schedule("int a; a = x * y;", clock=1.0)  # mul delay 3.0

    def test_resource_limit_splits_states(self):
        sm, _ = schedule(
            "int a; int b; a = x + 1; b = y + 2;",
            clock=10.0,
            limits={"alu": 1},
        )
        assert sm.num_states == 2

    def test_resource_limit_unsatisfiable_raises(self):
        with pytest.raises(SchedulingError):
            schedule("int a; a = x + y + z;", clock=10.0, limits={"alu": 1})


class TestConditionalScheduling:
    COND = (
        "int t1; int t2; int t3; int f;"
        "t1 = a + b;"
        "if (cond) { t2 = t1; t3 = c + d; } else { t2 = e; t3 = c - d; }"
        "f = t2 + t3;"
    )

    def test_fig4_chains_single_cycle(self):
        """The paper's Fig 4: all six operations chain into one cycle
        across the conditional boundary."""
        sm, _ = schedule(self.COND, clock=10.0)
        assert sm.is_single_cycle()
        state = sm.states[sm.entry_state]
        assert any(isinstance(item, IfItem) for item in state.items)

    def test_join_adds_mux_delay(self):
        sm, _ = schedule(self.COND, clock=10.0)
        state = sm.states[sm.entry_state]
        final = [
            item
            for item in state.items
            if isinstance(item, OpItem) and "f =" in str(item.op)
        ]
        # f starts after t2/t3 come through the join muxes.
        assert final[0].start >= DEFAULT_UNITS["alu"].delay + DEFAULT_UNITS["mux"].delay

    def test_too_slow_conditional_becomes_fsm_branch(self):
        sm, _ = schedule(self.COND, clock=1.2)
        assert sm.num_states > 1
        branches = [s for s in sm.states.values() if s.branch is not None]
        assert branches

    def test_branching_disabled_raises(self):
        with pytest.raises(SchedulingError):
            schedule(self.COND, clock=1.2, branching=False)

    def test_mutually_exclusive_ops_share_fu(self):
        # then-branch and else-branch each need one ALU; limit 1 still
        # chains because they are mutually exclusive (Section 2).
        sm, _ = schedule(
            "int x; if (c) { x = a + 1; } else { x = b + 2; }",
            clock=10.0,
            limits={"alu": 1},
        )
        assert sm.is_single_cycle()

    def test_nested_conditionals_chain(self):
        sm, _ = schedule(
            "int x;"
            "if (c1) { if (c2) { x = a + 1; } else { x = a + 2; } }"
            "else { x = a + 3; }",
            clock=10.0,
        )
        assert sm.is_single_cycle()


class TestLoopScheduling:
    LOOP = (
        "int out[8]; int i;"
        "for (i = 0; i < 8; i++) { out[i] = i * 2; }"
    )

    def test_loop_becomes_fsm_cycle(self):
        sm, _ = schedule(self.LOOP, clock=10.0)
        assert sm.num_states >= 2
        branches = [s for s in sm.states.values() if s.branch is not None]
        assert branches, "loop must produce a conditional transition"

    def test_rtl_cycle_count_tracks_iterations(self):
        from repro.backend.rtl_sim import RTLSimulator

        sm, _ = schedule(self.LOOP, clock=10.0)
        result = RTLSimulator(sm).run()
        # At least one state per iteration plus prologue.
        assert result.cycles >= 8
        assert result.arrays["out"] == [0, 2, 4, 6, 8, 10, 12, 14]

    def test_while_with_break_schedules(self):
        from repro.backend.rtl_sim import RTLSimulator

        sm, _ = schedule(
            "int out[1]; int i; i = 0;"
            "while (1) { i = i + 1; if (i >= 5) { break; } }"
            "out[0] = i;",
            clock=10.0,
        )
        result = RTLSimulator(sm).run()
        assert result.arrays["out"] == [5]

    def test_nested_loops_schedule_and_simulate(self):
        from repro.backend.rtl_sim import RTLSimulator

        sm, _ = schedule(
            "int out[6]; int i; int j;"
            "for (i = 0; i < 2; i++)"
            "  for (j = 0; j < 3; j++)"
            "    out[i * 3 + j] = i + j;",
            clock=10.0,
        )
        result = RTLSimulator(sm).run()
        assert result.arrays["out"] == [0, 1, 2, 1, 2, 3]

    def test_return_halts_machine(self):
        sm, _ = schedule("int x; x = 1; return x;", clock=10.0)
        halting = [
            s
            for s in sm.states.values()
            if s.branch is None and s.default_next is None
        ]
        assert halting


class TestPruning:
    def test_no_empty_reachable_states(self):
        sm, _ = schedule(
            "int out[4]; int i; for (i = 0; i < 4; i++) { out[i] = i; }",
            clock=10.0,
        )
        for state in sm.reachable_states():
            # Only states that do something or route control survive.
            assert state.items or state.branch is not None or (
                state.default_next is None
            )

    def test_describe_renders(self):
        sm, _ = schedule("int a; a = x + 1;", clock=10.0)
        text = sm.describe()
        assert "StateMachine" in text
        assert "S0" in text


class TestReadyList:
    """The heap-based ready list feeding the scheduler's inner loop."""

    def _ops(self, source):
        design = design_from_source(source)
        from repro.ir.htg import BlockNode

        ops = []
        for node in design.main.walk_nodes():
            if isinstance(node, BlockNode):
                ops.extend(node.ops)
        return ops

    def test_source_priority_preserves_program_order(self):
        from repro.scheduler.ready_list import ReadyList, schedule_order

        ops = self._ops(
            "int a; int b; int c;\na = 1;\nb = a + 2;\nc = b + a;"
        )
        assert list(schedule_order(ops, "source")) == ops
        # The heap path itself also reproduces program order, and a
        # ReadyList can be drained more than once.
        ready = ReadyList(ops, priority="source")
        assert list(ready) == ops
        assert list(ready) == ops

    def test_critical_priority_is_a_permutation_respecting_deps(self):
        from repro.scheduler.ready_list import schedule_order

        ops = self._ops(
            "int a; int b; int c; int d;\n"
            "a = 1;\nd = 9;\nb = a + 2;\nc = b * b;"
        )
        ordered = list(schedule_order(ops, "critical", LIB))
        assert sorted(map(id, ordered)) == sorted(map(id, ops))
        positions = {id(op): index for index, op in enumerate(ordered)}
        # RAW chains keep their order: a=1 before b=a+2 before c=b*b.
        assert positions[id(ops[0])] < positions[id(ops[2])]
        assert positions[id(ops[2])] < positions[id(ops[3])]
        # The long multiply chain outranks the independent d=9.
        assert positions[id(ops[1])] == len(ops) - 1

    def test_array_and_call_ordering_is_preserved(self):
        from repro.scheduler.ready_list import schedule_order

        ops = self._ops(
            "int m[4]; int x; int y;\n"
            "m[0] = 3;\nx = m[0] + 1;\ny = f(x);\nm[1] = y;"
        )
        for priority in ("source", "critical"):
            ordered = list(schedule_order(ops, priority, LIB))
            positions = {id(op): i for i, op in enumerate(ordered)}
            # store -> load -> call -> store never reorders.
            assert [positions[id(op)] for op in ops] == sorted(
                positions[id(op)] for op in ops
            )

    def test_unknown_priority_rejected(self):
        with pytest.raises(SchedulingError):
            ChainingScheduler(priority="random")
        from repro.scheduler.ready_list import ReadyList

        with pytest.raises(ValueError):
            ReadyList([], priority="random")

    def test_scheduler_output_identical_under_source_priority(self):
        source = (
            "int acc[6]; int i; int t;\n"
            "t = 0;\n"
            "for (i = 0; i < 5; i++) { t = t + i; acc[i] = t; }"
        )
        sm_default, _ = schedule(source, clock=4.0)
        design = design_from_source(source)
        explicit = ChainingScheduler(
            library=LIB, clock_period=4.0, priority="source"
        ).schedule(design.main)
        assert sm_default.num_states == explicit.num_states
        assert [s.state_id for s in sm_default.reachable_states()] == [
            s.state_id for s in explicit.reachable_states()
        ]

    def test_critical_priority_schedules_correctly(self):
        """Reordered placement must not change observable behavior."""
        from repro.backend.rtl_sim import RTLSimulator

        source = (
            "int out[4]; int a; int b; int c; int d;\n"
            "a = 2;\nd = 7;\nb = a * a;\nc = b + d;\n"
            "out[0] = c;\nout[1] = d;"
        )
        design = design_from_source(source)
        sm = ChainingScheduler(
            library=LIB, clock_period=3.0, priority="critical"
        ).schedule(design.main)
        rtl = RTLSimulator(sm).run()
        assert rtl.arrays["out"] == [11, 7, 0, 0]
