"""Unit tests for the synthetic ISA and the golden ILD model."""

import pytest

from repro.ild.isa import (
    BYTES_EXAMINED,
    DEFAULT_ISA,
    MAX_INSTRUCTION_LENGTH,
    MIN_INSTRUCTION_LENGTH,
    SyntheticISA,
    crafted_buffer,
    random_buffer,
)
from repro.ild.model import GoldenILD, decode_buffer, decode_recursive


class TestSyntheticISA:
    def test_lc1_range(self):
        values = {DEFAULT_ISA.length_contribution_1(b) for b in range(256)}
        assert values == {1, 2, 3, 4}

    def test_lc2_lc3_range(self):
        assert {DEFAULT_ISA.length_contribution_2(b) for b in range(256)} == {
            0,
            1,
            2,
            3,
        }
        assert {DEFAULT_ISA.length_contribution_3(b) for b in range(256)} == {
            0,
            1,
            2,
            3,
        }

    def test_lc4_range(self):
        assert {DEFAULT_ISA.length_contribution_4(b) for b in range(256)} == {0, 1}

    def test_need_bits_binary(self):
        for b in range(256):
            assert DEFAULT_ISA.need_2nd_byte(b) in (0, 1)
            assert DEFAULT_ISA.need_3rd_byte(b) in (0, 1)
            assert DEFAULT_ISA.need_4th_byte(b) in (0, 1)

    def test_instruction_length_bounds_exhaustive_window_sample(self):
        # Sample the 4-byte window space: lengths stay within 1..11.
        import itertools

        sample = [0, 1, 0x7F, 0x80, 0xC0, 0xE0, 0xFF]
        for window in itertools.product(sample, repeat=BYTES_EXAMINED):
            length = DEFAULT_ISA.instruction_length(window)
            assert MIN_INSTRUCTION_LENGTH <= length <= MAX_INSTRUCTION_LENGTH

    def test_max_length_reachable(self):
        # lc1=4 (b&3==3) + need2 (bit7) -> 0x83|0x80.. craft the window:
        first = 0x83 | 0x80          # lc1 = 4, need2
        second = 0x4C | 0x40          # lc2 = 3, need3
        third = 0x38 | 0x20           # lc3 = 3, need4
        fourth = 0xC0                 # lc4 = 1
        length = DEFAULT_ISA.instruction_length([first, second, third, fourth])
        assert length == 11

    def test_min_length(self):
        assert DEFAULT_ISA.instruction_length([0, 0, 0, 0]) == 1

    def test_short_window_padded(self):
        assert DEFAULT_ISA.instruction_length([0]) == 1


class TestBuffers:
    def test_random_buffer_deterministic_by_seed(self):
        assert random_buffer(16, seed=3) == random_buffer(16, seed=3)
        assert random_buffer(16, seed=3) != random_buffer(16, seed=4)

    def test_random_buffer_byte_range(self):
        assert all(0 <= b <= 255 for b in random_buffer(64, seed=1))

    def test_crafted_buffer_known_marks(self):
        buf = [0] + crafted_buffer([2, 3, 1], n=8)
        marks = decode_buffer(buf, n=8)
        # Instructions at 1, 3, 6, then 7 onwards decode zero bytes
        # (byte 0 -> length 1 each).
        assert marks[1] == 1 and marks[3] == 1 and marks[6] == 1

    def test_crafted_buffer_validates_lengths(self):
        with pytest.raises(ValueError):
            crafted_buffer([7], n=8)
        with pytest.raises(ValueError):
            crafted_buffer([4, 4, 4], n=4)


class TestGoldenModel:
    def test_first_byte_always_marked(self):
        for seed in range(10):
            buf = [0] + random_buffer(12, seed=seed)
            marks = decode_buffer(buf, n=12)
            assert marks[1] == 1

    def test_marks_consistent_with_lengths(self):
        golden = GoldenILD(n=16)
        buf = [0] + random_buffer(16, seed=9)
        mark, lengths, traces = golden.decode(buf)
        position = 1
        for trace in traces:
            assert mark[position] == 1
            assert trace.start == position
            position += trace.length
        assert position > 16

    def test_lengths_bounds(self):
        golden = GoldenILD(n=32)
        buf = [0] + random_buffer(32, seed=5)
        _, lengths, traces = golden.decode(buf)
        for trace in traces:
            assert 1 <= trace.length <= MAX_INSTRUCTION_LENGTH
            assert 1 <= trace.bytes_examined <= BYTES_EXAMINED

    def test_padding_rule_beyond_buffer(self):
        """Contributions from positions beyond n are zero (paper
        footnote 2): a need-chain at the buffer edge still terminates."""
        golden = GoldenILD(n=4)
        # Last byte requests a 2nd byte that is off the end.
        buf = [0, 0, 0, 0, 0x80 | 0x3]
        trace = golden.calculate_length(buf, 4)
        # lc1 = 4, need2 set, but lc2 position 5 > n contributes 0.
        assert trace.length == 4

    def test_recursive_cross_check_random(self):
        for seed in range(40):
            n = 4 + (seed % 13)
            buf = [0] + random_buffer(n, seed=seed)
            assert decode_recursive(buf, n) == decode_buffer(buf, n), seed

    def test_all_zero_buffer_marks_everything(self):
        # byte 0: lc1 = 1, no continuation: every byte starts an instr.
        marks = decode_buffer([0] * 9, n=8)
        assert marks == [0] + [1] * 8

    def test_decode_traces_fig8_fig9_walk(self):
        """Figs 8 and 9: the second decode restarts at the first
        instruction's end."""
        golden = GoldenILD(n=12)
        buf = [0] + crafted_buffer([2, 4], n=12)
        _, _, traces = golden.decode(buf)
        assert traces[0].start == 1
        assert traces[0].length == 2
        assert traces[1].start == 3
        assert traces[1].length == 4


class TestByteAccessors:
    def test_byte_at_bounds(self):
        golden = GoldenILD(n=4)
        buf = [0, 10, 20, 30, 40]
        assert golden.byte_at(buf, 1) == 10
        assert golden.byte_at(buf, 4) == 40
        assert golden.byte_at(buf, 5) == 0
        assert golden.byte_at(buf, 0) == 0

    def test_length_contribution_padding(self):
        golden = GoldenILD(n=4)
        buf = [0, 0xFF, 0xFF, 0xFF, 0xFF]
        assert golden.length_contribution(buf, 1, 5) == 0
        assert golden.length_contribution(buf, 1, 4) == 4

    def test_need_byte_padding(self):
        golden = GoldenILD(n=4)
        buf = [0, 0xFF] * 3
        assert golden.need_byte(buf, 2, 5) == 0
