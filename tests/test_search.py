"""Tests for the adaptive search subsystem (repro.dse.search)."""

from __future__ import annotations

import math
import threading

import pytest

from repro.cli import main
from repro.dse import (
    BeamSearch,
    BrokerExecutor,
    ExplorationEngine,
    GridWalk,
    JobBroker,
    PoolExecutor,
    RandomRestartSearch,
    SimulatedAnnealing,
    axes_late_first,
    axis_neighbor_values,
    first_point,
    grid_from_specs,
    job_from_point,
    jobs_from_grid,
    make_strategy,
    mutate_point,
    random_point,
    run_worker,
    scalar_score,
)
from repro.dse.grid import GridError
from repro.dse.report import format_search_summary, format_search_trace
from repro.dse.search.base import Proposal
from repro.spark import SynthesisOutcome
from repro.transforms.base import SynthesisScript

SWEEP_SRC = """
int acc[26];
int i; int total;
total = 0;
for (i = 0; i < 24; i++) {
  total = total + i;
  acc[i] = total;
}
"""


def base_script() -> SynthesisScript:
    return SynthesisScript(output_scalars={"total"})


def sweep_space(*specs: str):
    return grid_from_specs(list(specs))


def factory(point):
    return job_from_point(SWEEP_SRC, point, base_script=base_script())


def outcome(label="p", ok=True, latency=10.0, area=100.0) -> SynthesisOutcome:
    return SynthesisOutcome(
        label=label,
        ok=ok,
        latency=latency,
        clock_period=1.0,
        area_total=area,
    )


# ---------------------------------------------------------------------------
# Neighborhoods and mutation helpers
# ---------------------------------------------------------------------------


class TestNeighborhoods:
    def test_ordered_axis_neighbors_are_adjacent(self):
        values = [4.0, 2.0, 8.0, 6.0]  # declaration order is not sorted
        assert axis_neighbor_values("clock", 4.0, values) == [2.0, 6.0]
        assert axis_neighbor_values("clock", 2.0, values) == [4.0]
        assert axis_neighbor_values("clock", 8.0, values) == [6.0]

    def test_categorical_axis_neighbors_everything_else(self):
        values = [{}, {"*": 2}, {"*": 0}]
        assert axis_neighbor_values("unroll", {"*": 2}, values) == [
            {},
            {"*": 0},
        ]

    def test_unknown_value_neighbors_all_candidates(self):
        assert axis_neighbor_values("clock", 5.0, [2.0, 4.0]) == [2.0, 4.0]

    def test_mutate_point_rebinds_one_axis_in_place(self):
        space = sweep_space("clock=2,4", "unroll=none,*:2")
        point = first_point(space)
        mutated = mutate_point(point, "clock", 4.0)
        assert mutated.as_dict() == {"clock": 4.0, "unroll": {}}
        # Axis order (and therefore the label layout) is preserved.
        assert [name for name, _ in mutated.values] == ["clock", "unroll"]
        assert point.as_dict()["clock"] == 2.0  # original untouched

    def test_mutate_point_rejects_unknown_axis(self):
        point = first_point(sweep_space("clock=2,4"))
        with pytest.raises(GridError):
            mutate_point(point, "unroll", {})

    def test_axes_late_first_prefers_schedule_stage_axes(self):
        space = sweep_space(
            "unroll=none,*:2", "clock=2,4", "limits=none,alu:1", "cse=on"
        )
        # clock/limits are schedule-stage, unroll is transform-stage;
        # pinned cse (one value) is not mutable at all.
        assert axes_late_first(space) == ["clock", "limits", "unroll"]

    def test_first_and_random_point_are_deterministic(self):
        import random

        space = sweep_space("clock=2,4", "unroll=none,*:2")
        assert first_point(space).as_dict() == {"clock": 2.0, "unroll": {}}
        draws = [
            random_point(space, random.Random(3)).label for _ in range(2)
        ]
        assert draws[0] == draws[1]


class TestScalarScore:
    def test_scores_latency_by_default(self):
        assert scalar_score(outcome(latency=8.0)) == 8.0

    def test_every_failure_is_infinite(self):
        # Pruned-vs-executed-unschedulable must score identically, or
        # executor choice could steer a seeded search.
        assert math.isinf(scalar_score(outcome(ok=False)))

    def test_area_weight(self):
        value = scalar_score(
            outcome(latency=8.0, area=100.0),
            latency_weight=0.0,
            area_weight=1.0,
        )
        assert value == 100.0


# ---------------------------------------------------------------------------
# Strategy unit behavior (no engine, synthetic outcomes)
# ---------------------------------------------------------------------------


class TestStrategies:
    def observe_all(self, strategy, proposals, score_by_label):
        for proposal in proposals:
            label = proposal.point.label
            latency, ok = score_by_label.get(label, (50.0, True))
            strategy.observe(proposal, outcome(label, ok=ok, latency=latency))

    def test_make_strategy_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown search strategy"):
            make_strategy("hillclimb", sweep_space("clock=2,4"))

    def test_grid_walk_visits_every_point_in_order(self):
        space = sweep_space("clock=2,4", "unroll=none,*:2")
        walk = GridWalk(space)
        proposals = walk.propose(100)
        assert [p.point.label for p in proposals] == [
            p.label for p in space.points()
        ]
        assert walk.done()

    def test_beam_proposes_neighbors_of_admitted_corners(self):
        space = sweep_space("clock=2,3,4", "unroll=none,*:2")
        beam = BeamSearch(space, seed=1, beam_width=1)
        seeds = beam.propose(1)
        assert len(seeds) == 1  # the anchor corner
        anchor = seeds[0].point
        self.observe_all(beam, seeds, {anchor.label: (10.0, True)})
        children = beam.propose(10)
        assert children
        for child in children:
            assert child.parent == anchor.label
            # Exactly one axis differs from the parent.
            diffs = [
                axis
                for axis, value in child.point.as_dict().items()
                if anchor.as_dict()[axis] != value
            ]
            assert len(diffs) == 1

    def test_beam_priority_escalates_with_rank(self):
        space = sweep_space("clock=2,3,4,6", "limits=none,alu:1,alu:2")
        beam = BeamSearch(space, seed=1, beam_width=2)
        seeds = beam.propose(2)
        best, worse = seeds[0].point.label, seeds[1].point.label
        self.observe_all(
            beam, seeds, {best: (10.0, True), worse: (20.0, True)}
        )
        children = beam.propose(20)
        assert children
        # Children of the top-ranked member outrank the runner-up's.
        expected = {best: 2, worse: 1}
        for child in children:
            assert child.priority == expected[child.parent]
        assert {c.parent for c in children} == {best, worse}

    def test_beam_stalls_out_after_patience(self):
        space = sweep_space("clock=2,3,4,6")
        beam = BeamSearch(space, seed=1, beam_width=1, patience=1)
        seeds = beam.propose(1)
        self.observe_all(beam, seeds, {seeds[0].point.label: (5.0, True)})
        rounds = 0
        while not beam.done() and rounds < 10:
            proposals = beam.propose(4)
            if not proposals:
                break
            rounds += 1
            # Nothing beats the incumbent: every child is rejected.
            self.observe_all(
                beam,
                proposals,
                {p.point.label: (99.0, True) for p in proposals},
            )
        assert beam.done()
        assert rounds <= 3  # patience bounds the stalled rounds

    def test_beam_never_proposes_a_corner_twice(self):
        space = sweep_space("clock=2,3,4", "unroll=none,*:2")
        beam = BeamSearch(space, seed=1, beam_width=2)
        seen = set()
        for _ in range(10):
            proposals = beam.propose(6)
            if not proposals:
                break
            labels = {p.point.label for p in proposals}
            assert not labels & seen
            seen |= labels
            self.observe_all(
                beam, proposals, {p.point.label: (30.0, True) for p in proposals}
            )

    def test_random_restart_streams_are_seed_deterministic(self):
        space = sweep_space("clock=2,3,4,6", "unroll=none,*:2")

        def labels(seed):
            search = RandomRestartSearch(space, seed=seed, restarts=2)
            out = []
            for _ in range(3):
                proposals = search.propose(4)
                out.extend(p.point.label for p in proposals)
                self.observe_all(search, proposals, {})
            return out

        assert labels(5) == labels(5)
        assert labels(5) != labels(6)

    def test_anneal_cools_and_freezes_out(self):
        space = sweep_space("clock=2,3,4,6", "unroll=none,*:2")
        anneal = SimulatedAnnealing(
            space, seed=2, temperature=1.0, cooling=0.5, floor=0.3
        )
        rounds = 0
        while not anneal.done() and rounds < 20:
            proposals = anneal.propose(4)
            if not proposals:
                break
            rounds += 1
            self.observe_all(
                anneal,
                proposals,
                {p.point.label: (20.0, True) for p in proposals},
            )
        assert anneal.temperature < 1.0
        assert anneal.done()

    def test_anneal_accepts_improvements_always(self):
        space = sweep_space("clock=2,3,4,6")
        anneal = SimulatedAnnealing(space, seed=2)
        seeds = anneal.propose(2)
        anneal.observe(seeds[0], outcome(seeds[0].point.label, latency=30.0))
        assert seeds[0].decision == "accept"
        anneal.observe(seeds[1], outcome(seeds[1].point.label, latency=10.0))
        assert seeds[1].decision == "accept"  # downhill move

    def test_anneal_rejects_infeasible(self):
        space = sweep_space("clock=2,3,4,6")
        anneal = SimulatedAnnealing(space, seed=2)
        seeds = anneal.propose(1)
        anneal.observe(seeds[0], outcome(seeds[0].point.label, ok=False))
        assert seeds[0].decision == "reject"

    def test_strategy_validates_options(self):
        space = sweep_space("clock=2,4")
        with pytest.raises(ValueError):
            BeamSearch(space, beam_width=0)
        with pytest.raises(ValueError):
            SimulatedAnnealing(space, cooling=1.5)
        with pytest.raises(ValueError):
            RandomRestartSearch(space, restarts=0)


# ---------------------------------------------------------------------------
# Engine-level within-sweep dedupe
# ---------------------------------------------------------------------------


class TestSweepDedupe:
    def test_duplicate_jobs_dispatch_once(self):
        jobs = jobs_from_grid(
            SWEEP_SRC,
            sweep_space("clock=2,4"),
            base_script=base_script(),
        )
        duplicated = jobs + jobs  # same cache keys again
        result = ExplorationEngine(use_cache=False).explore(duplicated)
        assert result.executed == 2
        assert result.deduped == 2
        assert len(result.outcomes) == 4
        replicas = [o for o in result.outcomes if o.provenance == "dedup"]
        assert len(replicas) == 2
        # Replicas carry the original's metrics under their own label.
        by_label = {o.label: o for o in result.outcomes}
        for replica in replicas:
            assert replica.latency == by_label[replica.label].latency

    def test_dedupe_works_without_cache_and_with_cache(self, tmp_path):
        jobs = jobs_from_grid(
            SWEEP_SRC, sweep_space("clock=2,4"), base_script=base_script()
        )
        cached = ExplorationEngine(cache_dir=tmp_path / "cache").explore(
            jobs + jobs
        )
        assert cached.executed == 2
        assert cached.deduped == 2
        # A second sweep serves the originals from cache; duplicates
        # still settle as replicas, not extra cache probes.
        warm = ExplorationEngine(cache_dir=tmp_path / "cache").explore(
            jobs + jobs
        )
        assert warm.cache_hits == 2
        assert warm.deduped == 2
        assert warm.executed == 0

    def test_summarize_reports_dedupes(self):
        jobs = jobs_from_grid(
            SWEEP_SRC, sweep_space("clock=2,4"), base_script=base_script()
        )
        result = ExplorationEngine(use_cache=False).explore(jobs + jobs)
        from repro.dse import summarize

        assert "2 deduped" in summarize(result)

    def test_replicas_do_not_count_as_fresh_stage_work(self):
        jobs = jobs_from_grid(
            SWEEP_SRC, sweep_space("clock=2,4"), base_script=base_script()
        )
        result = ExplorationEngine(use_cache=False).explore(jobs + jobs)
        totals = result.stage_totals()
        assert totals["schedule"]["runs"] == 2  # not 4


# ---------------------------------------------------------------------------
# Strategy-driven search through the engine
# ---------------------------------------------------------------------------


class TestEngineSearch:
    def search(self, kind, budget=10, seed=1, space=None, **kwargs):
        space = space or sweep_space(
            "clock=2,3,4,6", "limits=alu:1,alu:2,none", "unroll=none,*:2"
        )
        engine = ExplorationEngine(use_cache=False)
        return engine.search(
            make_strategy(kind, space, seed=seed), factory, budget, **kwargs
        )

    @pytest.mark.parametrize("kind", ["grid", "beam", "random", "anneal"])
    def test_budget_and_counter_invariant(self, kind):
        result = self.search(kind, budget=10)
        report = result.search
        assert report is not None
        assert report.strategy == kind
        assert report.settled <= 10
        assert (
            report.proposed
            == report.evaluated + report.pruned + report.deduped
            + report.withdrawn
        )
        assert len(report.trace) == report.proposed
        assert result.best() is not None

    def test_budget_one_is_exact(self):
        result = self.search("beam", budget=1)
        assert result.search.settled == 1

    def test_search_rejects_bad_budget(self):
        engine = ExplorationEngine(use_cache=False)
        space = sweep_space("clock=2,4")
        with pytest.raises(ValueError, match="budget"):
            engine.search(make_strategy("beam", space), factory, budget=0)

    def test_beam_finds_grid_optimum_on_small_space(self):
        space = sweep_space("clock=2,3,4,6", "unroll=none,*:2")
        grid_result = ExplorationEngine(use_cache=False).explore(
            jobs_from_grid(SWEEP_SRC, space, base_script=base_script())
        )
        search_result = self.search("beam", budget=len(space), space=space)
        assert (
            search_result.best().latency == grid_result.best().latency
        )

    def test_search_replays_proposals_from_visited_set(self):
        """A strategy re-proposing a settled corner gets the recorded
        outcome replayed, spends no budget, and the engine never
        re-dispatches it."""
        space = sweep_space("clock=2,4")

        class Stubborn(GridWalk):
            name = "stubborn"

            def __init__(self, space, seed=0, scorer=None):
                super().__init__(space, seed=seed, scorer=scorer)
                self.observed = []
                self.rounds = 0

            def done(self):
                return self.rounds >= 3

            def propose(self, budget):
                self.rounds += 1
                return [Proposal(point=point) for point in space.points()]

            def observe(self, proposal, outcome):
                self.observed.append((proposal.point.label, outcome.provenance))

        strategy = Stubborn(space)
        engine = ExplorationEngine(use_cache=False)
        result = engine.search(strategy, factory, budget=100)
        report = result.search
        assert report.evaluated == 2
        assert report.deduped == 4  # two corners re-proposed twice
        assert result.executed == 2
        # Replays reach observe with the recorded outcome.
        assert len(strategy.observed) == 6

    def test_goal_stops_proposing(self):
        space = sweep_space("clock=2,3,4,6")

        class Counting(GridWalk):
            def __init__(self, space, seed=0, scorer=None):
                super().__init__(space, seed=seed, scorer=scorer)
                self.propose_calls = 0

            def propose(self, budget):
                self.propose_calls += 1
                return super().propose(budget)

        strategy = Counting(space)
        engine = ExplorationEngine(use_cache=False)
        result = engine.search(
            strategy, factory, budget=100, target_latency=1000.0
        )
        assert result.goal_met
        assert strategy.propose_calls == 1

    def test_search_summary_and_trace_render(self):
        result = self.search("beam", budget=6)
        summary = format_search_summary(result)
        assert "search[beam]" in summary
        assert "proposed" in summary
        trace = format_search_trace(result)
        assert "search trace:" in trace
        # One trace row per proposal, plus the two header lines.
        assert len(trace.splitlines()) == result.search.proposed + 2

    def test_plain_explore_has_no_search_report(self):
        jobs = jobs_from_grid(
            SWEEP_SRC, sweep_space("clock=2,4"), base_script=base_script()
        )
        result = ExplorationEngine(use_cache=False).explore(jobs)
        assert result.search is None
        assert format_search_summary(result) == ""
        assert format_search_trace(result) == ""


# ---------------------------------------------------------------------------
# Early exit x strategy: in-flight withdrawal (mirrors the PR 3
# broker withdraw semantics)
# ---------------------------------------------------------------------------


class TestSearchEarlyExit:
    def test_goal_met_withdraws_in_flight_broker_proposals(self, tmp_path):
        space = sweep_space("clock=2,3,4,6")

        class Counting(GridWalk):
            def __init__(self, space, seed=0, scorer=None):
                super().__init__(space, seed=seed, scorer=scorer)
                self.propose_calls = 0

            def propose(self, budget):
                self.propose_calls += 1
                return super().propose(budget)

        broker = JobBroker(tmp_path / "broker", lease_ttl=10.0)
        worker = threading.Thread(
            target=run_worker,
            kwargs=dict(
                broker=broker, worker="w0", idle_timeout=3.0, poll=0.02
            ),
            daemon=True,
        )
        worker.start()
        strategy = Counting(space)
        engine = ExplorationEngine(
            use_cache=False,
            executor=BrokerExecutor(broker, poll=0.02, on_stall=None),
        )
        result = engine.search(
            strategy, factory, budget=100, target_latency=1000.0
        )
        worker.join(timeout=30)
        assert not worker.is_alive()

        report = result.search
        assert result.goal_met
        # Once the goal is met the strategy is never asked again...
        assert strategy.propose_calls == 1
        # ...and every in-flight proposal is withdrawn, accounted and
        # absent from the broker queue (withdrawn, not abandoned).
        assert report.evaluated >= 1
        assert report.evaluated + report.withdrawn == report.proposed
        assert len(result.outcomes) == report.evaluated
        assert broker.stats().queued == 0


# ---------------------------------------------------------------------------
# Seeded determinism across executors
# ---------------------------------------------------------------------------


class TestSearchDeterminism:
    def run(self, kind, executor, workers=1):
        space = sweep_space("clock=2,3,4,6", "limits=alu:1,none")
        engine = ExplorationEngine(
            use_cache=False, executor=executor, workers=workers
        )
        result = engine.search(
            make_strategy(kind, space, seed=7), factory, budget=8
        )
        trace = [
            (t["round"], t["label"], t["action"], t["decision"])
            for t in result.search.trace
        ]
        frontier = [o.label for o in result.frontier]
        return trace, frontier

    @pytest.mark.parametrize("kind", ["beam", "random", "anneal"])
    def test_same_seed_identical_across_serial_and_pool(self, kind):
        serial_trace, serial_frontier = self.run(kind, "serial")
        pool_trace, pool_frontier = self.run(
            kind,
            PoolExecutor(workers=2, start_method="spawn"),
            workers=2,
        )
        assert serial_trace == pool_trace
        assert serial_frontier == pool_frontier

    def test_serial_rerun_is_bit_identical(self):
        first = self.run("anneal", "serial")
        second = self.run("anneal", "serial")
        assert first == second


# ---------------------------------------------------------------------------
# CLI integration
# ---------------------------------------------------------------------------


class TestSearchCli:
    def write_design(self, tmp_path):
        design = tmp_path / "design.c"
        design.write_text(SWEEP_SRC)
        return str(design)

    def test_cli_beam_search_prints_counters(self, tmp_path, capsys):
        code = main(
            [
                "dse",
                self.write_design(tmp_path),
                "--output",
                "total",
                "--vary",
                "clock=2,3,4,6",
                "--vary",
                "unroll=none,*:2",
                "--strategy",
                "beam",
                "--search-seed",
                "1",
                "--search-budget",
                "5",
                "--no-cache",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "search[beam] seed=1 budget=5" in out
        assert "proposed" in out and "evaluated" in out

    def test_cli_search_trace_flag(self, tmp_path, capsys):
        code = main(
            [
                "dse",
                self.write_design(tmp_path),
                "--output",
                "total",
                "--vary",
                "clock=2,4",
                "--strategy",
                "random",
                "--search-budget",
                "2",
                "--search-trace",
                "--no-cache",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "search trace:" in out

    def test_cli_search_flags_require_strategy(self, tmp_path, capsys):
        code = main(
            [
                "dse",
                self.write_design(tmp_path),
                "--output",
                "total",
                "--vary",
                "clock=2,4",
                "--search-budget",
                "3",
            ]
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "--search-budget requires --strategy" in err

    def test_cli_rejects_bad_budget(self, tmp_path, capsys):
        code = main(
            [
                "dse",
                self.write_design(tmp_path),
                "--output",
                "total",
                "--vary",
                "clock=2,4",
                "--strategy",
                "beam",
                "--search-budget",
                "0",
            ]
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "--search-budget must be >= 1" in err
