"""Tests for the filesystem job broker and distributed sweeps.

Covers the broker mechanics (atomic claims, leases, requeue), the
crash-recovery guarantee — a worker that claims a job and dies has its
lease expire and the job re-executed elsewhere, with the outcome
landing exactly once in the shared cache — and the acceptance parity
criterion: a two-worker broker sweep ranks identically to the local
pool executor.
"""

from __future__ import annotations

import multiprocessing
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.dse import (
    BrokerExecutor,
    ExplorationEngine,
    JobBroker,
    ResultCache,
    grid_from_specs,
    job_key,
    jobs_from_grid,
    run_worker,
)
from repro.spark import ERROR_KIND_ENVIRONMENT, SynthesisJob, execute_job
from repro.transforms.base import SynthesisScript

SWEEP_SRC = """
int acc[26];
int i; int total;
total = 0;
for (i = 0; i < 24; i++) {
  total = total + i;
  acc[i] = total;
}
"""


def base_script() -> SynthesisScript:
    return SynthesisScript(output_scalars={"total"})


def sweep_jobs(*specs: str):
    return jobs_from_grid(
        SWEEP_SRC, grid_from_specs(list(specs)), base_script=base_script()
    )


def make_job(label="point", clock=4.0, **overrides) -> SynthesisJob:
    script = base_script()
    script.clock_period = clock
    job = SynthesisJob(source=SWEEP_SRC, script=script, label=label)
    for name, value in overrides.items():
        setattr(job, name, value)
    return job


def wait_until(predicate, timeout=30.0, poll=0.02, what="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(poll)
    raise AssertionError(f"timed out waiting for {what}")


# ---------------------------------------------------------------------------
# Broker mechanics
# ---------------------------------------------------------------------------


class TestBrokerMechanics:
    def test_submit_claim_complete_roundtrip(self, tmp_path):
        broker = JobBroker(tmp_path, lease_ttl=5.0)
        job = make_job()
        job_id = broker.submit(job, key="k" * 64)
        assert broker.stats().queued == 1

        claim = broker.claim("w1")
        assert claim is not None
        assert claim.job_id == job_id
        assert claim.key == "k" * 64
        assert claim.job == job  # full fidelity through the wire format
        assert broker.stats().queued == 0
        assert broker.stats().claimed == 1
        assert broker.heartbeat(claim)

        outcome = execute_job(claim.job)
        broker.complete(claim, outcome)
        assert broker.stats().claimed == 0

        recalled = broker.take_result(job_id)
        assert recalled is not None
        assert recalled.ok
        assert recalled.score() == outcome.score()
        assert broker.take_result(job_id) is None  # consumed
        assert broker.stats().results == 0

    def test_priority_orders_claims(self, tmp_path):
        """Higher SynthesisJob.priority drains first; ties drain in
        submission order — so a goal-directed sweep can front-load its
        promising corners."""
        broker = JobBroker(tmp_path, lease_ttl=5.0)
        submitted = {}
        for label, priority in (
            ("background", -3),
            ("normal-a", 0),
            ("hot", 10),
            ("normal-b", 0),
        ):
            job = make_job(label=label)
            job.priority = priority
            submitted[label] = broker.submit(job)
        claimed = []
        while True:
            claim = broker.claim("w1")
            if claim is None:
                break
            claimed.append(claim.job.label)
            broker.complete(claim, execute_job(claim.job))
        assert claimed == ["hot", "normal-a", "normal-b", "background"]
        # ids stay consistent across queue -> claimed -> results.
        assert broker.take_result(submitted["hot"]) is not None

    def test_priority_survives_the_wire_format(self, tmp_path):
        broker = JobBroker(tmp_path, lease_ttl=5.0)
        job = make_job()
        job.priority = 42
        broker.submit(job)
        claim = broker.claim("w1")
        assert claim is not None and claim.job is not None
        assert claim.job.priority == 42
        assert claim.job == job

    def test_extreme_priorities_clamp_not_crash(self, tmp_path):
        broker = JobBroker(tmp_path, lease_ttl=5.0)
        low, high = make_job(label="low"), make_job(label="high")
        low.priority = -10**12
        high.priority = 10**12
        broker.submit(low)
        broker.submit(high)
        first = broker.claim("w1")
        assert first is not None and first.job.label == "high"

    def test_claims_are_exclusive(self, tmp_path):
        broker = JobBroker(tmp_path, lease_ttl=5.0)
        broker.submit(make_job())
        assert broker.claim("w1") is not None
        assert broker.claim("w2") is None  # nothing left to take

    def test_cancel_withdraws_only_unclaimed_jobs(self, tmp_path):
        broker = JobBroker(tmp_path, lease_ttl=5.0)
        free = broker.submit(make_job(label="free"))
        taken = broker.submit(make_job(label="taken"))
        # Claim the older job (claims scan in sorted id order).
        claim = broker.claim("w1")
        assert claim.job_id == free
        assert not broker.cancel(free)  # already executing somewhere
        assert broker.cancel(taken)
        assert broker.stats().queued == 0

    def test_fresh_lease_is_not_requeued(self, tmp_path):
        broker = JobBroker(tmp_path, lease_ttl=5.0)
        broker.submit(make_job())
        assert broker.claim("w1") is not None
        assert broker.requeue_expired() == []

    def test_lease_ttl_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="lease_ttl"):
            JobBroker(tmp_path, lease_ttl=0.0)

    def test_worker_liveness_census(self, tmp_path):
        broker = JobBroker(tmp_path, lease_ttl=5.0)
        assert broker.live_workers() == 0
        broker.worker_heartbeat("w1")
        broker.worker_heartbeat("w2")
        assert broker.live_workers() == 2
        broker.retire_worker("w1")
        assert broker.live_workers() == 1


# ---------------------------------------------------------------------------
# Crash recovery
# ---------------------------------------------------------------------------


class TestCrashRecovery:
    def test_expired_lease_requeues_job_for_a_second_worker(self, tmp_path):
        """A worker that claims a job and silently dies (no heartbeat,
        no completion) must lose the claim after the lease TTL, and a
        second worker must pick the job up and finish it."""
        broker = JobBroker(tmp_path, lease_ttl=0.3)
        job = make_job()
        job_id = broker.submit(job, key="k" * 64)

        doomed = broker.claim("doomed")
        assert doomed is not None
        # Lease still fresh: nobody can steal the job yet.
        assert broker.claim("w2") is None
        time.sleep(0.45)  # the heartbeat stops beating...

        rescued = broker.claim("w2")  # claim() requeues expired leases
        assert rescued is not None
        assert rescued.job_id == job_id
        assert rescued.worker == "w2"
        broker.complete(rescued, execute_job(rescued.job))
        assert broker.take_result(job_id).ok

    def test_completed_but_unretired_claim_is_cleaned_not_rerun(
        self, tmp_path
    ):
        """A worker that crashes *after* publishing its result but
        before retiring the claim must not cause a re-execution."""
        broker = JobBroker(tmp_path, lease_ttl=0.3)
        job_id = broker.submit(make_job())
        claim = broker.claim("w1")
        # Publish the result by hand, simulating a crash mid-complete:
        # the result file landed, the claim and lease did not unlink.
        broker._write_json(
            broker.results_dir / f"{job_id}.json",
            {"id": job_id, "outcome": execute_job(claim.job).to_dict()},
        )
        time.sleep(0.45)
        assert broker.requeue_expired() == []  # cleaned, not requeued
        assert broker.stats().claimed == 0
        assert broker.stats().queued == 0
        assert broker.take_result(job_id).ok

    def test_killed_worker_process_job_lands_exactly_once_in_cache(
        self, tmp_path
    ):
        """End to end: worker 1 (a real process) claims the only job
        and is SIGKILLed mid-execution; the lease expires, worker 2
        re-executes, and the sweep completes with the outcome cached
        exactly once."""
        broker_dir = tmp_path / "broker"
        cache_dir = tmp_path / "cache"
        broker = JobBroker(broker_dir, lease_ttl=0.4)
        # Slow enough to be killed mid-run, fast enough for a test.
        job = make_job(
            label="slow",
            environment="tests.helpers:sleepy_environment",
            environment_args=(2,),
        )

        def chaos() -> None:
            ctx = multiprocessing.get_context("spawn")
            victim = ctx.Process(
                target=run_worker,
                kwargs=dict(
                    broker=JobBroker(broker_dir, lease_ttl=0.4),
                    worker="victim",
                    poll=0.05,
                ),
            )
            victim.start()
            try:
                wait_until(
                    lambda: broker.stats().claimed > 0,
                    what="the victim to claim the job",
                )
                victim.kill()  # SIGKILL: no cleanup, lease goes stale
            finally:
                victim.join()
            run_worker(
                broker,
                worker="rescuer",
                max_jobs=1,
                poll=0.05,
            )

        saboteur = threading.Thread(target=chaos, daemon=True)
        saboteur.start()
        engine = ExplorationEngine(
            cache_dir=cache_dir,
            executor=BrokerExecutor(broker, poll=0.05, on_stall=None),
        )
        result = engine.explore([job])
        saboteur.join(timeout=60)
        assert not saboteur.is_alive()

        assert len(result.outcomes) == 1
        assert result.outcomes[0].ok, result.outcomes[0].error
        cache = ResultCache(cache_dir)
        assert len(cache) == 1  # exactly once, under the content key
        assert cache.get(job_key(job)).ok


# ---------------------------------------------------------------------------
# Batch records (wire format 2)
# ---------------------------------------------------------------------------


class TestBatchRecords:
    def batch_jobs(self):
        return [
            make_job(label=f"clock={clock:g}", clock=float(clock))
            for clock in (2, 4, 6)
        ]

    def test_batch_roundtrip_completes_member_by_member(self, tmp_path):
        broker = JobBroker(tmp_path, lease_ttl=5.0)
        jobs = self.batch_jobs()
        batch_id, member_ids = broker.submit_batch(
            [(job, f"k{index}" * 16) for index, job in enumerate(jobs)]
        )
        assert broker.stats().queued == 1  # one record for the batch

        claim = broker.claim("w1")
        assert claim is not None and claim.job_id == batch_id
        assert claim.members is not None
        assert [m.member_id for m in claim.members] == member_ids
        assert [m.job.label for m in claim.members] == [
            job.label for job in jobs
        ]
        assert broker.heartbeat(claim)
        for member in claim.members:
            broker.complete_member(claim, member, execute_job(member.job))
        # The claim retires with the last member; each result lands
        # under its own member id.
        assert broker.stats().claimed == 0
        for member_id in member_ids:
            outcome = broker.take_result(member_id)
            assert outcome is not None and outcome.ok

    def test_batch_rank_follows_highest_member_priority(self, tmp_path):
        broker = JobBroker(tmp_path, lease_ttl=5.0)
        broker.submit(make_job(label="single"))
        hot = make_job(label="hot")
        hot.priority = 10
        broker.submit_batch([(hot, ""), (make_job(label="cold"), "")])
        first = broker.claim("w1")
        assert first is not None and first.members is not None

    def test_cancel_withdraws_a_whole_unclaimed_batch(self, tmp_path):
        broker = JobBroker(tmp_path, lease_ttl=5.0)
        batch_id, _member_ids = broker.submit_batch(
            [(job, "") for job in self.batch_jobs()]
        )
        assert broker.cancel(batch_id)
        assert broker.stats().queued == 0
        assert broker.claim("w1") is None

    def test_kill_mid_batch_requeues_only_the_unfinished_tail(self, tmp_path):
        """The batch crash-recovery guarantee: a worker dying mid-batch
        forfeits only the corners it never ran.  Finished corners'
        results land exactly once — the rescuer must neither lose the
        tail nor re-execute the finished head."""
        broker = JobBroker(tmp_path, lease_ttl=0.3)
        jobs = self.batch_jobs()
        _batch_id, member_ids = broker.submit_batch(
            [(job, "") for job in jobs]
        )
        doomed = broker.claim("doomed")
        assert doomed is not None and len(doomed.members) == 3
        # The doomed worker finishes the first corner (publishing its
        # result and shrinking the claimed record), then dies silently
        # before starting the rest.
        first = doomed.members[0]
        broker.complete_member(doomed, first, execute_job(first.job))
        assert (broker.results_dir / f"{member_ids[0]}.json").exists()
        assert broker.stats().claimed == 1  # tail still held

        time.sleep(0.45)  # the heartbeat stops beating...
        rescued = broker.claim("rescuer")  # claim() requeues expired
        assert rescued is not None
        assert rescued.members is not None
        # Only the unfinished tail came back — the finished corner is
        # not in the rescued claim.
        assert [m.member_id for m in rescued.members] == member_ids[1:]
        for member in rescued.members:
            broker.complete_member(rescued, member, execute_job(member.job))

        # Every corner has exactly one result, attributed to the
        # worker that actually ran it: the head was never re-executed.
        producers = {}
        for member_id in member_ids:
            record = broker._read_json(
                broker.results_dir / f"{member_id}.json"
            )
            assert record is not None
            producers[member_id] = record["worker"]
            assert broker.take_result(member_id).ok
        assert producers[member_ids[0]] == "doomed"
        assert producers[member_ids[1]] == "rescuer"
        assert producers[member_ids[2]] == "rescuer"
        stats = broker.stats()
        assert (stats.queued, stats.claimed, stats.results) == (0, 0, 0)

    def test_killed_worker_process_mid_batch_sweep_completes(self, tmp_path):
        """End to end: a real worker process claims a 3-corner batch,
        is SIGKILLed after the first corner's result lands, and a
        rescuer finishes the tail — the sweep settles every corner
        exactly once and the cache holds all three outcomes."""
        broker_dir = tmp_path / "broker"
        cache_dir = tmp_path / "cache"
        broker = JobBroker(broker_dir, lease_ttl=0.4)
        jobs = [
            make_job(
                label=f"clock={clock:g}",
                clock=float(clock),
                environment="tests.helpers:sleepy_environment",
                environment_args=(1,),
            )
            for clock in (2, 4, 6)
        ]
        settled = []

        def chaos() -> None:
            ctx = multiprocessing.get_context("spawn")
            victim = ctx.Process(
                target=run_worker,
                kwargs=dict(
                    broker=JobBroker(broker_dir, lease_ttl=0.4),
                    worker="victim",
                    poll=0.05,
                ),
            )
            victim.start()
            try:
                wait_until(
                    lambda: len(settled) >= 1,
                    what="the first batch corner to settle",
                )
                victim.kill()  # SIGKILL mid-batch: tail never ran
            finally:
                victim.join()
            run_worker(
                broker,
                worker="rescuer",
                idle_timeout=5.0,
                poll=0.05,
            )

        saboteur = threading.Thread(target=chaos, daemon=True)
        saboteur.start()
        engine = ExplorationEngine(
            cache_dir=cache_dir,
            batch_size=3,
            executor=BrokerExecutor(broker, poll=0.05, on_stall=None),
        )
        result = engine.explore(jobs, on_outcome=settled.append)
        saboteur.join(timeout=90)
        assert not saboteur.is_alive()

        assert result.executed == 3
        assert len(result.outcomes) == 3
        assert all(o.ok for o in result.outcomes), [
            o.error for o in result.outcomes
        ]
        cache = ResultCache(cache_dir)
        for job in jobs:
            assert cache.get(job_key(job)).ok  # exactly once, by key


# ---------------------------------------------------------------------------
# Distributed sweeps: parity with the local pool
# ---------------------------------------------------------------------------


class TestDistributedSweep:
    def run_broker_sweep(self, jobs, broker, n_workers=2, **explore_kwargs):
        """Run *jobs* through the broker with in-process workers."""
        workers = [
            threading.Thread(
                target=run_worker,
                kwargs=dict(
                    broker=broker,
                    worker=f"w{index}",
                    idle_timeout=3.0,
                    poll=0.02,
                ),
                daemon=True,
            )
            for index in range(n_workers)
        ]
        for worker in workers:
            worker.start()
        engine = ExplorationEngine(
            use_cache=False,
            executor=BrokerExecutor(broker, poll=0.02, on_stall=None),
        )
        result = engine.explore(jobs, **explore_kwargs)
        for worker in workers:
            worker.join(timeout=30)
            assert not worker.is_alive()
        return result

    def test_two_worker_broker_sweep_matches_pool(self, tmp_path):
        """Acceptance: a 2-worker broker sweep on a shared directory
        produces the same ranked outcomes as --executor pool."""
        jobs = sweep_jobs("clock=2,3,4,6", "unroll=none,*:2,*:0")
        assert len(jobs) == 12
        pool = ExplorationEngine(workers=2, use_cache=False).explore(jobs)
        broker = JobBroker(tmp_path / "broker", lease_ttl=10.0)
        distributed = self.run_broker_sweep(jobs, broker)

        assert distributed.executor == "broker"
        assert len(distributed.outcomes) == len(pool.outcomes) == 12
        assert [o.label for o in distributed.ranked()] == [
            o.label for o in pool.ranked()
        ]
        assert [o.score() for o in distributed.ranked()] == [
            o.score() for o in pool.ranked()
        ]
        # Nothing lost, nothing left behind in the broker.
        stats = broker.stats()
        assert (stats.queued, stats.claimed, stats.results) == (0, 0, 0)

    def test_goal_early_exit_withdraws_unclaimed_jobs(self, tmp_path):
        jobs = sweep_jobs("clock=2,3,4,6")
        broker = JobBroker(tmp_path / "broker", lease_ttl=10.0)
        # One deliberately slow worker so the queue drains gradually
        # and a satisfied goal leaves genuinely unclaimed jobs.
        result = self.run_broker_sweep(
            jobs, broker, n_workers=1, target_latency=1000.0
        )
        assert result.goal_met
        assert result.executed >= 1
        assert result.executed + result.skipped == len(jobs)
        assert broker.stats().queued == 0  # withdrawn, not abandoned

    def test_draining_withdraws_job_requeued_after_worker_death(
        self, tmp_path
    ):
        """Regression: with the goal already met, a claimed job whose
        worker dies is requeued — and must then be *withdrawn* by the
        draining executor, not waited on forever for a worker that may
        never come."""
        broker = JobBroker(tmp_path, lease_ttl=0.3)
        executor = BrokerExecutor(broker, poll=0.05, on_stall=None)
        executor.open(2)
        executor.submit((0, ""), make_job(label="done"))
        executor.submit((1, ""), make_job(label="orphaned", clock=2.0))

        finisher = broker.claim("finisher")
        broker.complete(finisher, execute_job(finisher.job))
        token, outcome = executor.collect()
        assert token == (0, "")
        assert outcome.ok

        doomed = broker.claim("doomed")  # claims the second job...
        assert doomed is not None
        assert executor.cancel_pending() == []  # ...so nothing cancels
        # The worker dies silently; once its lease expires, the
        # draining collect must requeue + withdraw rather than hang.
        start = time.monotonic()
        assert executor.collect() is None
        assert time.monotonic() - start < 10.0
        assert executor.cancel_pending() == [(1, "")]
        assert executor.outstanding == 0
        assert broker.stats().queued == 0

    def test_bad_job_file_settles_as_environment_failure(self, tmp_path):
        broker = JobBroker(tmp_path, lease_ttl=5.0)
        job_id = broker.submit(make_job())
        # Corrupt the queued job in place.
        (broker.queue_dir / f"{job_id}.json").write_text(
            '{"id": "x", "job": {"script": 7}}', encoding="utf-8"
        )
        report = run_worker(broker, max_jobs=None, idle_timeout=0.2, poll=0.02)
        assert report.failed_claims == 1
        outcome = broker.take_result(job_id)
        assert outcome is not None
        assert not outcome.ok
        assert outcome.error_kind == ERROR_KIND_ENVIRONMENT


# ---------------------------------------------------------------------------
# The CLI surface: repro dse-worker + repro dse --executor broker
# ---------------------------------------------------------------------------


class TestWorkerCli:
    def test_flag_validation(self, capsys):
        assert main(["dse-worker", "--max-jobs", "0"]) == 2
        assert "--max-jobs" in capsys.readouterr().err
        assert main(["dse-worker", "--lease-ttl", "0"]) == 2
        assert "--lease-ttl" in capsys.readouterr().err
        assert main(["dse-worker", "--poll", "0"]) == 2
        assert "--poll" in capsys.readouterr().err

    def test_cache_dir_flag_derives_the_broker_dir(self, tmp_path, capsys):
        # A worker started with the sweep's --cache-dir rendezvouses
        # on <cache>/broker without repeating --broker-dir.
        broker = JobBroker(tmp_path / "cache" / "broker", lease_ttl=5.0)
        broker.submit(make_job())
        status = main(
            [
                "dse-worker",
                "--cache-dir", str(tmp_path / "cache"),
                "--idle-timeout", "0.3",
                "--poll", "0.02",
                "--quiet",
            ]
        )
        assert status == 0
        assert "executed 1 job(s)" in capsys.readouterr().out

    def test_worker_drains_queue_and_reports(self, tmp_path, capsys):
        broker = JobBroker(tmp_path, lease_ttl=5.0)
        for clock in (2.0, 4.0):
            broker.submit(make_job(label=f"clock={clock:g}", clock=clock))
        status = main(
            [
                "dse-worker",
                "--broker-dir", str(tmp_path),
                "--idle-timeout", "0.3",
                "--poll", "0.02",
                "--quiet",
            ]
        )
        assert status == 0
        assert "executed 2 job(s)" in capsys.readouterr().out
        assert broker.stats().results == 2

    def test_end_to_end_cli_broker_sweep(self, tmp_path):
        """The CI smoke test in miniature: two real `repro dse-worker`
        subprocesses serve a 12-point `repro dse --executor broker`
        sweep with zero lost jobs."""
        source_path = tmp_path / "sweep.c"
        source_path.write_text(SWEEP_SRC, encoding="utf-8")
        broker_dir = tmp_path / "broker"
        repo_src = str(Path(__file__).resolve().parent.parent / "src")
        import os

        env = dict(os.environ)
        env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
        workers = [
            subprocess.Popen(
                [
                    sys.executable, "-m", "repro", "dse-worker",
                    "--broker-dir", str(broker_dir),
                    "--idle-timeout", "10",
                    "--poll", "0.05",
                    "--quiet",
                ],
                env=env,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
            )
            for _ in range(2)
        ]
        try:
            sweep = subprocess.run(
                [
                    sys.executable, "-m", "repro", "dse",
                    str(source_path),
                    "--vary", "clock=2,3,4,6",
                    "--vary", "unroll=none,*:2,*:0",
                    "--executor", "broker",
                    "--broker-dir", str(broker_dir),
                    "--no-cache",
                    "--output", "total",
                ],
                env=env,
                capture_output=True,
                text=True,
                timeout=300,
            )
        finally:
            for worker in workers:
                try:
                    worker.wait(timeout=60)
                except subprocess.TimeoutExpired:
                    worker.kill()
                    worker.wait()
        assert sweep.returncode == 0, sweep.stderr
        assert "12 design points: 0 cache hits, 12 synthesized" in sweep.stdout
        assert "(broker)" in sweep.stdout
