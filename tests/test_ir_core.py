"""Unit tests for operations, basic blocks and the HTG."""

import pytest

from repro.frontend.parser import parse_expression
from repro.frontend.ast_nodes import ArrayRef, IntLit, Var
from repro.ir.basic_block import BasicBlock
from repro.ir.builder import design_from_source
from repro.ir.htg import (
    BlockNode,
    BreakNode,
    IfNode,
    LoopNode,
    normalize_blocks,
    parent_map,
    replace_node,
    walk_nodes,
)
from repro.ir.operations import Operation, OpKind


def assign(target, source):
    return Operation.assign(Var(name=target), parse_expression(source))


class TestOperation:
    def test_assign_constructor(self):
        op = assign("x", "a + 1")
        assert op.kind is OpKind.ASSIGN
        assert op.reads() == {"a"}
        assert op.writes() == {"x"}

    def test_assign_rejects_bad_target(self):
        with pytest.raises(TypeError):
            Operation.assign(IntLit(value=1), IntLit(value=2))

    def test_array_store_reads_index(self):
        op = Operation.assign(
            ArrayRef(name="Mark", index=parse_expression("i - 1")),
            parse_expression("1"),
        )
        assert op.reads() == {"i"}
        assert op.writes() == set()
        assert op.arrays_written() == {"Mark"}

    def test_array_read_detection(self):
        op = assign("x", "buf[j] + 1")
        assert op.arrays_read() == {"buf"}

    def test_call_detection(self):
        assert assign("x", "f(1)").has_call()
        assert not assign("x", "a + 1").has_call()

    def test_is_copy(self):
        assert assign("x", "y").is_copy()
        assert not assign("x", "y + 0").is_copy()

    def test_is_constant_assign(self):
        assert assign("x", "5").is_constant_assign()
        assert not assign("x", "y").is_constant_assign()

    def test_clone_fresh_uid(self):
        op = assign("x", "a + b")
        copy = op.clone()
        assert copy.uid != op.uid
        assert str(copy) == str(op)

    def test_str_flags(self):
        op = assign("x", "y")
        op.is_speculated = True
        assert "spec" in str(op)
        op2 = assign("z", "w")
        op2.is_wire_copy = True
        assert "wire-copy" in str(op2)

    def test_return_op(self):
        op = Operation.ret(parse_expression("x"))
        assert op.kind is OpKind.RETURN
        assert op.reads() == {"x"}
        assert op.writes() == set()

    def test_uids_unique(self):
        ops = [assign("x", "1") for _ in range(10)]
        assert len({op.uid for op in ops}) == 10


class TestBasicBlock:
    def test_append_and_iter(self):
        block = BasicBlock()
        op = assign("x", "1")
        block.append(op)
        assert list(block) == [op]
        assert len(block) == 1

    def test_insert_before_after(self):
        block = BasicBlock()
        a, b, c = assign("a", "1"), assign("b", "2"), assign("c", "3")
        block.append(b)
        block.insert_before(b, a)
        block.insert_after(b, c)
        assert [op.target.name for op in block] == ["a", "b", "c"]

    def test_remove_by_identity(self):
        block = BasicBlock()
        a1 = assign("x", "1")
        a2 = assign("x", "1")  # equal text, different object
        block.append(a1)
        block.append(a2)
        block.remove(a1)
        assert list(block) == [a2]

    def test_remove_missing_raises(self):
        block = BasicBlock()
        with pytest.raises(ValueError):
            block.remove(assign("x", "1"))

    def test_replace(self):
        block = BasicBlock()
        old = assign("x", "1")
        new = assign("y", "2")
        block.append(old)
        block.replace(old, new)
        assert list(block) == [new]

    def test_read_write_sets(self):
        block = BasicBlock(ops=[assign("x", "a"), assign("y", "x + b")])
        assert block.variables_read() == {"a", "x", "b"}
        assert block.variables_written() == {"x", "y"}

    def test_upward_exposed_reads(self):
        block = BasicBlock(ops=[assign("x", "a"), assign("y", "x + b")])
        # x is defined before its read, so only a and b are exposed.
        assert block.upward_exposed_reads() == {"a", "b"}

    def test_clone_deep(self):
        block = BasicBlock(ops=[assign("x", "a")])
        copy = block.clone()
        assert copy.bb_id != block.bb_id
        assert copy.ops[0] is not block.ops[0]

    def test_labels_unique(self):
        b1, b2 = BasicBlock(), BasicBlock()
        assert b1.label != b2.label


class TestHTGStructure:
    def test_walk_nodes_preorder(self):
        inner = BlockNode(BasicBlock(ops=[assign("x", "1")]))
        if_node = IfNode(cond=parse_expression("c"), then_branch=[inner])
        top = BlockNode(BasicBlock(ops=[assign("c", "1")]))
        nodes = list(walk_nodes([top, if_node]))
        assert nodes == [top, if_node, inner]

    def test_parent_map(self):
        inner = BlockNode(BasicBlock())
        if_node = IfNode(cond=parse_expression("c"), then_branch=[inner])
        body = [if_node]
        parents = parent_map(body)
        assert parents[if_node.uid][0] is None
        assert parents[inner.uid][0] is if_node

    def test_replace_node_in_branch(self):
        inner = BlockNode(BasicBlock(ops=[assign("x", "1")]))
        replacement = BlockNode(BasicBlock(ops=[assign("y", "2")]))
        if_node = IfNode(cond=parse_expression("c"), then_branch=[inner])
        body = [if_node]
        replace_node(body, inner, [replacement])
        assert if_node.then_branch == [replacement]

    def test_replace_node_missing_raises(self):
        body = [BlockNode(BasicBlock())]
        with pytest.raises(ValueError):
            replace_node(body, BlockNode(BasicBlock()), [])

    def test_normalize_merges_adjacent_blocks(self):
        a = BlockNode(BasicBlock(ops=[assign("x", "1")]))
        b = BlockNode(BasicBlock(ops=[assign("y", "2")]))
        merged = normalize_blocks([a, b])
        assert len(merged) == 1
        assert len(merged[0].ops) == 2

    def test_normalize_drops_empty_blocks(self):
        empty = BlockNode(BasicBlock())
        keep = BlockNode(BasicBlock(ops=[assign("x", "1")]))
        assert normalize_blocks([empty, keep]) == [keep]

    def test_normalize_recurses_into_branches(self):
        then = [BlockNode(BasicBlock()), BlockNode(BasicBlock(ops=[assign("x", "1")]))]
        if_node = IfNode(cond=parse_expression("c"), then_branch=then)
        normalize_blocks([if_node])
        assert len(if_node.then_branch) == 1

    def test_loop_clone_deep(self):
        loop = LoopNode(
            kind="for",
            cond=parse_expression("i < 3"),
            body=[BlockNode(BasicBlock(ops=[assign("x", "i")]))],
            init=[assign("i", "0")],
            update=[assign("i", "i + 1")],
        )
        copy = loop.clone()
        assert copy.uid != loop.uid
        assert copy.init[0] is not loop.init[0]
        assert copy.body[0].ops[0] is not loop.body[0].ops[0]

    def test_loop_kind_validation(self):
        with pytest.raises(ValueError):
            LoopNode(kind="until", cond=None)

    def test_break_clone(self):
        node = BreakNode()
        assert node.clone().uid != node.uid


class TestFunctionHTG:
    def test_counts(self, mini_ild_design):
        main = mini_ild_design.main
        assert main.count_operations() > 0
        assert main.count_basic_blocks() > 0

    def test_variables_includes_conditions(self, mini_ild_design):
        main = mini_ild_design.main
        names = main.variables()
        assert {"i", "NextStartByte"} <= names

    def test_fresh_variable_avoids_collisions(self, mini_ild_design):
        main = mini_ild_design.main
        fresh = main.fresh_variable("i")
        assert fresh != "i"
        assert fresh in main.locals

    def test_clone_independent(self, mini_ild_design):
        copy = mini_ild_design.clone()
        copy.main.body.clear()
        assert mini_ild_design.main.body

    def test_walk_operations_covers_loop_headers(self, simple_loop_design):
        ops = list(simple_loop_design.main.walk_operations())
        texts = [str(op) for op in ops]
        assert any("i = 0" in t for t in texts)
        assert any("i = (i + 1)" in t for t in texts)


class TestDesign:
    def test_external_inference(self, mini_ild_design):
        assert "LengthContribution_1" in mini_ild_design.external_functions
        assert "CalculateLength" not in mini_ild_design.external_functions

    def test_called_functions(self, mini_ild_design):
        called = mini_ild_design.called_functions(mini_ild_design.main)
        assert "CalculateLength" in called

    def test_function_lookup_error(self, mini_ild_design):
        with pytest.raises(KeyError):
            mini_ild_design.function("nope")
