"""Tests for the shared cache service (repro.dse.service): locking,
stats, LRU garbage collection, the ``repro cache`` CLI, and safe
concurrent access to one cache directory from multiple writers."""

from __future__ import annotations

import json
import multiprocessing
import os
import threading
import time

import pytest

from repro.cli import main
from repro.dse import (
    ExplorationEngine,
    grid_from_specs,
    jobs_from_grid,
)
from repro.dse.cache import ResultCache
from repro.dse.service import (
    CacheLockTimeout,
    CacheService,
    DirectoryLock,
    INDEX_NAME,
    MAX_BYTES_ENV_VAR,
    maybe_auto_gc,
)
from repro.spark import SynthesisOutcome
from repro.transforms.base import SynthesisScript

KEY_A = "a" * 64
KEY_B = "b" * 64
KEY_C = "c" * 64


def put_outcome(root, key, label="x", pad=0) -> None:
    cache = ResultCache(root)
    cache.put(
        key, SynthesisOutcome(label=label, vhdl="-" * pad)
    )


def entry_path(root, key):
    """Where *key*'s outcome entry lives on the default (sharded
    filesystem) backend."""
    return ResultCache(root).path_for(key)


# ---------------------------------------------------------------------------
# Concurrent access (the temp-file rename path in ResultCache.put)
# ---------------------------------------------------------------------------


def _hammer_cache(args):
    """Worker: repeatedly write and read back one shared key.  Returns
    the number of reads that came back missing or torn (must be 0 once
    the key exists: os.replace is atomic)."""
    root, key, worker_id, rounds = args
    cache = ResultCache(root)
    bad = 0
    for round_number in range(rounds):
        cache.put(
            key,
            SynthesisOutcome(
                label=f"w{worker_id}-r{round_number}",
                num_states=round_number,
            ),
        )
        recalled = cache.get(key)
        if recalled is None:  # corrupt entries drop and read as None
            bad += 1
    return bad


class TestConcurrentAccess:
    def test_simultaneous_writers_never_corrupt_an_entry(self, tmp_path):
        """Two (and more) engines writing the same key at once must
        leave a readable, well-formed entry — every read between
        writes must succeed."""
        workers = 4
        rounds = 50
        with multiprocessing.Pool(processes=workers) as pool:
            torn_reads = pool.map(
                _hammer_cache,
                [(str(tmp_path), KEY_A, n, rounds) for n in range(workers)],
            )
        assert torn_reads == [0] * workers
        # The survivor is one of the writers' records, intact.
        final = ResultCache(tmp_path).get(KEY_A)
        assert final is not None
        assert final.label.startswith("w")
        # Exactly one entry file, no leftover temp files (entries
        # live inside the shard directories).
        assert len(list(tmp_path.rglob("*.json"))) == 1
        assert list(tmp_path.rglob(".tmp-*")) == []

    def test_eviction_races_read_as_misses(self, tmp_path):
        # gc removing an entry mid-sweep is an ordinary miss for any
        # concurrent reader, never an error.
        put_outcome(tmp_path, KEY_A)
        service = CacheService(tmp_path, max_bytes=0)
        service.gc()
        assert ResultCache(tmp_path).get(KEY_A) is None


# ---------------------------------------------------------------------------
# The directory lock
# ---------------------------------------------------------------------------


class TestDirectoryLock:
    def test_exclusion_and_timeout(self, tmp_path):
        with DirectoryLock(tmp_path):
            blocked = DirectoryLock(tmp_path, timeout=0.2, poll=0.02)
            with pytest.raises(CacheLockTimeout):
                blocked.acquire()

    def test_release_lets_the_next_holder_in(self, tmp_path):
        lock = DirectoryLock(tmp_path)
        lock.acquire()
        lock.release()
        with DirectoryLock(tmp_path, timeout=0.2):
            pass

    def test_lock_is_reacquirable_across_threads(self, tmp_path):
        order = []

        def hold_then_release():
            with DirectoryLock(tmp_path, timeout=5.0):
                order.append("second")

        with DirectoryLock(tmp_path):
            worker = threading.Thread(target=hold_then_release)
            worker.start()
            time.sleep(0.1)
            order.append("first")
        worker.join(timeout=5.0)
        assert order == ["first", "second"]


# ---------------------------------------------------------------------------
# Stats, clear, gc, index
# ---------------------------------------------------------------------------


class TestCacheService:
    def test_stats_counts_entries_and_bytes(self, tmp_path):
        put_outcome(tmp_path, KEY_A)
        put_outcome(tmp_path, KEY_B)
        stats = CacheService(tmp_path, max_bytes=10_000).stats()
        assert stats.entries == 2
        assert stats.total_bytes > 0
        assert 0.0 < stats.utilization
        assert "entries:     2" in stats.describe()

    def test_stats_ignores_foreign_files(self, tmp_path):
        put_outcome(tmp_path, KEY_A)
        (tmp_path / "notes.json").write_text("{}", encoding="utf-8")
        (tmp_path / INDEX_NAME).write_text("{}", encoding="utf-8")
        assert CacheService(tmp_path).stats().entries == 1

    def test_clear_removes_everything(self, tmp_path):
        put_outcome(tmp_path, KEY_A)
        put_outcome(tmp_path, KEY_B)
        service = CacheService(tmp_path)
        service.reindex()
        assert service.clear() == 2
        assert service.stats().entries == 0
        assert not (tmp_path / INDEX_NAME).exists()

    def test_gc_evicts_least_recently_used_first(self, tmp_path):
        # Three keys in the *same* shard (gc budgets are per-shard on
        # the default backend, so LRU ordering is a within-shard
        # property; the budget below gives their shard room for two).
        key_old, key_mid, key_new = (
            "a" + "0" * 63,
            "a" + "1" * 63,
            "a" + "2" * 63,
        )
        put_outcome(tmp_path, key_old, pad=512)
        put_outcome(tmp_path, key_mid, pad=512)
        put_outcome(tmp_path, key_new, pad=512)
        now = time.time()
        os.utime(entry_path(tmp_path, key_old), (now - 300, now - 300))
        os.utime(entry_path(tmp_path, key_mid), (now - 200, now - 200))
        os.utime(entry_path(tmp_path, key_new), (now - 100, now - 100))
        entry_bytes = entry_path(tmp_path, key_new).stat().st_size

        # 16 shards: give the whole cache 16x a two-entry budget so
        # the shard holding all three keys gets exactly 2 * entry_bytes.
        service = CacheService(tmp_path, max_bytes=16 * 2 * entry_bytes)
        report = service.gc()
        assert report.examined == 3
        assert report.evicted == 1
        assert report.freed_bytes > 0
        # Per-shard accounting reconciles with the headline totals.
        assert sum(s.budget for s in report.shards) == service.max_bytes
        assert sum(s.evicted for s in report.shards) == report.evicted
        # The oldest (least recently used) entry went first.
        assert not entry_path(tmp_path, key_old).exists()
        assert entry_path(tmp_path, key_mid).exists()
        assert entry_path(tmp_path, key_new).exists()

    def test_cache_get_refreshes_recency(self, tmp_path):
        # A hit must touch the entry so gc sees *use*, not just write.
        put_outcome(tmp_path, KEY_A)
        stale = time.time() - 1000
        os.utime(entry_path(tmp_path, KEY_A), (stale, stale))
        assert ResultCache(tmp_path).get(KEY_A) is not None
        assert entry_path(tmp_path, KEY_A).stat().st_mtime > stale + 500

    def test_gc_writes_the_index(self, tmp_path):
        put_outcome(tmp_path, KEY_A)
        service = CacheService(tmp_path, max_bytes=10_000)
        service.gc()
        index = service.read_index()
        assert index is not None
        assert KEY_A in index["entries"]
        assert index["total_bytes"] > 0

    def test_gc_sweeps_stale_temp_files(self, tmp_path):
        orphan = tmp_path / ".tmp-orphan.json"
        orphan.write_text("{", encoding="utf-8")
        ancient = time.time() - 7200
        os.utime(orphan, (ancient, ancient))
        fresh = tmp_path / ".tmp-live.json"
        fresh.write_text("{", encoding="utf-8")
        report = CacheService(tmp_path, max_bytes=10_000).gc()
        assert report.stale_temps == 1
        assert not orphan.exists()
        assert fresh.exists()  # an in-flight writer is left alone

    def test_max_bytes_from_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv(MAX_BYTES_ENV_VAR, "1234")
        assert CacheService(tmp_path).max_bytes == 1234
        monkeypatch.delenv(MAX_BYTES_ENV_VAR)
        assert CacheService(tmp_path).max_bytes > 1234  # the default
        # A typo'd budget degrades to the default instead of crashing.
        monkeypatch.setenv(MAX_BYTES_ENV_VAR, "256MB")
        assert CacheService(tmp_path).max_bytes > 1234
        # A non-positive budget would make every auto-gc wipe the
        # whole shared cache: it degrades to the default too.
        monkeypatch.setenv(MAX_BYTES_ENV_VAR, "-1")
        assert CacheService(tmp_path).max_bytes > 1234
        monkeypatch.setenv(MAX_BYTES_ENV_VAR, "0")
        assert CacheService(tmp_path).max_bytes > 1234

    def test_fast_stats_answer_from_the_index(self, tmp_path):
        put_outcome(tmp_path, KEY_A)
        service = CacheService(tmp_path, max_bytes=10_000)
        service.reindex()
        put_outcome(tmp_path, KEY_B)  # not yet indexed
        assert service.stats().entries == 2  # live scan sees both
        assert service.stats(fast=True).entries == 1  # index is stale
        # Without an index, fast stats fall back to the live scan.
        (tmp_path / INDEX_NAME).unlink()
        assert service.stats(fast=True).entries == 2

    def test_stale_spin_lock_is_broken(self, tmp_path):
        # The non-flock fallback: a lock file abandoned by a crashed
        # holder must not wedge maintenance forever.
        abandoned = tmp_path / ".lock.pid"
        abandoned.write_text("99999", encoding="utf-8")
        ancient = time.time() - 4000
        os.utime(abandoned, (ancient, ancient))
        lock = DirectoryLock(tmp_path, timeout=1.0, stale_after=300.0)
        lock._break_stale_spin_lock(abandoned)
        assert not abandoned.exists()
        # A fresh lock file is left alone (its holder is alive).
        fresh = tmp_path / ".lock.pid"
        fresh.write_text("99999", encoding="utf-8")
        lock._break_stale_spin_lock(fresh)
        assert fresh.exists()

    def test_auto_gc_only_runs_when_bounded(self, tmp_path, monkeypatch):
        put_outcome(tmp_path, KEY_A)
        monkeypatch.delenv(MAX_BYTES_ENV_VAR, raising=False)
        assert maybe_auto_gc(tmp_path) is None
        monkeypatch.setenv(MAX_BYTES_ENV_VAR, "0")
        # An unparseable/zero budget still never raises.
        report = maybe_auto_gc(tmp_path)
        assert report is None or report.evicted >= 0

    def test_sweep_honors_cache_size_budget(self, tmp_path, monkeypatch):
        """End to end: a bounded shared cache stays bounded across
        engine sweeps (the engine gc's opportunistically)."""
        monkeypatch.setenv(MAX_BYTES_ENV_VAR, "600")
        jobs = jobs_from_grid(
            "int x;\nx = 1 + 2;",
            grid_from_specs(["clock=2,3,4,6"]),
            base_script=SynthesisScript(output_scalars={"x"}),
        )
        ExplorationEngine(cache_dir=tmp_path).explore(jobs)
        stats = CacheService(tmp_path).stats()
        assert stats.total_bytes <= 600


# ---------------------------------------------------------------------------
# The `repro cache` CLI
# ---------------------------------------------------------------------------


class TestCacheCli:
    def test_stats(self, tmp_path, capsys):
        put_outcome(tmp_path, KEY_A)
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "entries:     1" in out

    def test_clear(self, tmp_path, capsys):
        put_outcome(tmp_path, KEY_A)
        put_outcome(tmp_path, KEY_B)
        assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
        assert "removed 2" in capsys.readouterr().out
        assert CacheService(tmp_path).stats().entries == 0

    def test_non_positive_max_bytes_is_rejected(self, tmp_path, capsys):
        # `gc --max-bytes 0` would silently evict the entire cache.
        put_outcome(tmp_path, KEY_A)
        for bad in ("0", "-1"):
            status = main(
                ["cache", "gc", "--cache-dir", str(tmp_path),
                 "--max-bytes", bad]
            )
            assert status == 2
            assert "positive" in capsys.readouterr().err
        assert CacheService(tmp_path).stats().entries == 1  # untouched

    def test_gc_with_budget(self, tmp_path, capsys):
        put_outcome(tmp_path, KEY_A, pad=512)
        put_outcome(tmp_path, KEY_B, pad=512)
        status = main(
            ["cache", "gc", "--cache-dir", str(tmp_path), "--max-bytes", "1"]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "evicted 2" in out
        assert CacheService(tmp_path).stats().entries == 0

    def test_respects_cache_env_var(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_DSE_CACHE", str(tmp_path))
        put_outcome(tmp_path, KEY_A)
        assert main(["cache", "stats"]) == 0
        assert "entries:     1" in capsys.readouterr().out

    def test_bare_cwd_cache_dir_is_rejected(self, tmp_path, monkeypatch, capsys):
        # Regression guard: "", "." and "./" --cache-dir spellings must
        # never make destructive maintenance operate on the cwd.
        monkeypatch.chdir(tmp_path)
        for spelling in ("", ".", "./"):
            assert main(["cache", "clear", "--cache-dir", spelling]) == 2
            assert "must name a real cache" in capsys.readouterr().err
        assert list(tmp_path.iterdir()) == []  # no .lock, no index
        # An explicit cwd-relative directory is fine.
        assert main(["cache", "stats", "--cache-dir", "./cache"]) == 0

    def test_fast_stats_flag(self, tmp_path, capsys):
        put_outcome(tmp_path, KEY_A)
        main(["cache", "gc", "--cache-dir", str(tmp_path)])
        capsys.readouterr()
        status = main(
            ["cache", "stats", "--cache-dir", str(tmp_path), "--fast"]
        )
        assert status == 0
        assert "entries:     1" in capsys.readouterr().out

    def test_index_is_json(self, tmp_path):
        put_outcome(tmp_path, KEY_A)
        main(["cache", "gc", "--cache-dir", str(tmp_path)])
        raw = (tmp_path / INDEX_NAME).read_text(encoding="utf-8")
        assert KEY_A in json.loads(raw)["entries"]
