"""The static verifier (:mod:`repro.analysis.verifier`).

Two kinds of evidence: clean flows must verify silently at every
level, and each invariant check must fire on a *deliberately
corrupted* artifact — a mutated operand, a dropped guard, two
overlapping register live ranges — naming the invariant and the
pass/stage that broke it.  The DSE half proves verifier failures are
classified as ``error_kind="verifier"`` and never poison the cache.
"""

import pytest

from repro.analysis.verifier import (
    BINDING_FUS,
    BINDING_REGISTERS,
    DEF_BEFORE_USE,
    HTG_STRUCTURE,
    SCHEDULE_CHAINING,
    SCHEDULE_RESOURCES,
    SCHEDULE_STRUCTURE,
    SCHEDULE_TIMING,
    SPECULATION,
    WIRE_COPY,
    VerifierError,
    check_design,
    verify_binding,
    verify_design,
    verify_schedule,
)
from repro.frontend.ast_nodes import ArrayRef, Call, Var
from repro.ir.builder import design_from_source
from repro.scheduler.resources import ResourceAllocation
from repro.scheduler.schedule import IfItem, OpItem
from repro.spark import ERROR_KIND_VERIFIER, SparkSession, SynthesisJob
from repro.transforms.base import Pass, PassManager, SynthesisScript
from tests.helpers import CONDITIONAL_SRC, FUNCTION_SRC, SIMPLE_LOOP_SRC


# Operand values arrive through undeclared input scalars, so constant
# folding cannot collapse the datapath (schedule fixtures need real
# chained ops, not `f = 14`).
INPUT_COND_SRC = """
int t1; int t2; int t3; int f;
t1 = a + b;
if (cond) {
  t2 = t1;
  t3 = c + d;
} else {
  t2 = e;
  t3 = c - d;
}
f = t2 + t3;
"""


def synthesize(source, script=None, **run_kwargs):
    session = SparkSession(source, script=script or SynthesisScript())
    result = session.run(bind=True, emit=False, **run_kwargs)
    return session, result


def invariants_of(violations):
    return {violation.invariant for violation in violations}


# ---------------------------------------------------------------------------
# Clean flows verify silently
# ---------------------------------------------------------------------------


class TestCleanFlows:
    @pytest.mark.parametrize(
        "source", [CONDITIONAL_SRC, SIMPLE_LOOP_SRC, FUNCTION_SRC]
    )
    def test_verify_each_full_flow(self, source):
        synthesize(source, verify=True)

    def test_fresh_design_has_no_violations(self):
        design = design_from_source(CONDITIONAL_SRC)
        assert verify_design(design) == []

    def test_schedule_and_binding_clean(self):
        _, result = synthesize(SIMPLE_LOOP_SRC)
        assert verify_schedule(result.state_machine) == []
        assert (
            verify_binding(
                result.state_machine,
                result.lifetimes,
                result.register_binding,
                result.fu_binding,
            )
            == []
        )


# ---------------------------------------------------------------------------
# Design-level corruptions
# ---------------------------------------------------------------------------


class TestDesignCorruptions:
    def test_mutated_operand_breaks_def_before_use(self):
        # `a = 1; b = a;` with the first op's RHS swapped to read `b`:
        # b *is* written later (so it is not an entry input), but no
        # definition reaches the read.
        design = design_from_source("int a; int b; a = 1; b = a;")
        writer = next(
            op for op in design.main.walk_operations() if "a" in op.writes()
        )
        writer.expr = Var(name="b")
        violations = verify_design(design, invariants=[DEF_BEFORE_USE])
        assert invariants_of(violations) == {DEF_BEFORE_USE}
        assert "`b`" in violations[0].message

    def test_speculated_array_store_is_illegal(self):
        design = design_from_source(SIMPLE_LOOP_SRC)
        store = next(
            op
            for op in design.main.walk_operations()
            if op.arrays_written()
        )
        store.is_speculated = True
        violations = verify_design(design, invariants=[SPECULATION])
        assert invariants_of(violations) == {SPECULATION}

    def test_speculated_impure_call_is_illegal(self):
        design = design_from_source(FUNCTION_SRC)
        caller = next(
            op for op in design.main.walk_operations() if "out" in op.writes()
        )
        caller.is_speculated = True
        # `helper` is a known internal function but was not declared
        # pure, so speculating the call is illegal.
        violations = verify_design(
            design, pure_functions=set(), invariants=[SPECULATION]
        )
        assert invariants_of(violations) == {SPECULATION}
        assert "helper" in violations[0].message

    def test_wire_copy_flag_on_non_copy(self):
        design = design_from_source(CONDITIONAL_SRC)
        op = next(
            op for op in design.main.walk_operations() if "f" in op.writes()
        )
        op.is_wire_copy = True
        violations = verify_design(design, invariants=[WIRE_COPY])
        assert invariants_of(violations) == {WIRE_COPY}
        assert violations[0].op_uid == op.uid

    def test_duplicate_uid(self):
        design = design_from_source(CONDITIONAL_SRC)
        ops = list(design.main.walk_operations())
        ops[1].uid = ops[0].uid
        violations = verify_design(design, invariants=[HTG_STRUCTURE])
        assert invariants_of(violations) == {HTG_STRUCTURE}
        assert "not unique" in violations[0].message

    def test_unknown_callee(self):
        design = design_from_source(CONDITIONAL_SRC)
        op = next(
            op for op in design.main.walk_operations() if "f" in op.writes()
        )
        op.expr = Call(name="mystery", args=[Var(name="t2")])
        violations = verify_design(design, invariants=[HTG_STRUCTURE])
        assert invariants_of(violations) == {HTG_STRUCTURE}
        assert "mystery" in violations[0].message

    def test_undeclared_array(self):
        design = design_from_source(CONDITIONAL_SRC)
        op = next(
            op for op in design.main.walk_operations() if "f" in op.writes()
        )
        op.target = ArrayRef(name="phantom", index=Var(name="t2"))
        violations = verify_design(design, invariants=[HTG_STRUCTURE])
        assert invariants_of(violations) == {HTG_STRUCTURE}
        assert "phantom" in violations[0].message

    def test_check_design_raises_with_context(self):
        design = design_from_source(CONDITIONAL_SRC)
        op = next(
            op for op in design.main.walk_operations() if "f" in op.writes()
        )
        op.is_wire_copy = True
        with pytest.raises(VerifierError) as excinfo:
            check_design(design, context="after pass `bogus`")
        assert "after pass `bogus`" in str(excinfo.value)
        assert excinfo.value.invariants == {WIRE_COPY}
        assert excinfo.value.violations[0].op_uid == op.uid


# ---------------------------------------------------------------------------
# Schedule-level corruptions
# ---------------------------------------------------------------------------


def _all_writes(items):
    names = set()
    for item in items:
        if isinstance(item, OpItem):
            names |= item.op.writes() | item.op.arrays_written()
        elif isinstance(item, IfItem):
            names |= _all_writes(item.then_items)
            names |= _all_writes(item.else_items)
    return names


def _chained_reader(sm):
    """An (state, OpItem) pair whose op reads a value produced earlier
    in the same state — the chaining contract's subject.  Producers may
    sit inside a conditional's branches (steered through the join)."""
    for state in sm.states.values():
        written = set()
        for item in state.items:
            if isinstance(item, OpItem):
                if (item.op.reads() | item.op.arrays_read()) & written:
                    return state, item
            written |= _all_writes([item])
    raise AssertionError("no chained reader in the schedule")


class TestScheduleCorruptions:
    def make_sm(self):
        session = SparkSession(
            INPUT_COND_SRC, script=SynthesisScript(output_scalars={"f"})
        )
        session.transform()
        return session.schedule()

    def test_mutated_start_breaks_chaining(self):
        sm = self.make_sm()
        _state, item = _chained_reader(sm)
        item.start = 0.0
        item.finish = 0.01
        violations = verify_schedule(sm, invariants=[SCHEDULE_CHAINING])
        assert invariants_of(violations) == {SCHEDULE_CHAINING}
        assert violations[0].op_uid == item.op.uid

    def test_finish_past_clock_breaks_timing(self):
        sm = self.make_sm()
        _state, item = _chained_reader(sm)
        item.finish = sm.clock_period + 5.0
        violations = verify_schedule(sm, invariants=[SCHEDULE_TIMING])
        assert invariants_of(violations) == {SCHEDULE_TIMING}

    def test_inverted_timestamps(self):
        sm = self.make_sm()
        _state, item = _chained_reader(sm)
        item.finish = item.start - 0.5
        violations = verify_schedule(sm, invariants=[SCHEDULE_STRUCTURE])
        assert invariants_of(violations) == {SCHEDULE_STRUCTURE}
        assert "inverted" in violations[0].message

    def test_dangling_transition(self):
        sm = self.make_sm()
        state = next(iter(sm.states.values()))
        state.default_next = 987654
        violations = verify_schedule(sm, invariants=[SCHEDULE_STRUCTURE])
        assert invariants_of(violations) == {SCHEDULE_STRUCTURE}
        assert "987654" in violations[0].message

    def test_over_tight_allocation_is_detected(self):
        # Not a mutation: a clean schedule checked against an
        # allocation it was never scheduled for must violate the
        # resource invariant.
        sm = self.make_sm()
        violations = verify_schedule(
            sm,
            allocation=ResourceAllocation(limits={"alu": 0}),
            invariants=[SCHEDULE_RESOURCES],
        )
        assert invariants_of(violations) == {SCHEDULE_RESOURCES}


# ---------------------------------------------------------------------------
# Binding-level corruptions
# ---------------------------------------------------------------------------


class TestBindingCorruptions:
    def make_bound(self):
        # Rolled loop -> multi-state FSMD -> `i` and `total` are both
        # live across the loop back edge, so they must occupy distinct
        # registers.
        return synthesize(
            SIMPLE_LOOP_SRC,
            script=SynthesisScript(output_scalars={"total"}),
        )[1]

    def test_overlapping_live_ranges_in_one_register(self):
        result = self.make_bound()
        lifetimes = result.lifetimes
        binding = result.register_binding
        overlapping = [
            (a, b)
            for a in binding.assignment
            for b in binding.assignment
            if a < b
            and binding.assignment[a] != binding.assignment[b]
            and set(lifetimes.lifetime_states(a))
            & set(lifetimes.lifetime_states(b))
        ]
        assert overlapping, "fixture must have two overlapping variables"
        first, second = overlapping[0]
        target = binding.assignment[first]
        binding.groups[binding.assignment[second]].remove(second)
        binding.groups[target].append(second)
        binding.assignment[second] = target
        violations = verify_binding(
            result.state_machine,
            lifetimes,
            binding,
            invariants=[BINDING_REGISTERS],
        )
        assert invariants_of(violations) == {BINDING_REGISTERS}
        assert "both live" in violations[0].message

    def test_missing_register_assignment(self):
        result = self.make_bound()
        binding = result.register_binding
        victim = sorted(result.lifetimes.registers())[0]
        register = binding.assignment.pop(victim)
        binding.groups[register].remove(victim)
        violations = verify_binding(
            result.state_machine,
            result.lifetimes,
            binding,
            invariants=[BINDING_REGISTERS],
        )
        assert invariants_of(violations) == {BINDING_REGISTERS}
        assert victim in violations[0].message

    def test_missing_fu_assignment(self):
        result = self.make_bound()
        fus = result.fu_binding
        assert fus.op_assignment, "fixture must bind at least one op"
        victim = next(iter(fus.op_assignment))
        del fus.op_assignment[victim]
        violations = verify_binding(
            result.state_machine,
            result.lifetimes,
            result.register_binding,
            fus,
            invariants=[BINDING_FUS],
        )
        assert invariants_of(violations) == {BINDING_FUS}

    def test_fu_assignment_out_of_range(self):
        result = self.make_bound()
        fus = result.fu_binding
        victim = next(iter(fus.op_assignment))
        unit_class, _index = fus.op_assignment[victim][0]
        fus.op_assignment[victim][0] = (unit_class, 999)
        violations = verify_binding(
            result.state_machine,
            result.lifetimes,
            result.register_binding,
            fus,
            invariants=[BINDING_FUS],
        )
        assert invariants_of(violations) == {BINDING_FUS}
        assert "999" in violations[0].message


# ---------------------------------------------------------------------------
# Per-pass hook and may_break
# ---------------------------------------------------------------------------


class CorruptingPass(Pass):
    """Flags the first non-copy op as a wire copy — a deliberate
    wire-copy invariant break, attributable to this pass."""

    name = "corrupting"

    def run_on_function(self, func, design):
        report = self._start_report(func)
        for op in func.walk_operations():
            if not op.is_copy() and not op.is_wire_copy:
                op.is_wire_copy = True
                report.changed = True
                break
        return self._finish_report(report, func)


class TestPassHook:
    def make_verifier(self):
        from repro.flow.pipeline import make_pass_verifier

        return make_pass_verifier(SynthesisScript())

    def test_violation_is_attributed_to_the_pass(self):
        design = design_from_source(CONDITIONAL_SRC)
        manager = PassManager(
            [CorruptingPass()], verifier=self.make_verifier()
        )
        with pytest.raises(VerifierError) as excinfo:
            manager.run(design)
        assert "after pass `corrupting`" in str(excinfo.value)
        assert excinfo.value.invariants == {WIRE_COPY}

    def test_may_break_suppresses_the_hook_not_the_boundary(self):
        class ToleratedPass(CorruptingPass):
            may_break = (WIRE_COPY,)

        design = design_from_source(CONDITIONAL_SRC)
        manager = PassManager(
            [ToleratedPass()], verifier=self.make_verifier()
        )
        manager.run(design)  # hook skips the declared invariant
        with pytest.raises(VerifierError) as excinfo:
            check_design(design, context="at the transform stage boundary")
        assert excinfo.value.invariants == {WIRE_COPY}

    def test_hook_absent_means_no_check(self):
        design = design_from_source(CONDITIONAL_SRC)
        PassManager([CorruptingPass()]).run(design)


# ---------------------------------------------------------------------------
# Flow integration: --verify-each through SparkSession
# ---------------------------------------------------------------------------


def corrupt_pass_managers(monkeypatch):
    """Make every flow-built pass pipeline end with CorruptingPass."""
    from repro.flow import pipeline

    real = pipeline.build_pass_manager

    def patched(script, verifier=None):
        manager = real(script, verifier=verifier)
        manager.add(CorruptingPass())
        return manager

    monkeypatch.setattr(pipeline, "build_pass_manager", patched)


class TestFlowIntegration:
    def test_verify_each_catches_an_injected_transform_bug(self, monkeypatch):
        corrupt_pass_managers(monkeypatch)
        with pytest.raises(VerifierError) as excinfo:
            synthesize(CONDITIONAL_SRC, verify=True)
        assert excinfo.value.invariants == {WIRE_COPY}

    def test_without_verify_the_bug_goes_unchecked(self, monkeypatch):
        # The same corrupted pipeline runs to completion when the
        # verifier is off — the flag is what arms the checks.
        corrupt_pass_managers(monkeypatch)
        synthesize(CONDITIONAL_SRC, verify=False)


# ---------------------------------------------------------------------------
# DSE integration: classification, cache hygiene, verified-entry keys
# ---------------------------------------------------------------------------


class TestDseVerifier:
    def make_job(self, label="pt"):
        return SynthesisJob(
            source=CONDITIONAL_SRC,
            script=SynthesisScript(output_scalars={"f"}),
            label=label,
        )

    def test_verifier_failure_classified_and_never_cached(
        self, tmp_path, monkeypatch
    ):
        from repro.dse import ExplorationEngine, job_key, summarize
        from repro.dse.cache import ResultCache

        corrupt_pass_managers(monkeypatch)
        job = self.make_job()
        engine = ExplorationEngine(cache_dir=tmp_path, workers=1, verify=True)
        result = engine.explore([job])
        outcome = result.outcomes[0]
        assert not outcome.ok
        assert outcome.error_kind == ERROR_KIND_VERIFIER
        assert "wire copy" in outcome.error
        assert not outcome.cacheable
        assert len(result.verifier_failures) == 1
        assert "1 verifier failure(s)" in summarize(result)
        assert ResultCache(tmp_path).get(job_key(job)) is None

    def test_verify_sweep_rejects_unverified_entries_then_upgrades(
        self, tmp_path
    ):
        from repro.dse import ExplorationEngine, job_key
        from repro.dse.cache import ResultCache

        job = self.make_job()
        first = ExplorationEngine(cache_dir=tmp_path, workers=1).explore([job])
        assert first.executed == 1

        # The unverified entry must not satisfy a --verify-each sweep —
        # and must survive the refusal (it is valid, just unverified).
        second = ExplorationEngine(
            cache_dir=tmp_path, workers=1, verify=True
        ).explore([self.make_job()])
        assert second.executed == 1
        assert second.cache_hits == 0
        assert second.outcomes[0].verified

        # The verified re-run upgraded the entry: both verified and
        # unverified sweeps now hit.
        third = ExplorationEngine(
            cache_dir=tmp_path, workers=1, verify=True
        ).explore([self.make_job()])
        assert third.cache_hits == 1
        fourth = ExplorationEngine(cache_dir=tmp_path, workers=1).explore(
            [self.make_job()]
        )
        assert fourth.cache_hits == 1

        cache = ResultCache(tmp_path)
        assert cache.get(job_key(job), require_verified=True) is not None

    def test_verify_does_not_change_the_job_key(self):
        from repro.dse import job_key

        plain = self.make_job()
        verified = self.make_job()
        verified.verify = True
        assert job_key(plain) == job_key(verified)

    def test_outcome_round_trips_verified_flag(self):
        from repro.spark import SynthesisOutcome

        outcome = SynthesisOutcome(label="x", ok=True, verified=True)
        assert SynthesisOutcome.from_dict(outcome.to_dict()).verified
        # Entries written before the verifier existed default to
        # unverified.
        legacy = outcome.to_dict()
        del legacy["verified"]
        assert not SynthesisOutcome.from_dict(legacy).verified


# ---------------------------------------------------------------------------
# CLI: repro verify / --verify-each
# ---------------------------------------------------------------------------


class TestVerifyCli:
    def write_source(self, tmp_path, text=CONDITIONAL_SRC):
        path = tmp_path / "design.c"
        path.write_text(text)
        return str(path)

    def test_verify_ok(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["verify", self.write_source(tmp_path)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_verify_reports_violations_with_exit_1(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.cli import main

        corrupt_pass_managers(monkeypatch)
        assert main(["verify", self.write_source(tmp_path)]) == 1
        err = capsys.readouterr().err
        assert "wire-copy" in err
        assert "corrupting" in err or "boundary" in err

    def test_verify_unparsable_source_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["verify", self.write_source(tmp_path, "int ( {")]) == 2
        assert "synthesis failed" in capsys.readouterr().err

    def test_one_shot_verify_each(self, tmp_path):
        from repro.cli import main

        path = self.write_source(tmp_path)
        assert main([path, "--verify-each", "--emit", "none"]) == 0
