"""Unit tests for constant propagation, copy propagation, DCE, local
CSE and TAC lowering."""

import pytest

from repro.frontend.ast_nodes import IntLit, Var
from repro.ir.builder import design_from_source
from repro.ir.htg import IfNode, LoopNode
from repro.transforms.const_prop import ConstantPropagation
from repro.transforms.copy_prop import CopyPropagation
from repro.transforms.cse import LocalCSE
from repro.transforms.dce import DeadCodeElimination
from repro.transforms.lower_tac import TACLowering

from tests.helpers import assert_equivalent, ops_text


def run_pass(pass_obj, design):
    return pass_obj.run_on_design(design)


class TestConstantPropagation:
    def test_propagates_through_straight_line(self):
        design = assert_equivalent(
            "int out[1]; int a; int b; a = 2; b = a + 3; out[0] = b;",
            lambda d: run_pass(ConstantPropagation(), d),
        )
        texts = ops_text(design.main)
        assert "b = 5;" in texts
        assert "out[0] = 5;" in texts

    def test_merge_keeps_agreeing_constants(self):
        design = design_from_source(
            "int out[1]; int a; int c; c = 1;"
            "if (c) { a = 7; } else { a = 7; }"
            "out[0] = a + 1;"
        )
        ConstantPropagation(fold_branches=False).run_on_design(design)
        assert "out[0] = 8;" in ops_text(design.main)

    def test_merge_drops_conflicting_constants(self):
        design = design_from_source(
            "int out[1]; int a; if (c) { a = 1; } else { a = 2; } out[0] = a;"
        )
        ConstantPropagation(fold_branches=False).run_on_design(design)
        assert "out[0] = a;" in ops_text(design.main)

    def test_folds_constant_branch(self):
        design = assert_equivalent(
            "int out[1]; int x; if (3 > 1) { x = 10; } else { x = 20; }"
            "out[0] = x;",
            lambda d: run_pass(ConstantPropagation(), d),
        )
        assert not any(
            isinstance(n, IfNode) for n in design.main.walk_nodes()
        )

    def test_fold_branches_off_keeps_structure(self):
        design = design_from_source(
            "int out[1]; int x; if (1) { x = 1; } else { x = 2; } out[0] = x;"
        )
        ConstantPropagation(fold_branches=False).run_on_design(design)
        assert any(isinstance(n, IfNode) for n in design.main.walk_nodes())

    def test_loop_invalidates_written_vars(self):
        design = assert_equivalent(
            "int out[1]; int i; int s; s = 0;"
            "for (i = 0; i < 3; i++) { s = s + 1; }"
            "out[0] = s;",
            lambda d: run_pass(ConstantPropagation(), d),
        )
        # s must NOT be folded to 0 inside or after the loop.
        assert "out[0] = s;" in ops_text(design.main)

    def test_statically_dead_loop_removed(self):
        design = design_from_source(
            "int out[1]; int i; int s; s = 5;"
            "for (i = 9; i < 3; i++) { s = 0; }"
            "out[0] = s;"
        )
        ConstantPropagation().run_on_design(design)
        assert not any(isinstance(n, LoopNode) for n in design.main.walk_nodes())

    def test_only_vars_restriction(self):
        design = design_from_source(
            "int out[1]; int i; int n; i = 1; n = 4; out[0] = i + n;"
        )
        ConstantPropagation(only_vars={"i"}).run_on_design(design)
        texts = ops_text(design.main)
        assert "out[0] = (1 + n);" in texts

    def test_ild_fig14_shape(self, mini_ild_ext):
        """After unrolling, propagating i keeps the NextStartByte
        conditional structure (paper Fig 14)."""
        from repro.transforms.inline import FunctionInliner
        from repro.transforms.unroll import LoopUnroller
        from tests.conftest import MINI_ILD_SRC

        design = design_from_source(MINI_ILD_SRC)
        FunctionInliner().run_on_design(design)
        LoopUnroller({"i": 0}).run_on_design(design)
        ConstantPropagation(fold_branches=False).run_on_design(design)
        # The index is gone from conditions: they now compare literals
        # against NextStartByte.
        conds = [
            str(n.cond)
            for n in design.main.walk_nodes()
            if isinstance(n, IfNode)
        ]
        assert any("NextStartByte" in c for c in conds)
        # Iterations 2..8 keep their symbolic guards; iteration 1's
        # guard `1 == NextStartByte` folds to the literal 1 because
        # NextStartByte is statically 1 there (the paper's Fig 14
        # leaves it written as `if (1 == NextStartByte)`).
        assert sum("==" in c for c in conds) == 7
        assert "1" in conds

    def test_reports_changed_flag(self):
        design = design_from_source("int x; x = 1 + 2;")
        reports = ConstantPropagation().run_on_design(design)
        assert any(r.changed for r in reports)
        reports2 = ConstantPropagation().run_on_design(design)
        assert not any(r.changed for r in reports2)


class TestCopyPropagation:
    def test_simple_copy_forwarded(self):
        design = assert_equivalent(
            "int out[1]; int a; int b; a = inp; b = a; out[0] = b + a;",
            lambda d: run_pass(CopyPropagation(), d),
            inputs={"inp": 3},
        )
        # Copies forward transitively to the original source.
        assert "out[0] = (inp + inp);" in ops_text(design.main)

    def test_copy_killed_by_source_rewrite(self):
        design = assert_equivalent(
            "int out[1]; int a; int b; a = inp; b = a; a = 99; out[0] = b;",
            lambda d: run_pass(CopyPropagation(), d),
            inputs={"inp": 3},
        )
        # b transitively copies inp (which is never rewritten), so the
        # read forwards to inp even though a was clobbered.
        assert "out[0] = inp;" in ops_text(design.main)

    def test_copy_killed_when_root_source_rewritten(self):
        design = assert_equivalent(
            "int out[1]; int a; int b; a = 1; b = a; a = 99; out[0] = b;",
            lambda d: run_pass(CopyPropagation(), d),
        )
        # Here the chain root IS a, which is rewritten: must read b.
        assert "out[0] = b;" in ops_text(design.main)

    def test_copy_killed_by_target_rewrite(self):
        design = assert_equivalent(
            "int out[1]; int a; int b; a = inp; b = a; b = 5; out[0] = b;",
            lambda d: run_pass(CopyPropagation(), d),
            inputs={"inp": 3},
        )
        assert "out[0] = b;" in ops_text(design.main)

    def test_branch_merge_intersects(self):
        design = assert_equivalent(
            "int out[1]; int a; int b; a = inp;"
            "if (c) { b = a; } else { b = 5; }"
            "out[0] = b;",
            lambda d: run_pass(CopyPropagation(), d),
            inputs={"inp": 3, "c": 1},
        )
        assert "out[0] = b;" in ops_text(design.main)

    def test_wire_copies_preserved(self):
        design = design_from_source(
            "int out[1]; int a; int b; a = inp; b = a; out[0] = b;"
        )
        copy_op = next(
            op
            for op in design.main.walk_operations()
            if op.is_copy() and op.target.name == "b"
        )
        copy_op.is_wire_copy = True
        CopyPropagation(preserve_wire_copies=True).run_on_design(design)
        # The read of b must not be rewritten through the wire copy.
        assert "out[0] = b;" in ops_text(design.main)

    def test_loop_carried_copies_invalidated(self):
        assert_equivalent(
            "int out[1]; int a; int b; int i; a = 1; b = a;"
            "for (i = 0; i < 3; i++) { a = a + 1; }"
            "out[0] = b;",
            lambda d: run_pass(CopyPropagation(), d),
        )


class TestDeadCodeElimination:
    def test_removes_dead_assign(self):
        design = design_from_source(
            "int out[1]; int dead; int live; dead = 5; live = 1; out[0] = live;"
        )
        DeadCodeElimination(output_scalars=set()).run_on_design(design)
        assert "dead = 5;" not in ops_text(design.main)

    def test_keeps_array_stores(self):
        design = design_from_source("int out[1]; out[0] = 9;")
        DeadCodeElimination(output_scalars=set()).run_on_design(design)
        assert "out[0] = 9;" in ops_text(design.main)

    def test_removes_dead_chains(self):
        design = design_from_source(
            "int out[1]; int a; int b; int c;"
            "a = 1; b = a + 1; c = b + 1; out[0] = 5;"
        )
        DeadCodeElimination(output_scalars=set()).run_on_design(design)
        assert len(list(design.main.walk_operations())) == 1

    def test_keeps_impure_calls(self):
        design = design_from_source("int x; x = sideeffect(1);")
        DeadCodeElimination(output_scalars=set()).run_on_design(design)
        assert "x = sideeffect(1);" in ops_text(design.main)

    def test_removes_dead_pure_calls(self):
        design = design_from_source("int x; x = f(1);")
        DeadCodeElimination(
            output_scalars=set(), pure_functions={"f"}
        ).run_on_design(design)
        assert ops_text(design.main) == []

    def test_output_scalars_kept(self):
        design = design_from_source("int result; result = 3;")
        DeadCodeElimination(output_scalars={"result"}).run_on_design(design)
        assert "result = 3;" in ops_text(design.main)

    def test_main_default_keeps_all_written_scalars(self):
        design = design_from_source("int a; a = 1;")
        DeadCodeElimination().run_on_design(design)
        assert "a = 1;" in ops_text(design.main)

    def test_loop_variables_kept_while_live(self):
        design = design_from_source(
            "int out[3]; int i; for (i = 0; i < 3; i++) { out[i] = i; }"
        )
        before = run_pass(DeadCodeElimination(output_scalars=set()), design)
        from repro.interp import run_design

        state = run_design(design)
        assert state.arrays["out"] == [0, 1, 2]

    def test_equivalence_preserved(self, mini_ild_ext):
        from tests.conftest import MINI_ILD_SRC

        assert_equivalent(
            MINI_ILD_SRC,
            lambda d: run_pass(
                DeadCodeElimination(
                    output_scalars=set(), pure_functions=set(mini_ild_ext)
                ),
                d,
            ),
            externals=mini_ild_ext,
        )


class TestLocalCSE:
    def test_reuses_repeated_expression(self):
        design = assert_equivalent(
            "int out[2]; int a; int b; a = x + y; b = x + y;"
            "out[0] = a; out[1] = b;",
            lambda d: run_pass(LocalCSE(), d),
            inputs={"x": 2, "y": 3},
        )
        assert "b = a;" in ops_text(design.main)

    def test_invalidated_by_operand_write(self):
        design = assert_equivalent(
            "int out[2]; int a; int b; a = x + y; x = 9; b = x + y;"
            "out[0] = a; out[1] = b;",
            lambda d: run_pass(LocalCSE(), d),
            inputs={"x": 2, "y": 3},
        )
        assert "b = (x + y);" in ops_text(design.main)

    def test_invalidated_by_source_rewrite(self):
        design = assert_equivalent(
            "int out[2]; int a; int b; a = x + y; a = 0; b = x + y;"
            "out[0] = a; out[1] = b;",
            lambda d: run_pass(LocalCSE(), d),
            inputs={"x": 2, "y": 3},
        )
        assert "b = (x + y);" in ops_text(design.main)

    def test_small_expressions_not_shared(self):
        design = design_from_source("int a; int b; a = x; b = x;")
        LocalCSE().run_on_design(design)
        assert "b = x;" in ops_text(design.main)

    def test_impure_calls_not_shared(self):
        design = design_from_source("int a; int b; a = f(1); b = f(1);")
        LocalCSE().run_on_design(design)
        assert "b = f(1);" in ops_text(design.main)

    def test_pure_calls_shared(self):
        design = design_from_source("int a; int b; a = f(1); b = f(1);")
        LocalCSE(pure_functions={"f"}).run_on_design(design)
        assert "b = a;" in ops_text(design.main)

    def test_array_reads_not_shared(self):
        design = design_from_source(
            "int m[2]; int a; int b; a = m[0] + 1; b = m[0] + 1;"
        )
        LocalCSE().run_on_design(design)
        assert "b = (m[0] + 1);" in ops_text(design.main)


class TestTACLowering:
    def test_flattens_expression_tree(self):
        design = assert_equivalent(
            "int out[1]; out[0] = (a + b) * (c - d);",
            lambda d: run_pass(TACLowering(), d),
            inputs={"a": 1, "b": 2, "c": 9, "d": 4},
        )
        for op in design.main.walk_operations():
            # At most one operator per op.
            from repro.scheduler.timing import expr_units
            from repro.scheduler.resources import ResourceLibrary

            units = expr_units(op.expr, ResourceLibrary())
            non_mem = {k: v for k, v in units.items() if k != "mem"}
            assert sum(non_mem.values()) <= 1, str(op)

    def test_lowered_array_index(self):
        design = assert_equivalent(
            "int out[4]; out[i + 1] = 5;",
            lambda d: run_pass(TACLowering(), d),
            inputs={"i": 1},
        )
        stores = [
            op
            for op in design.main.walk_operations()
            if op.arrays_written()
        ]
        assert len(stores) == 1
        assert isinstance(stores[0].target.index, Var)

    def test_call_args_atomized(self):
        design = design_from_source("int y; y = f(a + b);")
        TACLowering().run_on_design(design)
        call_op = next(
            op for op in design.main.walk_operations() if op.has_call()
        )
        assert isinstance(call_op.expr.args[0], Var)

    def test_preserves_flags(self):
        design = design_from_source("int x; x = a + b + c;")
        op = next(design.main.walk_operations())
        op.is_speculated = True
        TACLowering().run_on_design(design)
        final = [o for o in design.main.walk_operations() if "x =" in str(o)]
        assert final and final[-1].is_speculated

    def test_equivalence_on_mini_ild(self, mini_ild_ext):
        from tests.conftest import MINI_ILD_SRC

        assert_equivalent(
            MINI_ILD_SRC,
            lambda d: run_pass(TACLowering(), d),
            externals=mini_ild_ext,
        )
