"""Unit tests for the recursive-descent parser."""

import pytest

from repro.frontend import ast_nodes as ast
from repro.frontend.parser import ParseError, parse, parse_expression


class TestExpressions:
    def test_literal(self):
        expr = parse_expression("42")
        assert isinstance(expr, ast.IntLit) and expr.value == 42

    def test_negative_literal_folds(self):
        expr = parse_expression("-7")
        assert isinstance(expr, ast.IntLit) and expr.value == -7

    def test_variable(self):
        expr = parse_expression("foo")
        assert isinstance(expr, ast.Var) and expr.name == "foo"

    def test_binary_precedence_mul_over_add(self):
        expr = parse_expression("a + b * c")
        assert isinstance(expr, ast.BinOp) and expr.op == "+"
        assert isinstance(expr.right, ast.BinOp) and expr.right.op == "*"

    def test_left_associativity(self):
        expr = parse_expression("a - b - c")
        assert expr.op == "-"
        assert isinstance(expr.left, ast.BinOp) and expr.left.op == "-"
        assert expr.right.name == "c"

    def test_comparison_precedence(self):
        expr = parse_expression("a + 1 < b * 2")
        assert expr.op == "<"

    def test_logical_precedence(self):
        expr = parse_expression("a < b && c > d || e == f")
        assert expr.op == "||"
        assert expr.left.op == "&&"

    def test_bitwise_precedence_chain(self):
        # | weaker than ^ weaker than &
        expr = parse_expression("a | b ^ c & d")
        assert expr.op == "|"
        assert expr.right.op == "^"
        assert expr.right.right.op == "&"

    def test_shift(self):
        expr = parse_expression("a << 2")
        assert expr.op == "<<"

    def test_parentheses_override(self):
        expr = parse_expression("(a + b) * c")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_unary_not(self):
        expr = parse_expression("!cond")
        assert isinstance(expr, ast.UnaryOp) and expr.op == "!"

    def test_unary_minus_on_var(self):
        expr = parse_expression("-x")
        assert isinstance(expr, ast.UnaryOp) and expr.op == "-"

    def test_unary_plus_is_dropped(self):
        expr = parse_expression("+x")
        assert isinstance(expr, ast.Var)

    def test_ternary(self):
        expr = parse_expression("c ? a : b")
        assert isinstance(expr, ast.Ternary)

    def test_ternary_right_associative(self):
        expr = parse_expression("c1 ? a : c2 ? b : d")
        assert isinstance(expr.if_false, ast.Ternary)

    def test_call_no_args(self):
        expr = parse_expression("f()")
        assert isinstance(expr, ast.Call) and expr.args == []

    def test_call_with_args(self):
        expr = parse_expression("LengthContribution_2(i + 1)")
        assert isinstance(expr, ast.Call)
        assert len(expr.args) == 1
        assert expr.args[0].op == "+"

    def test_array_reference(self):
        expr = parse_expression("Mark[i - 1]")
        assert isinstance(expr, ast.ArrayRef)
        assert expr.index.op == "-"

    def test_trailing_tokens_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("a b")

    def test_true_false_literals(self):
        assert parse_expression("true").value == 1
        assert parse_expression("false").value == 0


class TestStatements:
    def test_declaration(self):
        program = parse("int x;")
        decl = program.main_body[0]
        assert isinstance(decl, ast.Decl) and decl.name == "x"
        assert decl.array_size is None

    def test_declaration_with_init(self):
        decl = parse("int x = 5;").main_body[0]
        assert isinstance(decl.init, ast.IntLit)

    def test_array_declaration(self):
        decl = parse("int buf[16];").main_body[0]
        assert decl.array_size == 16

    def test_array_size_must_be_literal(self):
        with pytest.raises(ParseError):
            parse("int buf[n];")

    def test_assignment(self):
        stmt = parse("x = y + 1;").main_body[0]
        assert isinstance(stmt, ast.Assign)
        assert isinstance(stmt.target, ast.Var)

    def test_array_assignment(self):
        stmt = parse("Mark[i] = 1;").main_body[0]
        assert isinstance(stmt.target, ast.ArrayRef)

    def test_compound_assignment_desugars(self):
        stmt = parse("x += 2;").main_body[0]
        assert isinstance(stmt, ast.Assign)
        assert stmt.value.op == "+"
        assert stmt.value.left.name == "x"

    def test_all_compound_operators(self):
        for op, expected in [
            ("-=", "-"), ("*=", "*"), ("/=", "/"), ("%=", "%"),
            ("&=", "&"), ("|=", "|"), ("^=", "^"),
        ]:
            stmt = parse(f"x {op} 2;").main_body[0]
            assert stmt.value.op == expected

    def test_increment_desugars(self):
        stmt = parse("i++;").main_body[0]
        assert isinstance(stmt, ast.Assign)
        assert stmt.value.op == "+"
        assert stmt.value.right.value == 1

    def test_decrement_desugars(self):
        stmt = parse("i--;").main_body[0]
        assert stmt.value.op == "-"

    def test_call_statement(self):
        stmt = parse("ResetArray(Mark);").main_body[0]
        assert isinstance(stmt, ast.ExprStmt)
        assert isinstance(stmt.expr, ast.Call)

    def test_bare_expression_statement_rejected(self):
        with pytest.raises(ParseError):
            parse("a + b;")

    def test_assign_to_literal_rejected(self):
        with pytest.raises(ParseError):
            parse("5 = x;")

    def test_empty_statement(self):
        block = parse(";").main_body[0]
        assert isinstance(block, ast.Block) and block.body == []


class TestControlFlow:
    def test_if_without_else(self):
        stmt = parse("if (c) { x = 1; }").main_body[0]
        assert isinstance(stmt, ast.If)
        assert len(stmt.then_body) == 1
        assert stmt.else_body == []

    def test_if_else(self):
        stmt = parse("if (c) x = 1; else x = 2;").main_body[0]
        assert len(stmt.else_body) == 1

    def test_if_else_if_chain(self):
        stmt = parse("if (a) x = 1; else if (b) x = 2; else x = 3;").main_body[0]
        inner = stmt.else_body[0]
        assert isinstance(inner, ast.If)
        assert len(inner.else_body) == 1

    def test_unbraced_bodies(self):
        stmt = parse("if (c) x = 1;").main_body[0]
        assert isinstance(stmt.then_body[0], ast.Assign)

    def test_for_loop_full_header(self):
        stmt = parse("for (i = 0; i < 10; i++) { x = i; }").main_body[0]
        assert isinstance(stmt, ast.For)
        assert isinstance(stmt.init, ast.Assign)
        assert stmt.cond.op == "<"
        assert isinstance(stmt.step, ast.Assign)

    def test_for_loop_decl_init(self):
        stmt = parse("for (int i = 0; i < 3; i++) x = i;").main_body[0]
        assert isinstance(stmt.init, ast.Decl)

    def test_for_loop_empty_parts(self):
        stmt = parse("for (;;) { break; }").main_body[0]
        assert stmt.init is None and stmt.cond is None and stmt.step is None

    def test_while_loop(self):
        stmt = parse("while (x < 5) x++;").main_body[0]
        assert isinstance(stmt, ast.While)

    def test_while_one(self):
        stmt = parse("while (1) { x = 1; }").main_body[0]
        assert isinstance(stmt.cond, ast.IntLit) and stmt.cond.value == 1

    def test_break(self):
        stmt = parse("while (1) { break; }").main_body[0]
        assert isinstance(stmt.body[0], ast.Break)

    def test_nested_blocks(self):
        stmt = parse("{ { x = 1; } }").main_body[0]
        assert isinstance(stmt, ast.Block)

    def test_unterminated_block(self):
        with pytest.raises(ParseError):
            parse("if (c) { x = 1;")


class TestFunctions:
    def test_function_definition(self):
        program = parse("int f(x) { return x + 1; }")
        func = program.function("f")
        assert func.params == ["x"]
        assert isinstance(func.body[0], ast.Return)

    def test_function_with_typed_params(self):
        func = parse("int f(int a, int b) { return a; }").function("f")
        assert func.params == ["a", "b"]

    def test_void_function(self):
        func = parse("void g() { return; }").function("g")
        assert func.return_type == "void"
        assert func.body[0].value is None

    def test_function_lookup_missing(self):
        with pytest.raises(KeyError):
            parse("int f() { return 1; }").function("g")

    def test_functions_and_main_body_mix(self):
        program = parse(
            "int f(x) { return x; }\n"
            "int y;\n"
            "y = f(3);"
        )
        assert len(program.functions) == 1
        assert len(program.main_body) == 2

    def test_call_vs_funcdef_disambiguation(self):
        # `int x;` then `f(x);` must not be mistaken for a definition.
        program = parse("int x;\nf(x);")
        assert program.functions == []
        assert isinstance(program.main_body[1], ast.ExprStmt)


class TestPaperFigures:
    def test_fig10_parses(self):
        source = """
        int CalculateLength(i) {
          int lc1; int lc2; int lc3; int lc4; int Length;
          lc1 = LengthContribution_1(i);
          if (Need_2nd_Byte(i)) {
            lc2 = LengthContribution_2(i + 1);
            if (Need_3rd_Byte(i + 1)) {
              lc3 = LengthContribution_3(i + 2);
              if (Need_4th_Byte(i + 2)) {
                lc4 = LengthContribution_4(i + 3);
                Length = lc1 + lc2 + lc3 + lc4;
              } else Length = lc1 + lc2 + lc3;
            } else Length = lc1 + lc2;
          } else Length = lc1;
          return Length;
        }
        int Mark[9];
        int NextStartByte; int i;
        NextStartByte = 1;
        for (i = 1; i <= 8; i++) {
          if (i == NextStartByte) {
            Mark[i] = 1;
            NextStartByte += CalculateLength(i);
          }
        }
        """
        program = parse(source)
        func = program.function("CalculateLength")
        # The nested if-tree is three deep.
        level1 = next(s for s in func.body if isinstance(s, ast.If))
        level2 = next(s for s in level1.then_body if isinstance(s, ast.If))
        level3 = next(s for s in level2.then_body if isinstance(s, ast.If))
        assert isinstance(level3.then_body[-1], ast.Assign)

    def test_fig16_parses(self):
        source = """
        int NextStartByte; int len_v; int Mark[9];
        NextStartByte = 1;
        while (1) {
          Mark[NextStartByte] = 1;
          len_v = CalculateLength(NextStartByte);
          NextStartByte += len_v;
        }
        """
        program = parse(source)
        loop = program.main_body[-1]
        assert isinstance(loop, ast.While)
        assert len(loop.body) == 3

    def test_fig4_fragment(self):
        source = """
        int t1; int t2; int t3; int f;
        t1 = a + b;
        if (cond) {
          t2 = t1;
          t3 = c + d;
        } else {
          t2 = e;
          t3 = c - d;
        }
        f = t2 + t3;
        """
        program = parse(source)
        if_stmt = program.main_body[5]
        assert isinstance(if_stmt, ast.If)
        assert len(if_stmt.then_body) == 2
        assert len(if_stmt.else_body) == 2


class TestASTWalkers:
    def test_walk_expr(self):
        expr = parse_expression("a + f(b[c], d)")
        names = [n.name for n in ast.walk_expr(expr) if isinstance(n, ast.Var)]
        assert set(names) == {"a", "c", "d"}

    def test_expr_variables(self):
        expr = parse_expression("x + y * x")
        assert ast.expr_variables(expr) == ("x", "y", "x")

    def test_walk_stmts_recurses(self):
        program = parse("if (c) { for (i = 0; i < 2; i++) { x = 1; } }")
        kinds = [type(s).__name__ for s in ast.walk_stmts(program.main_body)]
        assert "If" in kinds and "For" in kinds and "Assign" in kinds
