"""Integration tests for the top-level SparkSession flow."""

import pytest

from repro import (
    DesignInterface,
    SparkSession,
    SynthesisScript,
    synthesize,
)
from repro.ild import build_ild_source, ild_externals, ild_interface, ild_library

from tests.conftest import MINI_ILD_SRC, mini_ild_externals


def mini_session(script=None):
    return SparkSession(
        MINI_ILD_SRC,
        script=script
        or SynthesisScript.microprocessor_block(
            pure_functions=set(mini_ild_externals())
        ),
        externals=mini_ild_externals(),
    )


class TestMicroprocessorBlockFlow:
    def test_single_cycle_achieved(self):
        result = mini_session().run()
        assert result.state_machine.is_single_cycle()

    def test_rtl_equals_behavioral(self):
        session = mini_session()
        expected = session.interpret().snapshot()["arrays"]
        result = session.run()
        rtl = session.simulate_rtl(result.state_machine)
        assert rtl.arrays == expected
        assert rtl.cycles == 1

    def test_reports_collected(self):
        session = mini_session()
        result = session.run()
        pass_names = {r.pass_name for r in result.reports if r.changed}
        assert "function-inlining" in pass_names
        assert "loop-unrolling" in pass_names
        assert "speculation" in pass_names
        assert "constant-propagation" in pass_names

    def test_emission_produced(self):
        result = mini_session().run()
        assert "entity" in result.vhdl
        assert "module" in result.verilog

    def test_bindings_and_estimates_present(self):
        result = mini_session().run()
        assert result.register_binding is not None
        assert result.fu_binding is not None
        assert result.area is not None and result.area.total > 0
        assert result.timing is not None

    def test_summary_renders(self):
        result = mini_session().run()
        text = result.summary()
        assert "states: 1" in text
        assert "single-cycle: True" in text


class TestASICFlow:
    def test_multi_cycle_schedule(self):
        session = mini_session(script=SynthesisScript.asic(clock_period=3.0))
        result = session.run()
        assert result.state_machine.num_states > 1

    def test_asic_rtl_equivalent(self):
        session = mini_session(script=SynthesisScript.asic(clock_period=3.0))
        expected = session.interpret().snapshot()["arrays"]
        result = session.run()
        rtl = session.simulate_rtl(result.state_machine)
        assert rtl.arrays == expected
        assert rtl.cycles > 1

    def test_asic_uses_fewer_fus_than_up_block(self):
        up = mini_session().run()
        asic = mini_session(
            script=SynthesisScript.asic(clock_period=3.0)
        ).run()
        assert (
            asic.fu_binding.total_instances()
            < up.fu_binding.total_instances()
        )

    def test_up_block_has_fewer_cycles_than_asic(self):
        """Fig 1's architectural contrast, measured."""
        up_session = mini_session()
        up = up_session.run()
        up_rtl = up_session.simulate_rtl(up.state_machine)
        asic_session = mini_session(
            script=SynthesisScript.asic(clock_period=3.0)
        )
        asic = asic_session.run()
        asic_rtl = asic_session.simulate_rtl(asic.state_machine)
        assert up_rtl.cycles == 1
        assert asic_rtl.cycles >= 5 * up_rtl.cycles


class TestScriptKnobs:
    def test_no_unroll_keeps_loop_states(self):
        script = SynthesisScript(
            unroll_loops={},
            inline_functions=["*"],
            enable_speculation=False,
            pure_functions=set(mini_ild_externals()),
            clock_period=1000.0,
        )
        result = mini_session(script=script).run()
        assert not result.state_machine.is_single_cycle()

    def test_selective_unroll_factor(self):
        script = SynthesisScript(
            unroll_loops={"i": 2},
            inline_functions=["*"],
            enable_speculation=False,
            pure_functions=set(mini_ild_externals()),
            clock_period=1000.0,
        )
        session = mini_session(script=script)
        expected = session.interpret().snapshot()["arrays"]
        result = session.run()
        rtl = session.simulate_rtl(result.state_machine)
        assert rtl.arrays == expected

    def test_output_scalars_survive_dce(self):
        script = SynthesisScript.microprocessor_block(
            pure_functions=set(mini_ild_externals())
        )
        script.output_scalars = {"NextStartByte"}
        session = mini_session(script=script)
        session.transform()
        writes = set()
        for op in session.design.main.walk_operations():
            writes |= op.writes()
        assert "NextStartByte" in writes

    def test_print_code(self):
        session = mini_session()
        session.transform()
        code = session.print_code()
        assert "Mark[" in code


class TestFullILD:
    def test_synthesize_convenience(self):
        n = 6
        result = synthesize(
            build_ild_source(n),
            script=SynthesisScript.microprocessor_block(
                pure_functions=set(ild_externals(n))
            ),
            library=ild_library(),
            interface=ild_interface(n),
            externals=ild_externals(n),
        )
        assert result.state_machine.is_single_cycle()
        assert "entity ild is" in result.vhdl
