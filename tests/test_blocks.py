"""Tests for the functional-block library (repro.blocks): every block
reaches a single cycle under the µP script and matches its golden model
— exhaustively where the input space is small, densely otherwise."""

import random

import pytest

from repro import SynthesisScript
from repro.blocks import (
    BLOCKS,
    leading_zero_counter,
    popcount,
    priority_encoder,
    tag_comparator,
)


@pytest.fixture(scope="module")
def synthesized():
    """Synthesize each block once per module (they are deterministic)."""
    cache = {}
    for name, factory in BLOCKS.items():
        block = factory()
        session, result = block.synthesize()
        cache[name] = (block, session, result)
    return cache


class TestSingleCycle:
    @pytest.mark.parametrize("name", sorted(BLOCKS))
    def test_single_cycle(self, synthesized, name):
        _, _, result = synthesized[name]
        assert result.state_machine.is_single_cycle()

    @pytest.mark.parametrize("name", sorted(BLOCKS))
    def test_rtl_emitted(self, synthesized, name):
        _, _, result = synthesized[name]
        assert "entity" in result.vhdl
        assert "module" in result.verilog


class TestPriorityEncoder:
    def test_exhaustive(self, synthesized):
        block, session, result = synthesized["priority_encoder"]
        for value in range(2 ** block.width):
            bits = block.vector_from_int(value)
            want = block.golden(bits)
            rtl = session.simulate_rtl(
                result.state_machine, array_inputs={"bits": bits}
            )
            assert rtl.scalars["pos"] == want["pos"], value
            assert rtl.scalars["found"] == want["found"]
            assert rtl.cycles == 1

    def test_empty_vector(self, synthesized):
        block, session, result = synthesized["priority_encoder"]
        rtl = session.simulate_rtl(
            result.state_machine,
            array_inputs={"bits": [0] * (block.width + 1)},
        )
        assert rtl.scalars["pos"] == 0
        assert rtl.scalars["found"] == 0

    def test_lsb_priority(self, synthesized):
        block, session, result = synthesized["priority_encoder"]
        bits = block.vector_from_int(0b10000001)
        rtl = session.simulate_rtl(
            result.state_machine, array_inputs={"bits": bits}
        )
        assert rtl.scalars["pos"] == 1


class TestLeadingZeroCounter:
    def test_exhaustive(self, synthesized):
        block, session, result = synthesized["leading_zero_counter"]
        for value in range(2 ** block.width):
            bits = block.vector_from_int(value)
            want = block.golden(bits)
            rtl = session.simulate_rtl(
                result.state_machine, array_inputs={"bits": bits}
            )
            assert rtl.scalars["count"] == want["count"], value

    def test_all_zero_counts_width(self, synthesized):
        block, session, result = synthesized["leading_zero_counter"]
        rtl = session.simulate_rtl(
            result.state_machine,
            array_inputs={"bits": [0] * (block.width + 1)},
        )
        assert rtl.scalars["count"] == block.width

    def test_msb_set_counts_zero(self, synthesized):
        block, session, result = synthesized["leading_zero_counter"]
        bits = [0] * (block.width + 1)
        bits[block.width] = 1
        rtl = session.simulate_rtl(
            result.state_machine, array_inputs={"bits": bits}
        )
        assert rtl.scalars["count"] == 0


class TestPopcount:
    def test_exhaustive(self, synthesized):
        block, session, result = synthesized["popcount"]
        for value in range(2 ** block.width):
            bits = block.vector_from_int(value)
            rtl = session.simulate_rtl(
                result.state_machine, array_inputs={"bits": bits}
            )
            assert rtl.scalars["ones"] == bin(value).count("1"), value

    def test_no_conditionals_after_transforms(self, synthesized):
        """Popcount is pure data: the single state holds no chained
        conditionals at all."""
        _, _, result = synthesized["popcount"]
        from repro.scheduler.schedule import IfItem

        state = next(iter(result.state_machine.states.values()))
        assert not any(isinstance(item, IfItem) for item in state.items)


class TestTagComparator:
    def _simulate(self, session, result, tags, valid, lookup):
        return session.simulate_rtl(
            result.state_machine,
            inputs={"lookup": lookup},
            array_inputs={"tags": [0] + tags, "valid": [0] + valid},
        )

    def test_dense_random(self, synthesized):
        block, session, result = synthesized["tag_comparator"]
        entries = block.width
        rng = random.Random(9)
        for _ in range(300):
            tags = [rng.randrange(8) for _ in range(entries)]
            valid = [rng.randrange(2) for _ in range(entries)]
            lookup = rng.randrange(8)
            want = block.golden([0] + tags + valid + [lookup])
            rtl = self._simulate(session, result, tags, valid, lookup)
            assert rtl.scalars["hit"] == want["hit"]
            assert rtl.scalars["way"] == want["way"]

    def test_invalid_entries_never_hit(self, synthesized):
        block, session, result = synthesized["tag_comparator"]
        entries = block.width
        rtl = self._simulate(
            session, result, [5] * entries, [0] * entries, 5
        )
        assert rtl.scalars["hit"] == 0

    def test_first_matching_way_wins(self, synthesized):
        block, session, result = synthesized["tag_comparator"]
        entries = block.width
        rtl = self._simulate(
            session, result, [7] * entries, [1] * entries, 7
        )
        assert rtl.scalars["way"] == 1


class TestParameterization:
    @pytest.mark.parametrize("width", [2, 4, 16])
    def test_priority_encoder_widths(self, width):
        block = priority_encoder(width)
        session, result = block.synthesize()
        assert result.state_machine.is_single_cycle()
        bits = [0] * (width + 1)
        bits[width] = 1
        rtl = session.simulate_rtl(
            result.state_machine, array_inputs={"bits": bits}
        )
        assert rtl.scalars["pos"] == width

    @pytest.mark.parametrize("width", [2, 4])
    def test_popcount_widths(self, width):
        block = popcount(width)
        session, result = block.synthesize()
        bits = [0] + [1] * width
        rtl = session.simulate_rtl(
            result.state_machine, array_inputs={"bits": bits}
        )
        assert rtl.scalars["ones"] == width

    def test_asic_regime_multi_cycle(self):
        block = priority_encoder(8)
        session, result = block.synthesize(
            script=SynthesisScript.asic(clock_period=3.0)
        )
        assert not result.state_machine.is_single_cycle()
