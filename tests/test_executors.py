"""Tests for the pluggable executor layer (repro.dse.exec).

The load-bearing regressions here are the two historical hang modes:

* a pool worker hard-killed mid-job (OOM killer, SIGKILL) used to
  wedge ``ExplorationEngine`` forever in ``completed.get()`` — neither
  ``apply_async`` callback fires for a task whose worker died;
* a pathological corner with no wall-clock bound used to stall a
  sweep indefinitely; ``--job-timeout`` now settles it as
  ``error_kind="timeout"``.
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.dse import (
    ExplorationEngine,
    PoolExecutor,
    ResultCache,
    SerialExecutor,
    default_start_method,
    grid_from_specs,
    job_key,
    jobs_from_grid,
    make_executor,
)
from repro.dse.exec.pool import START_METHOD_ENV_VAR
from repro.spark import (
    ERROR_KIND_ENVIRONMENT,
    ERROR_KIND_TIMEOUT,
    SynthesisJob,
    execute_job,
)
from repro.transforms.base import SynthesisScript

SWEEP_SRC = """
int acc[26];
int i; int total;
total = 0;
for (i = 0; i < 24; i++) {
  total = total + i;
  acc[i] = total;
}
"""


def base_script() -> SynthesisScript:
    return SynthesisScript(output_scalars={"total"})


def sweep_jobs(*specs: str):
    return jobs_from_grid(
        SWEEP_SRC, grid_from_specs(list(specs)), base_script=base_script()
    )


# ---------------------------------------------------------------------------
# Executor selection and the explicit multiprocessing context
# ---------------------------------------------------------------------------


class TestExecutorSelection:
    def test_auto_is_serial_for_one_worker_and_pool_otherwise(self):
        assert make_executor("auto", workers=1).kind == "serial"
        assert make_executor("auto", workers=4).kind == "pool"
        # A single pending miss never pays for a pool.
        assert make_executor("auto", workers=4, job_count=1).kind == "serial"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            make_executor("warp")
        with pytest.raises(ValueError, match="unknown executor"):
            ExplorationEngine(executor="warp")

    def test_broker_kind_needs_a_directory(self):
        with pytest.raises(ValueError, match="broker directory"):
            make_executor("broker")

    def test_result_records_executor_kind(self):
        result = ExplorationEngine(use_cache=False).explore(
            sweep_jobs("clock=4")
        )
        assert result.executor == "serial"

    def test_context_is_pinned_never_platform_default(self, monkeypatch):
        # fork-with-threads is unsafe and Python 3.14 changes the Linux
        # default; the pool must choose explicitly.
        monkeypatch.delenv(START_METHOD_ENV_VAR, raising=False)
        method = default_start_method()
        assert method in ("forkserver", "spawn")
        assert PoolExecutor(workers=2).start_method == method

    def test_context_env_override(self, monkeypatch):
        monkeypatch.setenv(START_METHOD_ENV_VAR, "spawn")
        assert default_start_method() == "spawn"
        monkeypatch.setenv(START_METHOD_ENV_VAR, "warp-drive")
        with pytest.raises(ValueError, match="not a start method"):
            default_start_method()

    def test_jobs_roundtrip_under_spawn(self):
        # The strictest context: nothing is inherited, every job and
        # outcome must survive a pickle round-trip through a fresh
        # interpreter.
        engine = ExplorationEngine(
            use_cache=False,
            executor=PoolExecutor(workers=2, start_method="spawn"),
        )
        result = engine.explore(sweep_jobs("clock=2,4"))
        assert [o.ok for o in result.outcomes] == [True, True]
        serial = ExplorationEngine(use_cache=False).explore(
            sweep_jobs("clock=2,4")
        )
        assert [o.score() for o in result.outcomes] == [
            o.score() for o in serial.outcomes
        ]


# ---------------------------------------------------------------------------
# The worker-loss hang (regression)
# ---------------------------------------------------------------------------


class TestWorkerLoss:
    def test_sigkilled_worker_fails_job_and_sweep_continues(self, tmp_path):
        """Regression: a hard-killed pool worker used to hang the
        sweep forever.  One corner's environment factory SIGKILLs its
        own worker process; every other corner must still settle and
        the killed corner must come back as environment trouble."""
        jobs = sweep_jobs("clock=2,4,6")
        killer = SynthesisJob(
            source=SWEEP_SRC,
            script=base_script(),
            label="killer",
            environment="tests.helpers:suicide_environment",
        )
        jobs.insert(1, killer)
        engine = ExplorationEngine(
            cache_dir=tmp_path,
            executor=PoolExecutor(workers=2, poll=0.05),
        )
        result = engine.explore(jobs)
        assert len(result.outcomes) == 4
        by_label = {o.label: o for o in result.outcomes}
        lost = by_label["killer"]
        assert not lost.ok
        assert lost.error_kind == ERROR_KIND_ENVIRONMENT
        assert "worker process" in lost.error
        for label in ("clock=2", "clock=4", "clock=6"):
            assert by_label[label].ok, by_label[label].error
        # The machine failure was never memoized: only the three real
        # corners landed in the cache.
        assert len(ResultCache(tmp_path)) == 3

    def test_sweep_with_kill_and_timeout_settles_every_point(self, tmp_path):
        """Acceptance: one SIGKILLed worker and one timed-out corner
        in the same sweep — every remaining point still settles."""
        jobs = sweep_jobs("clock=2,4,6")
        jobs.insert(
            1,
            SynthesisJob(
                source=SWEEP_SRC,
                script=base_script(),
                label="killer",
                environment="tests.helpers:suicide_environment",
            ),
        )
        jobs.insert(
            3,
            SynthesisJob(
                source=SWEEP_SRC,
                script=base_script(),
                label="stalled",
                environment="tests.helpers:sleepy_environment",
                environment_args=(30,),
            ),
        )
        engine = ExplorationEngine(
            cache_dir=tmp_path,
            job_timeout=0.5,
            executor=PoolExecutor(workers=2, poll=0.05),
        )
        result = engine.explore(jobs)
        by_label = {o.label: o for o in result.outcomes}
        assert len(by_label) == 5  # nothing lost, nothing hung
        assert by_label["killer"].error_kind == ERROR_KIND_ENVIRONMENT
        assert by_label["stalled"].error_kind == ERROR_KIND_TIMEOUT
        for label in ("clock=2", "clock=4", "clock=6"):
            assert by_label[label].ok
        # Only the three healthy corners were memoized.
        assert len(ResultCache(tmp_path)) == 3

    def test_straggler_result_for_reaped_task_is_dropped_not_fatal(self):
        # A worker's result can race the grace poll and land after its
        # task was already settled as lost; collect() must drop the
        # straggler instead of raising KeyError.
        executor = PoolExecutor(workers=1)
        assert executor._settle(99, object()) is None

    def test_all_workers_killed_still_settles_everything(self):
        """Even when every submitted job kills its worker, the sweep
        must settle every corner (the pool respawns workers and the
        liveness poll attributes each casualty)."""
        killers = [
            SynthesisJob(
                source=SWEEP_SRC,
                script=base_script(),
                label=f"killer-{index}",
                environment="tests.helpers:suicide_environment",
            )
            for index in range(3)
        ]
        engine = ExplorationEngine(
            use_cache=False,
            executor=PoolExecutor(workers=2, poll=0.05),
        )
        result = engine.explore(killers)
        assert len(result.outcomes) == 3
        assert all(
            o.error_kind == ERROR_KIND_ENVIRONMENT for o in result.outcomes
        )


# ---------------------------------------------------------------------------
# Per-job wall-clock timeouts
# ---------------------------------------------------------------------------


class TestJobTimeout:
    def stalled_job(self, label="stalled", clock=4.0, timeout=None):
        script = base_script()
        script.clock_period = clock
        return SynthesisJob(
            source=SWEEP_SRC,
            script=script,
            label=label,
            environment="tests.helpers:sleepy_environment",
            environment_args=(30,),
            timeout=timeout,
        )

    def test_execute_job_enforces_the_budget(self):
        outcome = execute_job(self.stalled_job(timeout=0.3))
        assert not outcome.ok
        assert outcome.error_kind == ERROR_KIND_TIMEOUT
        assert "wall-clock budget" in outcome.error
        assert outcome.elapsed < 5.0
        assert not outcome.cacheable

    def test_timeout_is_not_part_of_the_cache_key(self):
        # The budget changes when an attempt is abandoned, never what
        # a completed run computes — keying on it would fragment the
        # cache for no benefit.
        job = sweep_jobs("clock=4")[0]
        import dataclasses

        assert job_key(job) == job_key(
            dataclasses.replace(job, timeout=0.5)
        )

    def test_engine_budget_settles_timeouts_uncached(self, tmp_path):
        engine = ExplorationEngine(cache_dir=tmp_path, job_timeout=0.3)
        result = engine.explore([self.stalled_job()])
        outcome = result.outcomes[0]
        assert not outcome.ok
        assert outcome.error_kind == ERROR_KIND_TIMEOUT
        assert len(ResultCache(tmp_path)) == 0  # never memoized

    def test_timeouts_are_not_dominance_evidence(self):
        # A timed-out corner says nothing about harder corners: the
        # strictly-harder twin must run (and time out itself), never
        # be pruned.
        jobs = [
            self.stalled_job(label="easy", clock=4.0),
            self.stalled_job(label="hard", clock=2.0),
        ]
        result = ExplorationEngine(
            use_cache=False, job_timeout=0.3
        ).explore(jobs)
        assert (result.executed, result.pruned) == (2, 0)
        assert all(
            o.error_kind == ERROR_KIND_TIMEOUT for o in result.outcomes
        )

    def test_explicit_job_budget_wins_over_engine_budget(self):
        engine = ExplorationEngine(use_cache=False, job_timeout=30.0)
        result = engine.explore([self.stalled_job(timeout=0.3)])
        assert result.outcomes[0].error_kind == ERROR_KIND_TIMEOUT
        assert result.elapsed < 10.0

    def test_engine_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError, match="job_timeout"):
            ExplorationEngine(job_timeout=0.0)

    def test_cli_job_timeout_flag(self, tmp_path, capsys):
        source_path = tmp_path / "d.c"
        source_path.write_text(SWEEP_SRC, encoding="utf-8")
        status = main(
            [
                "dse", str(source_path),
                "--vary", "clock=4",
                "--environment", "tests.helpers:sleepy_environment",
                "--environment-arg", "30",
                "--job-timeout", "0.3",
                "--no-cache",
                "--output", "total",
            ]
        )
        assert status == 1  # nothing feasible
        out = capsys.readouterr().out
        assert "timeout" in out

    def test_cli_rejects_bad_job_timeout(self, tmp_path, capsys):
        source_path = tmp_path / "d.c"
        source_path.write_text(SWEEP_SRC, encoding="utf-8")
        status = main(
            ["dse", str(source_path), "--vary", "clock=4",
             "--job-timeout", "-1"]
        )
        assert status == 2
        assert "--job-timeout" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# The unified engine loop over explicit executors
# ---------------------------------------------------------------------------


class TestEngineExecutorParity:
    def test_serial_and_pool_agree(self):
        jobs = sweep_jobs("clock=2,4", "unroll=none,*:0")
        serial = ExplorationEngine(
            use_cache=False, executor=SerialExecutor()
        ).explore(jobs)
        pool = ExplorationEngine(
            use_cache=False, executor=PoolExecutor(workers=2)
        ).explore(jobs)
        assert [o.label for o in serial.outcomes] == [
            o.label for o in pool.outcomes
        ]
        assert [o.score() for o in serial.outcomes] == [
            o.score() for o in pool.outcomes
        ]
        assert serial.executor == "serial"
        assert pool.executor == "pool"

    def test_early_exit_through_explicit_pool(self):
        jobs = sweep_jobs("clock=2,4", "unroll=none,*:0")
        result = ExplorationEngine(
            use_cache=False, executor=PoolExecutor(workers=2)
        ).explore(jobs, target_latency=2.0)
        assert result.goal_met
        assert result.executed + result.pruned + result.skipped == len(jobs)

    def test_pool_size_never_exceeds_pending(self):
        executor = PoolExecutor(workers=8)
        engine = ExplorationEngine(use_cache=False, executor=executor)
        engine.explore(sweep_jobs("clock=2,4"))
        assert executor.capacity == 2  # sized to the miss count


