"""Unit tests for the behavioral interpreter."""

import pytest

from repro.interp import (
    ExecutionLimitExceeded,
    Interpreter,
    InterpreterError,
    run_design,
    stateful_external,
)
from repro.ir.builder import design_from_source


def run(source, **kwargs):
    return run_design(design_from_source(source), **kwargs)


class TestScalars:
    def test_assignment_chain(self):
        state = run("int a; int b; a = 2; b = a * 3;")
        assert state.scalars == {"a": 2, "b": 6}

    def test_inputs_prepopulate(self):
        state = run("int y; y = x + 1;", inputs={"x": 9})
        assert state.scalars["y"] == 10

    def test_undefined_read_raises(self):
        with pytest.raises(InterpreterError):
            run("int y; y = nothing;")

    def test_c_division_semantics(self):
        state = run("int q; int r; q = -7 / 2; r = -7 % 2;")
        assert state.scalars["q"] == -3
        assert state.scalars["r"] == -1

    def test_short_circuit_and(self):
        # RHS would divide by zero; && must not evaluate it.
        state = run("int x; int z; z = 0; x = (z != 0) && (1 / z);")
        assert state.scalars["x"] == 0

    def test_short_circuit_or(self):
        state = run("int x; int z; z = 0; x = (z == 0) || (1 / z);")
        assert state.scalars["x"] == 1

    def test_ternary(self):
        state = run("int x; x = 1 ? 10 : 20;")
        assert state.scalars["x"] == 10


class TestArrays:
    def test_store_and_load(self):
        state = run("int a[4]; int x; a[2] = 7; x = a[2];")
        assert state.arrays["a"] == [0, 0, 7, 0]
        assert state.scalars["x"] == 7

    def test_array_inputs(self):
        state = run(
            "int a[3]; int x; x = a[1];", array_inputs={"a": [5, 6, 7]}
        )
        assert state.scalars["x"] == 6

    def test_array_inputs_truncate_to_declared_size(self):
        state = run("int a[2]; int x; x = a[1];", array_inputs={"a": [1, 2, 3, 4]})
        assert state.arrays["a"] == [1, 2]

    def test_out_of_bounds_store(self):
        with pytest.raises(InterpreterError):
            run("int a[2]; a[5] = 1;")

    def test_out_of_bounds_read(self):
        with pytest.raises(InterpreterError):
            run("int a[2]; int x; x = a[2];")

    def test_undeclared_array(self):
        with pytest.raises(InterpreterError):
            run("int x; x = ghost[0];")

    def test_extra_input_array_visible(self):
        state = run(
            "int x; x = extra[0];", array_inputs={"extra": [42]}
        )
        assert state.scalars["x"] == 42


class TestControlFlow:
    def test_if_then(self):
        state = run("int x; if (1) { x = 1; } else { x = 2; }")
        assert state.scalars["x"] == 1

    def test_if_else(self):
        state = run("int x; if (0) { x = 1; } else { x = 2; }")
        assert state.scalars["x"] == 2

    def test_for_loop(self):
        state = run("int i; int s; s = 0; for (i = 0; i < 5; i++) s += i;")
        assert state.scalars["s"] == 10
        assert state.scalars["i"] == 5

    def test_nested_loops(self):
        state = run(
            "int i; int j; int c; c = 0;"
            "for (i = 0; i < 3; i++) for (j = 0; j < 4; j++) c += 1;"
        )
        assert state.scalars["c"] == 12

    def test_while_with_break(self):
        state = run(
            "int i; i = 0; while (1) { i = i + 1; if (i >= 7) { break; } }"
        )
        assert state.scalars["i"] == 7

    def test_break_exits_inner_loop_only(self):
        state = run(
            "int i; int j; int c; c = 0;"
            "for (i = 0; i < 3; i++) {"
            "  for (j = 0; j < 10; j++) { if (j == 2) { break; } c += 1; }"
            "}"
        )
        assert state.scalars["c"] == 6

    def test_step_limit_guards_infinite_loop(self):
        with pytest.raises(ExecutionLimitExceeded):
            run("int x; x = 0; while (1) { x = x + 1; }", max_steps=1000)


class TestFunctions:
    def test_call_and_return(self):
        state = run("int f(x) { return x * 2; } int y; y = f(21);")
        assert state.scalars["y"] == 42

    def test_private_scalar_frames(self):
        state = run(
            "int f(x) { int t; t = x + 1; return t; }"
            "int t; int y; t = 100; y = f(1);"
        )
        assert state.scalars["t"] == 100  # callee t must not leak

    def test_shared_arrays(self):
        state = run(
            "void fill(v) { shared[0] = v; return; }"
            "int shared[2]; fill(9);"
        )
        assert state.arrays["shared"][0] == 9

    def test_early_return_in_branch(self):
        state = run(
            "int f(x) { if (x > 0) { return 1; } return 0; }"
            "int a; int b; a = f(5); b = f(-5);"
        )
        assert state.scalars["a"] == 1
        assert state.scalars["b"] == 0

    def test_recursion(self):
        state = run(
            "int fact(n) { if (n <= 1) { return 1; } return n * fact(n - 1); }"
            "int y; y = fact(5);"
        )
        assert state.scalars["y"] == 120

    def test_wrong_arity_raises(self):
        with pytest.raises(InterpreterError):
            run("int f(a, b) { return a + b; } int y; y = f(1);")

    def test_unknown_function_raises(self):
        with pytest.raises(InterpreterError):
            run("int y; y = mystery(1);")


class TestExternals:
    def test_plain_external(self):
        state = run(
            "int y; y = double_it(4);",
            externals={"double_it": lambda v: v * 2},
        )
        assert state.scalars["y"] == 8

    def test_stateful_external_reads_arrays(self):
        @stateful_external
        def probe(i, state=None):
            return state.arrays["buf"][i]

        state = run(
            "int buf[3]; int y; buf[1] = 77; y = probe(1);",
            externals={"probe": probe},
        )
        assert state.scalars["y"] == 77

    def test_trace_records_op_order(self):
        design = design_from_source("int a; int b; a = 1; b = 2;")
        state = run_design(design)
        ops = list(design.main.walk_operations())
        assert state.trace == [ops[0].uid, ops[1].uid]


class TestCallFunction:
    def test_direct_function_call(self):
        design = design_from_source("int add(a, b) { return a + b; }")
        interp = Interpreter(design)
        assert interp.call_function("add", [2, 3]) == 5
