"""Tests for the pluggable storage layer (repro.dse.storage): backend
spec parsing, the shared backend contract across fs/flat/sqlite,
legacy flat-layout migration, the spin-lock stale-break race fix,
lock-wait accounting, lock-free stats, and cross-process shard
contention (mixed get/put/gc from N processes)."""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import sqlite3
import threading
import time

import pytest

import repro.dse.storage.locks as locks_module
from repro.dse import ExplorationEngine, grid_from_specs, jobs_from_grid
from repro.dse.cache import ResultCache
from repro.dse.service import CacheService, DirectoryLock
from repro.dse.storage import (
    BACKEND_KINDS,
    KIND_OUTCOME,
    KIND_STAGE,
    CacheLockTimeout,
    FlatFsBackend,
    ShardedFsBackend,
    SqliteBackend,
    make_backend,
    parse_storage_spec,
    shard_budgets,
    shard_of,
    storage_spec,
)
from repro.flow.artifacts import StageArtifactStore
from repro.spark import SynthesisOutcome
from repro.transforms.base import SynthesisScript

KEY_0 = "0" * 64
KEY_9 = "9" * 64
KEY_F = "f" * 64


def make(kind, tmp_path):
    backend = make_backend(tmp_path, kind=kind)
    backend.ensure()
    return backend


# ---------------------------------------------------------------------------
# Backend specs and shard math
# ---------------------------------------------------------------------------


class TestSpecs:
    def test_bare_path_is_the_sharded_fs_backend(self):
        assert parse_storage_spec("/some/cache") == ("fs", "/some/cache")

    @pytest.mark.parametrize("kind", BACKEND_KINDS)
    def test_prefixed_specs_round_trip(self, kind):
        spec = storage_spec(kind, "/some/cache")
        assert parse_storage_spec(spec) == (kind, "/some/cache")

    def test_fs_spec_is_a_plain_path(self):
        # Older readers treat the spec as a directory path; the
        # default kind must therefore stay prefix-free.
        assert storage_spec("fs", "/some/cache") == "/some/cache"
        assert storage_spec("sqlite", "/some/cache") == "sqlite:/some/cache"

    @pytest.mark.parametrize("kind", BACKEND_KINDS)
    def test_make_backend_from_spec_and_kind(self, kind, tmp_path):
        by_spec = make_backend(storage_spec(kind, tmp_path))
        by_kind = make_backend(tmp_path, kind=kind)
        assert by_spec.kind == by_kind.kind == kind
        assert by_spec.root == by_kind.root == tmp_path

    def test_make_backend_passes_instances_through(self, tmp_path):
        backend = ShardedFsBackend(tmp_path)
        assert make_backend(backend) is backend

    def test_make_backend_rejects_unknown_kind(self, tmp_path):
        with pytest.raises(ValueError):
            make_backend(tmp_path, kind="redis")

    @pytest.mark.parametrize("kind", BACKEND_KINDS)
    def test_spec_reconstructs_an_equivalent_backend(self, kind, tmp_path):
        backend = make(kind, tmp_path)
        backend.put(KEY_0, KIND_OUTCOME, b"payload")
        clone = make_backend(backend.spec)
        assert clone.kind == kind
        assert clone.get(KEY_0, KIND_OUTCOME) == b"payload"


class TestShardMath:
    def test_shard_is_the_leading_hex_digit(self):
        assert shard_of(KEY_0) == 0
        assert shard_of(KEY_9) == 9
        assert shard_of(KEY_F) == 15

    def test_non_hex_and_empty_keys_land_in_shard_zero(self):
        assert shard_of("k" * 64) == 0
        assert shard_of("") == 0

    def test_flat_backend_owns_everything_in_shard_zero(self):
        assert shard_of(KEY_F, num_shards=1) == 0

    @pytest.mark.parametrize("max_bytes", [0, 5, 16, 1000, 256 * 1024 * 1024])
    def test_budgets_sum_exactly_to_the_global_budget(self, max_bytes):
        for shards in (1, 16):
            budgets = shard_budgets(max_bytes, shards)
            assert len(budgets) == shards
            assert sum(budgets) == max_bytes
            # Remainder spreads: no shard more than one byte ahead.
            assert max(budgets) - min(budgets) <= 1


# ---------------------------------------------------------------------------
# The backend contract, across all three implementations
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("kind", BACKEND_KINDS)
class TestBackendContract:
    def test_put_get_roundtrip_both_kinds(self, kind, tmp_path):
        backend = make(kind, tmp_path)
        backend.put(KEY_0, KIND_OUTCOME, b"outcome-bytes")
        backend.put(KEY_0, KIND_STAGE, b"stage-bytes")
        assert backend.get(KEY_0, KIND_OUTCOME) == b"outcome-bytes"
        assert backend.get(KEY_0, KIND_STAGE) == b"stage-bytes"

    def test_missing_entry_is_none(self, kind, tmp_path):
        backend = make(kind, tmp_path)
        assert backend.get(KEY_0, KIND_OUTCOME) is None

    def test_put_replaces(self, kind, tmp_path):
        backend = make(kind, tmp_path)
        backend.put(KEY_0, KIND_OUTCOME, b"old")
        backend.put(KEY_0, KIND_OUTCOME, b"new")
        assert backend.get(KEY_0, KIND_OUTCOME) == b"new"
        assert len(backend.entries()) == 1

    def test_drop_is_idempotent(self, kind, tmp_path):
        backend = make(kind, tmp_path)
        backend.put(KEY_0, KIND_OUTCOME, b"payload")
        backend.drop(KEY_0, KIND_OUTCOME)
        backend.drop(KEY_0, KIND_OUTCOME)  # absent: ignored
        assert backend.get(KEY_0, KIND_OUTCOME) is None

    def test_entries_report_key_kind_bytes_and_shard(self, kind, tmp_path):
        backend = make(kind, tmp_path)
        backend.put(KEY_9, KIND_OUTCOME, b"123456")
        (entry,) = backend.entries()
        assert entry.key == KEY_9
        assert entry.kind == KIND_OUTCOME
        assert entry.bytes == 6
        assert entry.shard == (9 if backend.num_shards == 16 else 0)

    def test_entries_filter_by_shard(self, kind, tmp_path):
        backend = make(kind, tmp_path)
        backend.put(KEY_0, KIND_OUTCOME, b"a")
        backend.put(KEY_F, KIND_OUTCOME, b"b")
        whole = backend.entries()
        assert len(whole) == 2
        per_shard = [
            entry
            for shard in range(backend.num_shards)
            for entry in backend.entries(shard=shard)
        ]
        # Shard-by-shard enumeration is a partition of the whole.
        assert sorted(e.key for e in per_shard) == sorted(
            e.key for e in whole
        )

    def test_clear_by_kind_is_selective(self, kind, tmp_path):
        backend = make(kind, tmp_path)
        backend.put(KEY_0, KIND_OUTCOME, b"o")
        backend.put(KEY_9, KIND_STAGE, b"s")
        assert backend.clear(kind=KIND_OUTCOME) == 1
        assert backend.get(KEY_0, KIND_OUTCOME) is None
        assert backend.get(KEY_9, KIND_STAGE) == b"s"
        assert backend.clear() == 1
        assert backend.entries() == []

    def test_shard_lock_excludes_a_second_holder(self, kind, tmp_path):
        backend = make(kind, tmp_path)
        other = make_backend(backend.spec)
        with backend.shard_lock(0):
            if kind == "sqlite":
                # sqlite's shard_lock is deliberately a no-op (the
                # database serializes internally): a second holder
                # must NOT block.
                with other.shard_lock(0):
                    pass
            else:
                with pytest.raises(CacheLockTimeout):
                    with other.shard_lock(0, timeout=0.2):
                        pass  # pragma: no cover

    def test_result_cache_and_stage_store_run_on_it(self, kind, tmp_path):
        cache = ResultCache(tmp_path, backend=kind)
        key = KEY_0
        cache.put(key, SynthesisOutcome(label="run"))
        assert cache.get(key).label == "run"
        store = cache.stage_store()
        assert store.backend is cache.backend  # shared instance
        assert store.get(key) is None
        assert store.put(key, {"stage": "artifact"})
        assert store.get(key) == {"stage": "artifact"}
        assert len(store) == 1 and len(cache) == 1
        # One budget, one service: gc/clear govern both kinds.
        service = CacheService(cache.backend, max_bytes=0)
        report = service.gc()
        assert report.evicted == 2

    def test_cache_service_stats_name_the_backend(self, kind, tmp_path):
        backend = make(kind, tmp_path)
        service = CacheService(backend)
        stats = service.stats()
        assert stats.backend == kind
        assert stats.shards == backend.num_shards
        assert stats.entries == 0


# ---------------------------------------------------------------------------
# Recency touches (LRU sees use, not just writes)
# ---------------------------------------------------------------------------


class TestRecency:
    def test_fs_get_touches_mtime(self, tmp_path):
        backend = make("fs", tmp_path)
        backend.put(KEY_0, KIND_OUTCOME, b"payload")
        path = backend.entry_path(KEY_0, KIND_OUTCOME)
        ancient = time.time() - 4000
        os.utime(path, (ancient, ancient))
        backend.get(KEY_0, KIND_OUTCOME)
        assert path.stat().st_mtime > ancient + 1000

    def test_sqlite_get_touches_mtime(self, tmp_path):
        backend = make("sqlite", tmp_path)
        backend.put(KEY_0, KIND_OUTCOME, b"payload")
        backend._execute("UPDATE entries SET mtime = 1.0")
        backend.get(KEY_0, KIND_OUTCOME)
        (entry,) = backend.entries()
        assert entry.mtime > 1.0


# ---------------------------------------------------------------------------
# Legacy flat-layout migration
# ---------------------------------------------------------------------------


class TestLegacyMigration:
    def seed_flat(self, root, key, payload=b"legacy", suffix=".json"):
        root.mkdir(parents=True, exist_ok=True)
        path = root / (key + suffix)
        path.write_bytes(payload)
        return path

    def test_ensure_moves_flat_entries_into_shards(self, tmp_path):
        old = self.seed_flat(tmp_path, KEY_9)
        ancient = time.time() - 4000
        os.utime(old, (ancient, ancient))
        backend = make("fs", tmp_path)
        assert not old.exists()
        moved = backend.entry_path(KEY_9, KIND_OUTCOME)
        assert moved.parent.name == "shard-9"
        assert moved.read_bytes() == b"legacy"
        # os.replace preserves mtime, so LRU recency survives.
        assert abs(moved.stat().st_mtime - ancient) < 2.0

    def test_stage_artifacts_migrate_too(self, tmp_path):
        self.seed_flat(tmp_path, KEY_0, b"pkl", suffix=".stage.pkl")
        backend = make("fs", tmp_path)
        assert backend.get(KEY_0, KIND_STAGE) == b"pkl"

    def test_foreign_files_are_never_touched(self, tmp_path):
        readme = tmp_path / "README.json"
        self.seed_flat(tmp_path, KEY_0)
        readme.write_bytes(b"not an entry")
        make("fs", tmp_path)
        assert readme.read_bytes() == b"not an entry"

    def test_straggler_written_after_ensure_is_adopted_on_get(
        self, tmp_path
    ):
        # An old flat-layout client writing into a migrated root: the
        # sharded reader consults the flat path on a miss.
        backend = make("fs", tmp_path)
        self.seed_flat(tmp_path, KEY_F, b"straggler")
        assert backend.get(KEY_F, KIND_OUTCOME) == b"straggler"
        assert backend.entry_path(KEY_F, KIND_OUTCOME).exists()

    def test_straggler_is_adopted_by_enumeration(self, tmp_path):
        backend = make("fs", tmp_path)
        self.seed_flat(tmp_path, KEY_F, b"straggler")
        (entry,) = backend.entries()
        assert entry.key == KEY_F and entry.shard == 15

    def test_drop_removes_the_legacy_path_too(self, tmp_path):
        backend = make("fs", tmp_path)
        flat = self.seed_flat(tmp_path, KEY_0)
        backend.drop(KEY_0, KIND_OUTCOME)
        assert not flat.exists()
        assert backend.get(KEY_0, KIND_OUTCOME) is None

    def test_flat_cache_reads_through_the_sharded_backend(self, tmp_path):
        # End to end: a cache populated by the legacy layout (the
        # `flat` backend IS that layout) reads transparently through
        # the default sharded backend.
        flat = ResultCache(tmp_path, backend="flat")
        flat.put(KEY_9, SynthesisOutcome(label="old-layout"))
        sharded = ResultCache(tmp_path)
        recalled = sharded.get(KEY_9)
        assert recalled is not None and recalled.label == "old-layout"

    def test_flat_backend_never_migrates(self, tmp_path):
        backend = make("flat", tmp_path)
        backend.put(KEY_9, KIND_OUTCOME, b"payload")
        assert (tmp_path / (KEY_9 + ".json")).exists()
        assert backend.num_shards == 1
        assert not list(tmp_path.glob("shard-*"))


# ---------------------------------------------------------------------------
# The spin-lock stale-break race (regression: rename-to-claim)
# ---------------------------------------------------------------------------


@pytest.fixture
def no_flock(monkeypatch):
    """Force the O_CREAT|O_EXCL spin-lock fallback."""
    monkeypatch.setattr(locks_module, "fcntl", None)


class TestSpinLockRace:
    def stale_lock(self, tmp_path, token=b"99999:dead"):
        path = tmp_path / ".lock.pid"
        path.write_bytes(token)
        ancient = time.time() - 4000
        os.utime(path, (ancient, ancient))
        return path

    def test_exactly_one_breaker_wins(self, tmp_path):
        """N waiters deciding the same lock is stale at the same
        moment: exactly one may conclude it broke the lock.  (The old
        stat-then-unlink break let two waiters each 'remove' the file
        and both acquire.)"""
        waiters = 8
        stale = self.stale_lock(tmp_path)
        barrier = threading.Barrier(waiters)
        outcomes = []

        def breaker():
            lock = DirectoryLock(tmp_path, stale_after=300.0)
            barrier.wait()
            outcomes.append(lock._break_stale_spin_lock(stale))

        threads = [
            threading.Thread(target=breaker) for _ in range(waiters)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert outcomes.count(True) == 1
        assert not stale.exists()
        # No grave files leak.
        assert list(tmp_path.glob(".lock.pid.broken-*")) == []

    def test_live_lock_is_not_broken(self, tmp_path):
        fresh = tmp_path / ".lock.pid"
        fresh.write_bytes(b"1234:live")
        lock = DirectoryLock(tmp_path, stale_after=300.0)
        assert lock._break_stale_spin_lock(fresh) is False
        assert fresh.read_bytes() == b"1234:live"

    def test_spin_path_provides_exclusion(self, tmp_path, no_flock):
        holder = DirectoryLock(tmp_path, timeout=1.0)
        holder.acquire()
        try:
            assert (tmp_path / ".lock.pid").exists()
            blocked = DirectoryLock(tmp_path, timeout=0.2, poll=0.02)
            with pytest.raises(CacheLockTimeout):
                blocked.acquire()
        finally:
            holder.release()
        assert not (tmp_path / ".lock.pid").exists()
        # Released: the next holder gets in immediately.
        with DirectoryLock(tmp_path, timeout=1.0):
            pass

    def test_acquire_breaks_a_stale_lock(self, tmp_path, no_flock):
        self.stale_lock(tmp_path)
        lock = DirectoryLock(tmp_path, timeout=1.0, stale_after=300.0)
        lock.acquire()  # must not time out
        lock.release()

    def test_release_never_unlinks_a_foreign_lock(self, tmp_path, no_flock):
        """A holder whose lock was broken as stale and re-granted must
        not remove the new holder's lock file on release (the token
        check).  Without it, a third waiter could acquire while the
        second still believes it holds the lock."""
        first = DirectoryLock(tmp_path, timeout=1.0)
        first.acquire()
        spin_path = tmp_path / ".lock.pid"
        # Simulate the steal: first's lock aged out and a second
        # waiter broke + re-acquired.
        ancient = time.time() - 4000
        os.utime(spin_path, (ancient, ancient))
        second = DirectoryLock(tmp_path, timeout=1.0, stale_after=300.0)
        second.acquire()
        assert spin_path.exists()
        # The original holder releases: the second holder's lock file
        # must survive.
        first.release()
        assert spin_path.exists()
        assert spin_path.read_bytes() == second._token
        second.release()
        assert not spin_path.exists()

    def test_lock_files_carry_an_ownership_token(self, tmp_path, no_flock):
        with DirectoryLock(tmp_path, timeout=1.0) as lock:
            content = (tmp_path / ".lock.pid").read_bytes()
            assert content == lock._token
            assert content.startswith(str(os.getpid()).encode("ascii"))


# ---------------------------------------------------------------------------
# Lock-wait accounting
# ---------------------------------------------------------------------------


class TestLockWaitAccounting:
    def test_uncontended_acquire_records_no_meaningful_wait(self, tmp_path):
        lock = DirectoryLock(tmp_path)
        with lock:
            pass
        assert lock.waited < 0.5

    def test_contended_acquire_accumulates_wait(self, tmp_path):
        held = threading.Event()
        release = threading.Event()

        def holder():
            with DirectoryLock(tmp_path):
                held.set()
                release.wait(timeout=5.0)

        thread = threading.Thread(target=holder)
        thread.start()
        held.wait(timeout=5.0)
        blocked = DirectoryLock(tmp_path, timeout=5.0, poll=0.02)
        timer = threading.Timer(0.3, release.set)
        timer.start()
        with blocked:
            pass
        thread.join()
        assert blocked.waited >= 0.1

    def test_backend_shard_lock_feeds_lock_waited(self, tmp_path):
        backend = make("fs", tmp_path)
        other = make_backend(backend.spec)
        other.ensure()
        with backend.shard_lock(3):
            with pytest.raises(CacheLockTimeout):
                with other.shard_lock(3, timeout=0.3):
                    pass  # pragma: no cover
        assert other.lock_waited >= 0.2
        # Disjoint shards never contend.
        with backend.shard_lock(3):
            with other.shard_lock(4, timeout=0.3):
                pass


# ---------------------------------------------------------------------------
# Lock-free stats (observability never stalls maintenance)
# ---------------------------------------------------------------------------


class TestLockFreeStats:
    def test_stats_succeed_with_every_lock_held(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY_0, SynthesisOutcome(label="x"))
        service = CacheService(cache.backend, lock_timeout=0.5)
        with contextlib.ExitStack() as stack:
            stack.enter_context(DirectoryLock(tmp_path, timeout=1.0))
            for shard in range(cache.backend.num_shards):
                stack.enter_context(cache.backend.shard_lock(shard))
            stats = service.stats()
        assert stats.entries == 1

    def test_fast_stats_read_the_index_without_locks(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY_0, SynthesisOutcome(label="x"))
        service = CacheService(cache.backend, lock_timeout=0.5)
        service.reindex()
        with contextlib.ExitStack() as stack:
            for shard in range(cache.backend.num_shards):
                stack.enter_context(cache.backend.shard_lock(shard))
            stats = service.stats(fast=True)
        assert stats.entries == 1


# ---------------------------------------------------------------------------
# Cross-process shard contention (mixed get/put/gc)
# ---------------------------------------------------------------------------


def _contend(args):
    """Worker: put/get-verify a disjoint slice of keys against a
    shared backend, interleaving full gc passes (generous budget, so
    nothing should be evicted).  Returns the number of bad reads."""
    spec, worker_id, keys, rounds = args
    cache = make_backend(spec)
    cache.ensure()
    service = CacheService(cache, max_bytes=64 * 1024 * 1024)
    bad = 0
    for round_number in range(rounds):
        for index, key in enumerate(keys):
            payload = f"w{worker_id}-r{round_number}-{index}".encode()
            cache.put(key, KIND_OUTCOME, payload)
            if cache.get(key, KIND_OUTCOME) != payload:
                bad += 1
        if round_number % 2 == 1:
            report = service.gc()
            if report.evicted:  # budget is generous: nothing evicts
                bad += 1
    return bad


def _worker_keys(worker_id, per_worker, same_shard):
    """Disjoint keys per worker: all leading digit '0' (same shard)
    or leading digit = worker id (disjoint shards)."""
    lead = "0" if same_shard else f"{worker_id:x}"
    return [
        lead + f"{worker_id:02x}{index:02x}".ljust(63, "e")
        for index in range(per_worker)
    ]


@pytest.mark.parametrize("kind", ["fs", "sqlite"])
class TestCrossProcessContention:
    def run_contention(self, tmp_path, kind, same_shard):
        workers = 4
        per_worker = 6
        rounds = 4
        backend = make(kind, tmp_path)
        expected = {}
        jobs = []
        for worker_id in range(workers):
            keys = _worker_keys(worker_id, per_worker, same_shard)
            expected[worker_id] = keys
            jobs.append((backend.spec, worker_id, keys, rounds))
        with multiprocessing.Pool(processes=workers) as pool:
            bad = pool.map(_contend, jobs)
        assert bad == [0] * workers
        # Exactly-once landing: every key present exactly once, no
        # key lost to a concurrent gc, no duplicates across shards.
        entries = backend.entries()
        seen = [entry.key for entry in entries]
        flat_keys = [key for keys in expected.values() for key in keys]
        assert sorted(seen) == sorted(set(seen))  # no duplicates
        assert sorted(seen) == sorted(flat_keys)  # none lost
        for entry in entries:
            assert entry.shard == shard_of(entry.key, backend.num_shards)
        # Final payloads are the last round's, intact.
        for worker_id, keys in expected.items():
            for index, key in enumerate(keys):
                payload = backend.get(key, KIND_OUTCOME)
                assert payload == (
                    f"w{worker_id}-r{rounds - 1}-{index}".encode()
                )

    def test_same_shard(self, tmp_path, kind):
        self.run_contention(tmp_path, kind, same_shard=True)

    def test_disjoint_shards(self, tmp_path, kind):
        self.run_contention(tmp_path, kind, same_shard=False)

    def test_gc_accounting_reconciles_under_load(self, tmp_path, kind):
        """After a contended run, a bounded gc's per-shard breakdown
        must sum to the headline numbers and its budgets exactly to
        the global budget."""
        backend = make(kind, tmp_path)
        for worker_id in range(4):
            for key in _worker_keys(worker_id, 6, same_shard=False):
                backend.put(key, KIND_OUTCOME, b"x" * 64)
        service = CacheService(backend, max_bytes=16 * 64)
        report = service.gc()
        assert sum(s.budget for s in report.shards) == service.max_bytes
        assert sum(s.examined for s in report.shards) == report.examined
        assert sum(s.evicted for s in report.shards) == report.evicted
        assert (
            sum(s.freed_bytes for s in report.shards) == report.freed_bytes
        )
        assert sum(s.kept_bytes for s in report.shards) == report.kept_bytes
        assert report.examined == 24
        for shard in report.shards:
            assert shard.kept_bytes <= shard.budget
        # Survivors actually fit the global budget.
        assert service.stats().total_bytes <= service.max_bytes


# ---------------------------------------------------------------------------
# sqlite backend specifics
# ---------------------------------------------------------------------------


class TestSqliteBackend:
    def test_wal_mode_and_single_file_layout(self, tmp_path):
        backend = make("sqlite", tmp_path)
        backend.put(KEY_0, KIND_OUTCOME, b"payload")
        mode = backend._execute("PRAGMA journal_mode").fetchone()[0]
        assert mode == "wal"
        assert backend.db_path.exists()
        # No shard directories, no entry files: rows only.
        assert not list(tmp_path.glob("shard-*"))
        assert not list(tmp_path.glob("*.json"))

    def test_corrupt_database_reads_as_misses(self, tmp_path):
        backend = make("sqlite", tmp_path)
        backend.put(KEY_0, KIND_OUTCOME, b"payload")
        backend._conn.close()
        backend._conn = None
        backend.db_path.write_bytes(b"this is not a sqlite database")
        fresh = SqliteBackend(tmp_path)
        assert fresh.get(KEY_0, KIND_OUTCOME) is None
        assert fresh.entries() == []

    def test_busy_retry_feeds_lock_waited(self, tmp_path):
        backend = make("sqlite", tmp_path)
        # A second connection holding an exclusive transaction makes
        # the write briefly busy; the retry loop must wait (counting
        # it) and then succeed.  sqlite's own busy handler is dialed
        # down so the Python-level retry loop is what waits.
        backend._connection().execute("PRAGMA busy_timeout=10")
        held = threading.Event()

        def hold_briefly():
            blocker = sqlite3.connect(backend.db_path, timeout=0.1)
            blocker.execute("BEGIN EXCLUSIVE")
            held.set()
            time.sleep(0.3)
            blocker.execute("COMMIT")
            blocker.close()

        thread = threading.Thread(target=hold_briefly)
        thread.start()
        held.wait(timeout=5.0)
        backend.put(KEY_0, KIND_OUTCOME, b"payload")
        thread.join()
        assert backend.get(KEY_0, KIND_OUTCOME) == b"payload"
        assert backend.lock_waited > 0.0

    def test_stage_store_from_a_spec_string(self, tmp_path):
        spec = f"sqlite:{tmp_path}"
        store = StageArtifactStore(spec)
        assert store.put(KEY_0, {"snapshot": 1})
        # A second store (another worker) reads it back via the spec.
        again = StageArtifactStore(spec)
        assert again.get(KEY_0) == {"snapshot": 1}
        assert (tmp_path / "cache.sqlite3").exists()

    def test_engine_warm_sweep_hits_the_sqlite_cache(self, tmp_path):
        jobs = jobs_from_grid(
            "int x;\nx = 1 + 2;",
            grid_from_specs(["clock=2,4"]),
            base_script=SynthesisScript(output_scalars={"x"}),
        )
        cold = ExplorationEngine(
            cache_dir=tmp_path, cache_backend="sqlite"
        ).explore(jobs)
        assert cold.cache_hits == 0
        warm = ExplorationEngine(
            cache_dir=tmp_path, cache_backend="sqlite"
        ).explore(jobs)
        assert warm.cache_hits == len(jobs)
        # The engine stamps the backend spec into the job wire format
        # so broker workers reconstruct the same backend.
        engine = ExplorationEngine(
            cache_dir=tmp_path, cache_backend="sqlite"
        )
        assert engine.stage_spec == f"sqlite:{tmp_path}"
