"""Shared fixtures: sample behavioral sources and external bindings."""

from __future__ import annotations

import pytest

from repro.ir.builder import design_from_source


SIMPLE_LOOP_SRC = """
int acc[12];
int i;
int total;
total = 0;
for (i = 0; i < 10; i++) {
  total = total + i;
  acc[i] = total;
}
"""

CONDITIONAL_SRC = """
int t1; int t2; int t3; int f;
int a; int b; int c; int d; int e; int cond;
a = 3; b = 4; c = 5; d = 2; e = 9; cond = 1;
t1 = a + b;
if (cond) {
  t2 = t1;
  t3 = c + d;
} else {
  t2 = e;
  t3 = c - d;
}
f = t2 + t3;
"""

FUNCTION_SRC = """
int helper(x, y) {
  int r;
  if (x > y) {
    r = x - y;
  } else {
    r = y - x;
  }
  return r;
}
int out;
int p; int q;
p = 10; q = 4;
out = helper(p, q) + helper(q, p);
"""

MINI_ILD_SRC = """
int CalculateLength(i) {
  int lc1; int lc2; int Length;
  lc1 = LengthContribution_1(i);
  if (Need_2nd_Byte(i)) {
    lc2 = LengthContribution_2(i + 1);
    Length = lc1 + lc2;
  } else Length = lc1;
  return Length;
}
int Mark[10];
int len[10];
int NextStartByte;
int i;
NextStartByte = 1;
for (i = 1; i <= 8; i++) {
  if (i == NextStartByte) {
    Mark[i] = 1;
    len[i] = CalculateLength(i);
    NextStartByte += len[i];
  }
}
"""


def mini_ild_externals():
    """Deterministic pure externals for the mini-ILD fixture."""
    return {
        "LengthContribution_1": lambda i: 1 + (i % 2),
        "LengthContribution_2": lambda i: (i % 3),
        "Need_2nd_Byte": lambda i: i % 2,
    }


@pytest.fixture
def simple_loop_design():
    return design_from_source(SIMPLE_LOOP_SRC)


@pytest.fixture
def conditional_design():
    return design_from_source(CONDITIONAL_SRC)


@pytest.fixture
def function_design():
    return design_from_source(FUNCTION_SRC)


@pytest.fixture
def mini_ild_design():
    return design_from_source(MINI_ILD_SRC)


@pytest.fixture
def mini_ild_ext():
    return mini_ild_externals()
