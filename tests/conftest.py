"""Shared fixtures: sample behavioral sources and external bindings.

The source texts and helper functions live in :mod:`tests.helpers`
(shared with ``benchmarks/conftest.py``); this module re-exports them
for the existing ``from tests.conftest import ...`` call sites and
adds the pytest fixtures plus the ``--update-goldens`` flag.
"""

from __future__ import annotations

import pytest

from repro.ir.builder import design_from_source
from tests.helpers import (  # noqa: F401  (re-exported for test modules)
    CONDITIONAL_SRC,
    FUNCTION_SRC,
    MINI_ILD_SRC,
    SIMPLE_LOOP_SRC,
    mini_ild_externals,
)


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help=(
            "rewrite the golden RTL files under tests/goldens/ from "
            "the current emitters instead of comparing against them"
        ),
    )


@pytest.fixture
def update_goldens(request) -> bool:
    # getoption with a default tolerates whole-repo runs where this
    # conftest is not an initial conftest and the flag is unregistered.
    return bool(request.config.getoption("--update-goldens", default=False))


@pytest.fixture
def simple_loop_design():
    return design_from_source(SIMPLE_LOOP_SRC)


@pytest.fixture
def conditional_design():
    return design_from_source(CONDITIONAL_SRC)


@pytest.fixture
def function_design():
    return design_from_source(FUNCTION_SRC)


@pytest.fixture
def mini_ild_design():
    return design_from_source(MINI_ILD_SRC)


@pytest.fixture
def mini_ild_ext():
    return mini_ild_externals()
