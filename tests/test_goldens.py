"""Golden-file regression tests for RTL emission.

The emitted VHDL and Verilog for the priority-encoder design (the
``examples/priority_encoder.py`` block under the microprocessor-block
script) are pinned byte-for-byte under ``tests/goldens/``.  Any
change to the transformation pipeline, scheduler, binding or emitters
that alters the RTL text shows up as a readable diff here.

To intentionally regenerate after an emitter change::

    python -m pytest tests/test_goldens.py --update-goldens
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.backend.interface import DesignInterface
from repro.spark import SparkSession
from repro.transforms.base import SynthesisScript
from tests.helpers import priority_encoder_source

GOLDEN_DIR = Path(__file__).parent / "goldens"
WIDTH = 8


def _synthesize():
    session = SparkSession(
        priority_encoder_source(WIDTH),
        script=SynthesisScript.microprocessor_block(),
        interface=DesignInterface(
            name="priority_encoder",
            input_arrays={"req": WIDTH + 1},
            scalar_outputs=["pos", "found"],
        ),
    )
    return session.run()


@pytest.fixture(scope="module")
def synthesis_result():
    return _synthesize()


@pytest.mark.parametrize(
    "attribute,filename",
    [("vhdl", "priority_encoder.vhd"), ("verilog", "priority_encoder.v")],
)
def test_priority_encoder_rtl_matches_golden(
    synthesis_result, update_goldens, attribute, filename
):
    emitted = getattr(synthesis_result, attribute)
    assert emitted, f"emitter produced no {attribute}"
    golden_path = GOLDEN_DIR / filename

    if update_goldens:
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        golden_path.write_text(emitted, encoding="utf-8")
        pytest.skip(f"updated golden {filename}")

    assert golden_path.exists(), (
        f"missing golden {golden_path}; regenerate with "
        f"`python -m pytest tests/test_goldens.py --update-goldens`"
    )
    golden = golden_path.read_text(encoding="utf-8")
    assert emitted == golden, (
        f"{attribute} emission changed for the priority encoder; if "
        f"intentional, regenerate with --update-goldens"
    )


def test_emission_is_deterministic():
    """Two independent synthesis runs emit identical text — the
    property that makes golden files (and cached outcomes) sound."""
    first = _synthesize()
    second = _synthesize()
    assert first.vhdl == second.vhdl
    assert first.verilog == second.verilog
