"""Unit tests for chaining trails and wire-variable insertion
(paper Section 3.1, Figs 5-7)."""

import pytest

from repro.interp import run_design
from repro.ir.builder import design_from_source
from repro.ir.htg import BlockNode, IfNode
from repro.transforms.chaining import (
    WireVariableInserter,
    chaining_sources,
    enumerate_chaining_trails,
    insert_wire_variable,
)

from tests.helpers import assert_equivalent, ops_text


def block_of_op(func, predicate):
    """(BlockNode, Operation) for the first op satisfying predicate."""
    for node in func.walk_nodes():
        if isinstance(node, BlockNode):
            for op in node.ops:
                if predicate(op):
                    return node, op
    raise AssertionError("no matching operation")


class TestChainingTrails:
    FIG5 = """
    int o1; int o2;
    if (cond1) {
      if (cond2) { o1 = a; } else { o1 = b; }
    } else { o1 = c; }
    o2 = o1 + d;
    """

    def test_fig5_three_trails(self):
        """The paper's Fig 5: three trails lead back from BB8."""
        design = design_from_source(self.FIG5)
        _, reader = block_of_op(
            design.main, lambda op: "o2" in op.writes()
        )
        target_block = next(
            n.block
            for n in design.main.walk_nodes()
            if isinstance(n, BlockNode) and reader in n.ops
        )
        trails = enumerate_chaining_trails(design.main, target_block)
        assert len(trails) == 3

    def test_each_trail_has_one_writer(self):
        design = design_from_source(self.FIG5)
        _, reader = block_of_op(design.main, lambda op: "o2" in op.writes())
        sources = chaining_sources(design.main, reader, "o1")
        assert len(sources) == 3
        for trail, writers in sources.items():
            assert len(writers) == 1, trail

    def test_trail_conditions_recorded(self):
        design = design_from_source(self.FIG5)
        _, reader = block_of_op(design.main, lambda op: "o2" in op.writes())
        target_block = next(
            n.block
            for n in design.main.walk_nodes()
            if isinstance(n, BlockNode) and reader in n.ops
        )
        trails = enumerate_chaining_trails(design.main, target_block)
        polarity_counts = sorted(len(t.conditions) for t in trails)
        # <else> trail crosses one condition; the two then-trails cross 2.
        assert polarity_counts == [1, 2, 2]

    def test_trail_rendering_paper_style(self):
        design = design_from_source(self.FIG5)
        _, reader = block_of_op(design.main, lambda op: "o2" in op.writes())
        target_block = next(
            n.block
            for n in design.main.walk_nodes()
            if isinstance(n, BlockNode) and reader in n.ops
        )
        trails = enumerate_chaining_trails(design.main, target_block)
        assert all(str(t).startswith("<") for t in trails)


class TestWireInsertionFig6:
    FIG6 = """
    int o1; int o2;
    o1 = a + b;
    if (cond) { o1 = d; }
    o2 = o1 + e;
    """

    def build(self):
        design = design_from_source(self.FIG6)
        _, reader = block_of_op(design.main, lambda op: "o2" in op.writes())
        wire = insert_wire_variable(design.main, reader, "o1")
        return design, reader, wire

    def test_reader_redirected_to_wire(self):
        design, reader, wire = self.build()
        assert wire in reader.reads()
        assert "o1" not in reader.reads()

    def test_wire_registered(self):
        design, _, wire = self.build()
        assert wire in design.main.wire_variables

    def test_both_writes_feed_the_wire(self):
        design, _, wire = self.build()
        writers = [
            op
            for op in design.main.walk_operations()
            if wire in op.writes() and not op.is_wire_copy
        ]
        assert len(writers) == 2  # `a + b` and `d` both write the wire

    def test_commit_copies_inserted(self):
        """Fig 6(b): copy operations re-commit the register value."""
        design, _, wire = self.build()
        commits = [
            op
            for op in design.main.walk_operations()
            if op.is_wire_copy and "o1" in op.writes()
        ]
        assert len(commits) == 2

    def test_semantics_preserved(self):
        for cond in (0, 1):
            design = design_from_source(self.FIG6)
            inputs = {"a": 2, "b": 3, "d": 9, "e": 100, "cond": cond}
            before = run_design(design, inputs=inputs).scalars
            design2 = design_from_source(self.FIG6)
            _, reader = block_of_op(
                design2.main, lambda op: "o2" in op.writes()
            )
            insert_wire_variable(design2.main, reader, "o1")
            after = run_design(design2, inputs=inputs).scalars
            assert before["o2"] == after["o2"]
            assert before["o1"] == after["o1"]


class TestWireInsertionFig7:
    FIG7 = """
    int o1; int o2;
    o1 = init;
    if (cond) { o1 = d; }
    o2 = o1 + b;
    """

    def test_one_branch_write_gets_else_copy(self):
        """Fig 7(b): the write-free trail gains a `t1 = o1` copy —
        here materialized against the pre-if register value."""
        design = design_from_source(self.FIG7)
        # Treat `o1 = init` as a previous-cycle write by inserting the
        # wire for the reader only over the conditional: emulate by
        # querying after insertion that both paths define the wire.
        _, reader = block_of_op(design.main, lambda op: "o2" in op.writes())
        wire = insert_wire_variable(design.main, reader, "o1")
        for cond in (0, 1):
            state = run_design(
                design, inputs={"init": 5, "d": 9, "b": 1, "cond": cond}
            )
            expected = (9 if cond else 5) + 1
            assert state.scalars["o2"] == expected

    def test_wire_copy_count(self):
        design = design_from_source(self.FIG7)
        _, reader = block_of_op(design.main, lambda op: "o2" in op.writes())
        insert_wire_variable(design.main, reader, "o1")
        copies = [
            op for op in design.main.walk_operations() if op.is_wire_copy
        ]
        # Paper Fig 7(b) inserts two copy ops (3 and 4).
        assert len(copies) == 2


class TestWireInserterPass:
    def test_straight_line_raw_wired(self):
        design = assert_equivalent(
            "int out[1]; int a; int b; a = x + 1; b = a + 2; out[0] = b;",
            lambda d: WireVariableInserter().run_on_design(d),
            inputs={"x": 5},
        )
        assert design.main.wire_variables

    def test_no_wires_without_chaining(self):
        design = design_from_source("int out[2]; out[0] = x; out[1] = y;")
        WireVariableInserter().run_on_design(design)
        assert not design.main.wire_variables

    def test_branch_local_write_not_cross_wired(self):
        """A write in the then-branch must not force a wire for a read
        in the else-branch (different control paths)."""
        design = assert_equivalent(
            "int out[1]; int t;"
            "if (c) { t = 1; out[0] = t; } else { out[0] = x; }",
            lambda d: WireVariableInserter().run_on_design(d),
            inputs={"c": 1, "x": 3},
        )

    def test_condition_reading_chained_value_wired(self):
        design = assert_equivalent(
            "int out[1]; int c; c = x + 1;"
            "if (c > 0) { out[0] = 1; } else { out[0] = 2; }",
            lambda d: WireVariableInserter().run_on_design(d),
            inputs={"x": -5},
        )
        assert design.main.wire_variables

    def test_loop_bodies_are_separate_regions(self):
        assert_equivalent(
            "int out[4]; int i; int s; s = 0;"
            "for (i = 0; i < 4; i++) { s = s + i; out[i] = s; }",
            lambda d: WireVariableInserter().run_on_design(d),
        )

    def test_multiple_readers_reuse_wire(self):
        design = assert_equivalent(
            "int out[2]; int a; a = x + 1; out[0] = a; out[1] = a * 2;",
            lambda d: WireVariableInserter().run_on_design(d),
            inputs={"x": 7},
        )
        # One producer, two consumers: a single wire suffices.
        assert len(design.main.wire_variables) == 1

    def test_mini_ild_full_wiring_preserves_semantics(self, mini_ild_ext):
        from repro.transforms.const_prop import ConstantPropagation
        from repro.transforms.inline import FunctionInliner
        from repro.transforms.unroll import LoopUnroller
        from tests.conftest import MINI_ILD_SRC

        def pipeline(design):
            FunctionInliner().run_on_design(design)
            LoopUnroller({"i": 0}).run_on_design(design)
            ConstantPropagation().run_on_design(design)
            WireVariableInserter().run_on_design(design)

        design = assert_equivalent(
            MINI_ILD_SRC, pipeline, externals=mini_ild_ext
        )
        assert design.main.wire_variables

    def test_wire_names_derive_from_variable(self):
        design = design_from_source(
            "int out[1]; int acc; acc = x + 1; out[0] = acc;"
        )
        WireVariableInserter().run_on_design(design)
        assert all(
            w.startswith("acc_w") for w in design.main.wire_variables
        )

    def test_idempotent(self):
        design = design_from_source(
            "int out[1]; int a; a = x + 1; out[0] = a;"
        )
        WireVariableInserter().run_on_design(design)
        snapshot = ops_text(design.main)
        WireVariableInserter().run_on_design(design)
        assert ops_text(design.main) == snapshot
