"""Tests for the DOT exporters (repro.ir.dot_export)."""

from repro.ir.builder import design_from_source
from repro.ir.dot_export import fsmd_to_dot, htg_to_dot
from repro.scheduler.list_scheduler import ChainingScheduler
from repro.scheduler.resources import ResourceAllocation, ResourceLibrary

FIG5 = """
int o1; int o2;
if (cond1) {
  if (cond2) { o1 = a; } else { o1 = b; }
} else { o1 = c; }
o2 = o1 + d;
"""

LOOP = """
int acc[6];
int i;
for (i = 0; i < 4; i++) { acc[i] = i; }
"""


def schedule(source, clock=1000.0):
    design = design_from_source(source)
    scheduler = ChainingScheduler(
        library=ResourceLibrary(),
        clock_period=clock,
        allocation=ResourceAllocation.unlimited(),
    )
    return scheduler.schedule(design.main)


class TestHTGExport:
    def test_valid_digraph_skeleton(self):
        design = design_from_source(FIG5)
        dot = htg_to_dot(design.main)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert dot.count("{") == dot.count("}")

    def test_nested_ifs_become_clusters(self):
        design = design_from_source(FIG5)
        dot = htg_to_dot(design.main)
        assert dot.count("subgraph cluster_") == 2
        assert "If Node: cond1" in dot
        assert "If Node: cond2" in dot

    def test_loop_cluster_labelled(self):
        design = design_from_source(LOOP)
        dot = htg_to_dot(design.main)
        assert "Loop (for)" in dot

    def test_operations_listed(self):
        design = design_from_source(FIG5)
        dot = htg_to_dot(design.main)
        assert "o1 = a" in dot
        assert "o2 = (o1 + d)" in dot

    def test_quotes_escaped(self):
        design = design_from_source("int x; x = 1;")
        dot = htg_to_dot(design.main, graph_name='my "graph"')
        assert '\\"' in dot


class TestFSMDExport:
    def test_single_cycle_one_state(self):
        sm = schedule(FIG5)
        dot = fsmd_to_dot(sm)
        assert dot.count("[label=\"{S") == 1
        assert "->" not in dot

    def test_multi_cycle_has_transitions(self):
        sm = schedule(LOOP, clock=2.0)
        dot = fsmd_to_dot(sm)
        assert "->" in dot

    def test_branch_edges_labelled_with_polarity(self):
        sm = schedule(LOOP, clock=2.0)
        dot = fsmd_to_dot(sm)
        assert "!(" in dot  # the false edge of the loop branch

    def test_chained_if_rendered_inside_state(self):
        sm = schedule(FIG5)
        dot = fsmd_to_dot(sm)
        assert "chained" in dot
