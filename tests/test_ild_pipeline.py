"""Integration tests for the ILD behavioral description, the Fig 10-15
transformation pipeline and the Fig 15(b) architecture model."""

import pytest

from repro.backend.rtl_sim import RTLSimulator
from repro.ild import (
    GoldenILD,
    ILDPipeline,
    architecture_for,
    build_ild_source,
    build_natural_ild_source,
    ild_externals,
    ild_interface,
    ild_library,
    random_buffer,
)
from repro.interp import Interpreter
from repro.ir.builder import design_from_source
from repro.ir.htg import IfNode, LoopNode
from repro.transforms.loop_rewrite import WhileToForRewrite

N = 8


@pytest.fixture(scope="module")
def pipeline_and_sm():
    pipe = ILDPipeline(n=N)
    sm = pipe.run_all()
    return pipe, sm


def run_behavioral(design, externals, buf):
    interp = Interpreter(design, externals=externals)
    return interp.run(array_inputs={"Buffer": buf})


class TestBehavioralDescription:
    def test_fig10_matches_golden(self):
        design = design_from_source(build_ild_source(N))
        externals = ild_externals(N)
        golden = GoldenILD(n=N)
        for seed in range(15):
            buf = [0] + random_buffer(N, seed=seed)
            mark, lengths, _ = golden.decode(buf)
            state = run_behavioral(design, externals, buf)
            assert state.arrays["Mark"] == mark, seed

    def test_fig10_len_vector(self):
        design = design_from_source(build_ild_source(N))
        externals = ild_externals(N)
        golden = GoldenILD(n=N)
        buf = [0] + random_buffer(N, seed=77)
        mark, lengths, _ = golden.decode(buf)
        state = run_behavioral(design, externals, buf)
        for i in range(1, N + 1):
            if mark[i]:
                assert state.arrays["len"][i] == lengths[i]

    def test_fig16_natural_form_matches_golden(self):
        design = design_from_source(build_natural_ild_source(N))
        externals = ild_externals(N)
        golden = GoldenILD(n=N)
        for seed in range(10):
            buf = [0] + random_buffer(N, seed=seed)
            mark, _, _ = golden.decode(buf)
            state = run_behavioral(design, externals, buf)
            assert state.arrays["Mark"] == mark, seed

    def test_fig16_rewrites_to_fig10_form(self):
        design = design_from_source(build_natural_ild_source(N))
        WhileToForRewrite("NextStartByte", bound=N).run_on_design(design)
        loops = [
            n for n in design.main.walk_nodes() if isinstance(n, LoopNode)
        ]
        assert len(loops) == 1 and loops[0].kind == "for"
        externals = ild_externals(N)
        golden = GoldenILD(n=N)
        for seed in range(10):
            buf = [0] + random_buffer(N, seed=seed)
            mark, _, _ = golden.decode(buf)
            state = run_behavioral(design, externals, buf)
            assert state.arrays["Mark"] == mark, seed


class TestPipelineStages:
    def test_stage_progression_metrics(self, pipeline_and_sm):
        pipe, _ = pipeline_and_sm
        metrics = pipe.stage_metrics()
        # Fig 10 -> Fig 11: speculation adds ops (temp computations).
        assert metrics["Fig 11"]["ops"] > metrics["Fig 10"]["ops"]
        # Fig 12: inlining melts the helper into main.
        assert metrics["Fig 12"]["ops"] >= metrics["Fig 11"]["ops"]
        # Fig 13: full unrolling multiplies the op count ~n times.
        assert metrics["Fig 13"]["ops"] > 4 * metrics["Fig 12"]["ops"]
        assert metrics["Fig 13"]["loops"] == 0
        # Fig 14: constant propagation shrinks the code.
        assert metrics["Fig 14"]["ops"] <= metrics["Fig 13"]["ops"]

    def test_every_stage_is_equivalent_to_golden(self, pipeline_and_sm):
        pipe, _ = pipeline_and_sm
        golden = GoldenILD(n=N)
        for stage in pipe.stages:
            interp = Interpreter(stage.design, externals=pipe.externals)
            for seed in (1, 17):
                buf = [0] + random_buffer(N, seed=seed)
                mark, _, _ = golden.decode(buf)
                state = interp.run(array_inputs={"Buffer": buf})
                assert state.arrays["Mark"] == mark, (stage.figure, seed)

    def test_fig13_no_loops_left(self, pipeline_and_sm):
        pipe, _ = pipeline_and_sm
        fig13 = next(s for s in pipe.stages if s.figure == "Fig 13")
        assert fig13.loops == 0

    def test_fig14_index_eliminated_from_datapath(self, pipeline_and_sm):
        pipe, _ = pipeline_and_sm
        fig14 = next(s for s in pipe.stages if s.figure == "Fig 14")
        # Every remaining read of `i` must be gone: the index variable
        # is dead after constant propagation + DCE.
        reads = set()
        for op in fig14.design.main.walk_operations():
            reads |= op.reads()
        assert "i" not in reads

    def test_fig15_speculated_ops_exist(self, pipeline_and_sm):
        pipe, _ = pipeline_and_sm
        fig15 = next(s for s in pipe.stages if s.figure == "Fig 15a")
        spec = [
            op
            for op in fig15.design.main.walk_operations()
            if op.is_speculated
        ]
        assert spec

    def test_stage_table_renders(self, pipeline_and_sm):
        pipe, _ = pipeline_and_sm
        table = pipe.stage_table()
        for figure in ("Fig 10", "Fig 11", "Fig 12", "Fig 13", "Fig 14"):
            assert figure in table


class TestSingleCycleSchedule:
    def test_single_state(self, pipeline_and_sm):
        _, sm = pipeline_and_sm
        assert sm.is_single_cycle()

    def test_rtl_matches_golden_one_cycle(self, pipeline_and_sm):
        pipe, sm = pipeline_and_sm
        golden = GoldenILD(n=N)
        for seed in range(25):
            buf = [0] + random_buffer(N, seed=seed)
            mark, _, _ = golden.decode(buf)
            result = RTLSimulator(sm, externals=pipe.externals).run(
                array_inputs={"Buffer": buf}
            )
            assert result.cycles == 1
            assert result.arrays["Mark"] == mark, seed

    def test_wire_variables_marked(self, pipeline_and_sm):
        pipe, sm = pipeline_and_sm
        assert pipe.design.main.wire_variables
        from repro.binding.lifetimes import LifetimeAnalysis

        regs = LifetimeAnalysis(sm).registers()
        assert not (regs & pipe.design.main.wire_variables)

    def test_hdl_emission(self, pipeline_and_sm):
        from repro.backend.vhdl import emit_vhdl
        from repro.backend.verilog import emit_verilog

        pipe, sm = pipeline_and_sm
        vhdl = emit_vhdl(sm, ild_interface(N))
        verilog = emit_verilog(sm, ild_interface(N))
        assert "entity ild is" in vhdl
        assert "module ild (" in verilog
        assert "LengthContribution_1" in vhdl


class TestArchitectureModel:
    def test_structural_sim_matches_golden(self):
        arch = architecture_for(N)
        golden = GoldenILD(n=N)
        for seed in range(20):
            buf = [0] + random_buffer(N, seed=seed)
            mark, lengths, _ = golden.decode(buf)
            amark, alengths, _ = arch.simulate(buf)
            assert amark == mark, seed
            # Candidate lengths agree at actual start positions.
            for i in range(1, N + 1):
                if mark[i]:
                    assert alengths[i] == lengths[i], (seed, i)

    def test_area_linear_in_n(self):
        a8 = architecture_for(8).area()
        a16 = architecture_for(16).area()
        a32 = architecture_for(32).area()
        assert a16 == pytest.approx(2 * a8, rel=0.01)
        assert a32 == pytest.approx(4 * a8, rel=0.01)

    def test_critical_path_dominated_by_ripple(self):
        cp8 = architecture_for(8).critical_path()
        cp16 = architecture_for(16).critical_path()
        # Data/control depth is constant; only the ripple grows.
        ripple_step = cp16 - cp8
        assert ripple_step > 0
        cp32 = architecture_for(32).critical_path()
        assert cp32 - cp16 == pytest.approx(2 * ripple_step, rel=0.01)

    def test_area_breakdown_stage_names(self):
        breakdown = architecture_for(8).area_breakdown()
        assert set(breakdown) == {
            "DataCalculation",
            "ControlLogic",
            "RippleControl",
        }
        assert breakdown["DataCalculation"] > breakdown["ControlLogic"]

    def test_analytic_vs_synthesized_critical_path_shape(self, pipeline_and_sm):
        """The scheduled design's critical path should be within ~2x of
        the analytic Fig 15(b) model — same shape, different counting
        of the control overhead."""
        _, sm = pipeline_and_sm
        analytic = architecture_for(N).critical_path()
        measured = sm.max_critical_path()
        assert 0.4 * analytic <= measured <= 1.5 * analytic
