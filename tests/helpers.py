"""Test helpers: behavioral-equivalence assertions around transforms."""

from __future__ import annotations

from repro.interp import run_design
from repro.ir.builder import design_from_source


def assert_equivalent(source, transform, externals=None, inputs=None,
                      array_inputs=None, check_scalars=None):
    """Apply *transform* (callable taking a Design) to a design built
    from *source* and assert the observable behavior is unchanged.

    Arrays are compared in full; scalars only when listed in
    *check_scalars* (transforms may legitimately add/remove temps).
    Returns the transformed design for further assertions.
    """
    design = design_from_source(source)
    before = run_design(
        design, externals=externals, inputs=inputs, array_inputs=array_inputs
    )
    transform(design)
    after = run_design(
        design, externals=externals, inputs=inputs, array_inputs=array_inputs
    )
    assert before.arrays == after.arrays, (
        f"arrays diverged:\n before={before.arrays}\n after={after.arrays}"
    )
    for name in check_scalars or ():
        assert before.scalars.get(name) == after.scalars.get(name), (
            f"scalar {name} diverged: "
            f"{before.scalars.get(name)} != {after.scalars.get(name)}"
        )
    return design


def ops_text(func):
    """All operations of a function as printable strings."""
    return [str(op) for op in func.walk_operations()]
