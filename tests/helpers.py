"""Shared test/benchmark helpers: sample behavioral sources, IR
inspection utilities and behavioral-equivalence assertions.

Both ``tests/conftest.py`` and ``benchmarks/conftest.py`` import from
this module (and re-export, so existing ``from benchmarks.conftest
import ...`` / ``from tests.conftest import ...`` call sites keep
working); test files can also import it directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.interp import run_design
from repro.ir.builder import design_from_source
from repro.ir.htg import BlockNode, Design, FunctionHTG
from repro.ir.operations import Operation


# --------------------------------------------------------------------------
# Shared behavioral sources
# --------------------------------------------------------------------------

SIMPLE_LOOP_SRC = """
int acc[12];
int i;
int total;
total = 0;
for (i = 0; i < 10; i++) {
  total = total + i;
  acc[i] = total;
}
"""

CONDITIONAL_SRC = """
int t1; int t2; int t3; int f;
int a; int b; int c; int d; int e; int cond;
a = 3; b = 4; c = 5; d = 2; e = 9; cond = 1;
t1 = a + b;
if (cond) {
  t2 = t1;
  t3 = c + d;
} else {
  t2 = e;
  t3 = c - d;
}
f = t2 + t3;
"""

FUNCTION_SRC = """
int helper(x, y) {
  int r;
  if (x > y) {
    r = x - y;
  } else {
    r = y - x;
  }
  return r;
}
int out;
int p; int q;
p = 10; q = 4;
out = helper(p, q) + helper(q, p);
"""

MINI_ILD_SRC = """
int CalculateLength(i) {
  int lc1; int lc2; int Length;
  lc1 = LengthContribution_1(i);
  if (Need_2nd_Byte(i)) {
    lc2 = LengthContribution_2(i + 1);
    Length = lc1 + lc2;
  } else Length = lc1;
  return Length;
}
int Mark[10];
int len[10];
int NextStartByte;
int i;
NextStartByte = 1;
for (i = 1; i <= 8; i++) {
  if (i == NextStartByte) {
    Mark[i] = 1;
    len[i] = CalculateLength(i);
    NextStartByte += len[i];
  }
}
"""


def flaky_environment(marker: str):
    """A ``SynthesisJob`` environment factory that simulates a broken
    worker environment: raises ``ImportError`` while the *marker* file
    exists, succeeds once it is removed.  Used by the DSE tests to
    prove transient environment failures are never memoized."""
    from pathlib import Path

    from repro.spark import JobEnvironment

    if Path(marker).exists():
        raise ImportError(f"flaky dependency unavailable ({marker})")
    return JobEnvironment()


def sleepy_environment(seconds: int = 30):
    """A ``SynthesisJob`` environment factory that stalls for
    *seconds* before succeeding — a stand-in for a pathological corner
    that runs far past any reasonable wall clock.  Used to exercise
    per-job timeouts (the deadline interrupts the sleep) and broker
    crash-recovery (the job is slow enough to kill a worker mid-run)."""
    import time

    from repro.spark import JobEnvironment

    time.sleep(seconds)
    return JobEnvironment()


def suicide_environment():
    """A ``SynthesisJob`` environment factory that hard-kills its own
    process — the worker-side half of the worker-loss regression
    tests.  SIGKILL cannot be caught, so neither the ``apply_async``
    callbacks nor any ``except`` clause ever observe this job ending;
    only liveness detection can."""
    import os
    import signal

    os.kill(os.getpid(), signal.SIGKILL)


def stage_key_probe(source, stages, output_scalars=("total",)):
    """Compute stage keys in *this* process — used via a spawned or
    forkserver child to prove the keys are identical across worker
    start methods and hash seeds (snapshot determinism)."""
    from repro.flow import stage_key
    from repro.transforms.base import SynthesisScript

    script = SynthesisScript(output_scalars=set(output_scalars))
    return {stage: stage_key(stage, source, script) for stage in stages}


def mini_ild_externals():
    """Deterministic pure externals for the mini-ILD fixture."""
    return {
        "LengthContribution_1": lambda i: 1 + (i % 2),
        "LengthContribution_2": lambda i: (i % 3),
        "Need_2nd_Byte": lambda i: i % 2,
    }


def priority_encoder_source(width: int = 8) -> str:
    """The find-first-set block of ``examples/priority_encoder.py``."""
    return f"""
int req[{width + 1}];
int pos; int found; int i;
pos = 0;
found = 0;
for (i = 1; i <= {width}; i++) {{
  if (found == 0) {{
    if (req[i] != 0) {{
      pos = i;
      found = 1;
    }}
  }}
}}
"""


# --------------------------------------------------------------------------
# Differential-testing design registry
# --------------------------------------------------------------------------


@dataclass
class ExampleDesign:
    """One co-simulation subject: a source, its bindings and which
    observables must match between interpreter and RTL simulation."""

    name: str
    source: str
    outputs: List[str] = field(default_factory=list)
    externals_factory: Optional[Callable[[], Dict[str, Callable]]] = None
    pure: bool = True
    inputs: Dict[str, int] = field(default_factory=dict)
    array_inputs: Dict[str, List[int]] = field(default_factory=dict)

    def externals(self) -> Dict[str, Callable]:
        return self.externals_factory() if self.externals_factory else {}

    def pure_functions(self) -> set:
        return set(self.externals()) if self.pure else set()


def _ild_design() -> ExampleDesign:
    from repro.ild import build_ild_source, ild_externals, random_buffer
    import random

    n = 4
    buffer = list(random_buffer(n, rng=random.Random(7)))
    return ExampleDesign(
        name="ild",
        source=build_ild_source(n),
        outputs=["NextStartByte"],
        externals_factory=lambda: ild_externals(n),
        array_inputs={"Buffer": buffer},
    )


def example_designs() -> List[ExampleDesign]:
    """Every co-simulation subject the differential suite covers."""
    return [
        ExampleDesign(
            name="conditional",
            source=CONDITIONAL_SRC,
            outputs=["f", "t2", "t3"],
        ),
        ExampleDesign(
            name="simple-loop",
            source=SIMPLE_LOOP_SRC,
            outputs=["total"],
        ),
        ExampleDesign(
            name="function-calls",
            source=FUNCTION_SRC,
            outputs=["out"],
        ),
        ExampleDesign(
            name="priority-encoder",
            source=priority_encoder_source(8),
            outputs=["pos", "found"],
            array_inputs={"req": [0, 0, 0, 0, 1, 0, 1, 0, 0]},
        ),
        ExampleDesign(
            name="mini-ild",
            source=MINI_ILD_SRC,
            outputs=["NextStartByte"],
            externals_factory=mini_ild_externals,
        ),
        _ild_design(),
    ]


# --------------------------------------------------------------------------
# IR inspection helpers
# --------------------------------------------------------------------------

def find_writer(func: FunctionHTG, variable: str) -> Operation:
    """First operation in *func* writing *variable*."""
    for node in func.walk_nodes():
        if isinstance(node, BlockNode):
            for op in node.ops:
                if variable in op.writes():
                    return op
    raise AssertionError(f"no write to {variable!r}")


def block_containing(func: FunctionHTG, op: Operation):
    """The BasicBlock holding *op*."""
    for node in func.walk_nodes():
        if isinstance(node, BlockNode) and op in node.ops:
            return node.block
    raise AssertionError("operation not found in any block")


def total_ops(design: Design) -> int:
    return sum(f.count_operations() for f in design.functions.values())


def fresh_design(source: str) -> Design:
    return design_from_source(source)


def ops_text(func):
    """All operations of a function as printable strings."""
    return [str(op) for op in func.walk_operations()]


# --------------------------------------------------------------------------
# Behavioral-equivalence assertion
# --------------------------------------------------------------------------

def assert_equivalent(source, transform, externals=None, inputs=None,
                      array_inputs=None, check_scalars=None):
    """Apply *transform* (callable taking a Design) to a design built
    from *source* and assert the observable behavior is unchanged.

    Arrays are compared in full; scalars only when listed in
    *check_scalars* (transforms may legitimately add/remove temps).
    Returns the transformed design for further assertions.
    """
    design = design_from_source(source)
    before = run_design(
        design, externals=externals, inputs=inputs, array_inputs=array_inputs
    )
    transform(design)
    after = run_design(
        design, externals=externals, inputs=inputs, array_inputs=array_inputs
    )
    assert before.arrays == after.arrays, (
        f"arrays diverged:\n before={before.arrays}\n after={after.arrays}"
    )
    for name in check_scalars or ():
        assert before.scalars.get(name) == after.scalars.get(name), (
            f"scalar {name} diverged: "
            f"{before.scalars.get(name)} != {after.scalars.get(name)}"
        )
    return design


# --------------------------------------------------------------------------
# Reporting (benchmark harness)
# --------------------------------------------------------------------------

class FigureReport:
    """Accumulates the rows a figure's bench regenerates, printed at
    the end of the bench so ``pytest -s`` shows the paper-style table."""

    def __init__(self, title: str) -> None:
        self.title = title
        self.rows: List[str] = []

    def row(self, text: str) -> None:
        self.rows.append(text)

    def emit(self) -> None:
        width = max([len(self.title)] + [len(r) for r in self.rows]) + 2
        print()
        print("=" * width)
        print(self.title)
        print("-" * width)
        for row in self.rows:
            print(row)
        print("=" * width)
