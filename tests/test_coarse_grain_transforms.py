"""Unit tests for function inlining, loop unrolling and the Fig-16
while-to-for rewrite."""

import pytest

from repro.interp import run_design
from repro.ir.builder import design_from_source
from repro.ir.htg import IfNode, LoopNode
from repro.transforms.inline import (
    FunctionInliner,
    InlineError,
    extract_nested_calls,
)
from repro.transforms.loop_rewrite import WhileToForRewrite
from repro.transforms.unroll import (
    LoopUnroller,
    UnrollError,
    analyze_trip_count,
    fully_unroll,
    partially_unroll,
)

from tests.helpers import assert_equivalent, ops_text


class TestInliner:
    def test_simple_inline(self):
        design = assert_equivalent(
            "int twice(x) { return x * 2; } int out[1]; out[0] = twice(21);",
            lambda d: FunctionInliner().run_on_design(d),
        )
        assert not any(op.has_call() for op in design.main.walk_operations())

    def test_parameters_renamed(self):
        design = design_from_source(
            "int f(x) { return x + 1; } int x; int out[1]; x = 100;"
            "out[0] = f(1) + x;"
        )
        before = run_design(design).arrays["out"]
        FunctionInliner().run_on_design(design)
        after = run_design(design).arrays["out"]
        assert before == after == [102]

    def test_locals_renamed_no_capture(self):
        design = assert_equivalent(
            "int f(x) { int t; t = x * 3; return t; }"
            "int t; int out[2]; t = 7; out[0] = f(2); out[1] = t;",
            lambda d: FunctionInliner().run_on_design(d),
        )

    def test_branch_tail_returns(self):
        assert_equivalent(
            "int mx(a, b) { if (a > b) { return a; } else { return b; } }"
            "int out[2]; out[0] = mx(3, 9); out[1] = mx(8, 1);",
            lambda d: FunctionInliner().run_on_design(d),
        )

    def test_void_call_statement(self):
        design = assert_equivalent(
            "void mark(i) { out[i] = 1; return; } int out[4]; mark(2);",
            lambda d: FunctionInliner().run_on_design(d),
        )
        # The body was spliced in: the store now happens in main via
        # the renamed parameter.
        stores = [
            op for op in design.main.walk_operations() if op.arrays_written()
        ]
        assert len(stores) == 1
        assert stores[0].target.name == "out"

    def test_nested_function_calls_inline_transitively(self):
        assert_equivalent(
            "int inc(x) { return x + 1; }"
            "int twice_inc(x) { return inc(inc(x)); }"
            "int out[1]; out[0] = twice_inc(5);",
            lambda d: FunctionInliner().run_on_design(d),
        )

    def test_call_in_expression_extracted_then_inlined(self):
        design = assert_equivalent(
            "int f(x) { return x * 2; }"
            "int out[1]; int acc; acc = 1; acc += f(3); out[0] = acc;",
            lambda d: FunctionInliner().run_on_design(d),
        )
        assert not any(
            "f(" in str(op) for op in design.main.walk_operations()
        )

    def test_shared_arrays_not_renamed(self):
        assert_equivalent(
            "int probe(i) { return buf[i]; }"
            "int buf[4]; int out[1]; buf[2] = 50; out[0] = probe(2);",
            lambda d: FunctionInliner().run_on_design(d),
        )

    def test_selective_inline(self):
        design = design_from_source(
            "int a(x) { return x + 1; } int b(x) { return x + 2; }"
            "int out[2]; out[0] = a(1); out[1] = b(1);"
        )
        FunctionInliner(["a"]).run_on_design(design)
        remaining = [
            c.name
            for op in design.main.walk_operations()
            for c in __import__(
                "repro.ir.expr_utils", fromlist=["calls_in"]
            ).calls_in(op.expr)
        ]
        assert "a" not in remaining
        assert "b" in remaining

    def test_externals_never_inlined(self, mini_ild_design):
        FunctionInliner().run_on_design(mini_ild_design)
        calls = [
            op for op in mini_ild_design.main.walk_operations() if op.has_call()
        ]
        assert calls, "external length-contribution calls must remain"

    def test_recursion_raises(self):
        design = design_from_source(
            "int f(x) { return f(x - 1); } int y; y = f(3);"
        )
        with pytest.raises(InlineError):
            FunctionInliner().run_on_design(design)

    def test_non_tail_return_raises(self):
        design = design_from_source(
            "int f(x) { if (x) { return 1; } int y; y = 2; return y; }"
            "int z; z = f(0);"
        )
        with pytest.raises(InlineError):
            FunctionInliner().run_on_design(design)

    def test_extract_nested_calls_counts(self):
        design = design_from_source(
            "int f(x) { return x; } int y; y = f(1) + f(2);"
        )
        count = extract_nested_calls(design.main, design)
        assert count == 2

    def test_mini_ild_inline(self, mini_ild_ext):
        from tests.conftest import MINI_ILD_SRC

        design = assert_equivalent(
            MINI_ILD_SRC,
            lambda d: FunctionInliner().run_on_design(d),
            externals=mini_ild_ext,
        )
        # Paper Fig 12: the call disappears from the loop body (only
        # external decode-logic calls remain).
        from repro.ir.expr_utils import calls_in

        remaining = {
            call.name
            for op in design.main.walk_operations()
            for call in calls_in(op.expr)
        }
        assert "CalculateLength" not in remaining
        assert "LengthContribution_1" in remaining


class TestTripCount:
    def loop_of(self, source):
        design = design_from_source(source)
        return next(
            n for n in design.main.walk_nodes() if isinstance(n, LoopNode)
        )

    def test_upward_counted_loop(self):
        trip = analyze_trip_count(
            self.loop_of("int i; int s; s=0; for (i = 1; i <= 8; i++) s += i;")
        )
        assert (trip.start, trip.step, trip.iterations) == (1, 1, 8)

    def test_strict_bound(self):
        trip = analyze_trip_count(
            self.loop_of("int i; int s; s=0; for (i = 0; i < 8; i++) s += i;")
        )
        assert trip.iterations == 8

    def test_downward_loop(self):
        trip = analyze_trip_count(
            self.loop_of("int i; int s; s=0; for (i = 7; i > 0; i--) s += i;")
        )
        assert (trip.step, trip.iterations) == (-1, 7)

    def test_stride_two(self):
        trip = analyze_trip_count(
            self.loop_of("int i; int s; s=0; for (i = 0; i < 10; i += 2) s += i;")
        )
        assert trip.iterations == 5
        assert trip.value_at(2) == 4

    def test_not_equal_bound(self):
        trip = analyze_trip_count(
            self.loop_of("int i; int s; s=0; for (i = 0; i != 4; i++) s += i;")
        )
        assert trip.iterations == 4

    def test_mirrored_condition(self):
        trip = analyze_trip_count(
            self.loop_of("int i; int s; s=0; for (i = 0; 8 > i; i++) s += i;")
        )
        assert trip.iterations == 8

    def test_zero_iterations(self):
        trip = analyze_trip_count(
            self.loop_of("int i; int s; s=0; for (i = 5; i < 5; i++) s += i;")
        )
        assert trip.iterations == 0

    def test_symbolic_bound_rejected(self):
        with pytest.raises(UnrollError):
            analyze_trip_count(
                self.loop_of("int i; int s; s=0; for (i = 0; i < n; i++) s += i;")
            )

    def test_body_writing_index_rejected(self):
        with pytest.raises(UnrollError):
            analyze_trip_count(
                self.loop_of(
                    "int i; int s; s=0; for (i = 0; i < 4; i++) { i = i + 1; }"
                )
            )

    def test_break_rejected(self):
        with pytest.raises(UnrollError):
            analyze_trip_count(
                self.loop_of(
                    "int i; int s; s=0;"
                    "for (i = 0; i < 9; i++) { if (i > 2) { break; } s += i; }"
                )
            )

    def test_while_rejected(self):
        with pytest.raises(UnrollError):
            analyze_trip_count(
                self.loop_of("int x; x = 0; while (x < 5) { x = x + 1; }")
            )


class TestFullUnroll:
    def test_straight_line_result(self):
        design = assert_equivalent(
            "int out[4]; int i; for (i = 0; i < 4; i++) { out[i] = i * i; }",
            lambda d: LoopUnroller({"*": 0}).run_on_design(d),
        )
        assert not any(
            isinstance(n, LoopNode) for n in design.main.walk_nodes()
        )

    def test_exit_value_of_index_preserved(self):
        assert_equivalent(
            "int out[1]; int i; for (i = 0; i < 3; i++) { out[0] = i; }"
            "out[0] = i;",
            lambda d: LoopUnroller({"*": 0}).run_on_design(d),
        )

    def test_loop_carried_dependency_preserved(self):
        assert_equivalent(
            "int out[6]; int i; int s; s = 1;"
            "for (i = 1; i <= 5; i++) { s = s * 2; out[i] = s; }",
            lambda d: LoopUnroller({"*": 0}).run_on_design(d),
        )

    def test_conditional_body(self):
        assert_equivalent(
            "int out[8]; int i;"
            "for (i = 0; i < 8; i++) { if (i % 2) { out[i] = 1; } }",
            lambda d: LoopUnroller({"*": 0}).run_on_design(d),
        )

    def test_nested_loops_unroll(self):
        design = assert_equivalent(
            "int out[9]; int i; int j;"
            "for (i = 0; i < 3; i++)"
            "  for (j = 0; j < 3; j++)"
            "    out[i * 3 + j] = i + j;",
            lambda d: LoopUnroller({"*": 0}).run_on_design(d),
        )
        assert not any(
            isinstance(n, LoopNode) for n in design.main.walk_nodes()
        )

    def test_selected_loop_only(self):
        design = design_from_source(
            "int out[6]; int i; int j;"
            "for (i = 0; i < 2; i++) { out[i] = i; }"
            "for (j = 0; j < 2; j++) { out[j + 3] = j; }"
        )
        LoopUnroller({"i": 0}).run_on_design(design)
        loops = [n for n in design.main.walk_nodes() if isinstance(n, LoopNode)]
        assert len(loops) == 1

    def test_explicit_selection_of_ununrollable_raises(self):
        design = design_from_source(
            "int out[1]; int i; for (i = 0; i < n; i++) { out[0] = i; }"
        )
        with pytest.raises(UnrollError):
            LoopUnroller({"i": 0}).run_on_design(design)

    def test_wildcard_skips_ununrollable(self):
        design = design_from_source(
            "int out[1]; int i; for (i = 0; i < n; i++) { out[0] = i; }"
        )
        reports = LoopUnroller({"*": 0}).run_on_design(design)
        assert not any(r.changed for r in reports)

    def test_index_substituted_symbolically(self):
        """Fig 13: iterations reference i, i+1, ... before const prop."""
        design = design_from_source(
            "int out[4]; int i; for (i = 0; i < 3; i++) { out[i] = 9; }"
        )
        LoopUnroller({"*": 0}).run_on_design(design)
        texts = ops_text(design.main)
        assert "out[i] = 9;" in texts
        assert "out[(i + 1)] = 9;" in texts
        assert "out[(i + 2)] = 9;" in texts

    def test_report_metrics(self):
        design = design_from_source(
            "int out[5]; int i; for (i = 0; i < 5; i++) { out[i] = i; }"
        )
        reports = LoopUnroller({"*": 0}).run_on_design(design)
        main_report = next(r for r in reports if r.function == "main")
        assert main_report.details["unrolled_loops"] == 1
        assert main_report.details["iterations_materialized"] == 5


class TestPartialUnroll:
    def test_divisible_factor(self):
        design = assert_equivalent(
            "int out[8]; int i; for (i = 0; i < 8; i++) { out[i] = i; }",
            lambda d: LoopUnroller({"i": 2}).run_on_design(d),
        )
        loop = next(
            n for n in design.main.walk_nodes() if isinstance(n, LoopNode)
        )
        # The update now strides by 2.
        assert "i = (i + 2);" in [str(op) for op in loop.update]

    def test_remainder_iterations(self):
        assert_equivalent(
            "int out[8]; int i; for (i = 0; i < 7; i++) { out[i] = i + 1; }",
            lambda d: LoopUnroller({"i": 3}).run_on_design(d),
        )

    def test_factor_larger_than_trip_count(self):
        assert_equivalent(
            "int out[3]; int i; for (i = 0; i < 2; i++) { out[i] = 5; }",
            lambda d: LoopUnroller({"i": 4}).run_on_design(d),
        )

    def test_invalid_factor(self):
        design = design_from_source(
            "int out[4]; int i; for (i = 0; i < 4; i++) { out[i] = i; }"
        )
        loop = next(
            n for n in design.main.walk_nodes() if isinstance(n, LoopNode)
        )
        with pytest.raises(UnrollError):
            partially_unroll(loop, factor=1)


class TestWhileToFor:
    NATURAL = """
    int Mark[9];
    int pos; int step;
    pos = 1;
    while (1) {
      if (pos > 8) { break; }
      Mark[pos] = 1;
      step = 1 + (pos % 2);
      pos += step;
    }
    """

    def test_rewrite_produces_for_loop(self):
        design = design_from_source(self.NATURAL)
        WhileToForRewrite("pos", bound=8).run_on_design(design)
        loops = [n for n in design.main.walk_nodes() if isinstance(n, LoopNode)]
        assert len(loops) == 1
        assert loops[0].kind == "for"

    def test_rewrite_equivalent(self):
        assert_equivalent(
            self.NATURAL,
            lambda d: WhileToForRewrite("pos", bound=8).run_on_design(d),
        )

    def test_guard_structure(self):
        design = design_from_source(self.NATURAL)
        WhileToForRewrite("pos", bound=8).run_on_design(design)
        loop = next(
            n for n in design.main.walk_nodes() if isinstance(n, LoopNode)
        )
        guard = next(n for n in loop.body if isinstance(n, IfNode))
        assert "== pos" in str(guard.cond) or "pos" in str(guard.cond)

    def test_rewritten_loop_is_unrollable(self):
        design = design_from_source(self.NATURAL)
        WhileToForRewrite("pos", bound=8).run_on_design(design)
        before = run_design(design).arrays["Mark"]
        LoopUnroller({"*": 0}).run_on_design(design)
        after = run_design(design).arrays["Mark"]
        assert before == after
        assert not any(
            isinstance(n, LoopNode) for n in design.main.walk_nodes()
        )

    def test_non_matching_loop_untouched(self):
        design = design_from_source(
            "int x; x = 0; while (x < 3) { x = x + 1; }"
        )
        reports = WhileToForRewrite("x", bound=3).run_on_design(design)
        assert not any(r.changed for r in reports)

    def test_index_name_collision_avoided(self):
        source = self.NATURAL.replace("int pos; int step;", "int pos; int step; int i;")
        design = design_from_source("int i; i = 42;" + source)
        WhileToForRewrite("pos", bound=8, index_var="i").run_on_design(design)
        state = run_design(design)
        assert state.scalars["i"] == 42 or "i_r" in design.main.locals
