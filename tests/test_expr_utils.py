"""Unit tests for IR expression utilities."""

import pytest

from repro.frontend.ast_nodes import ArrayRef, BinOp, Call, IntLit, Ternary, UnaryOp, Var
from repro.frontend.parser import parse_expression
from repro.ir import expr_utils as eu


class TestClone:
    def test_clone_is_deep(self):
        expr = parse_expression("a + b * c")
        copy = eu.clone(expr)
        assert eu.expr_equal(expr, copy)
        assert copy is not expr
        assert copy.left is not expr.left

    def test_clone_none(self):
        assert eu.clone(None) is None

    def test_clone_call_and_array(self):
        expr = parse_expression("f(x[i], 3)")
        copy = eu.clone(expr)
        assert eu.expr_equal(expr, copy)

    def test_clone_ternary(self):
        expr = parse_expression("c ? a : b")
        assert eu.expr_equal(expr, eu.clone(expr))


class TestSubstitute:
    def test_substitute_var(self):
        expr = parse_expression("i + 1")
        result = eu.substitute(expr, {"i": IntLit(value=5)})
        assert str(result) == "(5 + 1)"

    def test_substitute_does_not_touch_array_base(self):
        expr = parse_expression("Mark[i]")
        result = eu.substitute(expr, {"Mark": Var(name="other"), "i": IntLit(value=2)})
        assert isinstance(result, ArrayRef)
        assert result.name == "Mark"
        assert result.index.value == 2

    def test_substitute_inside_call_args(self):
        expr = parse_expression("f(i, i + 1)")
        result = eu.substitute(expr, {"i": IntLit(value=3)})
        assert str(result) == "f(3, (3 + 1))"

    def test_substitution_uses_clones(self):
        replacement = BinOp(op="+", left=Var(name="x"), right=IntLit(value=1))
        expr = parse_expression("i * i")
        result = eu.substitute(expr, {"i": replacement})
        assert result.left is not result.right

    def test_original_untouched(self):
        expr = parse_expression("i + j")
        eu.substitute(expr, {"i": IntLit(value=9)})
        assert str(expr) == "(i + j)"


class TestRename:
    def test_rename_variables_and_arrays(self):
        expr = parse_expression("x + a[x]")
        renamed = eu.rename_variables(expr, lambda n: "p_" + n)
        assert str(renamed) == "(p_x + p_a[p_x])"

    def test_rename_call_name_preserved(self):
        expr = parse_expression("f(x)")
        renamed = eu.rename_variables(expr, lambda n: n.upper())
        assert renamed.name == "f"
        assert renamed.args[0].name == "X"


class TestReadSets:
    def test_variables_read(self):
        expr = parse_expression("a + b[c] * f(d)")
        assert eu.variables_read(expr) == {"a", "c", "d"}

    def test_arrays_read(self):
        expr = parse_expression("a + b[c] + b[d] + e[0]")
        assert eu.arrays_read(expr) == {"b", "e"}

    def test_calls_in(self):
        expr = parse_expression("f(g(x)) + h(y)")
        names = [c.name for c in eu.calls_in(expr)]
        assert set(names) == {"f", "g", "h"}

    def test_empty_sets_for_literal(self):
        assert eu.variables_read(IntLit(value=1)) == set()
        assert eu.arrays_read(IntLit(value=1)) == set()


class TestEval:
    def test_c_division_truncates_toward_zero(self):
        assert eu.eval_binary("/", -7, 2) == -3
        assert eu.eval_binary("/", 7, -2) == -3
        assert eu.eval_binary("/", 7, 2) == 3

    def test_c_modulo_sign(self):
        assert eu.eval_binary("%", -7, 2) == -1
        assert eu.eval_binary("%", 7, -2) == 1

    def test_division_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            eu.eval_binary("/", 1, 0)

    def test_comparisons_return_ints(self):
        assert eu.eval_binary("<", 1, 2) == 1
        assert eu.eval_binary(">=", 1, 2) == 0

    def test_logical(self):
        assert eu.eval_binary("&&", 2, 3) == 1
        assert eu.eval_binary("&&", 2, 0) == 0
        assert eu.eval_binary("||", 0, 0) == 0

    def test_shifts(self):
        assert eu.eval_binary("<<", 1, 4) == 16
        assert eu.eval_binary(">>", 16, 2) == 4

    def test_unary(self):
        assert eu.eval_unary("-", 5) == -5
        assert eu.eval_unary("!", 0) == 1
        assert eu.eval_unary("~", 0) == -1

    def test_unknown_operator_raises(self):
        with pytest.raises(ValueError):
            eu.eval_binary("**", 2, 3)
        with pytest.raises(ValueError):
            eu.eval_unary("&", 1)


class TestFolding:
    def test_fold_arithmetic(self):
        assert eu.fold_constants(parse_expression("2 + 3 * 4")).value == 14

    def test_fold_through_unary(self):
        assert eu.fold_constants(parse_expression("-(2 + 3)")).value == -5

    def test_fold_comparison(self):
        assert eu.fold_constants(parse_expression("3 < 5")).value == 1

    def test_partial_fold(self):
        folded = eu.fold_constants(parse_expression("x + (2 + 3)"))
        assert str(folded) == "(x + 5)"

    def test_identity_add_zero(self):
        assert str(eu.fold_constants(parse_expression("x + 0"))) == "x"
        assert str(eu.fold_constants(parse_expression("0 + x"))) == "x"

    def test_identity_mul_one(self):
        assert str(eu.fold_constants(parse_expression("1 * x"))) == "x"

    def test_mul_zero_collapses_pure(self):
        assert eu.fold_constants(parse_expression("x * 0")).value == 0

    def test_mul_zero_keeps_calls(self):
        folded = eu.fold_constants(parse_expression("f(x) * 0"))
        assert not isinstance(folded, IntLit)

    def test_fold_ternary_on_constant_cond(self):
        assert str(eu.fold_constants(parse_expression("1 ? a : b"))) == "a"
        assert str(eu.fold_constants(parse_expression("0 ? a : b"))) == "b"

    def test_division_by_zero_literal_not_folded(self):
        folded = eu.fold_constants(parse_expression("1 / 0"))
        assert isinstance(folded, BinOp)

    def test_fold_inside_array_index(self):
        folded = eu.fold_constants(parse_expression("a[1 + 2]"))
        assert folded.index.value == 3


class TestPurity:
    def test_pure_without_calls(self):
        assert eu.is_pure(parse_expression("a + b[c]"))

    def test_call_impure_by_default(self):
        assert not eu.is_pure(parse_expression("f(x)"))

    def test_call_pure_when_whitelisted(self):
        assert eu.is_pure(parse_expression("f(x)"), pure_calls={"f"})

    def test_nested_impure_call(self):
        assert not eu.is_pure(parse_expression("f(g(x))"), pure_calls={"f"})


class TestEqualityAndSize:
    def test_expr_equal_structural(self):
        assert eu.expr_equal(parse_expression("a+b*c"), parse_expression("a + b * c"))

    def test_expr_equal_rejects_different(self):
        assert not eu.expr_equal(parse_expression("a+b"), parse_expression("a-b"))
        assert not eu.expr_equal(parse_expression("a"), parse_expression("1"))

    def test_expr_size(self):
        assert eu.expr_size(parse_expression("a")) == 1
        assert eu.expr_size(parse_expression("a + b")) == 3
        assert eu.expr_size(parse_expression("f(a, b[c])")) == 4
