"""Tests for the Pareto layer (repro.dse.pareto): frontier tracking,
sweep goals and dominance pruning."""

from __future__ import annotations

from repro.dse.pareto import (
    InfeasiblePruner,
    ParetoFront,
    SweepGoal,
    dominates,
)
from repro.spark import (
    ERROR_KIND_ENVIRONMENT,
    ERROR_KIND_INFEASIBLE,
    ERROR_KIND_UNSCHEDULABLE,
    SynthesisJob,
    SynthesisOutcome,
)
from repro.transforms.base import SynthesisScript


def outcome(label, latency, area, ok=True, kind="") -> SynthesisOutcome:
    return SynthesisOutcome(
        label=label, ok=ok, latency=latency, area_total=area, error_kind=kind
    )


def job(label="p", clock=4.0, limits=None, **script_overrides) -> SynthesisJob:
    script = SynthesisScript(
        clock_period=clock, resource_limits=dict(limits or {})
    )
    for name, value in script_overrides.items():
        setattr(script, name, value)
    return SynthesisJob(source="int x;\nx = 1;", script=script, label=label)


def infeasible(the_job: SynthesisJob) -> SynthesisOutcome:
    return SynthesisOutcome(
        label=the_job.label,
        ok=False,
        error="SchedulingError: boom",
        error_kind=ERROR_KIND_UNSCHEDULABLE,
    )


class TestDominates:
    def test_strictly_better_on_one_axis(self):
        assert dominates(outcome("a", 10, 5), outcome("b", 10, 6))
        assert dominates(outcome("a", 9, 5), outcome("b", 10, 5))
        assert dominates(outcome("a", 9, 4), outcome("b", 10, 5))

    def test_equal_points_do_not_dominate(self):
        assert not dominates(outcome("a", 10, 5), outcome("b", 10, 5))

    def test_trade_offs_do_not_dominate(self):
        assert not dominates(outcome("a", 9, 9), outcome("b", 10, 5))
        assert not dominates(outcome("b", 10, 5), outcome("a", 9, 9))


class TestParetoFront:
    def test_incremental_update_and_eviction(self):
        front = ParetoFront()
        assert front.update(outcome("slow-big", 40, 90))
        assert front.update(outcome("fast-big", 10, 80))
        # slow-big survives nothing: fast-big dominates it.
        assert [o.label for o in front.points()] == ["fast-big"]
        assert front.update(outcome("slow-small", 40, 5))  # a trade-off
        assert len(front) == 2
        # A dominated newcomer is rejected outright.
        assert not front.update(outcome("worse", 40, 6))
        # A universal winner sweeps the frontier.
        assert front.update(outcome("ideal", 1, 1))
        assert [o.label for o in front.points()] == ["ideal"]

    def test_infeasible_outcomes_never_join(self):
        front = ParetoFront()
        assert not front.update(outcome("broken", 0, 0, ok=False))
        assert not front

    def test_points_sorted_fastest_first(self):
        front = ParetoFront()
        front.update(outcome("mid", 20, 20))
        front.update(outcome("small", 30, 10))
        front.update(outcome("fast", 10, 30))
        assert [o.label for o in front.points()] == ["fast", "mid", "small"]


class TestSweepGoal:
    def test_inactive_goal_never_satisfied(self):
        goal = SweepGoal()
        assert not goal.active
        assert not goal.satisfied_by(outcome("a", 0.0, 0.0))

    def test_latency_only(self):
        goal = SweepGoal(target_latency=10.0)
        assert goal.satisfied_by(outcome("a", 10.0, 999.0))
        assert not goal.satisfied_by(outcome("a", 10.1, 1.0))

    def test_area_only(self):
        goal = SweepGoal(max_area=50.0)
        assert goal.satisfied_by(outcome("a", 999.0, 50.0))
        assert not goal.satisfied_by(outcome("a", 1.0, 50.1))

    def test_both_constraints_must_hold(self):
        goal = SweepGoal(target_latency=10.0, max_area=50.0)
        assert goal.satisfied_by(outcome("a", 10.0, 50.0))
        assert not goal.satisfied_by(outcome("a", 10.0, 51.0))
        assert not goal.satisfied_by(outcome("a", 11.0, 50.0))

    def test_infeasible_never_satisfies(self):
        goal = SweepGoal(target_latency=10.0)
        assert not goal.satisfied_by(outcome("a", 1.0, 1.0, ok=False))


class TestInfeasiblePruner:
    def test_shorter_clock_same_point_is_vetoed(self):
        pruner = InfeasiblePruner()
        witness = job("w", clock=0.01)
        pruner.observe(witness, infeasible(witness))
        assert pruner.veto(job("p", clock=0.005)) == "w"
        assert pruner.veto(job("p", clock=0.01)) == "w"  # equal is enough

    def test_longer_clock_is_not_vetoed(self):
        pruner = InfeasiblePruner()
        witness = job("w", clock=0.01)
        pruner.observe(witness, infeasible(witness))
        assert pruner.veto(job("p", clock=4.0)) is None

    def test_tighter_limits_are_vetoed(self):
        pruner = InfeasiblePruner()
        witness = job("w", clock=2.0, limits={"alu": 1})
        pruner.observe(witness, infeasible(witness))
        # Fewer ALUs, or the same plus extra caps: at least as hard.
        assert pruner.veto(job("p", clock=2.0, limits={"alu": 0})) == "w"
        assert (
            pruner.veto(job("p", clock=2.0, limits={"alu": 1, "mul": 1}))
            == "w"
        )

    def test_looser_limits_are_not_vetoed(self):
        pruner = InfeasiblePruner()
        witness = job("w", clock=2.0, limits={"alu": 1})
        pruner.observe(witness, infeasible(witness))
        assert pruner.veto(job("p", clock=2.0, limits={"alu": 2})) is None
        assert pruner.veto(job("p", clock=2.0, limits={})) is None  # unlimited
        # Missing the witness's capped unit means unlimited ALUs: looser.
        assert pruner.veto(job("p", clock=2.0, limits={"mul": 1})) is None

    def test_different_signature_is_never_vetoed(self):
        pruner = InfeasiblePruner()
        witness = job("w", clock=0.01)
        pruner.observe(witness, infeasible(witness))
        different = job("p", clock=0.005, enable_speculation=False)
        assert pruner.veto(different) is None

    def test_non_monotone_deterministic_failures_are_not_evidence(self):
        # Deterministic but not a scheduler constraint failure (parse
        # error, emission/measurement trouble): no monotonicity claim
        # holds, so it must never prune neighbours.
        pruner = InfeasiblePruner()
        witness = job("w", clock=0.01)
        failed = SynthesisOutcome(
            label="w",
            ok=False,
            error="ParseError: nope",
            error_kind=ERROR_KIND_INFEASIBLE,
        )
        pruner.observe(witness, failed)
        assert len(pruner) == 0
        assert pruner.veto(job("p", clock=0.005)) is None

    def test_environment_errors_are_not_evidence(self):
        pruner = InfeasiblePruner()
        witness = job("w", clock=0.01)
        failed = SynthesisOutcome(
            label="w",
            ok=False,
            error="ImportError: nope",
            error_kind=ERROR_KIND_ENVIRONMENT,
        )
        pruner.observe(witness, failed)
        assert len(pruner) == 0
        assert pruner.veto(job("p", clock=0.005)) is None

    def test_pruned_outcomes_are_not_evidence(self):
        pruner = InfeasiblePruner()
        witness = job("w", clock=0.01)
        inferred = infeasible(witness)
        inferred.provenance = "pruned"
        pruner.observe(witness, inferred)
        assert len(pruner) == 0

    def test_feasible_outcomes_are_not_evidence(self):
        pruner = InfeasiblePruner()
        witness = job("w", clock=4.0)
        pruner.observe(witness, outcome("w", 4.0, 10.0))
        assert len(pruner) == 0
