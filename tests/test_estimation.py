"""Unit tests for the area and timing estimators."""

import pytest

from repro.estimation.area import estimate_area
from repro.estimation.delay import estimate_timing, latency_area_product
from repro.ir.builder import design_from_source
from repro.scheduler.list_scheduler import ChainingScheduler
from repro.scheduler.resources import ResourceAllocation, ResourceLibrary


LIB = ResourceLibrary()


def schedule(source, clock=10.0, limits=None):
    design = design_from_source(source)
    scheduler = ChainingScheduler(
        library=LIB,
        clock_period=clock,
        allocation=ResourceAllocation(limits=limits or {}),
    )
    return scheduler.schedule(design.main), design


class TestAreaEstimate:
    def test_breakdown_sums_to_total(self):
        sm, _ = schedule("int out[1]; int a; a = x + y; out[0] = a * 2;")
        area = estimate_area(sm, library=LIB)
        assert area.total == pytest.approx(
            area.functional_units + area.registers + area.steering + area.control
        )

    def test_fu_area_reflects_instances(self):
        sm, _ = schedule("int a; int b; a = x + 1; b = y + 2;")
        area = estimate_area(sm, library=LIB)
        assert area.per_class["alu"] == pytest.approx(
            2 * LIB.units["alu"].area
        )

    def test_resource_sharing_shrinks_fu_area(self):
        source = "int a; int b; a = x + 1; b = y + 2;"
        sm_wide, _ = schedule(source)
        sm_narrow, _ = schedule(source, limits={"alu": 1})
        wide = estimate_area(sm_wide, library=LIB)
        narrow = estimate_area(sm_narrow, library=LIB)
        assert narrow.per_class["alu"] < wide.per_class["alu"]

    def test_sharing_adds_steering(self):
        """Section 2: mapping two ops onto one FU adds steering muxes."""
        source = "int a; int b; a = x + 1; b = y + 2;"
        sm_narrow, _ = schedule(source, limits={"alu": 1})
        narrow = estimate_area(sm_narrow, library=LIB)
        assert narrow.mux_count >= 1

    def test_registers_counted_after_binding(self):
        sm, _ = schedule(
            "int out[1]; int a; int b; a = x + 1; b = a + 2; out[0] = b;",
            clock=1.5,
        )
        area = estimate_area(sm, library=LIB)
        assert area.register_count >= 1
        assert area.registers == pytest.approx(
            area.register_count * LIB.register.area
        )

    def test_control_scales_with_states(self):
        sm_one, _ = schedule("int a; a = x + 1;")
        sm_many, _ = schedule(
            "int out[4]; int i; for (i = 0; i < 4; i++) { out[i] = i; }"
        )
        one = estimate_area(sm_one, library=LIB)
        many = estimate_area(sm_many, library=LIB)
        assert many.control > one.control

    def test_conditional_join_muxes_counted(self):
        sm, _ = schedule(
            "int out[1]; int t;"
            "if (c) { t = a + 1; } else { t = a - 1; }"
            "out[0] = t;"
        )
        area = estimate_area(sm, library=LIB)
        assert area.mux_count >= 1

    def test_external_block_area(self):
        lib = ResourceLibrary()
        lib.register_external("decode", delay=1.0, area=500.0)
        design = design_from_source("int y; y = decode(1);")
        sm = ChainingScheduler(library=lib, clock_period=10.0).schedule(
            design.main
        )
        area = estimate_area(sm, library=lib)
        assert area.per_class["ext:decode"] == pytest.approx(500.0)

    def test_str_rendering(self):
        sm, _ = schedule("int a; a = x + 1;")
        text = str(estimate_area(sm, library=LIB))
        assert "area total=" in text


class TestTimingEstimate:
    def test_min_clock_is_max_state_path(self):
        sm, _ = schedule(
            "int out[1]; int a; int b; a = x + 1; b = a + 2; out[0] = b;"
        )
        timing = estimate_timing(sm)
        assert timing.min_clock_period == pytest.approx(
            sm.max_critical_path()
        )

    def test_single_cycle_flag(self):
        sm, _ = schedule("int a; a = x + 1;")
        assert estimate_timing(sm).is_single_cycle

    def test_measured_cycles_via_stimuli(self):
        sm, _ = schedule(
            "int out[4]; int i; for (i = 0; i < 4; i++) { out[i] = i; }"
        )
        timing = estimate_timing(sm, stimuli={"inputs": {}})
        assert timing.measured_cycles >= 4

    def test_latency_area_product(self):
        sm, _ = schedule("int a; a = x + 1;")
        timing = estimate_timing(sm, stimuli={"inputs": {"x": 1}})
        product = latency_area_product(timing, area_total=100.0)
        assert product == pytest.approx(
            timing.measured_cycles * timing.min_clock_period * 100.0
        )

    def test_per_state_paths_reported(self):
        sm, _ = schedule(
            "int out[1]; int a; int b; a = x + 1; b = a + 2; out[0] = b;",
            clock=1.5,
        )
        timing = estimate_timing(sm)
        assert len(timing.per_state_critical_path) == len(
            sm.reachable_states()
        )

    def test_str_rendering(self):
        sm, _ = schedule("int a; a = x + 1;")
        assert "timing:" in str(estimate_timing(sm))
