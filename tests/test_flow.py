"""Tests for the staged synthesis flow (repro.flow): the stage-graph
execution, the cache-key contract, artifact robustness, and the
incremental-sweep behavior the stage cache exists for."""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import pickle

import pytest

from repro import SparkSession
from repro.dse import (
    AXIS_STAGES,
    ExplorationEngine,
    GridError,
    KNOWN_AXES,
    format_stage_breakdown,
    grid_from_specs,
    jobs_from_grid,
    shared_stages,
    stage_for_axis,
    varied_stages,
)
from repro.flow import (
    PERSISTED_STAGES,
    StageArtifactStore,
    StageRecord,
    SYNTHESIS_STAGES,
    job_stage_key,
    stage_key,
)
from repro.spark import SynthesisJob, SynthesisOutcome, execute_job
from repro.transforms.base import (
    STAGE_SCRIPT_FIELDS,
    SynthesisScript,
    stage_for_script_field,
)
from tests.helpers import stage_key_probe

SWEEP_SRC = """
int acc[26];
int i; int total;
total = 0;
for (i = 0; i < 24; i++) {
  total = total + i;
  acc[i] = total;
}
"""


def base_script() -> SynthesisScript:
    return SynthesisScript(output_scalars={"total"})


def make_job(**overrides) -> SynthesisJob:
    job = SynthesisJob(source=SWEEP_SRC, script=base_script())
    for name, value in overrides.items():
        setattr(job, name, value)
    return job


def stage_counts(outcomes, stage):
    """(fresh runs, cache hits) of *stage* across outcome records."""
    runs = hits = 0
    for outcome in outcomes:
        for entry in outcome.stages:
            if entry["stage"] != stage:
                continue
            if entry["cached"]:
                hits += 1
            else:
                runs += 1
    return runs, hits


# ---------------------------------------------------------------------------
# The knob partition: the contract behind every stage key
# ---------------------------------------------------------------------------


class TestStagePartition:
    def test_every_script_field_in_exactly_one_stage(self):
        """A new SynthesisScript knob must be assigned to a stage, or
        stage keys would silently ignore it and serve stale artifacts."""
        assigned = [
            name
            for stage in SYNTHESIS_STAGES
            for name in STAGE_SCRIPT_FIELDS[stage]
        ]
        assert len(assigned) == len(set(assigned))  # no double counting
        assert set(assigned) == set(SynthesisScript.__dataclass_fields__)

    def test_stage_for_script_field(self):
        assert stage_for_script_field("clock_period") == "schedule"
        assert stage_for_script_field("unroll_loops") == "transform"
        with pytest.raises(KeyError):
            stage_for_script_field("warp_factor")

    def test_every_axis_classified(self):
        assert set(AXIS_STAGES) == set(KNOWN_AXES)
        for axis in KNOWN_AXES:
            assert AXIS_STAGES[axis] in SYNTHESIS_STAGES

    def test_stage_for_axis(self):
        assert stage_for_axis("clock") == "schedule"
        assert stage_for_axis("unroll") == "transform"
        with pytest.raises(GridError):
            stage_for_axis("warp")

    def test_varied_and_shared_stages(self):
        schedule_only = grid_from_specs(["clock=2,4", "limits=alu:1,none"])
        assert varied_stages(schedule_only) == ["schedule"]
        assert shared_stages(schedule_only) == ["frontend", "transform"]
        mixed = grid_from_specs(["clock=2,4", "unroll=none,*:0"])
        assert varied_stages(mixed) == ["transform", "schedule"]
        assert shared_stages(mixed) == ["frontend"]
        # A pinned (single-value) axis varies nothing.
        pinned = grid_from_specs(["unroll=*:0", "clock=2,4"])
        assert varied_stages(pinned) == ["schedule"]


# ---------------------------------------------------------------------------
# The cache-key contract
# ---------------------------------------------------------------------------


class TestStageKeys:
    def test_prefix_sensitivity(self):
        """A knob invalidates its own stage and everything after it —
        never anything before it."""
        base = make_job()
        clocked = make_job()
        clocked.script = dataclasses.replace(base.script, clock_period=5.0)
        # A schedule-stage knob: frontend/transform keys are shared.
        for stage in ("frontend", "transform"):
            assert job_stage_key(base, stage) == job_stage_key(clocked, stage)
        for stage in ("schedule", "bind", "estimate", "emit"):
            assert job_stage_key(base, stage) != job_stage_key(clocked, stage)
        # A transform-stage knob invalidates transform onward.
        unrolled = make_job()
        unrolled.script = dataclasses.replace(
            base.script, unroll_loops={"*": 2}
        )
        assert job_stage_key(base, "frontend") == job_stage_key(
            unrolled, "frontend"
        )
        for stage in ("transform", "schedule"):
            assert job_stage_key(base, stage) != job_stage_key(unrolled, stage)
        # The source invalidates everything.
        resourced = make_job(source=SWEEP_SRC + "\n")
        for stage in SYNTHESIS_STAGES:
            assert job_stage_key(base, stage) != job_stage_key(
                resourced, stage
            )
        # The entity only matters at emission.
        renamed = make_job(entity="other")
        for stage in ("frontend", "transform", "schedule", "bind", "estimate"):
            assert job_stage_key(base, stage) == job_stage_key(renamed, stage)
        assert job_stage_key(base, "emit") != job_stage_key(renamed, "emit")
        # The environment reference matters from scheduling onward
        # (it resolves to the resource library the scheduler uses).
        env = make_job(environment="repro.ild:ild_environment")
        for stage in ("frontend", "transform"):
            assert job_stage_key(base, stage) == job_stage_key(env, stage)
        assert job_stage_key(base, "schedule") != job_stage_key(
            env, "schedule"
        )

    def test_execution_metadata_is_not_identity(self):
        """Labels, timeouts, priorities and the artifact location must
        not fragment the stage cache."""
        base = make_job()
        relabeled = make_job(
            label="x", timeout=5.0, priority=7, stage_cache_dir="/tmp/x"
        )
        for stage in SYNTHESIS_STAGES:
            assert job_stage_key(base, stage) == job_stage_key(
                relabeled, stage
            )

    def test_set_order_does_not_change_keys(self):
        """Set/dict iteration order must never leak into a key (keys
        must agree across processes with different hash seeds)."""
        a = make_job()
        a.script.pure_functions = {"f1", "f2", "f3"}
        a.script.resource_limits = {"alu": 2, "cmp": 1}
        b = make_job()
        b.script.pure_functions = {"f3", "f1", "f2"}
        b.script.resource_limits = {"cmp": 1, "alu": 2}
        for stage in SYNTHESIS_STAGES:
            assert job_stage_key(a, stage) == job_stage_key(b, stage)

    def test_unknown_stage_rejected(self):
        with pytest.raises(ValueError):
            stage_key("link", SWEEP_SRC, base_script())

    @pytest.mark.parametrize("method", ["spawn", "forkserver"])
    def test_keys_identical_across_worker_start_methods(self, method):
        """Snapshot determinism: the same (source, script prefix)
        hashes to the same key inside spawn and forkserver children —
        the processes a pool sweep actually keys artifacts from."""
        if method not in multiprocessing.get_all_start_methods():
            pytest.skip(f"{method} unavailable on this platform")
        parent_keys = {
            stage: stage_key(stage, SWEEP_SRC, base_script())
            for stage in SYNTHESIS_STAGES
        }
        context = multiprocessing.get_context(method)
        with context.Pool(1) as pool:
            child_keys = pool.apply(
                stage_key_probe, (SWEEP_SRC, list(SYNTHESIS_STAGES))
            )
        assert child_keys == parent_keys


# ---------------------------------------------------------------------------
# The artifact store: robustness before speed
# ---------------------------------------------------------------------------


class TestArtifactStore:
    def test_roundtrip_and_len(self, tmp_path):
        store = StageArtifactStore(tmp_path)
        key = "k" * 64
        assert store.get(key) is None
        assert store.misses == 1
        assert store.put(key, {"payload": 1})
        assert store.get(key) == {"payload": 1}
        assert store.hits == 1
        assert len(store) == 1

    def test_corrupt_artifact_is_a_miss_and_dropped(self, tmp_path):
        store = StageArtifactStore(tmp_path)
        key = "k" * 64
        store.path_for(key).parent.mkdir(parents=True, exist_ok=True)
        store.path_for(key).write_bytes(b"\x80\x05 this is not a pickle")
        assert store.get(key) is None
        assert not store.path_for(key).exists()

    def test_truncated_artifact_is_a_miss(self, tmp_path):
        store = StageArtifactStore(tmp_path)
        key = "k" * 64
        store.put(key, list(range(1000)))
        blob = store.path_for(key).read_bytes()
        store.path_for(key).write_bytes(blob[: len(blob) // 2])
        assert store.get(key) is None

    def test_unwritable_root_degrades_to_noop(self, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("file in the way", encoding="utf-8")
        store = StageArtifactStore(blocker / "store")
        assert store.put("k" * 64, {"x": 1}) is False  # no exception
        assert store.get("k" * 64) is None

    def test_corrupted_stage_artifact_never_crashes_a_job(self, tmp_path):
        """The acceptance property: cache damage costs a recompute,
        not a sweep."""
        job = make_job(stage_cache_dir=str(tmp_path))
        reference = execute_job(job)
        assert reference.ok
        # Corrupt every artifact in place (truncate + garbage).
        artifacts = sorted(tmp_path.rglob("*.stage.pkl"))
        assert artifacts
        for index, path in enumerate(artifacts):
            if index % 2:
                path.write_bytes(b"garbage")
            else:
                path.write_bytes(path.read_bytes()[:7])
        again = execute_job(job)
        assert again.ok
        assert again.num_states == reference.num_states
        # Everything recomputed fresh: no stage reported as cached.
        assert all(not entry["cached"] for entry in again.stages)

    def test_wrong_typed_artifact_is_recomputed(self, tmp_path):
        """A pickle that *loads* but holds the wrong type (e.g. a
        format drift) must read as a miss, not crash downstream."""
        job = make_job(stage_cache_dir=str(tmp_path))
        execute_job(job)
        store = StageArtifactStore(tmp_path)
        for stage in PERSISTED_STAGES:
            store.put(job_stage_key(job, stage), {"not": "a design"})
        again = execute_job(job)
        assert again.ok
        runs, _hits = stage_counts([again], "transform")
        assert runs == 1  # recomputed, not trusted


# ---------------------------------------------------------------------------
# Stage records: timing + provenance surfaced everywhere
# ---------------------------------------------------------------------------


class TestStageRecords:
    def test_outcome_records_roundtrip_via_dict(self):
        outcome = execute_job(make_job())
        assert [entry["stage"] for entry in outcome.stages] == [
            "frontend", "transform", "schedule", "bind", "estimate",
        ]
        restored = SynthesisOutcome.from_dict(outcome.to_dict())
        assert restored.stages == outcome.stages

    def test_emit_and_measure_stages_recorded(self):
        job = make_job(emit=True, measure=True)
        outcome = execute_job(job)
        stages = [entry["stage"] for entry in outcome.stages]
        assert stages == [
            "frontend", "transform", "schedule", "bind", "estimate",
            "emit", "measure",
        ]

    def test_infeasible_corner_keeps_partial_records(self):
        impossible = make_job()
        impossible.script = dataclasses.replace(
            impossible.script, clock_period=0.01
        )
        outcome = execute_job(impossible)
        assert not outcome.ok
        # The failing stage (schedule) left no record; the stages that
        # did run are still accounted for.
        assert [entry["stage"] for entry in outcome.stages] == [
            "frontend", "transform",
        ]

    def test_session_result_carries_stage_records(self):
        result = SparkSession(SWEEP_SRC, script=base_script()).run()
        assert [record.stage for record in result.stages] == [
            "transform", "schedule", "bind", "estimate", "emit",
        ]
        assert all(isinstance(r, StageRecord) for r in result.stages)
        assert "stage timing:" in result.summary()
        assert "transform" in result.summary()

    def test_session_flow_unchanged_by_refactor(self):
        """The staged driver must produce the same design/schedule as
        the old monolithic SparkSession.run."""
        session = SparkSession(SWEEP_SRC, script=base_script())
        result = session.run()
        assert result.state_machine.num_states >= 1
        assert result.vhdl and result.verilog
        assert result.register_binding is not None
        assert result.area is not None and result.timing is not None
        reference = SparkSession(SWEEP_SRC, script=base_script())
        reference.transform()
        sm = reference.schedule()
        assert sm.num_states == result.state_machine.num_states


# ---------------------------------------------------------------------------
# Incremental sweeps: the acceptance criterion
# ---------------------------------------------------------------------------


class TestIncrementalSweeps:
    def test_schedule_axis_sweep_parses_and_transforms_once(self, tmp_path):
        """Acceptance: a sweep varying only schedule-stage axes
        (clock=5,10,15 x adders=1,2) executes the frontend and
        transform stages exactly once; every other corner recalls
        their artifacts."""
        grid = grid_from_specs(["clock=5,10,15", "limits=alu:1,alu:2"])
        assert shared_stages(grid) == ["frontend", "transform"]
        jobs = jobs_from_grid(SWEEP_SRC, grid, base_script=base_script())
        result = ExplorationEngine(cache_dir=tmp_path).explore(jobs)
        assert result.executed == 6
        assert all(outcome.ok for outcome in result.outcomes)
        assert stage_counts(result.outcomes, "frontend") == (1, 5)
        assert stage_counts(result.outcomes, "transform") == (1, 5)
        assert stage_counts(result.outcomes, "schedule") == (6, 0)
        totals = result.stage_totals()
        assert totals["transform"]["runs"] == 1
        assert totals["transform"]["hits"] == 5

    def test_stage_artifacts_shared_across_engines(self, tmp_path):
        """A second sweep over *new* corners (disjoint clocks, so
        whole-job outcome misses) still transforms nothing: the stage
        cache is shared across processes/engines by construction."""
        first = grid_from_specs(["clock=5,10"])
        second = grid_from_specs(["clock=15,20"])
        script = base_script()
        ExplorationEngine(cache_dir=tmp_path).explore(
            jobs_from_grid(SWEEP_SRC, first, base_script=script)
        )
        warm = ExplorationEngine(cache_dir=tmp_path).explore(
            jobs_from_grid(SWEEP_SRC, second, base_script=script)
        )
        assert warm.cache_hits == 0 and warm.executed == 2
        assert stage_counts(warm.outcomes, "frontend") == (0, 2)
        assert stage_counts(warm.outcomes, "transform") == (0, 2)
        breakdown = format_stage_breakdown(warm)
        assert "transform" in breakdown and "stage breakdown" in breakdown

    def test_transform_axis_reuses_per_prefix(self, tmp_path):
        """Corners sharing a transform prefix share its artifact: a
        2-unroll x 2-clock grid has two distinct transform prefixes,
        so transform runs exactly twice."""
        grid = grid_from_specs(["unroll=none,*:0", "clock=5,10"])
        jobs = jobs_from_grid(SWEEP_SRC, grid, base_script=base_script())
        result = ExplorationEngine(cache_dir=tmp_path).explore(jobs)
        assert result.executed == 4
        assert stage_counts(result.outcomes, "transform") == (2, 2)
        assert stage_counts(result.outcomes, "frontend") == (1, 3)

    def test_no_stage_cache_disables_artifacts(self, tmp_path):
        jobs = jobs_from_grid(
            SWEEP_SRC, grid_from_specs(["clock=5,10"]),
            base_script=base_script(),
        )
        result = ExplorationEngine(
            cache_dir=tmp_path, stage_cache=False
        ).explore(jobs)
        assert result.executed == 2
        assert list(tmp_path.rglob("*.stage.pkl")) == []
        assert stage_counts(result.outcomes, "transform") == (2, 0)

    def test_no_outcome_cache_means_no_stage_cache(self):
        engine = ExplorationEngine(use_cache=False)
        assert engine.stage_dir is None

    def test_pool_workers_share_the_stage_cache(self, tmp_path):
        """Across spawned/forked pool workers the artifacts land in
        (and are recalled from) one directory.  Concurrency makes the
        exact hit split racy — two workers may both compute the shared
        transform before either publishes — but the sweep can never
        transform more often than it has workers, and correctness is
        unaffected."""
        grid = grid_from_specs(["clock=3,5,7,9,11,13"])
        jobs = jobs_from_grid(SWEEP_SRC, grid, base_script=base_script())
        result = ExplorationEngine(cache_dir=tmp_path, workers=2).explore(jobs)
        assert result.executed == 6
        runs, hits = stage_counts(result.outcomes, "transform")
        assert 1 <= runs <= 2
        assert runs + hits == 6
        serial = ExplorationEngine(use_cache=False).explore(jobs)
        assert [o.num_states for o in result.outcomes] == [
            o.num_states for o in serial.outcomes
        ]

    def test_outcome_cache_hits_do_not_count_as_live_stage_work(
        self, tmp_path
    ):
        jobs = jobs_from_grid(
            SWEEP_SRC, grid_from_specs(["clock=5,10"]),
            base_script=base_script(),
        )
        ExplorationEngine(cache_dir=tmp_path).explore(jobs)
        warm = ExplorationEngine(cache_dir=tmp_path).explore(jobs)
        assert warm.cache_hits == 2 and warm.executed == 0
        assert warm.stage_totals() == {}
        assert format_stage_breakdown(warm) == ""


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


class TestStageCacheCli:
    def _write_source(self, tmp_path):
        path = tmp_path / "d.c"
        path.write_text(SWEEP_SRC, encoding="utf-8")
        return str(path)

    def test_dse_prints_stage_breakdown(self, tmp_path, capsys):
        from repro.cli import main

        source = self._write_source(tmp_path)
        status = main(
            ["dse", source, "--vary", "clock=5,10,15",
             "--cache-dir", str(tmp_path / "cache"), "--output", "total"]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "stage breakdown" in out
        assert "transform" in out
        assert (tmp_path / "cache").exists()
        assert list((tmp_path / "cache").rglob("*.stage.pkl"))

    def test_no_stage_cache_flag(self, tmp_path, capsys):
        from repro.cli import main

        source = self._write_source(tmp_path)
        status = main(
            ["dse", source, "--vary", "clock=5,10", "--no-stage-cache",
             "--cache-dir", str(tmp_path / "cache"), "--output", "total"]
        )
        assert status == 0
        assert list((tmp_path / "cache").rglob("*.stage.pkl")) == []


# ---------------------------------------------------------------------------
# The cache service governs stage artifacts
# ---------------------------------------------------------------------------


class TestServiceIntegration:
    def test_service_counts_clears_and_gcs_stage_artifacts(self, tmp_path):
        from repro.dse.service import CacheService

        jobs = jobs_from_grid(
            SWEEP_SRC, grid_from_specs(["clock=5,10,15"]),
            base_script=base_script(),
        )
        ExplorationEngine(cache_dir=tmp_path).explore(jobs)
        outcomes = len(list(tmp_path.rglob("*.json")))
        artifacts = len(list(tmp_path.rglob("*.stage.pkl")))
        assert outcomes == 3 and artifacts >= 3
        service = CacheService(tmp_path)
        assert service.stats().entries == outcomes + artifacts
        # A one-byte budget evicts stage artifacts like anything else.
        tiny = CacheService(tmp_path, max_bytes=1)
        report = tiny.gc()
        assert report.evicted == outcomes + artifacts
        assert list(tmp_path.rglob("*.stage.pkl")) == []
        # ...and an evicted artifact is just a miss: the sweep reruns.
        rerun = ExplorationEngine(cache_dir=tmp_path).explore(jobs)
        assert rerun.executed == 3
        assert all(outcome.ok for outcome in rerun.outcomes)

    def test_clear_drops_stage_artifacts(self, tmp_path):
        from repro.dse.service import CacheService

        jobs = jobs_from_grid(
            SWEEP_SRC, grid_from_specs(["clock=5"]),
            base_script=base_script(),
        )
        ExplorationEngine(cache_dir=tmp_path).explore(jobs)
        assert CacheService(tmp_path).clear() >= 2
        assert list(tmp_path.rglob("*.stage.pkl")) == []
        assert list(tmp_path.rglob("*.json")) == []

    def test_artifact_pickles_are_loadable_snapshots(self, tmp_path):
        """The stored bytes really are Design/StateMachine snapshots,
        reachable through the outcome cache's companion accessors
        (``ResultCache.stage_store`` / ``repro.dse.stage_key``)."""
        from repro.dse import ResultCache, stage_key as dse_stage_key
        from repro.ir.htg import Design
        from repro.scheduler.schedule import StateMachine

        job = make_job(stage_cache_dir=str(tmp_path))
        execute_job(job)
        store = ResultCache(tmp_path).stage_store()
        assert len(store) == 3  # frontend, transform, schedule
        frontend = store.get(dse_stage_key(job, "frontend"))
        assert isinstance(frontend, Design)
        transformed = store.get(dse_stage_key(job, "transform"))
        assert isinstance(transformed, tuple)
        assert isinstance(transformed[0], Design)
        schedule = store.get(dse_stage_key(job, "schedule"))
        assert isinstance(schedule, StateMachine)
        # The dse-layer key agrees with the flow-layer key.
        assert dse_stage_key(job, "frontend") == job_stage_key(
            job, "frontend"
        )
        # Snapshots are deep: unpickling twice yields independent IR.
        again = store.get(dse_stage_key(job, "frontend"))
        assert again is not frontend

    def test_artifact_bytes_identity_is_key_based(self, tmp_path):
        """Two jobs with the same transform prefix write the same
        artifact path — the dedup that makes 100-corner sweeps cheap."""
        a = make_job(stage_cache_dir=str(tmp_path))
        b = make_job(stage_cache_dir=str(tmp_path))
        b.script = dataclasses.replace(b.script, clock_period=7.0)
        execute_job(a)
        before = {p.name for p in tmp_path.rglob("*.stage.pkl")}
        execute_job(b)
        after = {p.name for p in tmp_path.rglob("*.stage.pkl")}
        # b added exactly one artifact: its own schedule.
        assert len(after - before) == 1
