"""Tests for the design-space exploration engine (repro.dse)."""

from __future__ import annotations

import copy
import time

import pytest

from repro.cli import main
from repro.dse import (
    ExplorationEngine,
    GridError,
    ParameterGrid,
    ResultCache,
    format_table,
    grid_from_specs,
    job_key,
    jobs_from_grid,
    parse_vary_spec,
    rank_outcomes,
    script_for_point,
)
from repro.spark import SynthesisJob, SynthesisOutcome, execute_job
from repro.transforms.base import SynthesisScript
from tests.helpers import SIMPLE_LOOP_SRC

SWEEP_SRC = """
int acc[26];
int i; int total;
total = 0;
for (i = 0; i < 24; i++) {
  total = total + i;
  acc[i] = total;
}
"""


def base_script() -> SynthesisScript:
    return SynthesisScript(output_scalars={"total"})


# ---------------------------------------------------------------------------
# Grid expansion
# ---------------------------------------------------------------------------


class TestGrid:
    def test_cartesian_expansion(self):
        grid = ParameterGrid(
            [("clock", [2.0, 4.0]), ("unroll", [{}, {"*": 0}, {"*": 2}])]
        )
        assert len(grid) == 6
        points = grid.points()
        assert len(points) == 6
        # Row-major: the first axis varies slowest.
        assert [p.as_dict()["clock"] for p in points] == [2.0] * 3 + [4.0] * 3

    def test_points_are_deterministic(self):
        grid = ParameterGrid([("clock", [2.0, 4.0]), ("preset", ["up", "asic"])])
        assert [p.label for p in grid.points()] == [
            p.label for p in grid.points()
        ]

    def test_labels_render_values(self):
        grid = ParameterGrid([("clock", [4.0]), ("unroll", [{"*": 2}])])
        assert grid.points()[0].label == "clock=4 unroll=*:2"

    def test_parse_vary_spec(self):
        axis, values = parse_vary_spec("clock=2,4,8")
        assert axis == "clock"
        assert values == [2.0, 4.0, 8.0]
        axis, values = parse_vary_spec("unroll=none,*:0")
        assert values == [{}, {"*": 0}]
        axis, values = parse_vary_spec("limits=alu:2;cmp:1")
        assert values == [{"alu": 2, "cmp": 1}]

    def test_parse_rejects_unknown_axis(self):
        with pytest.raises(GridError):
            parse_vary_spec("warp=9")
        with pytest.raises(GridError):
            ParameterGrid([("warp", [1])])

    def test_duplicate_axis_rejected(self):
        with pytest.raises(GridError, match="duplicate grid axis"):
            grid_from_specs(["clock=2", "clock=4"])

    def test_parse_rejects_bad_values(self):
        with pytest.raises(GridError):
            parse_vary_spec("clock=fast")
        with pytest.raises(GridError):
            parse_vary_spec("speculation=maybe")
        with pytest.raises(GridError):
            parse_vary_spec("clock=")

    def test_script_for_point_preset_then_overrides(self):
        grid = grid_from_specs(["preset=up,asic", "clock=4"])
        up_point, asic_point = grid.points()
        base = SynthesisScript(
            pure_functions={"Op1"}, output_scalars={"total"}
        )
        up = script_for_point(up_point, base)
        assert up.unroll_loops == {"*": 0}  # from the preset
        assert up.clock_period == 4.0  # overridden by the axis
        assert up.pure_functions == {"Op1"}  # carried from the base
        assert up.output_scalars == {"total"}
        asic = script_for_point(asic_point, base)
        assert asic.resource_limits  # the ASIC preset bounds FUs
        assert asic.clock_period == 4.0

    def test_jobs_from_grid_labels_and_scripts(self):
        grid = grid_from_specs(["clock=2,4"])
        jobs = jobs_from_grid(SWEEP_SRC, grid, base_script=base_script())
        assert [job.label for job in jobs] == ["clock=2", "clock=4"]
        assert [job.script.clock_period for job in jobs] == [2.0, 4.0]


# ---------------------------------------------------------------------------
# Cache behavior
# ---------------------------------------------------------------------------


class TestCache:
    def make_job(self, **overrides) -> SynthesisJob:
        job = SynthesisJob(source=SWEEP_SRC, script=base_script())
        for name, value in overrides.items():
            setattr(job, name, value)
        return job

    def test_key_is_stable_and_content_sensitive(self):
        job = self.make_job()
        assert job_key(job) == job_key(copy.deepcopy(job))
        assert job_key(job) != job_key(self.make_job(source=SIMPLE_LOOP_SRC))
        changed = self.make_job()
        changed.script.clock_period = 3.25
        assert job_key(job) != job_key(changed)
        # The label is presentation-only: not part of the identity.
        assert job_key(job) == job_key(self.make_job(label="renamed"))

    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = self.make_job()
        key = job_key(job)
        assert cache.get(key) is None
        assert cache.misses == 1
        outcome = execute_job(job)
        cache.put(key, outcome)
        recalled = cache.get(key)
        assert cache.hits == 1
        assert recalled is not None
        assert recalled.cached is True
        assert recalled.num_states == outcome.num_states
        assert recalled.score() == outcome.score()

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = job_key(self.make_job())
        cache.path_for(key).write_text("{not json", encoding="utf-8")
        assert cache.get(key) is None
        assert not cache.path_for(key).exists()  # dropped, not kept

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k" * 64, SynthesisOutcome(label="x"))
        assert len(cache) == 1
        assert cache.clear() == 1
        assert len(cache) == 0

    def test_engine_uses_cache_across_instances(self, tmp_path):
        jobs = jobs_from_grid(
            SWEEP_SRC, grid_from_specs(["clock=2,4"]), base_script=base_script()
        )
        first = ExplorationEngine(cache_dir=tmp_path, workers=1).explore(jobs)
        assert (first.cache_hits, first.executed) == (0, 2)
        second = ExplorationEngine(cache_dir=tmp_path, workers=1).explore(jobs)
        assert (second.cache_hits, second.executed) == (2, 0)
        assert [o.num_states for o in first.outcomes] == [
            o.num_states for o in second.outcomes
        ]

    def test_no_cache_mode(self, tmp_path):
        jobs = jobs_from_grid(
            SWEEP_SRC, grid_from_specs(["clock=4"]), base_script=base_script()
        )
        engine = ExplorationEngine(workers=1, use_cache=False)
        assert engine.cache is None
        result = engine.explore(jobs)
        assert result.executed == 1


# ---------------------------------------------------------------------------
# Ranking
# ---------------------------------------------------------------------------


class TestRanking:
    def outcome(self, label, latency, area, ok=True) -> SynthesisOutcome:
        return SynthesisOutcome(
            label=label, ok=ok, latency=latency, area_total=area
        )

    def test_rank_orders_by_latency_then_area(self):
        ranked = rank_outcomes(
            [
                self.outcome("slow", 40.0, 10.0),
                self.outcome("fast-big", 10.0, 99.0),
                self.outcome("fast-small", 10.0, 5.0),
                self.outcome("broken", 1.0, 1.0, ok=False),
            ]
        )
        assert [o.label for o in ranked] == [
            "fast-small", "fast-big", "slow", "broken",
        ]

    def test_rank_is_deterministic_on_ties(self):
        tied = [self.outcome(label, 10.0, 5.0) for label in "bca"]
        assert [o.label for o in rank_outcomes(tied)] == ["a", "b", "c"]
        assert [o.label for o in rank_outcomes(reversed(tied))] == [
            "a", "b", "c",
        ]

    def test_format_table_marks_infeasible(self):
        table = format_table(
            [self.outcome("good", 10.0, 5.0),
             SynthesisOutcome(label="bad", ok=False, error="boom")]
        )
        assert "good" in table
        assert "infeasible: boom" in table


# ---------------------------------------------------------------------------
# Parallel execution + the cached re-run acceptance criterion
# ---------------------------------------------------------------------------


class TestParallelExploration:
    def test_two_worker_run_matches_serial(self, tmp_path):
        jobs = jobs_from_grid(
            SWEEP_SRC,
            grid_from_specs(["clock=2,4", "unroll=none,*:0"]),
            base_script=base_script(),
            measure=True,
        )
        serial = ExplorationEngine(workers=1, use_cache=False).explore(jobs)
        parallel = ExplorationEngine(workers=2, use_cache=False).explore(jobs)
        assert [o.label for o in parallel.outcomes] == [
            o.label for o in serial.outcomes
        ]
        for fast, slow in zip(parallel.outcomes, serial.outcomes):
            assert fast.ok and slow.ok
            assert fast.score() == slow.score()
            assert fast.measured_cycles == slow.measured_cycles

    def test_infeasible_points_are_reported_not_raised(self):
        impossible = SynthesisScript(clock_period=0.01)  # slower than any op
        jobs = [SynthesisJob(source=SWEEP_SRC, script=impossible, label="x")]
        result = ExplorationEngine(workers=1, use_cache=False).explore(jobs)
        assert not result.outcomes[0].ok
        assert "SchedulingError" in result.outcomes[0].error
        assert result.best() is None

    def test_cli_sweep_second_invocation_5x_faster(self, tmp_path, capsys):
        """Acceptance: a >=12-point grid under --workers 4, where the
        all-hit second invocation is at least 5x faster."""
        source_path = tmp_path / "sweep.c"
        source_path.write_text(SWEEP_SRC, encoding="utf-8")
        argv = [
            "dse",
            str(source_path),
            "--vary", "clock=2,3,4,6",
            "--vary", "unroll=none,*:2,*:0",
            "--workers", "4",
            "--cache-dir", str(tmp_path / "cache"),
            "--output", "total",
        ]

        started = time.perf_counter()
        assert main(list(argv)) == 0
        cold = time.perf_counter() - started
        cold_out = capsys.readouterr().out
        assert "12 design points: 0 cache hits, 12 synthesized" in cold_out

        started = time.perf_counter()
        assert main(list(argv)) == 0
        warm = time.perf_counter() - started
        warm_out = capsys.readouterr().out
        assert "12 design points: 12 cache hits, 0 synthesized" in warm_out

        assert cold >= warm * 5, (
            f"cached re-run not >=5x faster: cold={cold:.3f}s "
            f"warm={warm:.3f}s ({cold / max(warm, 1e-9):.1f}x)"
        )


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


class TestDseCli:
    def test_bad_axis_exits_2(self, tmp_path, capsys):
        source_path = tmp_path / "d.c"
        source_path.write_text(SWEEP_SRC, encoding="utf-8")
        status = main(["dse", str(source_path), "--vary", "warp=9"])
        assert status == 2
        assert "unknown grid axis" in capsys.readouterr().err

    def test_missing_file_exits_2(self, capsys):
        assert main(["dse", "/nonexistent/file.c"]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_all_infeasible_exits_1(self, tmp_path, capsys):
        source_path = tmp_path / "d.c"
        source_path.write_text(SWEEP_SRC, encoding="utf-8")
        status = main(
            ["dse", str(source_path), "--vary", "clock=0.01", "--no-cache"]
        )
        assert status == 1
        assert "infeasible" in capsys.readouterr().out

    def test_top_limits_rows(self, tmp_path, capsys):
        source_path = tmp_path / "d.c"
        source_path.write_text(SWEEP_SRC, encoding="utf-8")
        status = main(
            ["dse", str(source_path), "--vary", "clock=2,4,8",
             "--no-cache", "--top", "1", "--output", "total"]
        )
        assert status == 0
        out = capsys.readouterr().out
        data_rows = [
            line for line in out.splitlines() if "clock=" in line
        ]
        assert len(data_rows) == 1
