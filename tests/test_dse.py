"""Tests for the design-space exploration engine (repro.dse)."""

from __future__ import annotations

import copy
import time

import pytest

from repro.cli import main
from repro.dse import (
    ExplorationEngine,
    GridError,
    ParameterGrid,
    ResultCache,
    format_table,
    grid_from_specs,
    job_key,
    jobs_from_grid,
    parse_axis_value,
    parse_vary_spec,
    rank_outcomes,
    script_for_point,
)
from repro.spark import (
    ERROR_KIND_ENVIRONMENT,
    ERROR_KIND_INFEASIBLE,
    ERROR_KIND_UNSCHEDULABLE,
    SynthesisJob,
    SynthesisOutcome,
    execute_job,
)
from repro.transforms.base import SynthesisScript
from tests.helpers import SIMPLE_LOOP_SRC

SWEEP_SRC = """
int acc[26];
int i; int total;
total = 0;
for (i = 0; i < 24; i++) {
  total = total + i;
  acc[i] = total;
}
"""


def base_script() -> SynthesisScript:
    return SynthesisScript(output_scalars={"total"})


# ---------------------------------------------------------------------------
# Grid expansion
# ---------------------------------------------------------------------------


class TestGrid:
    def test_cartesian_expansion(self):
        grid = ParameterGrid(
            [("clock", [2.0, 4.0]), ("unroll", [{}, {"*": 0}, {"*": 2}])]
        )
        assert len(grid) == 6
        points = grid.points()
        assert len(points) == 6
        # Row-major: the first axis varies slowest.
        assert [p.as_dict()["clock"] for p in points] == [2.0] * 3 + [4.0] * 3

    def test_points_are_deterministic(self):
        grid = ParameterGrid([("clock", [2.0, 4.0]), ("preset", ["up", "asic"])])
        assert [p.label for p in grid.points()] == [
            p.label for p in grid.points()
        ]

    def test_labels_render_values(self):
        grid = ParameterGrid([("clock", [4.0]), ("unroll", [{"*": 2}])])
        assert grid.points()[0].label == "clock=4 unroll=*:2"

    def test_parse_vary_spec(self):
        axis, values = parse_vary_spec("clock=2,4,8")
        assert axis == "clock"
        assert values == [2.0, 4.0, 8.0]
        axis, values = parse_vary_spec("unroll=none,*:0")
        assert values == [{}, {"*": 0}]
        axis, values = parse_vary_spec("limits=alu:2;cmp:1")
        assert values == [{"alu": 2, "cmp": 1}]

    def test_parse_rejects_unknown_axis(self):
        with pytest.raises(GridError):
            parse_vary_spec("warp=9")
        with pytest.raises(GridError):
            ParameterGrid([("warp", [1])])

    def test_duplicate_axis_rejected(self):
        with pytest.raises(GridError, match="duplicate grid axis"):
            grid_from_specs(["clock=2", "clock=4"])

    def test_parse_rejects_bad_values(self):
        with pytest.raises(GridError):
            parse_vary_spec("clock=fast")
        with pytest.raises(GridError):
            parse_vary_spec("speculation=maybe")
        with pytest.raises(GridError):
            parse_vary_spec("clock=")

    def test_parse_rejects_non_finite_and_non_positive_clocks(self):
        # Regression: "inf" parsed as a valid clock but crashed label
        # rendering with OverflowError on int(value).
        for bad in ("inf", "-inf", "nan", "0", "-4", "1e999"):
            with pytest.raises(GridError, match="clock"):
                parse_axis_value("clock", bad)
        # The boundary of validity still parses.
        assert parse_axis_value("clock", "0.5") == 0.5
        # And a whole grid over a bad spec fails loudly, not at render.
        with pytest.raises(GridError):
            grid_from_specs(["clock=4,inf"])

    def test_script_for_point_preset_then_overrides(self):
        grid = grid_from_specs(["preset=up,asic", "clock=4"])
        up_point, asic_point = grid.points()
        base = SynthesisScript(
            pure_functions={"Op1"}, output_scalars={"total"}
        )
        up = script_for_point(up_point, base)
        assert up.unroll_loops == {"*": 0}  # from the preset
        assert up.clock_period == 4.0  # overridden by the axis
        assert up.pure_functions == {"Op1"}  # carried from the base
        assert up.output_scalars == {"total"}
        asic = script_for_point(asic_point, base)
        assert asic.resource_limits  # the ASIC preset bounds FUs
        assert asic.clock_period == 4.0

    def test_jobs_from_grid_labels_and_scripts(self):
        grid = grid_from_specs(["clock=2,4"])
        jobs = jobs_from_grid(SWEEP_SRC, grid, base_script=base_script())
        assert [job.label for job in jobs] == ["clock=2", "clock=4"]
        assert [job.script.clock_period for job in jobs] == [2.0, 4.0]


# ---------------------------------------------------------------------------
# Cache behavior
# ---------------------------------------------------------------------------


class TestCache:
    def make_job(self, **overrides) -> SynthesisJob:
        job = SynthesisJob(source=SWEEP_SRC, script=base_script())
        for name, value in overrides.items():
            setattr(job, name, value)
        return job

    def test_key_is_stable_and_content_sensitive(self):
        job = self.make_job()
        assert job_key(job) == job_key(copy.deepcopy(job))
        assert job_key(job) != job_key(self.make_job(source=SIMPLE_LOOP_SRC))
        changed = self.make_job()
        changed.script.clock_period = 3.25
        assert job_key(job) != job_key(changed)
        # The label is presentation-only: not part of the identity.
        assert job_key(job) == job_key(self.make_job(label="renamed"))

    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = self.make_job()
        key = job_key(job)
        assert cache.get(key) is None
        assert cache.misses == 1
        outcome = execute_job(job)
        cache.put(key, outcome)
        recalled = cache.get(key)
        assert cache.hits == 1
        assert recalled is not None
        assert recalled.cached is True
        assert recalled.num_states == outcome.num_states
        assert recalled.score() == outcome.score()

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = job_key(self.make_job())
        cache.path_for(key).write_text("{not json", encoding="utf-8")
        assert cache.get(key) is None
        assert not cache.path_for(key).exists()  # dropped, not kept

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k" * 64, SynthesisOutcome(label="x"))
        assert len(cache) == 1
        assert cache.clear() == 1
        assert len(cache) == 0

    def test_engine_uses_cache_across_instances(self, tmp_path):
        jobs = jobs_from_grid(
            SWEEP_SRC, grid_from_specs(["clock=2,4"]), base_script=base_script()
        )
        first = ExplorationEngine(cache_dir=tmp_path, workers=1).explore(jobs)
        assert (first.cache_hits, first.executed) == (0, 2)
        second = ExplorationEngine(cache_dir=tmp_path, workers=1).explore(jobs)
        assert (second.cache_hits, second.executed) == (2, 0)
        assert [o.num_states for o in first.outcomes] == [
            o.num_states for o in second.outcomes
        ]

    def test_no_cache_mode(self, tmp_path):
        jobs = jobs_from_grid(
            SWEEP_SRC, grid_from_specs(["clock=4"]), base_script=base_script()
        )
        engine = ExplorationEngine(workers=1, use_cache=False)
        assert engine.cache is None
        result = engine.explore(jobs)
        assert result.executed == 1

    def test_empty_cache_dir_disables_caching(self, tmp_path, monkeypatch):
        # Regression: cache_dir="" is documented to disable caching but
        # used to instantiate ResultCache(Path("")) and spray
        # <sha>.json files into the current working directory.
        monkeypatch.chdir(tmp_path)
        engine = ExplorationEngine(cache_dir="", workers=1)
        assert engine.cache is None
        jobs = jobs_from_grid(
            SWEEP_SRC, grid_from_specs(["clock=4"]), base_script=base_script()
        )
        result = engine.explore(jobs)
        assert result.executed == 1
        assert list(tmp_path.glob("*.json")) == []
        # Path("") normalizes to Path(".") at construction, so the
        # Path form of the same mistake must be caught too.
        from pathlib import Path

        assert ExplorationEngine(cache_dir=Path("")).cache is None
        assert ExplorationEngine(cache_dir="./").cache is None
        assert ExplorationEngine(cache_dir=".").cache is None
        # An explicit relative path still caches normally.
        relative = ExplorationEngine(cache_dir="./cache-here")
        assert relative.cache is not None

    def test_environment_errors_are_never_cached(self, tmp_path):
        # Regression: a transient worker failure (ImportError from an
        # environment factory) was memoized forever and replayed as a
        # permanent cache hit.
        marker = tmp_path / "dependency-down"
        marker.touch()
        cache_dir = tmp_path / "cache"
        job = SynthesisJob(
            source=SWEEP_SRC,
            script=base_script(),
            label="flaky",
            environment="tests.helpers:flaky_environment",
            environment_args=(str(marker),),
        )

        first = ExplorationEngine(cache_dir=cache_dir).explore([job])
        outcome = first.outcomes[0]
        assert not outcome.ok
        assert outcome.error_kind == ERROR_KIND_ENVIRONMENT
        assert "ImportError" in outcome.error
        assert len(ResultCache(cache_dir)) == 0  # nothing memoized

        marker.unlink()  # the environment heals
        second = ExplorationEngine(cache_dir=cache_dir).explore([job])
        assert second.cache_hits == 0  # the failure was not replayed
        assert second.executed == 1
        assert second.outcomes[0].ok

    def test_deterministic_infeasibility_is_cached(self, tmp_path):
        # The counterpart: an unschedulable corner is a function of the
        # job content and *should* be memoized.
        impossible = SynthesisScript(clock_period=0.01)
        job = SynthesisJob(source=SWEEP_SRC, script=impossible, label="x")
        cache_dir = tmp_path / "cache"
        first = ExplorationEngine(cache_dir=cache_dir).explore([job])
        assert not first.outcomes[0].ok
        assert first.outcomes[0].error_kind == ERROR_KIND_UNSCHEDULABLE
        second = ExplorationEngine(cache_dir=cache_dir).explore([job])
        assert (second.cache_hits, second.executed) == (1, 0)
        assert not second.outcomes[0].ok

    def test_parse_errors_are_cached_as_plain_infeasible(self, tmp_path):
        # A parse error is deterministic (memoizable) but not a
        # scheduler constraint failure, so it must not carry the
        # monotone "unschedulable" classification.
        job = SynthesisJob(source="int x; x = ;", label="broken")
        cache_dir = tmp_path / "cache"
        first = ExplorationEngine(cache_dir=cache_dir).explore([job])
        assert not first.outcomes[0].ok
        assert first.outcomes[0].error_kind == ERROR_KIND_INFEASIBLE
        second = ExplorationEngine(cache_dir=cache_dir).explore([job])
        assert (second.cache_hits, second.executed) == (1, 0)


# ---------------------------------------------------------------------------
# Ranking
# ---------------------------------------------------------------------------


class TestRanking:
    def outcome(self, label, latency, area, ok=True) -> SynthesisOutcome:
        return SynthesisOutcome(
            label=label, ok=ok, latency=latency, area_total=area
        )

    def test_rank_orders_by_latency_then_area(self):
        ranked = rank_outcomes(
            [
                self.outcome("slow", 40.0, 10.0),
                self.outcome("fast-big", 10.0, 99.0),
                self.outcome("fast-small", 10.0, 5.0),
                self.outcome("broken", 1.0, 1.0, ok=False),
            ]
        )
        assert [o.label for o in ranked] == [
            "fast-small", "fast-big", "slow", "broken",
        ]

    def test_rank_is_deterministic_on_ties(self):
        tied = [self.outcome(label, 10.0, 5.0) for label in "bca"]
        assert [o.label for o in rank_outcomes(tied)] == ["a", "b", "c"]
        assert [o.label for o in rank_outcomes(reversed(tied))] == [
            "a", "b", "c",
        ]

    def test_format_table_marks_infeasible(self):
        table = format_table(
            [self.outcome("good", 10.0, 5.0),
             SynthesisOutcome(label="bad", ok=False, error="boom")]
        )
        assert "good" in table
        assert "infeasible: boom" in table


# ---------------------------------------------------------------------------
# Parallel execution + the cached re-run acceptance criterion
# ---------------------------------------------------------------------------


class TestParallelExploration:
    def test_two_worker_run_matches_serial(self, tmp_path):
        jobs = jobs_from_grid(
            SWEEP_SRC,
            grid_from_specs(["clock=2,4", "unroll=none,*:0"]),
            base_script=base_script(),
            measure=True,
        )
        serial = ExplorationEngine(workers=1, use_cache=False).explore(jobs)
        parallel = ExplorationEngine(workers=2, use_cache=False).explore(jobs)
        assert [o.label for o in parallel.outcomes] == [
            o.label for o in serial.outcomes
        ]
        for fast, slow in zip(parallel.outcomes, serial.outcomes):
            assert fast.ok and slow.ok
            assert fast.score() == slow.score()
            assert fast.measured_cycles == slow.measured_cycles

    def test_infeasible_points_are_reported_not_raised(self):
        impossible = SynthesisScript(clock_period=0.01)  # slower than any op
        jobs = [SynthesisJob(source=SWEEP_SRC, script=impossible, label="x")]
        result = ExplorationEngine(workers=1, use_cache=False).explore(jobs)
        assert not result.outcomes[0].ok
        assert "SchedulingError" in result.outcomes[0].error
        assert result.best() is None

    def test_cli_sweep_second_invocation_5x_faster(self, tmp_path, capsys):
        """Acceptance: a >=12-point grid under --workers 4, where the
        all-hit second invocation is at least 5x faster."""
        source_path = tmp_path / "sweep.c"
        source_path.write_text(SWEEP_SRC, encoding="utf-8")
        argv = [
            "dse",
            str(source_path),
            "--vary", "clock=2,3,4,6",
            "--vary", "unroll=none,*:2,*:0",
            "--workers", "4",
            "--cache-dir", str(tmp_path / "cache"),
            "--output", "total",
        ]

        started = time.perf_counter()
        assert main(list(argv)) == 0
        cold = time.perf_counter() - started
        cold_out = capsys.readouterr().out
        assert "12 design points: 0 cache hits, 12 synthesized" in cold_out

        started = time.perf_counter()
        assert main(list(argv)) == 0
        warm = time.perf_counter() - started
        warm_out = capsys.readouterr().out
        assert "12 design points: 12 cache hits, 0 synthesized" in warm_out

        assert cold >= warm * 5, (
            f"cached re-run not >=5x faster: cold={cold:.3f}s "
            f"warm={warm:.3f}s ({cold / max(warm, 1e-9):.1f}x)"
        )


# ---------------------------------------------------------------------------
# The adaptive engine: streaming, pruning, early exit
# ---------------------------------------------------------------------------


class TestAdaptiveExploration:
    def test_streaming_callback_fires_per_outcome_in_order(self, tmp_path):
        jobs = jobs_from_grid(
            SWEEP_SRC, grid_from_specs(["clock=2,4"]), base_script=base_script()
        )
        seen = []
        first = ExplorationEngine(cache_dir=tmp_path).explore(
            jobs, on_outcome=seen.append
        )
        assert [o.label for o in seen] == ["clock=2", "clock=4"]
        assert all(o.provenance == "run" for o in seen)
        assert first.executed == 2
        # On the warm re-run the callback still fires once per point,
        # now tagged as cache recalls.
        seen.clear()
        ExplorationEngine(cache_dir=tmp_path).explore(
            jobs, on_outcome=seen.append
        )
        assert [o.provenance for o in seen] == ["cache", "cache"]

    def test_dominated_corner_is_pruned_not_executed(self):
        # clock=0.01 fails deterministically; clock=0.005 is strictly
        # harder (same point otherwise) and must be inferred, not run.
        jobs = jobs_from_grid(
            SWEEP_SRC,
            grid_from_specs(["clock=0.01,0.005"]),
            base_script=base_script(),
        )
        result = ExplorationEngine(use_cache=False).explore(jobs)
        assert (result.executed, result.pruned) == (1, 1)
        ran, pruned = result.outcomes
        assert not ran.ok and ran.provenance == "run"
        assert not pruned.ok and pruned.provenance == "pruned"
        assert "dominated by infeasible point" in pruned.error
        assert "clock=0.01" in pruned.error

    def test_pruning_can_be_disabled(self):
        jobs = jobs_from_grid(
            SWEEP_SRC,
            grid_from_specs(["clock=0.01,0.005"]),
            base_script=base_script(),
        )
        result = ExplorationEngine(use_cache=False).explore(jobs, prune=False)
        assert (result.executed, result.pruned) == (2, 0)

    def test_cached_infeasibility_seeds_the_pruner(self, tmp_path):
        # An infeasible corner recalled from cache is evidence too: on
        # a warm run the dominated corner is pruned with zero work.
        jobs = jobs_from_grid(
            SWEEP_SRC,
            grid_from_specs(["clock=0.01,0.005"]),
            base_script=base_script(),
        )
        ExplorationEngine(cache_dir=tmp_path).explore(jobs)
        warm = ExplorationEngine(cache_dir=tmp_path).explore(jobs)
        assert warm.executed == 0
        assert warm.cache_hits == 1  # the witness
        assert warm.pruned == 1  # the dominated corner, re-inferred
        # ...and the pruned outcome itself was never written back.
        assert len(ResultCache(tmp_path)) == 1

    def test_non_monotone_failures_are_not_pruning_evidence(self):
        # A parse error fails every corner deterministically, but it is
        # not a constraint failure — the engine must run each corner
        # rather than inferring dominance from it.
        jobs = jobs_from_grid(
            "int x; x = ;", grid_from_specs(["clock=4,2"])
        )
        result = ExplorationEngine(use_cache=False).explore(jobs)
        assert (result.executed, result.pruned) == (2, 0)
        assert all(
            o.error_kind == ERROR_KIND_INFEASIBLE for o in result.outcomes
        )

    def test_goal_met_by_cache_hit_skips_the_rest(self, tmp_path):
        jobs = jobs_from_grid(
            SWEEP_SRC,
            grid_from_specs(["clock=2,3,4,6"]),
            base_script=base_script(),
        )
        ExplorationEngine(cache_dir=tmp_path).explore(jobs)
        warm = ExplorationEngine(cache_dir=tmp_path).explore(
            jobs, target_latency=1000.0
        )
        assert warm.goal_met
        assert warm.cache_hits == 1  # first recall met the goal
        assert warm.executed == 0
        assert warm.skipped == 3  # the tail was neither read nor run

    def test_pruned_outcomes_rank_as_infeasible(self):
        jobs = jobs_from_grid(
            SWEEP_SRC,
            grid_from_specs(["clock=0.01,0.005"]),
            base_script=base_script(),
        )
        result = ExplorationEngine(use_cache=False).explore(jobs)
        table = format_table(result.outcomes)
        assert "pruned: dominated" in table
        assert result.best() is None

    def test_early_exit_executes_fewer_jobs_same_best(self):
        """Acceptance: on a reference 24-point sweep with a reachable
        --target-latency, the adaptive engine executes >= 30% fewer
        jobs than exhaustive exploration and returns an identical
        best() outcome."""
        # clock x unroll x limits, 4*3*2 = 24 points, over a loop whose
        # adds read an input array (so nothing constant-folds away and
        # the corners genuinely differ).  The axes are ordered so the
        # whole clock=3 block is swept before the clock=2 block where
        # the global best lives — the early exit has real work to skip
        # — and so that among best-score ties the job order reaches the
        # deterministic ranking winner (smallest label) first.
        source = """
        int data[26];
        int acc[26];
        int i; int total;
        total = 0;
        for (i = 0; i < 24; i++) {
          total = total + data[i];
          acc[i] = total;
        }
        """
        grid = grid_from_specs(
            ["clock=3,2,4,6", "unroll=none,*:3,*:0", "limits=alu:1,none"]
        )
        jobs = jobs_from_grid(source, grid, base_script=base_script())
        assert len(jobs) == 24

        exhaustive = ExplorationEngine(use_cache=False).explore(jobs)
        assert exhaustive.executed == 24
        best = exhaustive.best()
        assert best is not None

        adaptive = ExplorationEngine(use_cache=False).explore(
            jobs, target_latency=best.latency
        )
        assert adaptive.goal_met
        assert adaptive.executed <= 0.7 * exhaustive.executed
        assert adaptive.executed + adaptive.pruned + adaptive.skipped == 24
        assert adaptive.best() is not None
        assert adaptive.best().label == best.label
        assert adaptive.best().score() == best.score()

    def test_early_exit_in_parallel_mode(self):
        jobs = jobs_from_grid(
            SWEEP_SRC,
            grid_from_specs(["clock=2,4", "unroll=none,*:0"]),
            base_script=base_script(),
        )
        result = ExplorationEngine(workers=2, use_cache=False).explore(
            jobs, target_latency=2.0
        )
        assert result.goal_met
        best = result.best()
        assert best is not None and best.latency <= 2.0
        assert result.executed + result.pruned == len(result.outcomes)
        assert result.executed + result.pruned + result.skipped == len(jobs)

    def test_max_area_goal(self):
        jobs = jobs_from_grid(
            SWEEP_SRC,
            grid_from_specs(["limits=alu:1,none", "clock=6"]),
            base_script=base_script(),
        )
        exhaustive = ExplorationEngine(use_cache=False).explore(jobs)
        areas = sorted(o.area_total for o in exhaustive.feasible)
        result = ExplorationEngine(use_cache=False).explore(
            jobs, max_area=areas[0]
        )
        assert result.goal_met
        assert result.best().area_total <= areas[0]

    def test_frontier_is_non_dominated(self):
        jobs = jobs_from_grid(
            SWEEP_SRC,
            grid_from_specs(["clock=2,6", "unroll=none,*:0"]),
            base_script=base_script(),
        )
        result = ExplorationEngine(use_cache=False).explore(jobs)
        frontier = result.frontier
        assert frontier  # something feasible survived
        for a in frontier:
            for b in frontier:
                if a is b:
                    continue
                assert not (
                    a.latency <= b.latency
                    and a.area_total <= b.area_total
                    and (a.latency < b.latency or a.area_total < b.area_total)
                )
        # Every feasible outcome is dominated-by-or-on the frontier.
        for outcome in result.feasible:
            assert any(
                p.latency <= outcome.latency
                and p.area_total <= outcome.area_total
                for p in frontier
            )


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


class TestDseCli:
    def test_bad_axis_exits_2(self, tmp_path, capsys):
        source_path = tmp_path / "d.c"
        source_path.write_text(SWEEP_SRC, encoding="utf-8")
        status = main(["dse", str(source_path), "--vary", "warp=9"])
        assert status == 2
        assert "unknown grid axis" in capsys.readouterr().err

    def test_missing_file_exits_2(self, capsys):
        assert main(["dse", "/nonexistent/file.c"]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_all_infeasible_exits_1(self, tmp_path, capsys):
        source_path = tmp_path / "d.c"
        source_path.write_text(SWEEP_SRC, encoding="utf-8")
        status = main(
            ["dse", str(source_path), "--vary", "clock=0.01", "--no-cache"]
        )
        assert status == 1
        assert "infeasible" in capsys.readouterr().out

    def test_target_latency_skips_and_reports(self, tmp_path, capsys):
        source_path = tmp_path / "d.c"
        source_path.write_text(SWEEP_SRC, encoding="utf-8")
        status = main(
            ["dse", str(source_path), "--vary", "clock=2,3,4,6",
             "--no-cache", "--output", "total",
             "--target-latency", "1000", "--progress"]
        )
        assert status == 0
        captured = capsys.readouterr()
        assert "target met" in captured.out
        assert "skipped" in captured.out
        assert "[   run]" in captured.err  # --progress streamed points

    def test_top_limits_rows(self, tmp_path, capsys):
        source_path = tmp_path / "d.c"
        source_path.write_text(SWEEP_SRC, encoding="utf-8")
        status = main(
            ["dse", str(source_path), "--vary", "clock=2,4,8",
             "--no-cache", "--top", "1", "--output", "total"]
        )
        assert status == 0
        out = capsys.readouterr().out
        data_rows = [
            line for line in out.splitlines() if "clock=" in line
        ]
        assert len(data_rows) == 1
