"""Unit tests for CFG construction and data-flow analyses."""

import pytest

from repro.ir.builder import design_from_source
from repro.ir.cfg import build_cfg
from repro.ir.dataflow import (
    compute_liveness,
    compute_reaching_definitions,
    condition_uses_of,
    definitions_of,
    uses_of,
)


class TestCFGConstruction:
    def test_straight_line(self):
        design = design_from_source("int x; int y; x = 1; y = x + 1;")
        cfg = build_cfg(design.main)
        blocks = [n for n in cfg.nodes() if n.kind == "block"]
        assert len(blocks) == 1
        # entry -> block -> exit
        assert cfg.successors(cfg.entry)[0] is blocks[0]
        assert cfg.exit in cfg.successors(blocks[0])

    def test_if_creates_branch_and_join(self):
        design = design_from_source(
            "int x; int c; c = 1; if (c) { x = 1; } else { x = 2; }"
        )
        cfg = build_cfg(design.main)
        kinds = [n.kind for n in cfg.nodes()]
        assert "branch" in kinds
        assert "join" in kinds

    def test_branch_edge_labels(self):
        design = design_from_source("int x; int c; c = 1; if (c) x = 1; else x = 2;")
        cfg = build_cfg(design.main)
        branch = next(n for n in cfg.nodes() if n.kind == "branch")
        labels = sorted(
            cfg.edge_label(branch, succ) for succ in cfg.successors(branch)
        )
        assert labels == ["false", "true"]

    def test_loop_back_edge(self):
        design = design_from_source(
            "int i; int s; s = 0; for (i = 0; i < 4; i++) { s = s + i; }"
        )
        cfg = build_cfg(design.main)
        import networkx as nx

        cycles = list(nx.simple_cycles(cfg.graph))
        assert cycles, "for-loop must create a CFG cycle"

    def test_return_edges_to_exit(self):
        design = design_from_source(
            "int f(x) { if (x) { return 1; } return 2; } int y; y = f(1);"
        )
        cfg = build_cfg(design.function("f"))
        exit_preds = cfg.predecessors(cfg.exit)
        assert len(exit_preds) == 2

    def test_break_edges_to_loop_exit(self):
        design = design_from_source(
            "int i; i = 0; while (1) { i = i + 1; if (i > 3) { break; } }"
        )
        cfg = build_cfg(design.main)
        # The graph must still reach the exit (through the break).
        import networkx as nx

        assert nx.has_path(cfg.graph, cfg.entry.node_id, cfg.exit.node_id)

    def test_node_for_block_lookup(self, mini_ild_design):
        cfg = build_cfg(mini_ild_design.main)
        some_block = next(n for n in cfg.nodes() if n.kind == "block").block
        assert cfg.node_for_block(some_block).block is some_block

    def test_reverse_postorder_starts_at_entry(self, mini_ild_design):
        cfg = build_cfg(mini_ild_design.main)
        order = cfg.reverse_postorder()
        assert order[0] is cfg.entry


class TestLiveness:
    def test_dead_write_not_live(self):
        design = design_from_source(
            "int a; int b; a = 1; b = 2; a = 3;"
        )
        cfg = build_cfg(design.main)
        result = compute_liveness(cfg)
        block = next(n for n in cfg.nodes() if n.kind == "block")
        first_write = block.block.ops[0]
        # After `a = 1`, a is rewritten before any read: not live.
        assert "a" not in result.op_live_out[first_write.uid]

    def test_boundary_live_propagates(self):
        design = design_from_source("int a; a = 1;")
        cfg = build_cfg(design.main)
        result = compute_liveness(cfg, boundary_live={"a"})
        block = next(n for n in cfg.nodes() if n.kind == "block")
        assert "a" in result.op_live_out[block.block.ops[0].uid]

    def test_condition_reads_are_uses(self):
        design = design_from_source(
            "int c; int x; c = 1; if (c) { x = 1; }"
        )
        cfg = build_cfg(design.main)
        result = compute_liveness(cfg)
        block = next(n for n in cfg.nodes() if n.kind == "block")
        write_c = block.block.ops[0]
        assert "c" in result.op_live_out[write_c.uid]

    def test_loop_carried_liveness(self):
        design = design_from_source(
            "int i; int s; s = 0; for (i = 0; i < 4; i++) { s = s + i; }"
        )
        cfg = build_cfg(design.main)
        result = compute_liveness(cfg)
        # s is live around the back edge.
        body_block = next(
            n
            for n in cfg.nodes()
            if n.kind == "block" and "s" in n.block.variables_read()
        )
        assert "s" in result.live_in[body_block.node_id]


class TestReachingDefinitions:
    def test_single_def_reaches_use(self):
        design = design_from_source("int a; int b; a = 1; b = a;")
        cfg = build_cfg(design.main)
        result = compute_reaching_definitions(cfg)
        exit_defs = result.reach_in[cfg.exit.node_id]
        vars_defined = {var for var, _ in exit_defs}
        assert vars_defined == {"a", "b"}

    def test_redefinition_kills(self):
        design = design_from_source("int a; a = 1; a = 2;")
        cfg = build_cfg(design.main)
        result = compute_reaching_definitions(cfg)
        exit_defs = [d for d in result.reach_in[cfg.exit.node_id] if d[0] == "a"]
        assert len(exit_defs) == 1

    def test_branch_merges_definitions(self):
        design = design_from_source(
            "int a; int c; c = 1; if (c) { a = 1; } else { a = 2; }"
        )
        cfg = build_cfg(design.main)
        result = compute_reaching_definitions(cfg)
        exit_defs = [d for d in result.reach_in[cfg.exit.node_id] if d[0] == "a"]
        assert len(exit_defs) == 2

    def test_entry_definitions(self):
        design = design_from_source("int b; b = x;")
        cfg = build_cfg(design.main)
        result = compute_reaching_definitions(cfg, entry_variables={"x"})
        block = next(n for n in cfg.nodes() if n.kind == "block")
        assert ("x", 0) in result.reach_in[block.node_id]

    def test_loop_carried_definition_reaches_the_body(self):
        # `s` has two defs: the init before the loop and the update in
        # the body.  Around the back edge *both* reach the body's
        # entry — the fixpoint must not stop at the acyclic answer.
        design = design_from_source(
            "int i; int s; s = 0; for (i = 0; i < 4; i++) { s = s + i; }"
        )
        cfg = build_cfg(design.main)
        result = compute_reaching_definitions(cfg)
        body = next(
            n
            for n in cfg.nodes()
            if n.kind == "block" and "s" in n.block.variables_read()
        )
        s_defs = {d for d in result.reach_in[body.node_id] if d[0] == "s"}
        assert len(s_defs) == 2

    def test_loop_update_def_reaches_the_header_condition(self):
        design = design_from_source(
            "int i; int s; s = 0; for (i = 0; i < 4; i++) { s = s + i; }"
        )
        cfg = build_cfg(design.main)
        result = compute_reaching_definitions(cfg)
        header = next(n for n in cfg.nodes() if n.kind == "branch")
        i_defs = {d for d in result.reach_in[header.node_id] if d[0] == "i"}
        # Init def on first entry, update def around the back edge.
        assert len(i_defs) == 2

    def test_nested_if_join_merges_all_arms(self):
        # Four arms, four defs of `a`; the final read sees all four.
        design = design_from_source(
            "int a; int c1; int c2; c1 = 1; c2 = 0;"
            "if (c1) { if (c2) { a = 1; } else { a = 2; } }"
            "else { if (c2) { a = 3; } else { a = 4; } }"
            "int b; b = a;"
        )
        cfg = build_cfg(design.main)
        result = compute_reaching_definitions(cfg)
        reader = next(
            n
            for n in cfg.nodes()
            if n.kind == "block" and "a" in n.block.variables_read()
        )
        a_defs = {d for d in result.reach_in[reader.node_id] if d[0] == "a"}
        assert len(a_defs) == 4

    def test_inner_join_kills_outer_def_on_both_arms(self):
        # Every path through the conditional rewrites `a`, so the
        # pre-if definition must NOT survive to the final read.
        design = design_from_source(
            "int a; int c; c = 1; a = 9;"
            "if (c) { a = 1; } else { a = 2; }"
            "int b; b = a;"
        )
        cfg = build_cfg(design.main)
        result = compute_reaching_definitions(cfg)
        reader = next(
            n
            for n in cfg.nodes()
            if n.kind == "block" and "a" in n.block.variables_read()
        )
        a_defs = {d for d in result.reach_in[reader.node_id] if d[0] == "a"}
        assert len(a_defs) == 2


class TestQueryHelpers:
    def test_definitions_of(self, mini_ild_design):
        defs = definitions_of(mini_ild_design.main, "NextStartByte")
        assert len(defs) == 2  # init + increment

    def test_uses_of(self, mini_ild_design):
        uses = uses_of(mini_ild_design.main, "NextStartByte")
        assert len(uses) >= 1

    def test_condition_uses_of(self, mini_ild_design):
        nodes = condition_uses_of(mini_ild_design.main, "NextStartByte")
        assert len(nodes) == 1  # the `i == NextStartByte` guard
