"""Batched dispatch and incremental scheduling.

Covers the batching tentpole's observational guarantees:

* the engine's cache scan is interleaved with dispatch — the first
  miss is executing before the last job of a large sweep has even been
  hashed (regression: the engine used to prescan the entire job list
  first, idling every worker);
* parity — a batched sweep (``batch_size > 1``, on the pool and
  broker executors) ranks identically to a serial unbatched sweep and
  leaves identical outcome-cache coverage (batching is a dispatch
  optimization, never an outcome change);
* incremental scheduling — a shared :class:`DagCache` produces
  schedules bit-identical to from-scratch runs across a grid that
  varies only resource limits and clock, while actually hitting.
"""

from __future__ import annotations

import threading

from repro.dse import (
    BrokerExecutor,
    ExplorationEngine,
    JobBroker,
    ResultCache,
    grid_from_specs,
    job_key,
    jobs_from_grid,
    run_worker,
)
from repro.dse.exec.base import Executor
from repro.ir.builder import design_from_source
from repro.scheduler.list_scheduler import ChainingScheduler
from repro.scheduler.ready_list import DagCache
from repro.scheduler.resources import ResourceAllocation, ResourceLibrary
from repro.spark import execute_job
from repro.transforms.base import SynthesisScript

SWEEP_SRC = """
int data[26];
int acc[26];
int i; int total;
total = 0;
for (i = 0; i < 24; i++) {
  total = total + data[i];
  acc[i] = total;
}
"""


def base_script() -> SynthesisScript:
    return SynthesisScript(output_scalars={"total"})


def sweep_jobs(*specs: str):
    return jobs_from_grid(
        SWEEP_SRC, grid_from_specs(list(specs)), base_script=base_script()
    )


class RecordingCache(ResultCache):
    """An outcome cache that logs every probe into a shared event list."""

    def __init__(self, root, events):
        super().__init__(root)
        self.events = events

    def get(self, key, require_verified=False):
        self.events.append("probe")
        return super().get(key, require_verified=require_verified)


class RecordingExecutor(Executor):
    """In-process executor that logs every submit into the same list."""

    kind = "recording"
    capacity = 1

    def __init__(self, events):
        self.events = events
        self._pending = []

    def submit(self, token, job):
        self.events.append("submit")
        self._pending.append((token, job))

    def collect(self):
        token, job = self._pending.pop(0)
        return token, execute_job(job)

    @property
    def outstanding(self):
        return len(self._pending)


class TestInterleavedScan:
    def test_first_miss_dispatches_before_last_job_is_hashed(self, tmp_path):
        """Regression: the engine must not prescan the entire job list
        for cache hits before the first miss reaches an executor."""
        jobs = sweep_jobs("clock=2,3,4,6")
        events = []
        engine = ExplorationEngine(
            cache_dir=tmp_path, executor=RecordingExecutor(events)
        )
        engine.cache = RecordingCache(tmp_path, events)
        result = engine.explore(jobs)
        assert result.executed == len(jobs)
        # Cold sweep: the very first probe misses and dispatches
        # immediately; scanning resumes only after the submit.
        assert events[:2] == ["probe", "submit"]
        assert events.index("submit") < (
            len(events) - 1 - events[::-1].index("probe")
        )
        assert events.count("probe") == len(jobs)
        assert events.count("submit") == len(jobs)

    def test_warm_rerun_still_settles_every_hit(self, tmp_path):
        jobs = sweep_jobs("clock=2,3")
        ExplorationEngine(cache_dir=tmp_path).explore(jobs)
        warm = ExplorationEngine(cache_dir=tmp_path).explore(jobs)
        assert warm.cache_hits == len(jobs)
        assert warm.executed == 0
        assert [o.provenance for o in warm.outcomes] == ["cache"] * len(jobs)


class TestBatchedParity:
    """Acceptance: batched sweeps are observationally identical to
    serial unbatched sweeps — same ranked outcomes, same cache."""

    #: Two transform-prefix groups (unroll) x four schedule corners
    #: (clock), so batching has real prefix groups to exploit.
    SPECS = ("clock=2,3,4,6", "unroll=none,*:0")

    def assert_parity(self, baseline, batched, jobs):
        assert len(batched.outcomes) == len(baseline.outcomes) == len(jobs)
        assert [o.label for o in batched.ranked()] == [
            o.label for o in baseline.ranked()
        ]
        assert [o.score() for o in batched.ranked()] == [
            o.score() for o in baseline.ranked()
        ]
        for batched_out, baseline_out in zip(
            batched.ranked(), baseline.ranked()
        ):
            assert batched_out.latency == baseline_out.latency
            assert batched_out.area_total == baseline_out.area_total

    def test_serial_batched_matches_unbatched_and_cache(self, tmp_path):
        jobs = sweep_jobs(*self.SPECS)
        baseline = ExplorationEngine(cache_dir=tmp_path / "a").explore(jobs)
        batched = ExplorationEngine(
            cache_dir=tmp_path / "b", batch_size=4
        ).explore(jobs)
        assert baseline.executed == batched.executed == len(jobs)
        self.assert_parity(baseline, batched, jobs)
        # Identical cache coverage under identical content keys.
        cache_a = ResultCache(tmp_path / "a")
        cache_b = ResultCache(tmp_path / "b")
        for job in jobs:
            key = job_key(job)
            recalled_a, recalled_b = cache_a.get(key), cache_b.get(key)
            assert recalled_a is not None and recalled_b is not None
            assert recalled_a.score() == recalled_b.score()

    def test_pool_batched_matches_serial_unbatched(self, tmp_path):
        jobs = sweep_jobs(*self.SPECS)
        baseline = ExplorationEngine(use_cache=False).explore(jobs)
        batched = ExplorationEngine(
            use_cache=False, workers=2, executor="pool", batch_size=4
        ).explore(jobs)
        assert batched.executor == "pool"
        assert batched.executed == len(jobs)
        self.assert_parity(baseline, batched, jobs)

    def test_broker_batched_matches_serial_unbatched(self, tmp_path):
        jobs = sweep_jobs(*self.SPECS)
        baseline = ExplorationEngine(use_cache=False).explore(jobs)
        broker = JobBroker(tmp_path / "broker", lease_ttl=10.0)
        workers = [
            threading.Thread(
                target=run_worker,
                kwargs=dict(
                    broker=broker,
                    worker=f"w{index}",
                    idle_timeout=3.0,
                    poll=0.02,
                ),
                daemon=True,
            )
            for index in range(2)
        ]
        for worker in workers:
            worker.start()
        engine = ExplorationEngine(
            use_cache=False,
            batch_size=4,
            executor=BrokerExecutor(broker, poll=0.02, on_stall=None),
        )
        batched = engine.explore(jobs)
        for worker in workers:
            worker.join(timeout=30)
            assert not worker.is_alive()
        assert batched.executor == "broker"
        assert batched.executed == len(jobs)
        self.assert_parity(baseline, batched, jobs)
        stats = broker.stats()
        assert (stats.queued, stats.claimed, stats.results) == (0, 0, 0)


class TestIncrementalScheduling:
    def test_shared_dag_cache_schedules_identically(self):
        """Across a grid that varies only clock and resource limits,
        incremental mode (one shared DagCache) must reproduce the
        from-scratch schedule exactly — and actually reuse the DAG."""
        design = design_from_source(SWEEP_SRC)
        library = ResourceLibrary()
        cache = DagCache()
        corners = [
            (clock, limits)
            for clock in (2.0, 3.0, 5.0, 10.0)
            for limits in (None, {"alu": 1}, {"alu": 2, "cmp": 1})
        ]
        for clock, limits in corners:
            fresh = ChainingScheduler(
                library=library,
                clock_period=clock,
                allocation=ResourceAllocation(limits=limits or {}),
                priority="critical",
            ).schedule(design.main)
            warm = ChainingScheduler(
                library=library,
                clock_period=clock,
                allocation=ResourceAllocation(limits=limits or {}),
                priority="critical",
                dag_cache=cache,
            ).schedule(design.main)
            assert warm.describe() == fresh.describe(), (
                f"incremental schedule diverged at clock={clock}, "
                f"limits={limits}"
            )
        assert cache.misses >= 1
        assert cache.hits >= len(corners) - cache.misses

    def test_source_priority_bypasses_the_cache(self):
        design = design_from_source(SWEEP_SRC)
        cache = DagCache()
        ChainingScheduler(
            clock_period=5.0, priority="source", dag_cache=cache
        ).schedule(design.main)
        assert cache.hits == 0 and cache.misses == 0
