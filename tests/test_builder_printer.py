"""Unit tests for AST->HTG lowering and the IR pretty-printer."""

import pytest

from repro.frontend.parser import parse
from repro.ir.builder import LoweringError, build_design, design_from_source
from repro.ir.htg import BlockNode, BreakNode, IfNode, LoopNode
from repro.ir.printer import htg_structure, print_design, print_function, print_htg
from repro.interp import run_design


class TestLowering:
    def test_decls_populate_symbol_tables(self):
        design = design_from_source("int a[8]; int x; x = 1;")
        main = design.main
        assert main.arrays == {"a": 8}
        assert "x" in main.locals

    def test_decl_with_init_becomes_assignment(self):
        design = design_from_source("int x = 5;")
        ops = list(design.main.walk_operations())
        assert len(ops) == 1
        assert str(ops[0]) == "x = 5;"

    def test_array_initializer_rejected(self):
        with pytest.raises(LoweringError):
            build_design(parse("int a[2] = 3;"))

    def test_if_becomes_ifnode(self):
        design = design_from_source("int x; if (1) { x = 1; } else { x = 2; }")
        kinds = [type(n).__name__ for n in design.main.walk_nodes()]
        assert "IfNode" in kinds

    def test_for_becomes_loopnode_with_header_ops(self):
        design = design_from_source("int i; int s; s=0; for (i = 0; i < 3; i++) s += i;")
        loop = next(
            n for n in design.main.walk_nodes() if isinstance(n, LoopNode)
        )
        assert loop.kind == "for"
        assert len(loop.init) == 1
        assert len(loop.update) == 1

    def test_for_with_decl_init(self):
        design = design_from_source("int s; s=0; for (int i = 0; i < 3; i++) s += i;")
        assert "i" in design.main.locals

    def test_while_becomes_loopnode(self):
        design = design_from_source("int x; x=0; while (x < 2) { x = x + 1; }")
        loop = next(
            n for n in design.main.walk_nodes() if isinstance(n, LoopNode)
        )
        assert loop.kind == "while"
        assert loop.init == [] and loop.update == []

    def test_break_becomes_breaknode(self):
        design = design_from_source("while (1) { break; }")
        kinds = [type(n).__name__ for n in design.main.walk_nodes()]
        assert "BreakNode" in kinds

    def test_adjacent_statements_merge_into_one_block(self):
        design = design_from_source("int a; int b; a = 1; b = 2;")
        blocks = [n for n in design.main.walk_nodes() if isinstance(n, BlockNode)]
        assert len(blocks) == 1
        assert len(blocks[0].ops) == 2

    def test_statement_call_lowered(self):
        design = design_from_source("poke(1);")
        ops = list(design.main.walk_operations())
        assert len(ops) == 1 and ops[0].kind.name == "CALL"

    def test_externals_inferred(self):
        design = design_from_source("int y; y = mystery(1);")
        assert design.external_functions == {"mystery"}

    def test_explicit_externals_respected(self):
        design = build_design(parse("int y; y = f(1);"), external_functions=["f"])
        assert design.external_functions == {"f"}


class TestPrinterRoundTrip:
    """Printed code must re-parse to a behaviorally identical design."""

    def roundtrip(self, source, **kwargs):
        design = design_from_source(source)
        before = run_design(design, **kwargs).snapshot()
        printed = print_design(design)
        reparsed = design_from_source(printed)
        after = run_design(reparsed, **kwargs).snapshot()
        assert before["arrays"] == after["arrays"]
        return printed

    def test_straight_line(self):
        self.roundtrip("int out[1]; int a; a = 2 + 3; out[0] = a;")

    def test_conditional(self):
        self.roundtrip(
            "int out[2]; int c; c = 1;"
            "if (c) { out[0] = 1; } else { out[1] = 1; }"
        )

    def test_loop(self):
        self.roundtrip(
            "int out[5]; int i; for (i = 0; i < 5; i++) out[i] = i * i;"
        )

    def test_function(self):
        printed = self.roundtrip(
            "int sq(x) { return x * x; } int out[1]; out[0] = sq(7);"
        )
        assert "int sq(int x)" in printed

    def test_while_break(self):
        self.roundtrip(
            "int out[1]; int i; i = 0;"
            "while (1) { i = i + 1; if (i > 4) { break; } } out[0] = i;"
        )

    def test_mini_ild(self, mini_ild_ext):
        from tests.conftest import MINI_ILD_SRC

        self.roundtrip(MINI_ILD_SRC, externals=mini_ild_ext)


class TestPrinterOutput:
    def test_array_decls_rendered(self):
        design = design_from_source("int a[4]; a[0] = 1;")
        assert "int a[4];" in print_design(design)

    def test_speculation_flags_rendered(self):
        design = design_from_source("int x; x = 1;")
        op = next(design.main.walk_operations())
        op.is_speculated = True
        assert "spec" in print_design(design)

    def test_structure_view(self, mini_ild_design):
        text = htg_structure(mini_ild_design.main.body)
        assert "LoopNode" in text
        assert "IfNode" in text

    def test_print_htg_indents_branches(self):
        design = design_from_source("int x; if (1) { x = 1; }")
        text = print_htg(design.main.body)
        assert "if (1) {" in text
        assert "  x = 1;" in text

    def test_print_function_signature(self):
        design = design_from_source("int f(a, b) { return a + b; }")
        text = print_function(design.function("f"))
        assert text.startswith("int f(int a, int b) {")
