"""Tests for flow-level extensions: SparkSession.from_design, the
code-motion and TAC-lowering script knobs, and preset coherence."""

import pytest

from repro import DesignInterface, SparkSession, SynthesisScript
from repro.ir.builder import design_from_source
from repro.transforms.loop_rewrite import WhileToForRewrite

from tests.conftest import MINI_ILD_SRC, mini_ild_externals


NATURAL_SRC = """
int Mark[10];
int len_v;
int pos;
pos = 1;
while (1) {
  if (pos > 8) { break; }
  Mark[pos] = 1;
  len_v = 1 + (pos & 1);
  pos += len_v;
}
"""


class TestFromDesign:
    def test_runs_pre_transformed_design(self):
        design = design_from_source(NATURAL_SRC)
        WhileToForRewrite("pos", bound=8).run_on_design(design)
        session = SparkSession.from_design(
            design,
            script=SynthesisScript.microprocessor_block(),
        )
        result = session.run(bind=False, emit=False)
        assert result.state_machine.is_single_cycle()

    def test_interpret_works_from_design(self):
        design = design_from_source(NATURAL_SRC)
        session = SparkSession.from_design(design)
        state = session.interpret()
        assert state.arrays["Mark"][1] == 1

    def test_defaults_populated(self):
        session = SparkSession.from_design(design_from_source(NATURAL_SRC))
        assert session.script is not None
        assert session.library is not None
        assert session.externals == {}
        assert session.reports == []


class TestCodeMotionKnob:
    def test_default_script_has_motion_off(self):
        assert not SynthesisScript().enable_code_motion

    def test_up_preset_has_motion_on(self):
        assert SynthesisScript.microprocessor_block().enable_code_motion

    def test_motion_reports_appear(self):
        script = SynthesisScript.microprocessor_block(
            pure_functions=set(mini_ild_externals())
        )
        session = SparkSession(
            MINI_ILD_SRC, script=script, externals=mini_ild_externals()
        )
        result = session.run(bind=False, emit=False)
        names = {r.pass_name for r in result.reports}
        assert "dataflow-level-reorder" in names
        assert "trailblazing-hoist" in names

    def test_motion_preserves_rtl_equivalence(self):
        for enabled in (False, True):
            script = SynthesisScript.microprocessor_block(
                pure_functions=set(mini_ild_externals())
            )
            script.enable_code_motion = enabled
            session = SparkSession(
                MINI_ILD_SRC, script=script, externals=mini_ild_externals()
            )
            expected = session.interpret().snapshot()["arrays"]
            result = session.run(bind=False, emit=False)
            rtl = session.simulate_rtl(result.state_machine)
            assert rtl.arrays == expected, f"enable_code_motion={enabled}"


class TestSection3MotionKnobs:
    COND_SRC = """
    int x; int y; int z;
    x = p + 1;
    if (c) { y = x + 2; } else { y = x - 2; }
    z = y * 2;
    """

    def _run(self, **knobs):
        script = SynthesisScript(
            enable_speculation=False,
            clock_period=1_000.0,
            output_scalars={"z"},
        )
        for name, value in knobs.items():
            setattr(script, name, value)
        session = SparkSession(self.COND_SRC, script=script)
        result = session.run(bind=False, emit=False)
        return session, result

    @pytest.mark.parametrize(
        "knob", ["enable_reverse_speculation", "enable_conditional_speculation"]
    )
    def test_knob_off_by_default(self, knob):
        assert not getattr(SynthesisScript(), knob)

    def test_reverse_speculation_reported_and_correct(self):
        session, result = self._run(enable_reverse_speculation=True)
        names = {r.pass_name for r in result.reports if r.changed}
        assert "reverse-speculation" in names
        for c in (0, 1):
            inputs = {"c": c, "p": 5}
            expected = session.interpret(inputs=inputs).scalars["z"]
            rtl = session.simulate_rtl(result.state_machine, inputs=inputs)
            assert rtl.scalars["z"] == expected

    def test_conditional_speculation_correct(self):
        session, result = self._run(enable_conditional_speculation=True)
        for c in (0, 1):
            inputs = {"c": c, "p": 5}
            expected = session.interpret(inputs=inputs).scalars["z"]
            rtl = session.simulate_rtl(result.state_machine, inputs=inputs)
            assert rtl.scalars["z"] == expected

    def test_opposing_motions_terminate(self):
        """Speculation hoists ops out of branches, reverse speculation
        pushes them back in; the fixpoint loop must still terminate
        and the result must stay correct."""
        script = SynthesisScript(
            enable_speculation=True,
            enable_reverse_speculation=True,
            clock_period=1_000.0,
            output_scalars={"z"},
        )
        session = SparkSession(self.COND_SRC, script=script)
        result = session.run(bind=False, emit=False)
        for c in (0, 1):
            inputs = {"c": c, "p": 5}
            expected = session.interpret(inputs=inputs).scalars["z"]
            rtl = session.simulate_rtl(result.state_machine, inputs=inputs)
            assert rtl.scalars["z"] == expected


class TestTACLoweringKnob:
    WIDE_EXPR_SRC = """
    int y;
    y = a + b + c + d;
    """

    def test_asic_preset_has_lowering_on(self):
        assert SynthesisScript.asic().enable_tac_lowering

    def test_default_script_has_lowering_off(self):
        assert not SynthesisScript().enable_tac_lowering

    def test_bounded_allocation_needs_lowering(self):
        """A 3-add expression cannot be scheduled with 2 ALUs unless
        decomposed."""
        from repro.scheduler.list_scheduler import SchedulingError

        script = SynthesisScript(
            enable_speculation=False,
            enable_tac_lowering=False,
            clock_period=16.0,
            resource_limits={"alu": 2},
            output_scalars={"y"},
        )
        session = SparkSession(self.WIDE_EXPR_SRC, script=script)
        with pytest.raises(SchedulingError):
            session.run(bind=False, emit=False)

    def test_lowering_makes_bounded_allocation_schedulable(self):
        script = SynthesisScript(
            enable_speculation=False,
            enable_tac_lowering=True,
            clock_period=16.0,
            resource_limits={"alu": 2},
            output_scalars={"y"},
        )
        session = SparkSession(self.WIDE_EXPR_SRC, script=script)
        result = session.run(bind=False, emit=False)
        rtl = session.simulate_rtl(
            result.state_machine, inputs={"a": 1, "b": 2, "c": 3, "d": 4}
        )
        assert rtl.scalars["y"] == 10

    def test_asic_flow_on_ild_respects_limits(self):
        script = SynthesisScript.asic(clock_period=4.0)
        script.pure_functions = set(mini_ild_externals())
        session = SparkSession(
            MINI_ILD_SRC, script=script, externals=mini_ild_externals()
        )
        result = session.run()
        counts = result.fu_binding.instance_counts
        assert counts.get("alu", 0) <= 2
        assert counts.get("cmp", 0) <= 1
