"""Unit tests for the behavioral C lexer."""

import pytest

from repro.frontend.lexer import (
    Lexer,
    LexerError,
    Token,
    TokenType,
    find_token,
    literal_value,
    tokenize,
)


def kinds(source):
    return [t.type for t in tokenize(source) if t.type is not TokenType.EOF]


def values(source):
    return [t.value for t in tokenize(source) if t.type is not TokenType.EOF]


class TestBasicTokens:
    def test_empty_input_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].type is TokenType.EOF

    def test_whitespace_only(self):
        tokens = tokenize("   \n\t  \n")
        assert len(tokens) == 1

    def test_integer_literal(self):
        tokens = tokenize("42")
        assert tokens[0].type is TokenType.INT_LITERAL
        assert literal_value(tokens[0]) == 42

    def test_hex_literal(self):
        tokens = tokenize("0x1F")
        assert literal_value(tokens[0]) == 31

    def test_hex_literal_uppercase_x(self):
        tokens = tokenize("0XfF")
        assert literal_value(tokens[0]) == 255

    def test_zero(self):
        assert literal_value(tokenize("0")[0]) == 0

    def test_identifier(self):
        tokens = tokenize("NextStartByte")
        assert tokens[0].type is TokenType.IDENT
        assert tokens[0].value == "NextStartByte"

    def test_identifier_with_underscore_and_digits(self):
        tokens = tokenize("LengthContribution_1")
        assert tokens[0].type is TokenType.IDENT
        assert tokens[0].value == "LengthContribution_1"

    def test_keywords_classified(self):
        for kw in ("int", "if", "else", "for", "while", "return", "break"):
            assert tokenize(kw)[0].type is TokenType.KEYWORD

    def test_true_false_are_keywords(self):
        assert tokenize("true")[0].type is TokenType.KEYWORD
        assert tokenize("false")[0].type is TokenType.KEYWORD


class TestOperators:
    def test_two_char_operators(self):
        for op in ("==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "+=", "++"):
            tokens = tokenize(op)
            assert tokens[0].type is TokenType.OPERATOR
            assert tokens[0].value == op

    def test_single_char_operators(self):
        for op in "+-*/%<>=!&|^~?:":
            tokens = tokenize(op)
            assert tokens[0].type is TokenType.OPERATOR

    def test_longest_match_wins(self):
        # `<<=` must lex as one token, not `<<` `=` or `<` `<=`.
        tokens = tokenize("a <<= 2")
        assert values("a <<= 2") == ["a", "<<=", "2"]

    def test_increment_vs_plus(self):
        assert values("i++ + 1") == ["i", "++", "+", "1"]

    def test_punctuation(self):
        assert values("(){}[];,") == ["(", ")", "{", "}", "[", "]", ";", ","]


class TestComments:
    def test_line_comment_skipped(self):
        assert values("a // comment here\nb") == ["a", "b"]

    def test_line_comment_at_eof(self):
        assert values("a // trailing") == ["a"]

    def test_block_comment_skipped(self):
        assert values("a /* hi */ b") == ["a", "b"]

    def test_block_comment_multiline(self):
        assert values("a /* line1\nline2\n*/ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexerError):
            tokenize("a /* never closed")


class TestPositions:
    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].line == 1 and tokens[0].column == 1
        assert tokens[1].line == 2 and tokens[1].column == 3

    def test_columns_after_operator(self):
        tokens = tokenize("x=1")
        assert [t.column for t in tokens[:3]] == [1, 2, 3]


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(LexerError) as excinfo:
            tokenize("a $ b")
        assert "$" in str(excinfo.value)

    def test_malformed_number_trailing_ident(self):
        with pytest.raises(LexerError):
            tokenize("12abc")

    def test_malformed_hex(self):
        with pytest.raises(LexerError):
            tokenize("0x")

    def test_error_carries_position(self):
        with pytest.raises(LexerError) as excinfo:
            tokenize("ab\n cd @")
        assert excinfo.value.line == 2


class TestHelpers:
    def test_literal_value_rejects_non_literal(self):
        with pytest.raises(ValueError):
            literal_value(Token(TokenType.IDENT, "x", 1, 1))

    def test_find_token(self):
        tokens = tokenize("a = b + c")
        index = find_token(tokens, "+")
        assert index is not None
        assert tokens[index].value == "+"

    def test_find_token_absent(self):
        assert find_token(tokenize("a b"), "zz") is None

    def test_find_token_with_start(self):
        tokens = tokenize("x x x")
        first = find_token(tokens, "x")
        second = find_token(tokens, "x", first + 1)
        assert second > first


class TestRealisticInput:
    def test_fig10_style_fragment(self):
        source = """
        for (i = 1; i <= n; i++) {
          if (i == NextStartByte) {
            Mark[i] = 1;
            NextStartByte += len[i];
          }
        }
        """
        vals = values(source)
        assert vals.count("NextStartByte") == 2
        assert "+=" in vals
        assert "==" in vals

    def test_token_stream_roundtrip_length(self):
        source = "x = (a + b) * LengthContribution_1(i);"
        assert len(tokenize(source)) == 14  # 13 tokens + EOF
