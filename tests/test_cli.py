"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


FIG4 = """
int t1; int t2; int t3; int f;
t1 = a + b;
if (cond) {
  t2 = t1;
  t3 = c + d;
} else {
  t2 = e;
  t3 = c - d;
}
f = t2 + t3;
"""

LOOPY = """
int acc[10];
int i; int total;
total = 0;
for (i = 0; i < 8; i++) {
  total = total + i;
  acc[i] = total;
}
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "design.c"
    path.write_text(FIG4)
    return str(path)


@pytest.fixture
def loop_file(tmp_path):
    path = tmp_path / "loop.c"
    path.write_text(LOOPY)
    return str(path)


class TestArgumentParsing:
    def test_defaults(self):
        args = build_parser().parse_args(["in.c"])
        assert args.preset == "none"
        assert args.emit == "vhdl"
        assert args.clock is None

    def test_repeatable_options(self):
        args = build_parser().parse_args(
            ["in.c", "--limit", "alu=2", "--limit", "cmp=1",
             "--unroll", "i=0", "--pure", "f"]
        )
        assert args.limit == ["alu=2", "cmp=1"]
        assert args.unroll == ["i=0"]
        assert args.pure == ["f"]


class TestExitStatus:
    def test_success(self, source_file, capsys):
        status = main([source_file, "--emit", "none", "--output", "f"])
        assert status == 0

    def test_missing_file(self, capsys):
        status = main(["/nonexistent/file.c"])
        assert status == 2
        assert "cannot read" in capsys.readouterr().err

    def test_bad_limit_spec(self, source_file, capsys):
        status = main([source_file, "--limit", "alu"])
        assert status == 2
        assert "resource limit" in capsys.readouterr().err

    def test_parse_error_in_source(self, tmp_path, capsys):
        bad = tmp_path / "bad.c"
        bad.write_text("int x; x = ;")
        status = main([str(bad)])
        assert status == 1
        assert "synthesis failed" in capsys.readouterr().err


class TestOutputs:
    def test_vhdl_emitted(self, source_file, capsys):
        main([source_file, "--output", "f", "--entity", "fig4"])
        out = capsys.readouterr().out
        assert "entity" in out
        assert "fig4" in out

    def test_verilog_emitted(self, source_file, capsys):
        main([source_file, "--output", "f", "--emit", "verilog"])
        assert "module" in capsys.readouterr().out

    def test_summary_printed(self, source_file, capsys):
        main([source_file, "--output", "f", "--emit", "none", "--summary"])
        out = capsys.readouterr().out
        assert "states: 1" in out
        assert "single-cycle: True" in out

    def test_transformed_code_printed(self, source_file, capsys):
        main([source_file, "--output", "f", "--emit", "none",
              "--print-code", "--no-speculation"])
        assert "if (" in capsys.readouterr().out

    def test_reports_printed(self, loop_file, capsys):
        main([loop_file, "--emit", "none", "--reports",
              "--unroll", "*=0"])
        assert "loop-unrolling" in capsys.readouterr().out


class TestDotOutput:
    def test_htg_dot(self, source_file, capsys):
        status = main([source_file, "--output", "f", "--no-speculation",
                       "--dot", "htg"])
        assert status == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert "If Node" in out

    def test_fsmd_dot(self, source_file, capsys):
        status = main([source_file, "--output", "f", "--dot", "fsmd"])
        assert status == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert "S0" in out

    def test_dot_suppresses_rtl(self, source_file, capsys):
        main([source_file, "--output", "f", "--dot", "htg"])
        assert "entity" not in capsys.readouterr().out


class TestPresets:
    def test_up_preset_single_cycle(self, loop_file, capsys):
        status = main([loop_file, "--preset", "up", "--emit", "none",
                       "--summary"])
        assert status == 0
        assert "single-cycle: True" in capsys.readouterr().out

    def test_asic_preset_multi_cycle(self, loop_file, capsys):
        status = main([loop_file, "--preset", "asic", "--emit", "none",
                       "--summary"])
        assert status == 0
        out = capsys.readouterr().out
        assert "single-cycle: False" in out

    def test_clock_override(self, source_file, capsys):
        status = main([source_file, "--output", "f", "--emit", "none",
                       "--summary", "--no-speculation", "--clock", "1.2"])
        assert status == 0
        assert "single-cycle: False" in capsys.readouterr().out
