"""Property-based tests (hypothesis): every transformation preserves the
observable behavior of randomly generated behavioral programs, constant
folding agrees with direct evaluation, and scheduled RTL always matches
the behavioral interpreter."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.interp import run_design
from repro.ir import expr_utils
from repro.ir.builder import design_from_source
from repro.scheduler.list_scheduler import ChainingScheduler
from repro.scheduler.resources import ResourceAllocation, ResourceLibrary
from repro.backend.rtl_sim import RTLSimulator
from repro.transforms.chaining import WireVariableInserter
from repro.transforms.cond_speculation import (
    ConditionalSpeculation,
    ReverseSpeculation,
)
from repro.transforms.const_prop import ConstantPropagation
from repro.transforms.copy_prop import CopyPropagation
from repro.transforms.cse import LocalCSE
from repro.transforms.dce import DeadCodeElimination
from repro.transforms.lower_tac import TACLowering
from repro.transforms.speculation import EarlyConditionExecution, Speculation
from repro.transforms.unroll import LoopUnroller

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

VARS = ["a", "b", "c", "d", "e"]
OUT_SIZE = 8

# -- random program generator ------------------------------------------------

operators = st.sampled_from(["+", "-", "*", "&", "|", "^", "<", "==", ">="])


@st.composite
def expressions(draw, depth=2):
    """A random side-effect-free expression over VARS and literals."""
    if depth == 0 or draw(st.booleans()):
        if draw(st.booleans()):
            return draw(st.sampled_from(VARS))
        return str(draw(st.integers(min_value=-8, max_value=8)))
    op = draw(operators)
    left = draw(expressions(depth=depth - 1))
    right = draw(expressions(depth=depth - 1))
    return f"({left} {op} {right})"


@st.composite
def statements(draw, depth=2, loop_ids=None):
    """One random statement (possibly compound)."""
    loop_ids = loop_ids if loop_ids is not None else [0]
    choice = draw(st.integers(min_value=0, max_value=5 if depth else 2))
    if choice <= 1:  # scalar assignment
        target = draw(st.sampled_from(VARS))
        return f"{target} = {draw(expressions())};"
    if choice == 2:  # array store (observable output)
        index = draw(st.integers(min_value=0, max_value=OUT_SIZE - 1))
        return f"out[{index}] = {draw(expressions())};"
    if choice == 3:  # conditional
        cond = draw(expressions(depth=1))
        then_body = draw(bodies(depth=depth - 1, loop_ids=loop_ids))
        if draw(st.booleans()):
            else_body = draw(bodies(depth=depth - 1, loop_ids=loop_ids))
            return f"if ({cond}) {{ {then_body} }} else {{ {else_body} }}"
        return f"if ({cond}) {{ {then_body} }}"
    # counted loop with a unique, body-immutable index
    loop_ids[0] += 1
    index = f"k{loop_ids[0]}"
    trip = draw(st.integers(min_value=0, max_value=4))
    body = draw(bodies(depth=depth - 1, loop_ids=loop_ids))
    return f"for ({index} = 0; {index} < {trip}; {index}++) {{ {body} }}"


@st.composite
def bodies(draw, depth=1, loop_ids=None):
    count = draw(st.integers(min_value=1, max_value=3))
    return " ".join(
        draw(statements(depth=depth, loop_ids=loop_ids)) for _ in range(count)
    )


@st.composite
def programs(draw):
    """A complete random program: declarations, initialization of every
    scalar (so no undefined reads), then random statements."""
    loop_ids = [0]
    decls = [f"int out[{OUT_SIZE}];"]
    inits = []
    for name in VARS:
        decls.append(f"int {name};")
        inits.append(
            f"{name} = {draw(st.integers(min_value=-4, max_value=4))};"
        )
    body = " ".join(
        draw(statements(depth=2, loop_ids=loop_ids)) for _ in range(4)
    )
    # Loop indexes used anywhere get declarations.
    for k in range(1, loop_ids[0] + 1):
        decls.append(f"int k{k};")
    return "\n".join(decls + inits) + "\n" + body


def check_transform_preserves(source, transform):
    design = design_from_source(source)
    before = run_design(design, max_steps=200_000)
    transform(design)
    after = run_design(design, max_steps=200_000)
    assert before.arrays == after.arrays, source


# -- transformation equivalence properties -------------------------------------


class TestTransformEquivalence:
    @SETTINGS
    @given(programs())
    def test_constant_propagation(self, source):
        check_transform_preserves(
            source, lambda d: ConstantPropagation().run_on_design(d)
        )

    @SETTINGS
    @given(programs())
    def test_copy_propagation(self, source):
        check_transform_preserves(
            source, lambda d: CopyPropagation().run_on_design(d)
        )

    @SETTINGS
    @given(programs())
    def test_dead_code_elimination(self, source):
        check_transform_preserves(
            source,
            lambda d: DeadCodeElimination(output_scalars=set()).run_on_design(d),
        )

    @SETTINGS
    @given(programs())
    def test_local_cse(self, source):
        check_transform_preserves(
            source, lambda d: LocalCSE().run_on_design(d)
        )

    @SETTINGS
    @given(programs())
    def test_tac_lowering(self, source):
        check_transform_preserves(
            source, lambda d: TACLowering().run_on_design(d)
        )

    @SETTINGS
    @given(programs())
    def test_full_unrolling(self, source):
        check_transform_preserves(
            source, lambda d: LoopUnroller({"*": 0}).run_on_design(d)
        )

    @SETTINGS
    @given(programs())
    def test_partial_unrolling(self, source):
        check_transform_preserves(
            source, lambda d: LoopUnroller({"*": 2}).run_on_design(d)
        )

    @SETTINGS
    @given(programs())
    def test_speculation_with_ece(self, source):
        def transform(design):
            EarlyConditionExecution().run_on_design(design)
            Speculation().run_on_design(design)

        check_transform_preserves(source, transform)

    @SETTINGS
    @given(programs())
    def test_reverse_speculation(self, source):
        check_transform_preserves(
            source, lambda d: ReverseSpeculation().run_on_design(d)
        )

    @SETTINGS
    @given(programs())
    def test_conditional_speculation(self, source):
        check_transform_preserves(
            source, lambda d: ConditionalSpeculation().run_on_design(d)
        )

    @SETTINGS
    @given(programs())
    def test_wire_insertion(self, source):
        check_transform_preserves(
            source, lambda d: WireVariableInserter().run_on_design(d)
        )

    @SETTINGS
    @given(programs())
    def test_whole_pipeline(self, source):
        """The paper's full coordinated sequence on random programs."""

        def transform(design):
            EarlyConditionExecution().run_on_design(design)
            Speculation().run_on_design(design)
            LoopUnroller({"*": 0}).run_on_design(design)
            ConstantPropagation().run_on_design(design)
            CopyPropagation().run_on_design(design)
            DeadCodeElimination(output_scalars=set()).run_on_design(design)
            WireVariableInserter().run_on_design(design)

        check_transform_preserves(source, transform)


# -- scheduler / RTL properties -------------------------------------------------


class TestScheduleEquivalence:
    @SETTINGS
    @given(programs())
    def test_rtl_matches_interpreter_unlimited(self, source):
        design = design_from_source(source)
        expected = run_design(design, max_steps=200_000).arrays
        sm = ChainingScheduler(clock_period=1_000.0).schedule(design.main)
        got = RTLSimulator(sm, max_cycles=200_000).run().arrays
        assert got == expected, source

    @SETTINGS
    @given(programs())
    def test_rtl_matches_interpreter_tight_clock(self, source):
        design = design_from_source(source)
        expected = run_design(design, max_steps=200_000).arrays
        sm = ChainingScheduler(clock_period=12.0).schedule(design.main)
        got = RTLSimulator(sm, max_cycles=200_000).run().arrays
        assert got == expected, source

    @SETTINGS
    @given(programs())
    def test_chained_paths_respect_clock(self, source):
        design = design_from_source(source)
        clock = 12.0
        sm = ChainingScheduler(clock_period=clock).schedule(design.main)
        assert sm.max_critical_path() <= clock + 1e-9, source

    @SETTINGS
    @given(programs())
    def test_resource_constrained_schedule_correct(self, source):
        design = design_from_source(source)
        TACLowering().run_on_design(design)
        expected = run_design(design, max_steps=200_000).arrays
        sm = ChainingScheduler(
            clock_period=8.0,
            allocation=ResourceAllocation(
                limits={"alu": 1, "mul": 1, "cmp": 1, "logic": 1}
            ),
        ).schedule(design.main)
        got = RTLSimulator(sm, max_cycles=400_000).run().arrays
        assert got == expected, source


# -- expression-level properties ---------------------------------------------


class TestExpressionProperties:
    @SETTINGS
    @given(expressions(depth=3), st.lists(
        st.integers(min_value=-10, max_value=10),
        min_size=len(VARS),
        max_size=len(VARS),
    ))
    def test_folding_agrees_with_evaluation(self, text, values):
        from repro.frontend.parser import parse_expression
        from repro.interp.evaluator import Interpreter, MachineState
        from repro.ir.htg import Design

        env = dict(zip(VARS, values))
        expr = parse_expression(text)
        folded = expr_utils.fold_constants(expr)
        interp = Interpreter(Design.__new__(Design))
        state = MachineState(scalars=dict(env))
        assert interp._eval(expr, state) == interp._eval(folded, state)

    @SETTINGS
    @given(expressions(depth=3))
    def test_clone_equal_and_independent(self, text):
        from repro.frontend.parser import parse_expression

        expr = parse_expression(text)
        copy = expr_utils.clone(expr)
        assert expr_utils.expr_equal(expr, copy)

    @SETTINGS
    @given(expressions(depth=3))
    def test_printed_expression_reparses(self, text):
        from repro.frontend.parser import parse_expression

        expr = parse_expression(text)
        reparsed = parse_expression(str(expr))
        assert expr_utils.expr_equal(expr, reparsed)
