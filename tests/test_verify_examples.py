"""``repro verify`` smoke over the example corpus.

Every standalone source in ``examples/sources/`` (the files CI's
shell-level smoke loop drives) and every registered co-simulation
design must synthesize clean with the verifier armed after every
transform pass and flow stage — the whole-corpus "no false positives"
guarantee the per-invariant corruption tests complement.
"""

from pathlib import Path

import pytest

from repro.cli import main
from repro.spark import SparkSession
from tests.helpers import example_designs
from tests.test_differential import SCRIPTS, _script_for

SOURCES_DIR = Path(__file__).resolve().parent.parent / "examples" / "sources"
SOURCE_FILES = sorted(SOURCES_DIR.glob("*.c"))


@pytest.mark.parametrize(
    "path", SOURCE_FILES, ids=[path.stem for path in SOURCE_FILES]
)
def test_example_source_verifies(path):
    assert SOURCE_FILES, "examples/sources must not be empty"
    assert main(["verify", str(path), "--quiet"]) == 0


@pytest.mark.parametrize("preset", ["up", "asic"])
def test_presets_verify_on_a_representative_source(preset):
    path = SOURCES_DIR / "priority_encoder.c"
    assert main(["verify", str(path), "--preset", preset, "--quiet"]) == 0


@pytest.mark.parametrize("preset", ["none", "up", "asic"])
@pytest.mark.parametrize(
    "path", SOURCE_FILES, ids=[path.stem for path in SOURCE_FILES]
)
def test_example_source_lints_rtl_under_every_preset(path, preset):
    # The full matrix with the emit-stage RTL linter armed: every
    # source under every preset must emit structurally sound Verilog
    # *and* VHDL (both backends are linted by --rtl).
    assert (
        main(
            [
                "verify",
                str(path),
                "--preset",
                preset,
                "--rtl",
                "--quiet",
            ]
        )
        == 0
    )


@pytest.mark.parametrize(
    "example", example_designs(), ids=lambda example: example.name
)
@pytest.mark.parametrize("script_name", sorted(SCRIPTS))
def test_registered_designs_verify_under_every_script(example, script_name):
    session = SparkSession(
        example.source,
        script=_script_for(example, script_name),
        externals=example.externals(),
    )
    session.run(bind=True, emit=False, verify=True)
