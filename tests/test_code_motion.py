"""Unit tests for speculation, early condition execution, reverse and
conditional speculation (paper Section 3 code motions)."""

import pytest

from repro.frontend.ast_nodes import Var
from repro.interp import run_design
from repro.ir.builder import design_from_source
from repro.ir.htg import BlockNode, IfNode
from repro.transforms.cond_speculation import (
    ConditionalSpeculation,
    ReverseSpeculation,
)
from repro.transforms.speculation import EarlyConditionExecution, Speculation

from tests.helpers import assert_equivalent, ops_text


def top_level_ops(func):
    """Operations in top-level blocks only (not inside branches)."""
    ops = []
    for node in func.body:
        if isinstance(node, BlockNode):
            ops.extend(node.ops)
    return ops


class TestEarlyConditionExecution:
    def test_condition_extracted_to_op(self):
        design = assert_equivalent(
            "int out[1]; int x; if (a > b) { x = 1; } else { x = 2; }"
            "out[0] = x;",
            lambda d: EarlyConditionExecution().run_on_design(d),
            inputs={"a": 3, "b": 1},
        )
        if_node = next(
            n for n in design.main.walk_nodes() if isinstance(n, IfNode)
        )
        assert isinstance(if_node.cond, Var)
        assert any("(a > b)" in t for t in ops_text(design.main))

    def test_simple_var_condition_untouched(self):
        design = design_from_source("int x; if (c) { x = 1; }")
        reports = EarlyConditionExecution().run_on_design(design)
        assert not any(r.changed for r in reports)

    def test_nested_conditions_all_extracted(self):
        design = design_from_source(
            "int x; if (a > 0) { if (b > 0) { x = 1; } }"
        )
        EarlyConditionExecution().run_on_design(design)
        for node in design.main.walk_nodes():
            if isinstance(node, IfNode):
                assert isinstance(node.cond, Var)

    def test_call_condition_extracted(self, mini_ild_design):
        EarlyConditionExecution().run_on_design(mini_ild_design)
        func = mini_ild_design.function("CalculateLength")
        if_node = next(n for n in func.walk_nodes() if isinstance(n, IfNode))
        assert isinstance(if_node.cond, Var)


class TestSpeculation:
    def test_clobber_hoist_unique_write(self):
        """A branch-local computation with a unique write moves out
        unchanged (the lc2 pattern of Fig 11)."""
        design = assert_equivalent(
            "int out[1]; int x; int t;"
            "if (c) { t = a + b; x = t; } else { x = 5; }"
            "out[0] = x;",
            lambda d: Speculation().run_on_design(d),
            inputs={"a": 2, "b": 3, "c": 1},
        )
        hoisted = top_level_ops(design.main)
        assert any("t = (a + b);" in str(op) for op in hoisted)
        spec_ops = [op for op in design.main.walk_operations() if op.is_speculated]
        assert spec_ops

    def test_renaming_hoist_multiple_writes(self):
        """Multiply-written targets speculate through fresh temporaries
        (the TempLength pattern of Fig 11)."""
        design = assert_equivalent(
            "int out[1]; int x;"
            "if (c) { x = a + b; } else { x = a - b; }"
            "out[0] = x;",
            lambda d: Speculation().run_on_design(d),
            inputs={"a": 9, "b": 4, "c": 0},
        )
        hoisted_texts = [str(op) for op in top_level_ops(design.main)]
        assert any("(a + b)" in t for t in hoisted_texts)
        assert any("(a - b)" in t for t in hoisted_texts)
        # Branches now hold only commit copies.
        if_node = next(
            n for n in design.main.walk_nodes() if isinstance(n, IfNode)
        )
        for branch in (if_node.then_branch, if_node.else_branch):
            for node in branch:
                if isinstance(node, BlockNode):
                    for op in node.ops:
                        assert op.is_copy()

    def test_impure_ops_not_hoisted(self):
        design = design_from_source(
            "int out[1]; int x;"
            "if (c) { x = sideeffect(1); } else { x = 0; }"
            "out[0] = x;"
        )
        Speculation().run_on_design(design)
        assert not any("sideeffect" in str(op) for op in top_level_ops(design.main))

    def test_pure_externals_hoisted(self):
        design = design_from_source(
            "int out[1]; int x;"
            "if (c) { x = f(1); } else { x = 0; }"
            "out[0] = x;"
        )
        Speculation(pure_functions={"f"}).run_on_design(design)
        texts = [str(op) for op in top_level_ops(design.main)]
        assert any("f(1)" in t for t in texts)

    def test_array_stores_never_hoisted(self):
        design = assert_equivalent(
            "int out[4]; if (c) { out[0] = 1; }",
            lambda d: Speculation().run_on_design(d),
            inputs={"c": 0},
        )
        assert not any(op.arrays_written() for op in top_level_ops(design.main))

    def test_dependency_on_unhoistable_blocks(self):
        """An op reading the result of an impure op cannot move."""
        design = design_from_source(
            "int out[1]; int x; int y;"
            "if (c) { x = sideeffect(1); y = x + 1; } else { y = 0; }"
            "out[0] = y;"
        )
        Speculation().run_on_design(design)
        assert not any("(x + 1)" in str(op) for op in top_level_ops(design.main))

    def test_war_with_condition_blocks_clobber(self):
        """If the condition reads the target, the hoist must rename."""
        design = assert_equivalent(
            "int out[1]; int x; x = 1;"
            "if (x > 0) { x = 50; }"
            "out[0] = x;",
            lambda d: Speculation().run_on_design(d),
        )
        state = run_design(design)
        assert state.arrays["out"] == [50]

    def test_nested_ifs_bubble_to_top(self):
        """Deeply nested pure ops hoist through every level — the full
        Fig 11 behavior."""
        design = assert_equivalent(
            "int out[1]; int r;"
            "if (c1) {"
            "  if (c2) { r = a * 2; } else { r = a * 3; }"
            "} else { r = a; }"
            "out[0] = r;",
            lambda d: Speculation().run_on_design(d),
            inputs={"a": 5, "c1": 1, "c2": 0},
        )
        texts = [str(op) for op in top_level_ops(design.main)]
        assert any("(a * 2)" in t for t in texts)
        assert any("(a * 3)" in t for t in texts)

    def test_fig11_shape_on_calculatelength(self, mini_ild_design, mini_ild_ext):
        pure = set(mini_ild_ext)
        EarlyConditionExecution().run_on_design(mini_ild_design)
        Speculation(pure_functions=pure).run_on_design(mini_ild_design)
        func = mini_ild_design.function("CalculateLength")
        hoisted = [str(op) for op in top_level_ops(func)]
        # Data calculation up-front: lc2's contribution hoisted.
        assert any("LengthContribution_2" in t for t in hoisted)
        # Condition computed as an explicit op.
        assert any("Need_2nd_Byte" in t for t in hoisted)
        # The if-tree survives (control commits stay conditional).
        assert any(isinstance(n, IfNode) for n in func.walk_nodes())

    def test_speculation_inside_loop_stays_in_loop(self):
        design = assert_equivalent(
            "int out[4]; int i; int t;"
            "for (i = 0; i < 4; i++) {"
            "  if (i % 2) { t = i * 10; out[i] = t; }"
            "}",
            lambda d: Speculation().run_on_design(d),
        )
        # The multiply may move before the if but must stay in the loop.
        from repro.ir.htg import LoopNode

        loop = next(
            n for n in design.main.walk_nodes() if isinstance(n, LoopNode)
        )
        loop_ops = []
        for node in loop.body:
            if isinstance(node, BlockNode):
                loop_ops.extend(str(op) for op in node.ops)
        assert any("(i * 10)" in t for t in loop_ops)

    def test_fixpoint_terminates_and_is_idempotent(self):
        design = design_from_source(
            "int out[1]; int x;"
            "if (c) { x = a + 1; } else { x = a + 2; }"
            "out[0] = x;"
        )
        Speculation().run_on_design(design)
        snapshot = ops_text(design.main)
        Speculation().run_on_design(design)
        assert ops_text(design.main) == snapshot


class TestReverseSpeculation:
    def test_moves_op_into_both_branches(self):
        design = assert_equivalent(
            "int out[1]; int t; int x;"
            "t = a * 2;"
            "if (c) { x = 1; } else { x = 2; }"
            "out[0] = x + t;",
            lambda d: ReverseSpeculation().run_on_design(d),
            inputs={"a": 4, "c": 1},
        )
        if_node = next(
            n for n in design.main.walk_nodes() if isinstance(n, IfNode)
        )
        then_texts = [
            str(op)
            for node in if_node.then_branch
            if isinstance(node, BlockNode)
            for op in node.ops
        ]
        else_texts = [
            str(op)
            for node in if_node.else_branch
            if isinstance(node, BlockNode)
            for op in node.ops
        ]
        assert any("(a * 2)" in t for t in then_texts)
        assert any("(a * 2)" in t for t in else_texts)

    def test_condition_dependency_blocks_move(self):
        design = assert_equivalent(
            "int out[1]; int c; int x;"
            "c = a > 0;"
            "if (c) { x = 1; } else { x = 2; }"
            "out[0] = x;",
            lambda d: ReverseSpeculation().run_on_design(d),
            inputs={"a": 5},
        )
        # `c = a > 0` feeds the condition: it must stay put.
        assert any("(a > 0)" in str(op) for op in top_level_ops(design.main))

    def test_impure_not_moved(self):
        design = design_from_source(
            "int out[1]; int t; int x;"
            "t = roll();"
            "if (c) { x = 1; } else { x = 2; }"
            "out[0] = x + t;"
        )
        ReverseSpeculation().run_on_design(design)
        assert any("roll()" in str(op) for op in top_level_ops(design.main))


class TestConditionalSpeculation:
    def test_duplicates_following_op_into_branches(self):
        design = assert_equivalent(
            "int out[1]; int x; int y;"
            "if (c) { x = 1; } else { x = 2; }"
            "y = x * 10;"
            "out[0] = y;",
            lambda d: ConditionalSpeculation().run_on_design(d),
            inputs={"c": 0},
        )
        if_node = next(
            n for n in design.main.walk_nodes() if isinstance(n, IfNode)
        )
        then_texts = [
            str(op)
            for node in if_node.then_branch
            if isinstance(node, BlockNode)
            for op in node.ops
        ]
        assert any("(x * 10)" in t for t in then_texts)
        # The original op after the join is gone.
        assert not any("(x * 10)" in str(op) for op in top_level_ops(design.main))

    def test_budget_limits_duplication(self):
        design = design_from_source(
            "int out[1]; int x; int a; int b; int c2; int d;"
            "if (c) { x = 1; } else { x = 2; }"
            "a = x + 1; b = x + 2; c2 = x + 3; d = x + 4;"
            "out[0] = a + b + c2 + d;"
        )
        ConditionalSpeculation(max_ops_per_if=2).run_on_design(design)
        if_node = next(
            n for n in design.main.walk_nodes() if isinstance(n, IfNode)
        )
        then_ops = [
            op
            for node in if_node.then_branch
            if isinstance(node, BlockNode)
            for op in node.ops
        ]
        assert len(then_ops) <= 3  # original + 2 duplicated

    def test_array_store_not_duplicated(self):
        design = design_from_source(
            "int out[2]; int x;"
            "if (c) { x = 1; } else { x = 2; }"
            "out[0] = x;"
        )
        ConditionalSpeculation().run_on_design(design)
        assert any(op.arrays_written() for op in top_level_ops(design.main))

    def test_branches_with_return_skipped(self):
        design = design_from_source(
            "int f(c) { int x; if (c) { return 1; } else { x = 0; } x = x + 1;"
            " return x; }"
            "int out[1]; out[0] = f(0);"
        )
        before = run_design(design).arrays["out"]
        ConditionalSpeculation().run_on_design(design)
        after = run_design(design).arrays["out"]
        assert before == after
