"""The static RTL linter (:mod:`repro.analysis.rtl`).

Mirrors ``test_verifier.py``'s evidence pattern: clean flows lint
silently over both emitted backends, and each check fires on a
*deliberately corrupted* artifact — a mutated schedule, a doctored
HDL text — attributing exactly its own check id.  The DSE half proves
emit-stage lint failures share the ``error_kind="verifier"`` contract.
"""

import re

import pytest

from repro.analysis.rtl import (
    CROSS_BINDING,
    CROSS_STATES,
    FSM_CASE,
    FSM_DANGLING,
    FSM_LIVELOCK,
    FSM_UNREACHABLE,
    RTL_CONFLICT,
    RTL_DEAD_REGISTER,
    RTL_DECL,
    RTL_LATCH,
    RTL_PARITY,
    RTL_UNDRIVEN,
    parse_verilog,
    parse_vhdl,
    verify_rtl,
)
from repro.analysis.verifier import VerifierError
from repro.backend.interface import DesignInterface
from repro.frontend.ast_nodes import Var
from repro.scheduler.schedule import IfItem, OpItem
from repro.spark import ERROR_KIND_VERIFIER, SparkSession, SynthesisJob
from repro.transforms.base import SynthesisScript
from tests.helpers import CONDITIONAL_SRC, SIMPLE_LOOP_SRC

# Chains a conditional write into a same-cycle read once the schedule
# is corrupted (the latch fixture), and keeps one straight-line state.
STRAIGHT_SRC = """
int x; int total;
x = a + 1;
total = x + 2;
"""


def synthesize(source, script=None, interface=None, **run_kwargs):
    session = SparkSession(
        source, script=script or SynthesisScript(), interface=interface
    )
    result = session.run(bind=True, emit=True, **run_kwargs)
    return session, result


def invariants_of(violations):
    return {violation.invariant for violation in violations}


# ---------------------------------------------------------------------------
# Clean flows lint silently
# ---------------------------------------------------------------------------


class TestCleanLint:
    @pytest.mark.parametrize(
        "source", [CONDITIONAL_SRC, SIMPLE_LOOP_SRC, STRAIGHT_SRC]
    )
    def test_clean_design_has_no_violations(self, source):
        _, result = synthesize(source)
        assert (
            verify_rtl(
                result.state_machine,
                verilog=result.verilog,
                vhdl=result.vhdl,
            )
            == []
        )

    def test_self_emitting_path_matches_supplied_texts(self):
        _, result = synthesize(SIMPLE_LOOP_SRC)
        assert verify_rtl(result.state_machine) == []

    def test_ported_interface_lints_clean(self):
        interface = DesignInterface(
            name="main",
            scalar_inputs=["seed"],
            scalar_outputs=["total"],
            input_arrays={"data": 8},
        )
        source = """
        int data[8];
        int i; int total; int seed;
        total = seed;
        for (i = 0; i < 6; i++) {
          total = total + data[i];
        }
        """
        _, result = synthesize(source, interface=interface)
        assert (
            verify_rtl(
                result.state_machine,
                interface=interface,
                verilog=result.verilog,
                vhdl=result.vhdl,
            )
            == []
        )

    def test_flow_lint_rtl_runs_clean(self):
        synthesize(SIMPLE_LOOP_SRC, lint_rtl=True)


# ---------------------------------------------------------------------------
# Netlist-model parsing
# ---------------------------------------------------------------------------


class TestNetlistParsing:
    def test_both_parsers_agree_on_a_clean_design(self):
        _, result = synthesize(SIMPLE_LOOP_SRC)
        v_model = parse_verilog(result.verilog)
        h_model = parse_vhdl(result.vhdl)
        assert v_model.ports == h_model.ports == {"clk", "rst", "done"}
        assert set(v_model.registers) == set(h_model.registers)
        assert set(v_model.state_constants) == set(h_model.state_constants)
        assert set(v_model.case_labels) == set(h_model.case_labels)
        assert v_model.has_default_arm and h_model.has_default_arm
        # Every register is committed exactly once in both backends.
        for model in (v_model, h_model):
            for name in model.registers:
                assert model.committed[f"r_{name}"] == 1


# ---------------------------------------------------------------------------
# Netlist-tier corruptions
# ---------------------------------------------------------------------------


class TestNetlistCorruptions:
    def test_undriven_read_fires(self):
        _, result = synthesize(SIMPLE_LOOP_SRC)
        text = result.verilog.replace(
            "v_total = r_total;", "v_total = r_total + v_ghost;", 1
        )
        violations = verify_rtl(
            result.state_machine, verilog=text, invariants=[RTL_UNDRIVEN]
        )
        assert invariants_of(violations) == {RTL_UNDRIVEN}
        assert len(violations) == 1
        assert "v_ghost" in violations[0].message

    def test_conflicting_commit_fires(self):
        _, result = synthesize(SIMPLE_LOOP_SRC)
        commit = re.search(r"^\s*r_total <= v_total;$", result.verilog, re.M)
        assert commit is not None
        text = result.verilog.replace(
            commit.group(0), commit.group(0) + "\n" + commit.group(0), 1
        )
        violations = verify_rtl(
            result.state_machine, verilog=text, invariants=[RTL_CONFLICT]
        )
        assert invariants_of(violations) == {RTL_CONFLICT}
        assert len(violations) == 1
        assert "r_total" in violations[0].message

    def test_dead_register_fires(self):
        _, result = synthesize(SIMPLE_LOOP_SRC)
        text = result.verilog.replace(
            "  reg signed [31:0] r_total;  // register",
            "  reg signed [31:0] r_total;  // register\n"
            "  reg signed [31:0] r_ghost;  // register",
            1,
        )
        violations = verify_rtl(
            result.state_machine,
            verilog=text,
            invariants=[RTL_DEAD_REGISTER],
        )
        assert invariants_of(violations) == {RTL_DEAD_REGISTER}
        assert len(violations) == 1
        assert "r_ghost" in violations[0].message

    def test_latch_hazard_fires(self):
        _, result = synthesize(STRAIGHT_SRC)
        sm = result.state_machine
        clean_verilog = result.verilog
        # Wrap the schedule's write of `x` in a conditional with no
        # else arm: the downstream read of `x` now sees a stale value
        # on the cond-false path, and no register backs it.
        for state in sm.reachable_states():
            for position, item in enumerate(state.items):
                if isinstance(item, OpItem) and item.op.writes() == {"x"}:
                    state.items[position] = IfItem(
                        cond=Var(name="a"),
                        cond_ready=0.0,
                        then_items=[item],
                    )
                    break
        violations = verify_rtl(
            sm, verilog=clean_verilog, invariants=[RTL_LATCH]
        )
        assert invariants_of(violations) == {RTL_LATCH}
        assert len(violations) == 1
        assert "`x`" in violations[0].message

    def test_missing_interface_port_fires(self):
        _, result = synthesize(SIMPLE_LOOP_SRC)
        ghost_interface = DesignInterface(
            name="main", scalar_inputs=["ghost"]
        )
        violations = verify_rtl(
            result.state_machine,
            interface=ghost_interface,
            verilog=result.verilog,
            invariants=[RTL_DECL],
        )
        assert invariants_of(violations) == {RTL_DECL}
        assert len(violations) == 1
        assert "ghost_in" in violations[0].message

    def test_missing_memory_declaration_fires(self):
        _, result = synthesize(SIMPLE_LOOP_SRC)
        text = re.sub(
            r"^\s*reg signed \[31:0\] m_acc \[[^\]]*\];\n",
            "",
            result.verilog,
            count=1,
            flags=re.M,
        )
        violations = verify_rtl(
            result.state_machine, verilog=text, invariants=[RTL_DECL]
        )
        assert invariants_of(violations) == {RTL_DECL}
        assert len(violations) == 1
        assert "m_acc" in violations[0].message


# ---------------------------------------------------------------------------
# FSM-tier corruptions
# ---------------------------------------------------------------------------


class TestFSMCorruptions:
    def test_unreachable_state_fires(self):
        _, result = synthesize(SIMPLE_LOOP_SRC)
        sm = result.state_machine
        sm.new_state(label="orphan")
        violations = verify_rtl(sm, invariants=[FSM_UNREACHABLE])
        assert invariants_of(violations) == {FSM_UNREACHABLE}
        assert len(violations) == 1

    def test_livelock_fires(self):
        _, result = synthesize(STRAIGHT_SRC)
        sm = result.state_machine
        halting = [
            state
            for state in sm.reachable_states()
            if state.branch is None and state.default_next is None
        ]
        assert halting, "fixture needs a halting state"
        for state in halting:
            state.default_next = sm.entry_state
        violations = verify_rtl(sm, invariants=[FSM_LIVELOCK])
        assert invariants_of(violations) == {FSM_LIVELOCK}
        # The straight-line fixture has exactly one state, now
        # self-looping.
        assert len(violations) == 1

    def test_missing_default_arm_fires(self):
        _, result = synthesize(SIMPLE_LOOP_SRC)
        text = result.verilog.replace("        default: ;\n", "", 1)
        violations = verify_rtl(
            result.state_machine, verilog=text, invariants=[FSM_CASE]
        )
        assert invariants_of(violations) == {FSM_CASE}
        assert len(violations) == 1
        assert "non-exhaustive" in violations[0].message

    def test_duplicate_case_arm_fires(self):
        _, result = synthesize(SIMPLE_LOOP_SRC)
        arm = re.search(r"^\s*(S\d+): begin$", result.verilog, re.M)
        assert arm is not None
        text = result.verilog.replace(
            "        default: ;",
            f"        {arm.group(1)}: begin\n        end\n"
            "        default: ;",
            1,
        )
        violations = verify_rtl(
            result.state_machine, verilog=text, invariants=[FSM_CASE]
        )
        assert invariants_of(violations) == {FSM_CASE}
        assert len(violations) == 1
        assert "non-exclusive" in violations[0].message

    def test_dangling_state_reference_fires(self):
        _, result = synthesize(SIMPLE_LOOP_SRC)
        text = re.sub(
            r"state <= S\d+;", "state <= S99;", result.verilog, count=1
        )
        violations = verify_rtl(
            result.state_machine, verilog=text, invariants=[FSM_DANGLING]
        )
        assert invariants_of(violations) == {FSM_DANGLING}
        assert len(violations) == 1
        assert "S99" in violations[0].message


# ---------------------------------------------------------------------------
# Cross-layer corruptions
# ---------------------------------------------------------------------------


class TestCrossLayerCorruptions:
    def test_extra_case_arm_breaks_state_bijection(self):
        _, result = synthesize(SIMPLE_LOOP_SRC)
        text = result.verilog.replace(
            "        default: ;",
            "        S99: begin\n        end\n        default: ;",
            1,
        )
        violations = verify_rtl(
            result.state_machine, verilog=text, invariants=[CROSS_STATES]
        )
        assert invariants_of(violations) == {CROSS_STATES}
        assert len(violations) == 1
        assert "S99" in violations[0].message

    def test_missing_case_arm_breaks_state_bijection(self):
        _, result = synthesize(SIMPLE_LOOP_SRC)
        arm = re.search(r"^\s*(S\d+): begin$", result.verilog, re.M)
        assert arm is not None
        text = result.verilog.replace(
            f"        {arm.group(1)}: begin", "        SGHOST: begin", 1
        )
        violations = verify_rtl(
            result.state_machine, verilog=text, invariants=[CROSS_STATES]
        )
        assert invariants_of(violations) == {CROSS_STATES}
        # Renaming one arm both orphans the schedule state and
        # introduces an arm no state owns.
        assert len(violations) == 2

    def test_dropped_register_declaration_fires(self):
        _, result = synthesize(SIMPLE_LOOP_SRC)
        text = result.verilog.replace(
            "  reg signed [31:0] r_total;  // register\n", "", 1
        )
        violations = verify_rtl(
            result.state_machine, verilog=text, invariants=[CROSS_BINDING]
        )
        assert invariants_of(violations) == {CROSS_BINDING}
        assert len(violations) == 1
        assert "total" in violations[0].message

    def test_backend_drift_breaks_parity(self):
        _, result = synthesize(SIMPLE_LOOP_SRC)
        drifted = result.vhdl.replace(
            "  begin",
            "    variable v_ghost : integer := 0;  -- cycle-local\n"
            "  begin",
            1,
        )
        violations = verify_rtl(
            result.state_machine,
            verilog=result.verilog,
            vhdl=drifted,
            invariants=[RTL_PARITY],
        )
        assert invariants_of(violations) == {RTL_PARITY}
        assert len(violations) == 1
        assert "ghost" in violations[0].message

    def test_parity_needs_both_backends(self):
        _, result = synthesize(SIMPLE_LOOP_SRC)
        assert (
            verify_rtl(
                result.state_machine,
                verilog=result.verilog,
                invariants=[RTL_PARITY],
            )
            == []
        )


# ---------------------------------------------------------------------------
# Flow + DSE wiring
# ---------------------------------------------------------------------------


class TestFlowWiring:
    def test_lint_failure_raises_at_emit_boundary(self, monkeypatch):
        import repro.flow.pipeline as pipeline

        monkeypatch.setattr(
            pipeline, "emit_verilog", lambda sm, interface: "module bad ();"
        )
        with pytest.raises(VerifierError) as excinfo:
            synthesize(SIMPLE_LOOP_SRC, lint_rtl=True)
        assert "at the emit stage boundary" in str(excinfo.value)

    def test_dse_classifies_lint_failure_as_verifier(self, monkeypatch):
        import repro.flow.pipeline as pipeline

        from repro.dse.runner import ExplorationEngine

        monkeypatch.setattr(
            pipeline, "emit_verilog", lambda sm, interface: "module bad ();"
        )
        engine = ExplorationEngine(
            use_cache=False, workers=1, executor="serial", lint_rtl=True
        )
        result = engine.explore(
            [SynthesisJob(source=SIMPLE_LOOP_SRC, label="corner")]
        )
        outcome = result.outcomes[0]
        assert not outcome.ok
        assert outcome.error_kind == ERROR_KIND_VERIFIER
        assert result.verifier_failures == [outcome]

    def test_dse_lint_mode_passes_clean_designs(self):
        from repro.dse.runner import explore

        result = explore(
            [SynthesisJob(source=SIMPLE_LOOP_SRC, label="corner")],
            use_cache=False,
            workers=1,
            executor="serial",
            lint_rtl=True,
        )
        assert result.outcomes[0].ok
