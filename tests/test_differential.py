"""Differential co-simulation: interpreter vs RTL simulator.

The behavioral interpreter executes the *untransformed* design — it is
the semantics oracle.  The RTL simulator executes the *scheduled* FSMD
after the full scripted pipeline (speculation, code motions, unrolling,
chaining, wire insertion...).  For every example design under every
builtin transformation script the two must agree on all arrays and on
the declared output scalars; any divergence is a miscompile in some
transformation or in the scheduler.

This is the safety net under the design-space exploration engine: a
sweep is only worth ranking if every point it visits computes the
right answer.
"""

from __future__ import annotations

import copy

import pytest

from repro.interp.evaluator import run_design
from repro.ir.builder import design_from_source
from repro.spark import SparkSession
from repro.transforms.base import SynthesisScript
from tests.helpers import ExampleDesign, example_designs


def builtin_scripts() -> dict:
    """Every builtin script shape a sweep can visit.

    All inline ``*``: the RTL simulator models non-inlined defined
    functions as external library blocks, so the hardware flow (like
    the paper's) always inlines.
    """
    default = SynthesisScript(inline_functions=["*"])
    critical = SynthesisScript(inline_functions=["*"])
    critical.scheduler_priority = "critical"
    critical.clock_period = 4.0
    return {
        "default": default,
        "up": SynthesisScript.microprocessor_block(),
        "asic": SynthesisScript.asic(),
        "critical-priority": critical,
    }


DESIGNS = {design.name: design for design in example_designs()}
SCRIPTS = builtin_scripts()


def _script_for(design: ExampleDesign, script_name: str) -> SynthesisScript:
    script = copy.deepcopy(SCRIPTS[script_name])
    script.pure_functions = design.pure_functions()
    script.output_scalars = set(design.outputs)
    return script


@pytest.mark.parametrize("script_name", sorted(SCRIPTS))
@pytest.mark.parametrize("design_name", sorted(DESIGNS))
def test_interpreter_and_rtl_agree(design_name: str, script_name: str):
    design = DESIGNS[design_name]
    script = _script_for(design, script_name)

    # Oracle: the untransformed behavior, directly interpreted.
    oracle = run_design(
        design_from_source(design.source),
        externals=design.externals(),
        inputs=dict(design.inputs) or None,
        array_inputs={k: list(v) for k, v in design.array_inputs.items()}
        or None,
    )

    # Hardware: the fully transformed + scheduled design, simulated
    # cycle by cycle.
    session = SparkSession(
        design.source, script=script, externals=design.externals()
    )
    result = session.run(bind=False, emit=False)
    rtl = session.simulate_rtl(
        result.state_machine,
        inputs=dict(design.inputs) or None,
        array_inputs={k: list(v) for k, v in design.array_inputs.items()}
        or None,
    )

    for array in sorted(oracle.arrays):
        assert rtl.arrays.get(array) == oracle.arrays[array], (
            f"{design_name} under {script_name}: array {array!r} "
            f"diverged\n interp: {oracle.arrays[array]}\n "
            f"rtl:    {rtl.arrays.get(array)}"
        )
    for scalar in design.outputs:
        assert rtl.scalars.get(scalar) == oracle.scalars.get(scalar), (
            f"{design_name} under {script_name}: output {scalar!r} "
            f"diverged: interp={oracle.scalars.get(scalar)} "
            f"rtl={rtl.scalars.get(scalar)}"
        )


@pytest.mark.parametrize("design_name", sorted(DESIGNS))
def test_rtl_deterministic_across_runs(design_name: str):
    """Two independent synthesis runs of the same job produce the same
    schedule shape and the same simulated state — the property the
    on-disk outcome cache relies on."""
    design = DESIGNS[design_name]
    script = _script_for(design, "up")

    snapshots = []
    for _ in range(2):
        session = SparkSession(
            design.source,
            script=copy.deepcopy(script),
            externals=design.externals(),
        )
        result = session.run(bind=False, emit=False)
        rtl = session.simulate_rtl(
            result.state_machine,
            inputs=dict(design.inputs) or None,
            array_inputs={k: list(v) for k, v in design.array_inputs.items()}
            or None,
        )
        snapshots.append(
            (result.state_machine.num_states, rtl.cycles, rtl.snapshot())
        )
    assert snapshots[0] == snapshots[1]
