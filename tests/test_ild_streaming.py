"""Tests for the streaming (multi-chunk) ILD — the paper's
un-simplified Section 5 model: an infinite stream decoded in n-byte
chunks with intermediate length-calculation state carried across
buffer decodes."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ild import (
    CarryState,
    GoldenILD,
    STREAMING_ISA,
    StreamingILD,
    StreamingSafeISA,
    SyntheticISA,
    flat_reference_marks,
)
from repro.ild.isa import DEFAULT_ISA

STREAM_SETTINGS = settings(
    max_examples=120,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestCarryState:
    def test_initial_state_is_idle(self):
        assert CarryState().is_idle()

    def test_skip_is_not_idle(self):
        assert not CarryState(skip=2).is_idle()

    def test_pending_walk_is_not_idle(self):
        carry = CarryState(walk_contributions=(2,), walk_next_k=2)
        assert carry.walk_pending
        assert not carry.is_idle()

    def test_frozen(self):
        with pytest.raises(AttributeError):
            CarryState().skip = 3


class TestConstruction:
    def test_chunk_size_must_be_positive(self):
        with pytest.raises(ValueError):
            StreamingILD(n=0)

    def test_wrong_chunk_length_rejected(self):
        with pytest.raises(ValueError):
            StreamingILD(n=4).decode_chunk([1, 2, 3])

    def test_strict_rejects_unsafe_isa(self):
        with pytest.raises(ValueError):
            StreamingILD(n=4, isa=DEFAULT_ISA)

    def test_strict_false_allows_unsafe_isa(self):
        decoder = StreamingILD(n=4, isa=DEFAULT_ISA, strict=False)
        assert decoder.isa is DEFAULT_ISA

    def test_default_isa_is_streaming_safe_variant(self):
        assert StreamingILD(n=4).isa.is_streaming_safe()


class TestProgressProperty:
    def test_default_isa_violates(self):
        assert not DEFAULT_ISA.is_streaming_safe()
        assert DEFAULT_ISA.streaming_progress_deficit() == 3

    def test_streaming_isa_satisfies(self):
        assert STREAMING_ISA.is_streaming_safe()
        assert STREAMING_ISA.streaming_progress_deficit() <= 0

    def test_streaming_isa_keeps_paper_envelope(self):
        """Lengths still span 1..11 with up to 4 bytes examined."""
        lengths = set()
        rng = random.Random(11)
        for _ in range(4000):
            window = [rng.randrange(256) for _ in range(4)]
            lengths.add(STREAMING_ISA.instruction_length(window))
        assert min(lengths) == 1
        assert max(lengths) == 11

    def test_violation_breaks_chunked_decode(self):
        """The documented pathology: with the unsafe ISA an
        instruction's length bytes can extend past the instruction
        itself, so the next start hides inside the pending walk and the
        chunked decoder misses it."""
        stream = [136, 67]  # lc1=1 need2, lc2=0 need3 -> length 1
        flat = flat_reference_marks(stream, isa=DEFAULT_ISA)
        chunked, _, _ = StreamingILD(
            n=1, isa=DEFAULT_ISA, strict=False
        ).decode_stream(stream)
        assert flat == [0, 1, 1]
        assert chunked != flat


class TestDirectedChunking:
    def test_instruction_spanning_chunks_skips(self):
        """A 4-byte instruction decoded in chunk 1 consumes the head of
        chunk 2 (skip carry)."""
        # byte 3 -> lc1 = 4, need2 clear: a 4-byte instruction.
        decoder = StreamingILD(n=2)
        first = decoder.decode_chunk([3, 0])
        assert first.mark == [0, 1, 0]
        assert first.carry_out.skip == 2
        second = decoder.decode_chunk([0, 0], first.carry_out)
        assert second.mark == [0, 0, 0]
        assert second.carry_out.is_idle()

    def test_walk_spanning_chunks_carries_contributions(self):
        """An instruction starting at the chunk's last byte with
        Need_2nd set leaves a pending walk (the Section 5 scenario)."""
        decoder = StreamingILD(n=2)
        byte = 0x80  # lc1 = 1, need2 set
        first = decoder.decode_chunk([0, byte])
        # byte 0 -> 1-byte instruction at position 1; walk pending at 2.
        assert first.mark == [0, 1, 1]
        carry = first.carry_out
        assert carry.walk_pending
        assert carry.walk_contributions == (1,)
        assert carry.walk_next_k == 2
        assert carry.walk_start_global == 2

    def test_pending_walk_resolves_in_next_chunk(self):
        decoder = StreamingILD(n=2)
        first = decoder.decode_chunk([0, 0x80])
        # next byte: lc2 = 1 (safe ISA, bits 2/4 clear), need3 clear ->
        # pending instruction has length 1 + 1 = 2, consuming exactly
        # the first byte of chunk 2.
        second = decoder.decode_chunk([0, 0], first.carry_out)
        assert second.carry_out.is_idle()
        # Byte 2 of chunk 2 (global 4) starts a fresh instruction.
        assert second.mark == [0, 0, 1]

    def test_walk_can_span_several_tiny_chunks(self):
        """n=1: every multi-byte walk crosses several boundaries."""
        decoder = StreamingILD(n=1)
        stream = [0x80, 0xC4, 0xA8, 0xC0, 0, 0, 0, 0, 0, 0, 0, 0]
        marks, carry, chunks = decoder.decode_stream(stream)
        flat = flat_reference_marks(stream, isa=STREAMING_ISA)
        assert marks == flat
        assert len(chunks) == len(stream)

    def test_positions_tracked_globally(self):
        decoder = StreamingILD(n=4)
        stream = [0, 0, 0, 0, 0, 0, 0, 0]
        _, carry, chunks = decoder.decode_stream(stream)
        assert chunks[0].starts_global == [1, 2, 3, 4]
        assert chunks[1].starts_global == [5, 6, 7, 8]
        assert carry.position == 9


class TestStreamEdgeCases:
    def test_stream_shorter_than_chunk_is_padded(self):
        decoder = StreamingILD(n=8)
        marks, carry, chunks = decoder.decode_stream([0, 0, 0])
        assert marks == [0, 1, 1, 1]
        assert len(chunks) == 1

    def test_single_byte_stream(self):
        decoder = StreamingILD(n=4)
        marks, _, _ = decoder.decode_stream([0])
        assert marks == [0, 1]

    def test_all_max_length_instructions(self):
        """Bytes crafted for maximal walks: every instruction examines
        4 bytes; the walk straddles nearly every boundary at n=2."""
        first = 0x83   # lc1=4, need2
        second = 0x54  # lc2=1+1+1=3, need3 (bit6)
        third = 0x68   # lc3=1+1+1=3, need4 (bit5)
        fourth = 0xC0  # lc4=1
        # 11-byte instructions: 4 length-determining bytes + 7 payload.
        pattern = [first, second, third, fourth] + [0] * 7
        stream = pattern * 4
        marks, _, _ = StreamingILD(n=2).decode_stream(stream)
        assert marks == flat_reference_marks(stream, isa=STREAMING_ISA)
        starts = [i for i, m in enumerate(marks) if m]
        # Each instruction is 4+3+3+1 = 11 bytes long.
        assert starts[0] == 1
        for a, b in zip(starts, starts[1:]):
            assert b - a == 11

    def test_carry_position_advances_by_chunk(self):
        decoder = StreamingILD(n=4)
        result = decoder.decode_chunk([0, 0, 0, 0])
        assert result.carry_out.position == 5
        result = decoder.decode_chunk([0, 0, 0, 0], result.carry_out)
        assert result.carry_out.position == 9


class TestStreamEquivalence:
    @STREAM_SETTINGS
    @given(
        st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=96),
        st.integers(min_value=1, max_value=24),
    )
    def test_chunked_equals_flat(self, stream, n):
        marks, _, _ = StreamingILD(n=n).decode_stream(stream)
        assert marks == flat_reference_marks(stream, isa=STREAMING_ISA)

    @STREAM_SETTINGS
    @given(
        st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=64),
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=1, max_value=12),
    )
    def test_chunk_size_invariance(self, stream, n1, n2):
        """The mark vector is a property of the stream, not the
        chunking."""
        marks1, _, _ = StreamingILD(n=n1).decode_stream(stream)
        marks2, _, _ = StreamingILD(n=n2).decode_stream(stream)
        assert marks1 == marks2

    def test_agrees_with_golden_single_buffer(self):
        """When one chunk covers the whole buffer, streaming decode is
        the golden fixed-buffer decode (same ISA)."""
        n = 16
        rng = random.Random(3)
        golden = GoldenILD(n=n, isa=STREAMING_ISA)
        decoder = StreamingILD(n=n)
        for _ in range(25):
            stream = [rng.randrange(256) for _ in range(n)]
            result = decoder.decode_chunk(stream)
            mark, _, _ = golden.decode([0] + stream)
            assert result.mark == mark

    @STREAM_SETTINGS
    @given(st.lists(st.integers(min_value=0, max_value=255), min_size=4, max_size=64))
    def test_marks_partition_the_stream(self, stream):
        """Consecutive marked starts are separated by exactly the
        decoded instruction lengths; the first byte is always a start
        unless consumed by nothing (it always is a start)."""
        n = 8
        marks, _, chunks = StreamingILD(n=n).decode_stream(stream)
        starts = [i for i in range(1, len(stream) + 1) if marks[i]]
        assert starts and starts[0] == 1
        flat = flat_reference_marks(stream, isa=STREAMING_ISA)
        assert marks == flat
