"""Unit + property tests for the parallelizing code motions
(transforms/code_motion.py): the dependence oracle, the intra-block
dataflow-level reorder (Fig 3b) and the Trailblazing hierarchical
hoist."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.frontend.ast_nodes import ArrayRef, IntLit, Var
from repro.interp import run_design
from repro.ir.builder import design_from_source
from repro.ir.htg import BlockNode, IfNode, LoopNode
from repro.transforms.code_motion import (
    DataflowLevelReorder,
    DependenceTest,
    TrailblazingHoist,
    refs_may_alias,
)

from tests.test_properties import programs
from tests.helpers import assert_equivalent

PROPERTY_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def ops_of_main(design):
    return list(design.main.walk_operations())


def first_block(design):
    return next(
        node for node in design.main.walk_nodes() if isinstance(node, BlockNode)
    )


class TestRefAliasing:
    def test_different_arrays_never_alias(self):
        a = ArrayRef(name="x", index=IntLit(value=0))
        b = ArrayRef(name="y", index=IntLit(value=0))
        assert not refs_may_alias(a, b)

    def test_equal_constant_indices_alias(self):
        a = ArrayRef(name="x", index=IntLit(value=3))
        b = ArrayRef(name="x", index=IntLit(value=3))
        assert refs_may_alias(a, b)

    def test_distinct_constant_indices_disambiguate(self):
        a = ArrayRef(name="x", index=IntLit(value=3))
        b = ArrayRef(name="x", index=IntLit(value=4))
        assert not refs_may_alias(a, b)

    def test_symbolic_index_conservative(self):
        a = ArrayRef(name="x", index=Var(name="i"))
        b = ArrayRef(name="x", index=IntLit(value=4))
        assert refs_may_alias(a, b)
        assert refs_may_alias(b, a)


class TestDependenceTest:
    def _ops(self, source):
        return ops_of_main(design_from_source(source))

    def test_raw_scalar(self):
        ops = self._ops("int x; int y; x = 1; y = x + 2;")
        assert DependenceTest().depends(ops[0], ops[1])

    def test_war_scalar(self):
        ops = self._ops("int x; int y; y = x + 2; x = 1;")
        assert DependenceTest().depends(ops[0], ops[1])

    def test_waw_scalar(self):
        ops = self._ops("int x; x = 1; x = 2;")
        assert DependenceTest().depends(ops[0], ops[1])

    def test_independent_scalars(self):
        ops = self._ops("int x; int y; x = 1; y = 2;")
        assert not DependenceTest().depends(ops[0], ops[1])

    def test_array_raw_same_constant_index(self):
        ops = self._ops("int a[4]; int y; a[1] = 5; y = a[1];")
        assert DependenceTest().depends(ops[0], ops[1])

    def test_array_raw_distinct_constant_indices_independent(self):
        ops = self._ops("int a[4]; int y; a[1] = 5; y = a[2];")
        assert not DependenceTest().depends(ops[0], ops[1])

    def test_array_waw_distinct_indices_independent(self):
        ops = self._ops("int a[4]; a[1] = 5; a[2] = 6;")
        assert not DependenceTest().depends(ops[0], ops[1])

    def test_array_symbolic_index_serializes(self):
        ops = self._ops("int a[4]; int i; int y; a[i] = 5; y = a[2];")
        assert DependenceTest().depends(ops[0], ops[1])

    def test_index_read_is_a_scalar_read(self):
        """The LHS array index counts as a read (WAR with its writer)."""
        ops = self._ops("int a[4]; int i; a[i] = 5; i = 2;")
        assert DependenceTest().depends(ops[0], ops[1])

    def test_impure_calls_serialize(self):
        ops = self._ops("int x; int y; x = f(1); y = g(2);")
        assert DependenceTest().depends(ops[0], ops[1])

    def test_pure_calls_do_not_serialize(self):
        ops = self._ops("int x; int y; x = f(1); y = g(2);")
        test = DependenceTest(pure_functions={"f", "g"})
        assert not test.depends(ops[0], ops[1])

    def test_return_is_barrier(self):
        design = design_from_source(
            "int helper(p) { int q; q = p; return q; } int z; z = helper(3);"
        )
        helper_ops = list(design.functions["helper"].walk_operations())
        test = DependenceTest()
        assert test.depends(helper_ops[0], helper_ops[1])

    def test_independent_of_all(self):
        ops = self._ops("int x; int y; int z; x = 1; y = 2; z = x + y;")
        test = DependenceTest()
        assert test.independent_of_all(ops[1], [ops[0]])
        assert not test.independent_of_all(ops[2], ops[:2])


class TestDataflowLevelReorder:
    INTERLEAVED = """
    int r1[4]; int r2[4];
    r1[0] = Op1(0);
    r2[0] = Op2(0, r1[0]);
    r1[1] = Op1(1);
    r2[1] = Op2(1, r1[1]);
    """
    PURE = {"Op1", "Op2"}
    EXTERNALS = {
        "Op1": lambda i: 10 + i,
        "Op2": lambda i, r: r * 2 + i,
    }

    def test_fig3b_interleaving(self):
        """All Op1 float to level 1, all Op2 to level 2."""
        design = design_from_source(self.INTERLEAVED)
        DataflowLevelReorder(pure_functions=self.PURE).run_on_design(design)
        ops = ops_of_main(design)
        kinds = ["Op1" if "Op1" in str(op) else "Op2" for op in ops]
        assert kinds == ["Op1", "Op1", "Op2", "Op2"]

    def test_preserves_behavior(self):
        design = design_from_source(self.INTERLEAVED)
        reference = design_from_source(self.INTERLEAVED)
        DataflowLevelReorder(pure_functions=self.PURE).run_on_design(design)
        got = run_design(design, externals=self.EXTERNALS).arrays
        want = run_design(reference, externals=self.EXTERNALS).arrays
        assert got == want

    def test_idempotent(self):
        design = design_from_source(self.INTERLEAVED)
        reorder = DataflowLevelReorder(pure_functions=self.PURE)
        first = reorder.run_on_design(design)
        second = reorder.run_on_design(design)
        assert any(r.changed for r in first)
        assert not any(r.changed for r in second)

    def test_stable_within_level(self):
        """Independent ops keep their source order."""
        design = design_from_source("int a; int b; int c; a=1; b=2; c=3;")
        DataflowLevelReorder().run_on_design(design)
        targets = [next(iter(op.writes())) for op in ops_of_main(design)]
        assert targets == ["a", "b", "c"]

    def test_levels_exposed(self):
        design = design_from_source(self.INTERLEAVED)
        block = first_block(design)
        reorder = DataflowLevelReorder(pure_functions=self.PURE)
        levels = reorder.block_levels(block.ops)
        assert sorted(levels.values()) == [1, 1, 2, 2]

    def test_no_motion_in_dependent_chain(self):
        design = design_from_source("int a; a = 1; a = a + 1; a = a + 2;")
        reports = DataflowLevelReorder().run_on_design(design)
        assert not any(r.changed for r in reports)

    def test_report_counts_moves(self):
        design = design_from_source(self.INTERLEAVED)
        reports = DataflowLevelReorder(pure_functions=self.PURE).run_on_design(
            design
        )
        main_report = next(r for r in reports if r.function == "main")
        assert main_report.details["ops_moved"] > 0

    @PROPERTY_SETTINGS
    @given(programs())
    def test_property_equivalence(self, source):
        assert_equivalent(
            source, lambda d: DataflowLevelReorder().run_on_design(d)
        )


class TestTrailblazingHoist:
    ACROSS_IF = """
    int x; int y; int z;
    x = 1;
    if (c) { y = 10; } else { y = 20; }
    z = x + 5;
    """

    def _ops_before_first_if(self, design):
        body = design.main.body
        if_index = next(
            i for i, node in enumerate(body) if isinstance(node, IfNode)
        )
        return [
            op
            for node in body[:if_index]
            if isinstance(node, BlockNode)
            for op in node.ops
        ]

    def test_independent_op_hops_over_if(self):
        design = design_from_source(self.ACROSS_IF)
        reports = TrailblazingHoist().run_on_design(design)
        assert any(r.changed for r in reports)
        before = self._ops_before_first_if(design)
        assert any("z" in op.writes() for op in before)

    def test_dependent_op_stays(self):
        source = """
        int x; int y; int z;
        x = 1;
        if (c) { y = 10; } else { y = 20; }
        z = y + 5;
        """
        design = design_from_source(source)
        TrailblazingHoist().run_on_design(design)
        before = self._ops_before_first_if(design)
        assert not any("z" in op.writes() for op in before)

    def test_write_to_condition_variable_stays_below(self):
        source = """
        int x; int c2; int w;
        c2 = 1;
        if (c2) { x = 1; } else { x = 2; }
        c2 = 0;
        w = x;
        """
        assert_equivalent(
            source,
            lambda d: TrailblazingHoist().run_on_design(d),
            inputs={"c": 1},
            check_scalars=["x", "w"],
        )

    def test_hops_over_loop(self):
        source = """
        int acc[4]; int k; int z;
        for (k = 0; k < 3; k++) { acc[k] = k; }
        z = 7;
        """
        design = design_from_source(source)
        reports = TrailblazingHoist().run_on_design(design)
        assert any(r.changed for r in reports)
        first = design.main.body[0]
        assert isinstance(first, BlockNode)
        assert any("z" in op.writes() for op in first.ops)

    def test_op_dependent_on_loop_result_stays(self):
        source = """
        int acc[4]; int k; int z;
        acc[0] = 0;
        for (k = 0; k < 3; k++) { acc[1] = k; }
        z = acc[1];
        """
        design = design_from_source(source)
        TrailblazingHoist().run_on_design(design)
        last = design.main.body[-1]
        assert isinstance(last, BlockNode)
        assert any("z" in op.writes() for op in last.ops)

    def test_relative_order_of_hopped_ops_kept(self):
        source = """
        int x; int y; int z;
        if (c) { x = 1; }
        y = 10;
        z = y + 1;
        """
        design = design_from_source(source)
        TrailblazingHoist().run_on_design(design)
        ops = ops_of_main(design)
        y_pos = next(i for i, op in enumerate(ops) if "y" in op.writes())
        z_pos = next(i for i, op in enumerate(ops) if "z" in op.writes())
        assert y_pos < z_pos

    def test_multi_hop_to_fixpoint(self):
        """An op can climb over several compound nodes in one run."""
        source = """
        int x; int y; int z;
        if (c) { x = 1; } else { x = 2; }
        if (c) { y = 3; } else { y = 4; }
        z = 9;
        """
        design = design_from_source(source)
        TrailblazingHoist().run_on_design(design)
        first = design.main.body[0]
        assert isinstance(first, BlockNode)
        assert any("z" in op.writes() for op in first.ops)

    @PROPERTY_SETTINGS
    @given(programs())
    def test_property_equivalence(self, source):
        assert_equivalent(
            source, lambda d: TrailblazingHoist().run_on_design(d)
        )

    @PROPERTY_SETTINGS
    @given(programs())
    def test_property_combined_motions(self, source):
        def transform(design):
            TrailblazingHoist().run_on_design(design)
            DataflowLevelReorder().run_on_design(design)

        assert_equivalent(source, transform)


# -- random programs with pure external calls --------------------------------

PURE_EXTERNALS = {
    "F1": lambda x: (x * 3 + 1) & 0xFF,
    "F2": lambda x, y: (x ^ y) & 0xFF,
}


@st.composite
def call_programs(draw):
    """Random straight-line-plus-conditionals programs whose RHSs mix
    arithmetic with pure external calls — the shapes the motions see
    after the ILD's speculation stage."""
    names = ["a", "b", "c", "d"]
    lines = ["int out[6];"]
    for name in names:
        lines.append(f"int {name};")
        lines.append(
            f"{name} = {draw(st.integers(min_value=0, max_value=7))};"
        )
    for index in range(draw(st.integers(min_value=2, max_value=6))):
        target = draw(st.sampled_from(names))
        left = draw(st.sampled_from(names))
        right = draw(st.sampled_from(names))
        kind = draw(st.integers(min_value=0, max_value=3))
        if kind == 0:
            rhs = f"F1({left})"
        elif kind == 1:
            rhs = f"F2({left}, {right})"
        elif kind == 2:
            rhs = f"{left} + F1({right})"
        else:
            rhs = f"{left} - {right}"
        if draw(st.booleans()):
            lines.append(
                f"if ({left} > {right}) {{ {target} = {rhs}; }} "
                f"else {{ {target} = {right}; }}"
            )
        else:
            lines.append(f"{target} = {rhs};")
        lines.append(f"out[{index % 6}] = {target};")
    return "\n".join(lines)


class TestMotionsWithCalls:
    @PROPERTY_SETTINGS
    @given(call_programs())
    def test_reorder_with_pure_calls(self, source):
        assert_equivalent(
            source,
            lambda d: DataflowLevelReorder(
                pure_functions=set(PURE_EXTERNALS)
            ).run_on_design(d),
            externals=PURE_EXTERNALS,
        )

    @PROPERTY_SETTINGS
    @given(call_programs())
    def test_hoist_with_pure_calls(self, source):
        assert_equivalent(
            source,
            lambda d: TrailblazingHoist(
                pure_functions=set(PURE_EXTERNALS)
            ).run_on_design(d),
            externals=PURE_EXTERNALS,
        )

    @PROPERTY_SETTINGS
    @given(call_programs())
    def test_conservative_without_purity_info(self, source):
        """With no purity declarations the motions must stay
        conservative — and still be equivalence-preserving."""
        def transform(design):
            TrailblazingHoist().run_on_design(design)
            DataflowLevelReorder().run_on_design(design)

        assert_equivalent(source, transform, externals=PURE_EXTERNALS)
