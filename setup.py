"""Setup shim.

The sandboxed environment has no ``wheel`` package, so PEP 660 editable
installs fail; ``python setup.py develop`` works with plain setuptools.
Configuration lives in pyproject.toml.
"""

from setuptools import setup

setup()
