"""Command-line interface — the Spark tool experience.

The paper's Spark system "takes a behavioral description in ANSI-C as
input and generates synthesizable register-transfer level VHDL", with
designer-controlled script files.  This module gives the reproduction
the same shape::

    python -m repro input.c --preset up --emit vhdl
    python -m repro input.c --clock 4.0 --limit alu=2 --limit cmp=1 \\
        --unroll 'i=0' --no-speculation --emit verilog
    python -m repro input.c --print-code --summary --dot fsmd

The ``dse`` subcommand drives the design-space exploration engine —
a memoized, multi-process, streaming sweep over a grid of script
knobs, with dominance pruning and latency/area early exit::

    python -m repro dse input.c --vary clock=4,6,8 \\
        --vary 'unroll=none,*:0' --workers 4 --top 5 \\
        --target-latency 24

Sweeps distribute across machines through a filesystem job broker:
``dse --executor broker`` publishes jobs under the shared cache
directory and any number of ``dse-worker`` processes — local or on
other machines mounting the same path — pull and execute them::

    python -m repro dse input.c --vary clock=4,6,8 --executor broker &
    python -m repro dse-worker          # as many as you like, anywhere

The ``cache`` subcommand maintains the shared outcome cache::

    python -m repro cache stats
    python -m repro cache gc --max-bytes 104857600

The ``verify`` subcommand runs the full flow with the static verifier
interposed after every transform pass and flow stage, reporting
invariant violations instead of RTL — the same checks ``--verify-each``
adds to a one-shot synthesis or a ``dse`` sweep::

    python -m repro verify input.c --preset up
    python -m repro verify input.c --preset up --rtl
    python -m repro input.c --verify-each --emit none
    python -m repro dse input.c --vary clock=4,6 --verify-each

``verify --rtl`` (and ``--verify-each`` everywhere) additionally runs
the static RTL linter over both emitted backends at the emit stage
boundary — netlist, FSM and cross-layer checks from
:mod:`repro.analysis.rtl`.

Exit status is non-zero on parse or scheduling failure, so the CLI can
anchor shell-based regression scripts the way the original tool's
script files did.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Dict, List, Optional

from repro.backend.interface import DesignInterface
from repro.spark import SparkSession
from repro.transforms.base import SynthesisScript


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse parser for the repro CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Spark-style high-level synthesis: behavioral C in, "
            "RTL out (reproduction of Gupta et al., DAC 2002)"
        ),
    )
    parser.add_argument(
        "input",
        help="behavioral C source file ('-' reads stdin)",
    )
    parser.add_argument(
        "--preset",
        choices=["up", "asic", "none"],
        default="none",
        help=(
            "script preset: 'up' = microprocessor block (unlimited "
            "resources, full unroll, all motions), 'asic' = bounded "
            "resources, rolled loops (default: none)"
        ),
    )
    parser.add_argument(
        "--clock",
        type=float,
        default=None,
        help="clock period in normalized gate-delay units",
    )
    parser.add_argument(
        "--unroll",
        action="append",
        default=[],
        metavar="LOOP=FACTOR",
        help="unroll LOOP by FACTOR (0 = fully); repeatable; '*' = all",
    )
    parser.add_argument(
        "--inline",
        action="append",
        default=[],
        metavar="FUNC",
        help="inline FUNC ('*' = all); repeatable",
    )
    parser.add_argument(
        "--limit",
        action="append",
        default=[],
        metavar="UNIT=COUNT",
        help="resource limit, e.g. alu=2; repeatable",
    )
    parser.add_argument(
        "--pure",
        action="append",
        default=[],
        metavar="FUNC",
        help="declare external FUNC side-effect free (speculatable)",
    )
    parser.add_argument(
        "--output",
        action="append",
        default=[],
        metavar="VAR",
        help="scalar output that must stay observable; repeatable",
    )
    parser.add_argument(
        "--no-speculation", action="store_true", help="disable speculation"
    )
    parser.add_argument(
        "--no-code-motion",
        action="store_true",
        help="disable the parallelizing code motions",
    )
    parser.add_argument(
        "--verify-each",
        action="store_true",
        help=(
            "run the static verifier after every transform pass and "
            "flow stage, plus the RTL linter at the emit stage "
            "boundary; invariant violations abort synthesis"
        ),
    )
    parser.add_argument(
        "--emit",
        choices=["vhdl", "verilog", "none"],
        default="vhdl",
        help="RTL language to print (default: vhdl)",
    )
    parser.add_argument(
        "--entity",
        default="design",
        help="entity/module name for the emitted RTL",
    )
    parser.add_argument(
        "--dot",
        choices=["htg", "fsmd"],
        default=None,
        help="print a Graphviz DOT view instead of RTL: the "
        "transformed HTG (paper Figs 5-7 style) or the scheduled FSMD",
    )
    parser.add_argument(
        "--print-code",
        action="store_true",
        help="print the transformed behavioral code",
    )
    parser.add_argument(
        "--summary",
        action="store_true",
        help="print the synthesis summary (states, area, timing)",
    )
    parser.add_argument(
        "--reports",
        action="store_true",
        help="print per-pass transformation reports",
    )
    return parser


def build_verify_parser() -> argparse.ArgumentParser:
    """Parser for the ``repro verify`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro verify",
        description=(
            "run the synthesis flow with the static verifier armed "
            "after every transform pass and flow stage, reporting "
            "invariant violations instead of emitting RTL"
        ),
    )
    parser.add_argument(
        "input",
        help="behavioral C source file ('-' reads stdin)",
    )
    parser.add_argument(
        "--preset",
        choices=["up", "asic", "none"],
        default="none",
        help="script preset (same meanings as the one-shot CLI)",
    )
    parser.add_argument(
        "--clock",
        type=float,
        default=None,
        help="clock period in normalized gate-delay units",
    )
    parser.add_argument(
        "--unroll",
        action="append",
        default=[],
        metavar="LOOP=FACTOR",
        help="unroll LOOP by FACTOR (0 = fully); repeatable; '*' = all",
    )
    parser.add_argument(
        "--inline",
        action="append",
        default=[],
        metavar="FUNC",
        help="inline FUNC ('*' = all); repeatable",
    )
    parser.add_argument(
        "--limit",
        action="append",
        default=[],
        metavar="UNIT=COUNT",
        help="resource limit, e.g. alu=2; repeatable",
    )
    parser.add_argument(
        "--pure",
        action="append",
        default=[],
        metavar="FUNC",
        help="declare external FUNC side-effect free (speculatable)",
    )
    parser.add_argument(
        "--output",
        action="append",
        default=[],
        metavar="VAR",
        help="scalar output that must stay observable; repeatable",
    )
    parser.add_argument(
        "--no-speculation", action="store_true", help="disable speculation"
    )
    parser.add_argument(
        "--no-code-motion",
        action="store_true",
        help="disable the parallelizing code motions",
    )
    parser.add_argument(
        "--entity",
        default="design",
        help="entity/module name for the synthesized design",
    )
    parser.add_argument(
        "--rtl",
        action="store_true",
        help=(
            "extend the battery to the emit stage boundary: emit both "
            "backends and run the static RTL linter (netlist, FSM and "
            "cross-layer checks) over them"
        ),
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the success line (violations still print)",
    )
    return parser


def verify_main(argv: List[str]) -> int:
    """Entry point for ``repro verify``.

    Exit status: 0 when every invariant holds through the whole flow,
    1 on a verifier violation, 2 when the design fails to synthesize
    at all (a broken flow is a different failure than a broken
    invariant, and regression scripts want to tell them apart).
    """
    from repro.analysis.verifier import VerifierError

    parser = build_verify_parser()
    args = parser.parse_args(argv)

    source = _read_source(args.input)
    if source is None:
        return 2

    try:
        script = _build_script(args)
    except ValueError as error:
        print(f"repro verify: {error}", file=sys.stderr)
        return 2

    try:
        session = SparkSession(
            source,
            script=script,
            interface=DesignInterface(name=args.entity),
        )
        session.run(bind=True, emit=False, verify=True, lint_rtl=args.rtl)
    except VerifierError as error:
        print(f"repro verify: {args.input}: {error}", file=sys.stderr)
        return 1
    except Exception as error:  # parse/lowering/scheduling failures
        print(
            f"repro verify: {args.input}: synthesis failed: {error}",
            file=sys.stderr,
        )
        return 2

    if not args.quiet:
        stages = "frontend, transforms, schedule and binding"
        if args.rtl:
            stages += " plus the RTL lint of both backends"
        print(
            f"repro verify: {args.input}: OK — every invariant held "
            f"through {stages}"
        )
    return 0


def build_dse_parser() -> argparse.ArgumentParser:
    """Parser for the ``repro dse`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro dse",
        description=(
            "design-space exploration: sweep a grid of synthesis "
            "scripts in parallel, memoizing results on disk"
        ),
    )
    parser.add_argument(
        "input",
        help="behavioral C source file ('-' reads stdin)",
    )
    parser.add_argument(
        "--vary",
        action="append",
        default=[],
        metavar="AXIS=V1,V2,...",
        help=(
            "grid axis, repeatable; axes: preset, clock, unroll, "
            "limits, speculation, code-motion, cse, tac, priority "
            "(e.g. --vary clock=4,6,8 --vary 'unroll=none,*:0')"
        ),
    )
    parser.add_argument(
        "--strategy",
        choices=["grid", "beam", "random", "anneal"],
        default="grid",
        help=(
            "how to explore the space: grid runs the exhaustive "
            "cartesian sweep (default); beam, random and anneal run "
            "the adaptive search engine, evaluating at most "
            "--search-budget corners chosen by the strategy"
        ),
    )
    parser.add_argument(
        "--search-seed",
        type=int,
        default=None,
        metavar="N",
        help=(
            "random seed for --strategy beam/random/anneal; the same "
            "seed replays the identical proposal sequence on any "
            "executor (default: 0)"
        ),
    )
    parser.add_argument(
        "--search-budget",
        type=int,
        default=None,
        metavar="N",
        help=(
            "most corners a search may settle (evaluate or prune); "
            "deduplicated re-proposals and withdrawn in-flight corners "
            "are free (default: the full grid size)"
        ),
    )
    parser.add_argument(
        "--search-trace",
        action="store_true",
        help=(
            "print the proposal-by-proposal search trace (round, "
            "corner, parent, outcome, accept/reject)"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool width for cache misses (default: 1)",
    )
    parser.add_argument(
        "--executor",
        choices=["auto", "serial", "pool", "broker"],
        default="auto",
        help=(
            "execution backend for cache misses: serial (in-process), "
            "pool (local process pool, survives killed workers), or "
            "broker (filesystem job queue served by 'repro dse-worker' "
            "processes on any machine sharing the directory); auto "
            "picks serial for --workers 1 and pool otherwise"
        ),
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=1,
        metavar="N",
        help=(
            "dispatch up to N cache misses sharing a transform prefix "
            "as one batch, so a worker loads their shared stage "
            "snapshot once and reuses scheduling analysis across "
            "corners differing only in resources or clock; outcomes "
            "are identical to unbatched (default: 1, no batching)"
        ),
    )
    parser.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "wall-clock budget per design point; a point that runs "
            "over settles as error_kind=timeout (never cached) "
            "instead of stalling the sweep (default: unbounded)"
        ),
    )
    parser.add_argument(
        "--broker-dir",
        default=None,
        metavar="DIR",
        help=(
            "job broker directory for --executor broker (default: "
            "<cache dir>/broker)"
        ),
    )
    parser.add_argument(
        "--lease-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "broker lease heartbeat expiry: a claimed job whose "
            "worker stops beating for this long is requeued "
            "(default: 30)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=(
            "outcome cache directory (default: $REPRO_DSE_CACHE or "
            "~/.cache/repro-dse; an empty string disables caching)"
        ),
    )
    parser.add_argument(
        "--cache-backend",
        choices=["fs", "flat", "sqlite"],
        default=None,
        help=(
            "cache storage backend: fs (16-way-sharded filesystem "
            "layout, the default), flat (legacy single-lock flat "
            "directory), sqlite (one WAL database file — "
            "machine-local, so broker fleets need no shared cache "
            "mount)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk outcome cache (and the stage cache)",
    )
    parser.add_argument(
        "--stage-cache",
        dest="stage_cache",
        action="store_true",
        default=True,
        help=(
            "memoize per-stage artifacts (parsed/transformed designs, "
            "schedules) beside the outcome cache so corners differing "
            "only in late-stage knobs skip the early stages (default: "
            "enabled whenever the outcome cache is)"
        ),
    )
    parser.add_argument(
        "--no-stage-cache",
        dest="stage_cache",
        action="store_false",
        help="disable the per-stage artifact cache",
    )
    parser.add_argument(
        "--target-latency",
        type=float,
        default=None,
        metavar="T",
        help=(
            "stop the sweep as soon as a feasible point has latency "
            "<= T (combined with --max-area when both are set)"
        ),
    )
    parser.add_argument(
        "--max-area",
        type=float,
        default=None,
        metavar="A",
        help=(
            "stop the sweep as soon as a feasible point has area <= A "
            "(combined with --target-latency when both are set)"
        ),
    )
    parser.add_argument(
        "--no-prune",
        action="store_true",
        help=(
            "run every corner even when it is provably dominated by "
            "an already-infeasible one"
        ),
    )
    parser.add_argument(
        "--verify-each",
        action="store_true",
        help=(
            "arm the static verifier (and the emit-stage RTL linter) "
            "on every synthesized corner; violations settle as "
            "error_kind=verifier (never cached), and cached outcomes "
            "only count if their run was verified"
        ),
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print each design point as it settles (streaming)",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=None,
        metavar="N",
        help="show only the N best-ranked design points",
    )
    parser.add_argument(
        "--environment",
        default="",
        metavar="MODULE:FUNCTION",
        help=(
            "JobEnvironment factory resolved in each worker, e.g. "
            "repro.ild:ild_environment"
        ),
    )
    parser.add_argument(
        "--environment-arg",
        action="append",
        type=int,
        default=[],
        metavar="INT",
        help="integer argument for the environment factory; repeatable",
    )
    parser.add_argument(
        "--pure",
        action="append",
        default=[],
        metavar="FUNC",
        help="declare external FUNC side-effect free (speculatable)",
    )
    parser.add_argument(
        "--output",
        action="append",
        default=[],
        metavar="VAR",
        help="scalar output that must stay observable; repeatable",
    )
    parser.add_argument(
        "--entity",
        default="design",
        help="entity/module name for the synthesized design",
    )
    return parser


def dse_main(argv: List[str]) -> int:
    """Entry point for ``repro dse``."""
    from repro.dse import (
        ExplorationEngine,
        GridError,
        format_search_summary,
        format_search_trace,
        format_stage_breakdown,
        format_table,
        grid_from_specs,
        job_from_point,
        jobs_from_grid,
        make_strategy,
        summarize,
    )

    parser = build_dse_parser()
    args = parser.parse_args(argv)

    source = _read_source(args.input)
    if source is None:
        return 2

    try:
        grid = grid_from_specs(args.vary)
    except GridError as error:
        print(f"repro dse: {error}", file=sys.stderr)
        return 2
    if args.workers < 1:
        print("repro dse: --workers must be >= 1", file=sys.stderr)
        return 2
    if args.job_timeout is not None and args.job_timeout <= 0:
        print("repro dse: --job-timeout must be positive", file=sys.stderr)
        return 2
    if args.batch_size < 1:
        print("repro dse: --batch-size must be >= 1", file=sys.stderr)
        return 2
    if args.lease_ttl is not None and args.lease_ttl <= 0:
        print("repro dse: --lease-ttl must be positive", file=sys.stderr)
        return 2
    if args.strategy == "grid":
        for flag, value in (
            ("--search-seed", args.search_seed),
            ("--search-budget", args.search_budget),
            ("--search-trace", args.search_trace or None),
        ):
            if value is not None:
                print(
                    f"repro dse: {flag} requires --strategy "
                    f"beam/random/anneal",
                    file=sys.stderr,
                )
                return 2
    if args.search_budget is not None and args.search_budget < 1:
        print("repro dse: --search-budget must be >= 1", file=sys.stderr)
        return 2

    base = SynthesisScript(
        pure_functions=set(args.pure),
        output_scalars=set(args.output),
    )
    from repro.dse.broker import DEFAULT_LEASE_TTL

    engine = ExplorationEngine(
        cache_dir=args.cache_dir,
        workers=args.workers,
        use_cache=not args.no_cache,
        cache_backend=args.cache_backend,
        executor=args.executor,
        batch_size=args.batch_size,
        job_timeout=args.job_timeout,
        broker_dir=args.broker_dir,
        lease_ttl=(
            args.lease_ttl if args.lease_ttl is not None
            else DEFAULT_LEASE_TTL
        ),
        stage_cache=args.stage_cache,
        verify=args.verify_each,
        lint_rtl=args.verify_each,
    )

    def print_progress(outcome):
        status = "ok" if outcome.ok else "infeasible"
        print(
            f"[{outcome.provenance:>6}] {outcome.label}: {status}",
            file=sys.stderr,
        )

    on_outcome = print_progress if args.progress else None
    if args.strategy == "grid":
        jobs = jobs_from_grid(
            source,
            grid,
            base_script=base,
            entity=args.entity,
            environment=args.environment,
            environment_args=tuple(args.environment_arg),
        )
        result = engine.explore(
            jobs,
            on_outcome=on_outcome,
            target_latency=args.target_latency,
            max_area=args.max_area,
            prune=not args.no_prune,
        )
    else:
        strategy = make_strategy(
            args.strategy,
            grid,
            seed=args.search_seed if args.search_seed is not None else 0,
        )

        def factory(point):
            return job_from_point(
                source,
                point,
                base_script=base,
                entity=args.entity,
                environment=args.environment,
                environment_args=tuple(args.environment_arg),
            )

        result = engine.search(
            strategy,
            factory,
            budget=(
                args.search_budget
                if args.search_budget is not None
                else len(grid)
            ),
            on_outcome=on_outcome,
            target_latency=args.target_latency,
            max_area=args.max_area,
            prune=not args.no_prune,
        )
    print(format_table(result.outcomes, top=args.top))
    print()
    print(summarize(result))
    search_summary = format_search_summary(result)
    if search_summary:
        print(search_summary)
    if args.search_trace:
        trace = format_search_trace(result)
        if trace:
            print(trace)
    breakdown = format_stage_breakdown(result)
    if breakdown:
        print(breakdown)
    return 0 if result.feasible else 1


def build_worker_parser() -> argparse.ArgumentParser:
    """Parser for the ``repro dse-worker`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro dse-worker",
        description=(
            "pull-and-execute worker for distributed design-space "
            "exploration: claims jobs from a filesystem broker "
            "directory shared with 'repro dse --executor broker' "
            "(any machine mounting the same path can serve a sweep)"
        ),
    )
    parser.add_argument(
        "--broker-dir",
        default=None,
        metavar="DIR",
        help=(
            "job broker directory (default: <cache dir>/broker, with "
            "the cache dir from $REPRO_DSE_CACHE or ~/.cache/repro-dse)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help=(
            "derive the broker directory from this cache directory "
            "(<DIR>/broker), mirroring a sweep's --cache-dir so both "
            "sides rendezvous without repeating --broker-dir"
        ),
    )
    parser.add_argument(
        "--worker-id",
        default=None,
        metavar="NAME",
        help="stable worker name (default: host-pid-random)",
    )
    parser.add_argument(
        "--max-jobs",
        type=int,
        default=None,
        metavar="N",
        help="exit after executing N jobs (default: unlimited)",
    )
    parser.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "exit after the queue has been empty for this long "
            "(default: run until killed — safe, leases expire)"
        ),
    )
    parser.add_argument(
        "--lease-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "heartbeat expiry after which other participants may "
            "requeue this worker's claimed job (default: 30; must "
            "match the sweep's --lease-ttl)"
        ),
    )
    parser.add_argument(
        "--poll",
        type=float,
        default=0.2,
        metavar="SECONDS",
        help="sleep between claim attempts on an empty queue",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the per-job progress lines on stderr",
    )
    return parser


def worker_main(argv: List[str]) -> int:
    """Entry point for ``repro dse-worker``."""
    from repro.dse.broker import (
        BROKER_DIR_NAME,
        DEFAULT_LEASE_TTL,
        JobBroker,
        run_worker,
    )
    from repro.dse.cache import default_cache_dir

    args = build_worker_parser().parse_args(argv)
    if args.max_jobs is not None and args.max_jobs < 1:
        print("repro dse-worker: --max-jobs must be >= 1", file=sys.stderr)
        return 2
    if args.lease_ttl is not None and args.lease_ttl <= 0:
        print("repro dse-worker: --lease-ttl must be positive", file=sys.stderr)
        return 2
    if args.poll <= 0:
        print("repro dse-worker: --poll must be positive", file=sys.stderr)
        return 2
    if args.broker_dir is not None:
        broker_dir = args.broker_dir
    elif args.cache_dir is not None:
        broker_dir = Path(args.cache_dir).expanduser() / BROKER_DIR_NAME
    else:
        broker_dir = default_cache_dir() / BROKER_DIR_NAME
    broker = JobBroker(
        broker_dir,
        lease_ttl=(
            args.lease_ttl if args.lease_ttl is not None
            else DEFAULT_LEASE_TTL
        ),
    )

    def log(message: str) -> None:
        print(message, file=sys.stderr)

    try:
        report = run_worker(
            broker,
            worker=args.worker_id,
            max_jobs=args.max_jobs,
            idle_timeout=args.idle_timeout,
            poll=args.poll,
            on_event=None if args.quiet else log,
        )
    except KeyboardInterrupt:
        # A drained Ctrl-C exit is a normal way to stop a service
        # worker; any claimed job's lease will expire and requeue.
        print("repro dse-worker: interrupted", file=sys.stderr)
        return 130
    print(
        f"repro dse-worker: executed {report.executed} job(s) "
        f"as {report.worker}",
    )
    return 0


def build_cache_parser() -> argparse.ArgumentParser:
    """Parser for the ``repro cache`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro cache",
        description=(
            "maintain the shared design-space exploration outcome "
            "cache: stats, clear, size-bounded LRU garbage collection"
        ),
    )
    parser.add_argument(
        "action",
        choices=["stats", "clear", "gc"],
        help=(
            "stats: entry count and size; clear: drop every entry; "
            "gc: evict least-recently-used entries beyond the budget "
            "(all three cover outcome records and stage artifacts)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=(
            "cache directory (default: $REPRO_DSE_CACHE or "
            "~/.cache/repro-dse); accepts a backend spec string "
            "such as sqlite:<dir>"
        ),
    )
    parser.add_argument(
        "--backend",
        choices=["fs", "flat", "sqlite"],
        default=None,
        help=(
            "cache storage backend (default: from the --cache-dir "
            "spec prefix, else the sharded filesystem layout); must "
            "match the backend the sweeps use"
        ),
    )
    parser.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        metavar="N",
        help=(
            "size budget for gc/stats (default: "
            "$REPRO_DSE_CACHE_MAX_BYTES or 256 MiB)"
        ),
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help=(
            "stats only: answer from the materialized index written "
            "by the last gc/reindex instead of re-scanning every "
            "entry (may be stale)"
        ),
    )
    return parser


def cache_main(argv: List[str]) -> int:
    """Entry point for ``repro cache``."""
    from repro.dse.cache import names_bare_cwd
    from repro.dse.service import CacheLockTimeout, CacheService

    args = build_cache_parser().parse_args(argv)
    if args.cache_dir is not None and names_bare_cwd(args.cache_dir):
        # Empty / "." --cache-dir means "no cache" on the dse side;
        # for (destructive) maintenance it would silently target the
        # current working directory.  Demand an explicit path.
        print(
            "repro cache: --cache-dir must name a real cache "
            "directory, not '' or '.' (use an absolute path or "
            "'./name')",
            file=sys.stderr,
        )
        return 2
    if args.max_bytes is not None and args.max_bytes <= 0:
        # 0 is not "unlimited" here — gc would evict every entry.
        print(
            "repro cache: --max-bytes must be a positive byte count",
            file=sys.stderr,
        )
        return 2
    service = CacheService(
        root=args.cache_dir,
        max_bytes=args.max_bytes,
        backend=args.backend,
    )
    try:
        if args.action == "stats":
            print(service.stats(fast=args.fast).describe())
        elif args.action == "clear":
            removed = service.clear()
            print(f"removed {removed} cached outcome(s)")
        else:
            print(service.gc().describe())
    except CacheLockTimeout as error:
        print(f"repro cache: {error}", file=sys.stderr)
        return 1
    return 0


def _read_source(path: str) -> Optional[str]:
    """Read a source argument ('-' = stdin); None + message on error."""
    if path == "-":
        return sys.stdin.read()
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return handle.read()
    except OSError as error:
        print(f"repro: cannot read {path}: {error}", file=sys.stderr)
        return None


def _parse_pairs(pairs: List[str], what: str) -> Dict[str, int]:
    result: Dict[str, int] = {}
    for pair in pairs:
        name, _, value = pair.partition("=")
        if not name or not value:
            raise ValueError(f"bad {what} {pair!r}; expected NAME=COUNT")
        result[name] = int(value)
    return result


def _build_script(args: argparse.Namespace) -> SynthesisScript:
    if args.preset == "up":
        script = SynthesisScript.microprocessor_block(
            pure_functions=set(args.pure)
        )
    elif args.preset == "asic":
        script = SynthesisScript.asic()
        script.pure_functions = set(args.pure)
    else:
        script = SynthesisScript(pure_functions=set(args.pure))

    if args.clock is not None:
        script.clock_period = args.clock
    if args.unroll:
        script.unroll_loops = _parse_pairs(args.unroll, "unroll spec")
    if args.inline:
        script.inline_functions = list(args.inline)
    if args.limit:
        script.resource_limits = _parse_pairs(args.limit, "resource limit")
    if args.output:
        script.output_scalars = set(args.output)
    if args.no_speculation:
        script.enable_speculation = False
    if args.no_code_motion:
        script.enable_code_motion = False
    return script


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point.  Returns a process exit status."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "dse":
        return dse_main(argv[1:])
    if argv and argv[0] == "dse-worker":
        return worker_main(argv[1:])
    if argv and argv[0] == "cache":
        return cache_main(argv[1:])
    if argv and argv[0] == "verify":
        return verify_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)

    source = _read_source(args.input)
    if source is None:
        return 2

    try:
        script = _build_script(args)
    except ValueError as error:
        print(f"repro: {error}", file=sys.stderr)
        return 2

    from repro.analysis.verifier import VerifierError

    try:
        session = SparkSession(
            source,
            script=script,
            interface=DesignInterface(name=args.entity),
        )
        result = session.run(
            bind=True,
            emit=args.emit != "none",
            verify=args.verify_each,
            lint_rtl=args.verify_each,
        )
    except VerifierError as error:
        print(f"repro: {error}", file=sys.stderr)
        return 1
    except Exception as error:  # parse/lowering/scheduling failures
        print(f"repro: synthesis failed: {error}", file=sys.stderr)
        return 1

    if args.print_code:
        print("-- transformed behavior --")
        print(session.print_code())
    if args.reports:
        print("-- transformation reports --")
        for report in result.reports:
            if report.changed:
                print(report)
    if args.summary:
        print("-- summary --")
        print(result.summary())
    if args.dot is not None:
        from repro.ir.dot_export import fsmd_to_dot, htg_to_dot

        if args.dot == "htg":
            print(htg_to_dot(session.design.main, graph_name=args.entity))
        else:
            print(fsmd_to_dot(result.state_machine, graph_name=args.entity))
    elif args.emit == "vhdl":
        print(result.vhdl)
    elif args.emit == "verilog":
        print(result.verilog)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
