"""Command-line interface — the Spark tool experience.

The paper's Spark system "takes a behavioral description in ANSI-C as
input and generates synthesizable register-transfer level VHDL", with
designer-controlled script files.  This module gives the reproduction
the same shape::

    python -m repro input.c --preset up --emit vhdl
    python -m repro input.c --clock 4.0 --limit alu=2 --limit cmp=1 \\
        --unroll 'i=0' --no-speculation --emit verilog
    python -m repro input.c --print-code --summary --dot fsmd

The ``dse`` subcommand drives the design-space exploration engine —
a memoized, multi-process sweep over a grid of script knobs::

    python -m repro dse input.c --vary clock=4,6,8 \\
        --vary 'unroll=none,*:0' --workers 4 --top 5

Exit status is non-zero on parse or scheduling failure, so the CLI can
anchor shell-based regression scripts the way the original tool's
script files did.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from repro.backend.interface import DesignInterface
from repro.spark import SparkSession
from repro.transforms.base import SynthesisScript


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse parser for the repro CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Spark-style high-level synthesis: behavioral C in, "
            "RTL out (reproduction of Gupta et al., DAC 2002)"
        ),
    )
    parser.add_argument(
        "input",
        help="behavioral C source file ('-' reads stdin)",
    )
    parser.add_argument(
        "--preset",
        choices=["up", "asic", "none"],
        default="none",
        help=(
            "script preset: 'up' = microprocessor block (unlimited "
            "resources, full unroll, all motions), 'asic' = bounded "
            "resources, rolled loops (default: none)"
        ),
    )
    parser.add_argument(
        "--clock",
        type=float,
        default=None,
        help="clock period in normalized gate-delay units",
    )
    parser.add_argument(
        "--unroll",
        action="append",
        default=[],
        metavar="LOOP=FACTOR",
        help="unroll LOOP by FACTOR (0 = fully); repeatable; '*' = all",
    )
    parser.add_argument(
        "--inline",
        action="append",
        default=[],
        metavar="FUNC",
        help="inline FUNC ('*' = all); repeatable",
    )
    parser.add_argument(
        "--limit",
        action="append",
        default=[],
        metavar="UNIT=COUNT",
        help="resource limit, e.g. alu=2; repeatable",
    )
    parser.add_argument(
        "--pure",
        action="append",
        default=[],
        metavar="FUNC",
        help="declare external FUNC side-effect free (speculatable)",
    )
    parser.add_argument(
        "--output",
        action="append",
        default=[],
        metavar="VAR",
        help="scalar output that must stay observable; repeatable",
    )
    parser.add_argument(
        "--no-speculation", action="store_true", help="disable speculation"
    )
    parser.add_argument(
        "--no-code-motion",
        action="store_true",
        help="disable the parallelizing code motions",
    )
    parser.add_argument(
        "--emit",
        choices=["vhdl", "verilog", "none"],
        default="vhdl",
        help="RTL language to print (default: vhdl)",
    )
    parser.add_argument(
        "--entity",
        default="design",
        help="entity/module name for the emitted RTL",
    )
    parser.add_argument(
        "--dot",
        choices=["htg", "fsmd"],
        default=None,
        help="print a Graphviz DOT view instead of RTL: the "
        "transformed HTG (paper Figs 5-7 style) or the scheduled FSMD",
    )
    parser.add_argument(
        "--print-code",
        action="store_true",
        help="print the transformed behavioral code",
    )
    parser.add_argument(
        "--summary",
        action="store_true",
        help="print the synthesis summary (states, area, timing)",
    )
    parser.add_argument(
        "--reports",
        action="store_true",
        help="print per-pass transformation reports",
    )
    return parser


def build_dse_parser() -> argparse.ArgumentParser:
    """Parser for the ``repro dse`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro dse",
        description=(
            "design-space exploration: sweep a grid of synthesis "
            "scripts in parallel, memoizing results on disk"
        ),
    )
    parser.add_argument(
        "input",
        help="behavioral C source file ('-' reads stdin)",
    )
    parser.add_argument(
        "--vary",
        action="append",
        default=[],
        metavar="AXIS=V1,V2,...",
        help=(
            "grid axis, repeatable; axes: preset, clock, unroll, "
            "limits, speculation, code-motion, cse, tac, priority "
            "(e.g. --vary clock=4,6,8 --vary 'unroll=none,*:0')"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool width for cache misses (default: 1)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=(
            "outcome cache directory (default: $REPRO_DSE_CACHE or "
            "~/.cache/repro-dse)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk outcome cache",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=None,
        metavar="N",
        help="show only the N best-ranked design points",
    )
    parser.add_argument(
        "--environment",
        default="",
        metavar="MODULE:FUNCTION",
        help=(
            "JobEnvironment factory resolved in each worker, e.g. "
            "repro.ild:ild_environment"
        ),
    )
    parser.add_argument(
        "--environment-arg",
        action="append",
        type=int,
        default=[],
        metavar="INT",
        help="integer argument for the environment factory; repeatable",
    )
    parser.add_argument(
        "--pure",
        action="append",
        default=[],
        metavar="FUNC",
        help="declare external FUNC side-effect free (speculatable)",
    )
    parser.add_argument(
        "--output",
        action="append",
        default=[],
        metavar="VAR",
        help="scalar output that must stay observable; repeatable",
    )
    parser.add_argument(
        "--entity",
        default="design",
        help="entity/module name for the synthesized design",
    )
    return parser


def dse_main(argv: List[str]) -> int:
    """Entry point for ``repro dse``."""
    from repro.dse import (
        ExplorationEngine,
        GridError,
        format_table,
        grid_from_specs,
        jobs_from_grid,
        summarize,
    )

    parser = build_dse_parser()
    args = parser.parse_args(argv)

    source = _read_source(args.input)
    if source is None:
        return 2

    try:
        grid = grid_from_specs(args.vary)
    except GridError as error:
        print(f"repro dse: {error}", file=sys.stderr)
        return 2
    if args.workers < 1:
        print("repro dse: --workers must be >= 1", file=sys.stderr)
        return 2

    base = SynthesisScript(
        pure_functions=set(args.pure),
        output_scalars=set(args.output),
    )
    jobs = jobs_from_grid(
        source,
        grid,
        base_script=base,
        entity=args.entity,
        environment=args.environment,
        environment_args=tuple(args.environment_arg),
    )
    engine = ExplorationEngine(
        cache_dir=args.cache_dir,
        workers=args.workers,
        use_cache=not args.no_cache,
    )
    result = engine.explore(jobs)
    print(format_table(result.outcomes, top=args.top))
    print()
    print(summarize(result))
    return 0 if result.feasible else 1


def _read_source(path: str) -> Optional[str]:
    """Read a source argument ('-' = stdin); None + message on error."""
    if path == "-":
        return sys.stdin.read()
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return handle.read()
    except OSError as error:
        print(f"repro: cannot read {path}: {error}", file=sys.stderr)
        return None


def _parse_pairs(pairs: List[str], what: str) -> Dict[str, int]:
    result: Dict[str, int] = {}
    for pair in pairs:
        name, _, value = pair.partition("=")
        if not name or not value:
            raise ValueError(f"bad {what} {pair!r}; expected NAME=COUNT")
        result[name] = int(value)
    return result


def _build_script(args: argparse.Namespace) -> SynthesisScript:
    if args.preset == "up":
        script = SynthesisScript.microprocessor_block(
            pure_functions=set(args.pure)
        )
    elif args.preset == "asic":
        script = SynthesisScript.asic()
        script.pure_functions = set(args.pure)
    else:
        script = SynthesisScript(pure_functions=set(args.pure))

    if args.clock is not None:
        script.clock_period = args.clock
    if args.unroll:
        script.unroll_loops = _parse_pairs(args.unroll, "unroll spec")
    if args.inline:
        script.inline_functions = list(args.inline)
    if args.limit:
        script.resource_limits = _parse_pairs(args.limit, "resource limit")
    if args.output:
        script.output_scalars = set(args.output)
    if args.no_speculation:
        script.enable_speculation = False
    if args.no_code_motion:
        script.enable_code_motion = False
    return script


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point.  Returns a process exit status."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "dse":
        return dse_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)

    source = _read_source(args.input)
    if source is None:
        return 2

    try:
        script = _build_script(args)
    except ValueError as error:
        print(f"repro: {error}", file=sys.stderr)
        return 2

    try:
        session = SparkSession(
            source,
            script=script,
            interface=DesignInterface(name=args.entity),
        )
        result = session.run(bind=True, emit=args.emit != "none")
    except Exception as error:  # parse/lowering/scheduling failures
        print(f"repro: synthesis failed: {error}", file=sys.stderr)
        return 1

    if args.print_code:
        print("-- transformed behavior --")
        print(session.print_code())
    if args.reports:
        print("-- transformation reports --")
        for report in result.reports:
            if report.changed:
                print(report)
    if args.summary:
        print("-- summary --")
        print(result.summary())
    if args.dot is not None:
        from repro.ir.dot_export import fsmd_to_dot, htg_to_dot

        if args.dot == "htg":
            print(htg_to_dot(session.design.main, graph_name=args.entity))
        else:
            print(fsmd_to_dot(result.state_machine, graph_name=args.entity))
    elif args.emit == "vhdl":
        print(result.vhdl)
    elif args.emit == "verilog":
        print(result.verilog)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
