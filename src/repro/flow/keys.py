"""Content hashing for stage artifacts: the cache-key contract.

A stage's key is the SHA-256 of the canonical JSON encoding of the
**cumulative prefix** of flow inputs consumed up to and including that
stage:

* ``frontend`` — the behavioral C source text;
* ``transform`` — plus every transformation knob of the script
  (unroll/inline specs, motion toggles, pure functions, observable
  scalars — see :data:`repro.transforms.base.STAGE_SCRIPT_FIELDS`);
* ``schedule`` — plus the scheduling knobs (clock period, resource
  limits, scheduler priority) and the job's environment factory
  reference (the resource library the scheduler times against is a
  deterministic function of it);
* ``bind`` / ``estimate`` — nothing further (they re-read knobs
  already in the prefix);
* ``emit`` — plus the entity name.

The prefix construction is what makes incremental sweeps sound and
automatic: two corners that differ only in a schedule-stage knob hash
to the *same* frontend and transform keys, so a 100-corner clock
sweep parses and transforms once per distinct transform prefix — no
axis analysis needed at lookup time.  Keys are salted with a format
version and the package version, so artifacts written by older
synthesis code can never resurface after an upgrade.

Everything entering the hash is canonicalized (sets sorted, dicts to
sorted item pairs, ``sort_keys`` JSON): the same (source, script
prefix) yields the same key in any process, under any
``multiprocessing`` start method, on any machine sharing the cache
directory.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Sequence, Tuple

from repro.transforms.base import (
    SYNTHESIS_STAGES,
    SynthesisScript,
    script_stage_fields,
)

#: Bump when the stage artifact schema or the semantics of a stage
#: change in a way that invalidates previously pickled snapshots.
STAGE_FORMAT = 1


def stage_prefix_data(
    stage: str,
    source: str,
    script: SynthesisScript,
    entity: str = "design",
    environment: str = "",
    environment_args: Sequence[object] = (),
) -> List[Dict[str, object]]:
    """The canonical plain-data prefix for *stage*: one entry per
    stage from ``frontend`` up to and including *stage*, each carrying
    exactly the inputs that stage consumes."""
    if stage not in SYNTHESIS_STAGES:
        raise ValueError(
            f"unknown stage {stage!r}; stages: {', '.join(SYNTHESIS_STAGES)}"
        )
    prefix: List[Dict[str, object]] = []
    for name in SYNTHESIS_STAGES:
        entry: Dict[str, object] = {"stage": name}
        entry.update(script_stage_fields(script, name))
        if name == "frontend":
            entry["source"] = source
        elif name == "schedule":
            # The resource library (operation delays, FU classes) is
            # resolved from the environment factory inside the worker;
            # the factory reference is its deterministic description.
            entry["environment"] = environment
            entry["environment_args"] = list(environment_args)
        elif name == "emit":
            entry["entity"] = entity
        prefix.append(entry)
        if name == stage:
            break
    return prefix


def stage_key(
    stage: str,
    source: str,
    script: SynthesisScript,
    entity: str = "design",
    environment: str = "",
    environment_args: Sequence[object] = (),
) -> str:
    """Content hash identifying one stage's artifact."""
    import repro  # deferred: repro.__init__ imports the flow package

    payload = {
        "format": STAGE_FORMAT,
        "version": repro.__version__,
        "prefix": stage_prefix_data(
            stage,
            source,
            script,
            entity=entity,
            environment=environment,
            environment_args=environment_args,
        ),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def job_stage_key(job: object, stage: str) -> str:
    """The stage key a :class:`~repro.spark.SynthesisJob` implies.

    Duck-typed (any object with ``source``/``script``/``entity``/
    ``environment``/``environment_args``) so this module never needs
    to import :mod:`repro.spark`."""
    return stage_key(
        stage,
        job.source,  # type: ignore[attr-defined]
        job.script,  # type: ignore[attr-defined]
        entity=job.entity,  # type: ignore[attr-defined]
        environment=job.environment,  # type: ignore[attr-defined]
        environment_args=tuple(job.environment_args),  # type: ignore[attr-defined]
    )


def job_stage_keys(job: object, stages: Sequence[str]) -> Dict[str, str]:
    """Stage keys for several stages of one job at once."""
    return {stage: job_stage_key(job, stage) for stage in stages}


__all__: Tuple[str, ...] = (
    "STAGE_FORMAT",
    "job_stage_key",
    "job_stage_keys",
    "stage_key",
    "stage_prefix_data",
)
