"""Content-addressed stage artifacts: pickled flow snapshots.

A :class:`StageArtifactStore` persists the intermediate products of
the staged synthesis flow — the parsed :class:`~repro.ir.htg.Design`,
the transformed design plus its pass reports, the scheduled
:class:`~repro.scheduler.schedule.StateMachine` — one pickle payload
per content hash, in the *same storage backend* as the outcome cache
(on the filesystem backends: ``<key>.stage.pkl`` beside
``<key>.json``).  That placement is deliberate: the cache service's
shard locks, size-bounded LRU gc and ``clear`` govern stage
artifacts exactly like outcome entries, and ``get`` touches an
artifact's recency on every hit so eviction tracks *use* recency.

The store is a thin client of :mod:`repro.dse.storage`: its ``root``
argument accepts a plain directory (the sharded filesystem backend),
a backend spec string such as ``sqlite:<dir>`` — the form that rides
the broker wire format in ``SynthesisJob.stage_cache_dir`` — or an
already-constructed :class:`~repro.dse.storage.base.StorageBackend`
instance (so an engine-side store shares the outcome cache's
connection and contention accounting).

Every operation is best-effort and crash-safe:

* writes are atomic (the backend contract) so a dying worker can
  never leave a torn artifact under a valid key;
* a corrupted, truncated or type-confused artifact reads as a miss
  (and is dropped) — never an exception — so cache damage costs a
  recompute, not a sweep;
* a store rooted in an unwritable location degrades to a no-op
  writer rather than failing jobs.

The one exception class that must *not* be swallowed is the caller's
own control flow — :class:`repro.spark.JobTimeout` riding on
``SIGALRM`` can fire mid-unpickle — so the constructor takes a
``passthrough`` tuple of exception types to re-raise verbatim.

**Trust boundary.**  Artifacts are ``pickle`` payloads, and
unpickling executes code the payload names: anyone with write access
to the cache backend can run code in every worker that probes it.
This is the trust model the DSE layer already has — a broker queue in
the same shared directory accepts job files whose ``environment``
field names an arbitrary ``module:function`` each worker imports and
calls — so the cache/broker location must only ever be writable by
the same principals who may submit synthesis jobs.  Never point
``stage_cache_dir``/``$REPRO_DSE_CACHE`` at a location less trusted
than the code you are willing to execute.
"""

from __future__ import annotations

import pickle
from pathlib import Path
from typing import Optional, Tuple, Type, Union

#: File suffix distinguishing stage artifacts from outcome entries on
#: the filesystem backends.
STAGE_SUFFIX = ".stage.pkl"


def _resolve_backend(root):
    """The storage backend for *root* (path, spec string, or backend
    instance).  Imported lazily: :mod:`repro.flow` must stay
    importable without dragging in the DSE layer, and the DSE layer
    itself imports this module during its own package init."""
    from repro.dse.storage import StorageBackend, make_backend

    if isinstance(root, StorageBackend):
        return root
    return make_backend(root)


class StageArtifactStore:
    """Pickled stage snapshots, keyed by content hash."""

    def __init__(
        self,
        root: Union[str, Path, object],
        passthrough: Tuple[Type[BaseException], ...] = (),
    ) -> None:
        self.backend = _resolve_backend(root)
        self.root = self.backend.root
        self.passthrough = tuple(passthrough)
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> Path:
        """Where *key*'s artifact lives (filesystem backends only;
        the sqlite backend stores rows, not files)."""
        return self.backend.entry_path(key, self._kind())

    @staticmethod
    def _kind() -> str:
        from repro.dse.storage import KIND_STAGE

        return KIND_STAGE

    def get(self, key: str) -> Optional[object]:
        """The stored artifact, or ``None`` on a miss.  Unreadable or
        un-unpicklable entries (corruption, truncation, artifacts from
        an incompatible interpreter) are dropped and counted as misses
        — unpickling hostile bytes can raise nearly anything, so the
        net is deliberately wide."""
        try:
            payload = self.backend.get(key, self._kind())
            artifact = (
                None if payload is None else pickle.loads(payload)
            )
        except self.passthrough:
            raise
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception:
            self.drop(key)
            self.misses += 1
            return None
        if payload is None:
            self.misses += 1
            return None
        self.hits += 1
        return artifact

    def put(self, key: str, artifact: object) -> bool:
        """Persist atomically; returns False — instead of raising —
        when the artifact cannot be pickled or the backend cannot be
        written, so stage caching degrades to recomputation rather
        than failing the synthesis run."""
        try:
            payload = pickle.dumps(
                artifact, protocol=pickle.HIGHEST_PROTOCOL
            )
            self.backend.put(key, self._kind(), payload)
        except self.passthrough:
            raise
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception:
            return False
        return True

    def drop(self, key: str) -> None:
        """Remove one entry (used when an artifact reads as garbage).
        The backends make this best-effort themselves (absent entries
        and I/O trouble are ignored), so nothing is caught here — a
        ``passthrough`` exception firing mid-drop must escape."""
        self.backend.drop(key, self._kind())

    def __len__(self) -> int:
        kind = self._kind()
        return sum(
            1 for entry in self.backend.entries() if entry.kind == kind
        )

    def stats(self) -> str:
        return f"{self.hits} hits, {self.misses} misses"
