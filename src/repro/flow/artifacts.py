"""Content-addressed stage artifacts: pickled flow snapshots on disk.

A :class:`StageArtifactStore` persists the intermediate products of
the staged synthesis flow — the parsed :class:`~repro.ir.htg.Design`,
the transformed design plus its pass reports, the scheduled
:class:`~repro.scheduler.schedule.StateMachine` — one pickle file per
content hash, in the *same directory* as the outcome cache
(`<key>.stage.pkl` beside `<key>.json`).  That placement is
deliberate: the cache service's directory lock, size-bounded LRU gc
and `clear` govern stage artifacts exactly like outcome entries, and
`get` touches an artifact's mtime on every hit so eviction tracks
*use* recency.

Every operation is best-effort and crash-safe:

* writes go through a temp-file ``os.replace`` so a dying worker can
  never leave a torn artifact under a valid key;
* a corrupted, truncated or type-confused artifact reads as a miss
  (and is dropped) — never an exception — so cache damage costs a
  recompute, not a sweep;
* a store rooted in an unwritable directory degrades to a no-op
  writer rather than failing jobs.

The one exception class that must *not* be swallowed is the caller's
own control flow — :class:`repro.spark.JobTimeout` riding on
``SIGALRM`` can fire mid-unpickle — so the constructor takes a
``passthrough`` tuple of exception types to re-raise verbatim.

**Trust boundary.**  Artifacts are ``pickle`` payloads, and
unpickling executes code the payload names: anyone with write access
to the cache directory can run code in every worker that probes it.
This is the trust model the DSE layer already has — a broker queue in
the same shared directory accepts job files whose ``environment``
field names an arbitrary ``module:function`` each worker imports and
calls — so the cache/broker directory must only ever be writable by
the same principals who may submit synthesis jobs.  Never point
``stage_cache_dir``/``$REPRO_DSE_CACHE`` at a directory less trusted
than the code you are willing to execute.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path
from typing import Optional, Tuple, Type, Union

#: File suffix distinguishing stage artifacts from outcome entries in
#: the shared cache directory.
STAGE_SUFFIX = ".stage.pkl"


class StageArtifactStore:
    """Directory of pickled stage snapshots, keyed by content hash."""

    def __init__(
        self,
        root: Union[str, Path],
        passthrough: Tuple[Type[BaseException], ...] = (),
    ) -> None:
        self.root = Path(root)
        self.passthrough = tuple(passthrough)
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}{STAGE_SUFFIX}"

    def get(self, key: str) -> Optional[object]:
        """The stored artifact, or ``None`` on a miss.  Unreadable or
        un-unpicklable entries (corruption, truncation, artifacts from
        an incompatible interpreter) are dropped and counted as misses
        — unpickling hostile bytes can raise nearly anything, so the
        net is deliberately wide."""
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                artifact = pickle.load(handle)
        except self.passthrough:
            raise
        except (KeyboardInterrupt, SystemExit):
            raise
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            self.drop(key)
            self.misses += 1
            return None
        self.hits += 1
        try:
            # Touch the artifact so the cache service's LRU eviction
            # sees *use* recency, not just write recency.
            os.utime(path)
        except OSError:
            pass
        return artifact

    def put(self, key: str, artifact: object) -> bool:
        """Persist atomically (temp file, then rename); returns False
        — instead of raising — when the artifact cannot be pickled or
        the directory cannot be written, so stage caching degrades to
        recomputation rather than failing the synthesis run."""
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, temp_path = tempfile.mkstemp(
                dir=self.root, prefix=".tmp-", suffix=".pkl"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(
                        artifact, handle, protocol=pickle.HIGHEST_PROTOCOL
                    )
                os.replace(temp_path, self.path_for(key))
            except BaseException:
                try:
                    os.unlink(temp_path)
                except OSError:
                    pass
                raise
        except self.passthrough:
            raise
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception:
            return False
        return True

    def drop(self, key: str) -> None:
        """Remove one entry (used when an artifact reads as garbage)."""
        try:
            os.unlink(self.path_for(key))
        except OSError:
            pass

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob(f"*{STAGE_SUFFIX}"))

    def stats(self) -> str:
        return f"{self.hits} hits, {self.misses} misses"
