"""The staged synthesis pipeline: an explicit, memoizable stage graph.

The paper's flow is staged by construction — C frontend -> scripted
transformations -> chaining-aware scheduling -> binding -> estimation
-> VHDL/Verilog emission — and this module executes it that way:
:func:`run_flow` drives the named stages of
:data:`~repro.transforms.base.SYNTHESIS_STAGES` one by one, records a
:class:`StageRecord` (wall clock + hit/miss provenance) per stage,
and, given a :class:`~repro.flow.artifacts.StageArtifactStore`,
recalls or persists the expensive early stages by content hash:

========== ================================== ===========
stage      artifact                           persisted
========== ================================== ===========
frontend   parsed ``Design``                  yes
transform  transformed ``Design`` + reports   yes
schedule   scheduled ``StateMachine``         yes
bind       lifetimes + register/FU bindings   no (cheap)
estimate   area + timing estimates            no (cheap)
emit       VHDL/Verilog text                  no (cheap)
========== ================================== ===========

Artifact reuse needs no planning pass: keys are cumulative content
hashes (:mod:`repro.flow.keys`), so a corner whose script differs
only from the schedule stage onward probes the transform key, hits,
and skips the frontend entirely.  The flow never *requires* a store —
``store=None`` is the plain in-memory execution every
:class:`~repro.spark.SparkSession` uses.

Failures keep their existing semantics: a stage that raises (parse
error, :class:`~repro.scheduler.list_scheduler.SchedulingError`)
propagates to the caller, with the records accumulated so far left in
the caller-owned ``records`` list so even an infeasible outcome can
say where its time went.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.rtl import check_rtl
from repro.analysis.verifier import check_binding, check_design, check_schedule
from repro.backend.interface import DesignInterface
from repro.backend.verilog import emit_verilog
from repro.backend.vhdl import emit_vhdl
from repro.binding.fu_binding import FUBinding, bind_functional_units
from repro.binding.lifetimes import LifetimeAnalysis
from repro.binding.register_binding import RegisterBinding, bind_registers
from repro.estimation.area import AreaEstimate, estimate_area
from repro.estimation.delay import TimingEstimate, estimate_timing
from repro.flow.artifacts import StageArtifactStore
from repro.flow.keys import job_stage_keys
from repro.ir.builder import design_from_source
from repro.ir.htg import Design
from repro.scheduler.list_scheduler import ChainingScheduler
from repro.scheduler.ready_list import DagCache
from repro.scheduler.resources import ResourceAllocation, ResourceLibrary
from repro.scheduler.schedule import StateMachine
from repro.transforms.base import (
    Pass,
    PassManager,
    PassReport,
    PassVerifier,
    SynthesisScript,
)
from repro.transforms.code_motion import DataflowLevelReorder, TrailblazingHoist
from repro.transforms.cond_speculation import (
    ConditionalSpeculation,
    ReverseSpeculation,
)
from repro.transforms.const_prop import ConstantPropagation
from repro.transforms.copy_prop import CopyPropagation
from repro.transforms.cse import LocalCSE
from repro.transforms.dce import DeadCodeElimination
from repro.transforms.inline import FunctionInliner
from repro.transforms.lower_tac import TACLowering
from repro.transforms.speculation import EarlyConditionExecution, Speculation
from repro.transforms.unroll import LoopUnroller

#: The stages whose outputs are worth pickling: everything up to the
#: schedule.  Binding, estimation and emission are cheap relative to
#: an unpickle and are fully covered by the whole-job outcome cache.
PERSISTED_STAGES: Tuple[str, ...] = ("frontend", "transform", "schedule")


@dataclass
class StageRecord:
    """Wall clock and provenance of one stage of one synthesis run.

    ``cached`` means the stage's artifact was recalled (or subsumed by
    a later stage's artifact) instead of computed; ``elapsed`` is then
    the probe-plus-unpickle time, so timing breakdowns show where a
    sweep really spent its wall clock, hits included.
    """

    stage: str
    elapsed: float = 0.0
    cached: bool = False

    def to_dict(self) -> Dict[str, object]:
        return {
            "stage": self.stage,
            "elapsed": self.elapsed,
            "cached": self.cached,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "StageRecord":
        return cls(
            stage=str(data.get("stage", "")),
            elapsed=float(data.get("elapsed", 0.0)),  # type: ignore[arg-type]
            cached=bool(data.get("cached", False)),
        )


@dataclass
class FlowRequest:
    """Everything one staged run needs, as plain bindings.

    Exactly one of ``source`` / ``design`` drives the frontend: with
    ``design`` set the flow starts from an already-built (possibly
    hand-transformed) design — the :class:`~repro.spark.SparkSession`
    path — and stage caching is disabled because the design's content
    is not derivable from the request.  ``environment`` /
    ``environment_args`` are the factory *reference* only (for cache
    keys); the resolved bindings arrive through ``library`` /
    ``interface``.
    """

    source: str = ""
    script: SynthesisScript = field(default_factory=SynthesisScript)
    design: Optional[Design] = None
    entity: str = "design"
    environment: str = ""
    environment_args: Tuple = ()
    library: Optional[ResourceLibrary] = None
    interface: Optional[DesignInterface] = None
    bind: bool = True
    emit: bool = True
    #: Run the static verifier (:mod:`repro.analysis.verifier`) after
    #: every transform pass and at every stage boundary; violations
    #: raise :class:`repro.analysis.verifier.VerifierError`.  Verify
    #: mode does not change what the flow computes, so it deliberately
    #: does not participate in stage or outcome cache keys.
    verify: bool = False
    #: Run the static RTL linter (:mod:`repro.analysis.rtl`) over both
    #: emitted backends at the emit stage boundary (emitting
    #: transiently when ``emit`` is off).  Like ``verify``, lint mode
    #: changes nothing the flow computes and stays out of all cache
    #: keys; violations raise the same ``VerifierError``.
    lint_rtl: bool = False


@dataclass
class FlowOutput:
    """Everything the stage graph produced for one run."""

    design: Design
    state_machine: StateMachine
    reports: List[PassReport] = field(default_factory=list)
    lifetimes: Optional[LifetimeAnalysis] = None
    register_binding: Optional[RegisterBinding] = None
    fu_binding: Optional[FUBinding] = None
    area: Optional[AreaEstimate] = None
    timing: Optional[TimingEstimate] = None
    vhdl: str = ""
    verilog: str = ""
    records: List[StageRecord] = field(default_factory=list)


def make_pass_verifier(script: SynthesisScript) -> "PassVerifier":
    """The ``--verify-each`` hook for the transform stage: after each
    pass application, assert every design-level invariant the pass
    does not declare in ``may_break``.  Violations carry the pass name
    as their context, so a mis-transformation names its culprit."""
    from repro.analysis.verifier import check_design

    def verify(design: Design, pass_obj: "Pass") -> None:
        check_design(
            design,
            pure_functions=script.pure_functions,
            skip=getattr(pass_obj, "may_break", ()),
            context=f"after pass `{pass_obj.name}`",
        )

    return verify


def build_pass_manager(
    script: SynthesisScript, verifier: Optional["PassVerifier"] = None
) -> PassManager:
    """The scripted transformation pipeline in the paper's order:
    inline -> speculate -> unroll -> constant-propagate ->
    re-speculate -> cleanup (Section 6 sequence, with fine-grain
    passes interleaved as supporting transformations)."""
    pure = set(script.pure_functions)
    manager = PassManager(verifier=verifier)
    if script.inline_functions:
        manager.add(FunctionInliner(script.inline_functions))
    if script.enable_early_condition_execution:
        manager.add(EarlyConditionExecution())
    if script.enable_speculation:
        manager.add(Speculation(pure_functions=pure))
    if script.enable_reverse_speculation:
        manager.add(ReverseSpeculation(pure_functions=pure))
    if script.enable_conditional_speculation:
        manager.add(ConditionalSpeculation(pure_functions=pure))
    if script.unroll_loops:
        manager.add(LoopUnroller(dict(script.unroll_loops)))
    if script.enable_constant_propagation:
        manager.add(ConstantPropagation())
    if script.enable_copy_propagation:
        manager.add(CopyPropagation())
    if script.enable_cse:
        manager.add(LocalCSE(pure_functions=pure))
    if script.enable_dce:
        manager.add(
            DeadCodeElimination(
                output_scalars=script.output_scalars or None,
                pure_functions=pure,
            )
        )
    if script.enable_code_motion:
        manager.add(TrailblazingHoist(pure_functions=pure))
        manager.add(DataflowLevelReorder(pure_functions=pure))
    if script.enable_tac_lowering:
        manager.add(TACLowering())
    return manager


#: Recalled stage artifacts that already passed their boundary
#: battery in this process.  Entries are ``("transform", key,
#: pure_functions)`` — the pure-function set is the one script knob
#: the design checks read beyond the artifact itself — or
#: ``("schedule", key)``, whose key already covers the clock,
#: allocation and resource library the schedule checks consume — or
#: ``("rtl", schedule_key, entity, environment, env_args)`` for the
#: emit-stage RTL lint, which additionally lets the flow skip
#: re-emitting the HDL text when the caller only wanted the lint.
#: Verification is idempotent over content-addressed artifacts, so a
#: warm sweep pays each battery once per distinct artifact instead of
#: once per corner.  Only *recalled* or *preloaded* artifacts are
#: memoised: anything computed in this run is always checked, so an
#: injected transform or scheduler bug can never hide behind a clean
#: sibling's verdict.
_VERIFIED_BOUNDARIES: set = set()
_VERIFIED_BOUNDARIES_MAX = 4096


def _boundary_check(
    memo_key: Optional[Tuple[object, ...]],
    check: Callable[[], None],
) -> None:
    """Run *check* unless *memo_key* (a non-None tuple naming a
    recalled artifact) already passed it in this process."""
    if memo_key is not None and memo_key in _VERIFIED_BOUNDARIES:
        return
    check()
    if memo_key is not None:
        if len(_VERIFIED_BOUNDARIES) >= _VERIFIED_BOUNDARIES_MAX:
            _VERIFIED_BOUNDARIES.clear()
        _VERIFIED_BOUNDARIES.add(memo_key)


def _record(
    records: List[StageRecord], stage: str, started: float, cached: bool
) -> None:
    """Append one stage's timing record, closing its perf_counter span."""
    records.append(
        StageRecord(
            stage=stage,
            elapsed=time.perf_counter() - started,
            cached=cached,
        )
    )


def _as_transform_artifact(
    artifact: object,
) -> Optional[Tuple[Design, List[PassReport]]]:
    """Validate a recalled transform artifact; None when it is not
    the (design, reports) pair this code writes (type confusion reads
    as a miss, exactly like corruption)."""
    if (
        isinstance(artifact, tuple)
        and len(artifact) == 2
        and isinstance(artifact[0], Design)
        and isinstance(artifact[1], list)
    ):
        return artifact[0], list(artifact[1])
    return None


def run_flow(
    request: FlowRequest,
    store: Optional[StageArtifactStore] = None,
    records: Optional[List[StageRecord]] = None,
    preloaded: Optional[Tuple[Design, List[PassReport]]] = None,
    capture: Optional[Dict[str, object]] = None,
    dag_cache: Optional[DagCache] = None,
) -> FlowOutput:
    """Execute the stage graph for one run (see the module docstring).

    *records* may be a caller-owned accumulator: it is appended to as
    stages settle, so when a stage raises (unschedulable corner, parse
    error) the caller still holds the partial timing records.

    The batch-execution hooks (:func:`repro.spark.execute_job_batch`):

    *preloaded* short-circuits the frontend and transform stages with
    an already in-memory ``(design, reports)`` transform artifact —
    the caller vouches that it is exactly what this request's
    transform prefix would produce (the batch runner keys snapshots by
    the transform stage key).  Both stages record as zero-cost hits;
    downstream stages must not mutate the design, and none do (the
    scheduler, binder, estimator and emitters only *read* it).

    *capture*, when a dict, receives ``capture["transform"] =
    (design, reports)`` the moment the transform artifact is resolved
    — computed, recalled from the store, or preloaded — so a batch
    runner can reuse the in-memory snapshot for sibling corners even
    when no store is configured.

    *dag_cache* is threaded to the scheduler
    (:class:`repro.scheduler.ready_list.DagCache`): corners sharing a
    transform snapshot reuse each block's dependence DAG + priority
    computation, rebuilding only clock/allocation placement state.
    """
    records = records if records is not None else []
    script = request.script
    library = request.library if request.library is not None else ResourceLibrary()
    use_store = store is not None and request.design is None
    keys: Dict[str, str] = (
        job_stage_keys(request, PERSISTED_STAGES) if use_store else {}
    )

    def record(stage: str, started: float, cached: bool) -> None:
        _record(records, stage, started, cached)

    # -- frontend + transform ----------------------------------------------
    design: Optional[Design] = request.design
    reports: List[PassReport] = []
    recalled = False
    if design is not None:
        started = time.perf_counter()
        manager = build_pass_manager(
            script,
            verifier=make_pass_verifier(script) if request.verify else None,
        )
        manager.run_until_fixpoint(design)
        reports = manager.reports
        record("transform", started, False)
    elif preloaded is not None:
        # An in-memory snapshot from a sibling corner of the same
        # batch: semantically identical to a store hit (the caller
        # keys snapshots by the transform stage key), minus the
        # unpickle — both early stages settle as zero-cost hits.
        design, reports = preloaded[0], list(preloaded[1])
        records.append(StageRecord(stage="frontend", cached=True))
        records.append(StageRecord(stage="transform", cached=True))
        recalled = True
    else:
        design, reports, recalled = _frontend_and_transform(
            request, store if use_store else None, keys, records
        )
    if request.verify:
        # The full design battery at the stage boundary — the one
        # place every path (computed, recalled, preloaded) funnels
        # through, so recalled artifacts are verified exactly once.
        # Literally once: recalled artifacts are content-addressed by
        # the transform stage key, so a key that already passed in
        # this process (any corner of a sweep sharing the snapshot)
        # skips the re-check.  Computed designs are never memoised.
        memo_key = None
        if recalled and keys.get("transform"):
            memo_key = (
                "transform",
                keys["transform"],
                tuple(sorted(script.pure_functions)),
            )
        _boundary_check(
            memo_key,
            lambda: check_design(
                design,
                pure_functions=script.pure_functions,
                context="at the transform stage boundary",
            ),
        )
    if capture is not None:
        capture["transform"] = (design, reports)

    # -- schedule -----------------------------------------------------------
    allocation = ResourceAllocation(limits=dict(script.resource_limits))
    state_machine: Optional[StateMachine] = None
    schedule_recalled = False
    if use_store:
        started = time.perf_counter()
        artifact = store.get(keys["schedule"])  # type: ignore[union-attr]
        if isinstance(artifact, StateMachine):
            state_machine = artifact
            schedule_recalled = True
            record("schedule", started, True)
        elif artifact is not None:
            store.drop(keys["schedule"])  # type: ignore[union-attr]
    if state_machine is None:
        started = time.perf_counter()
        scheduler = ChainingScheduler(
            library=library,
            clock_period=script.clock_period,
            allocation=allocation,
            priority=script.scheduler_priority,
            dag_cache=dag_cache,
        )
        state_machine = scheduler.schedule(design.main)
        record("schedule", started, False)
        if use_store:
            store.put(keys["schedule"], state_machine)  # type: ignore[union-attr]
    if request.verify:
        # The schedule stage key already covers the clock, allocation
        # and resource library, so a recalled state machine that
        # passed once in this process needs no re-check.
        memo_key = (
            ("schedule", keys["schedule"]) if schedule_recalled else None
        )
        _boundary_check(
            memo_key,
            lambda: check_schedule(
                state_machine,
                library=library,
                allocation=allocation,
                context="at the schedule stage boundary",
            ),
        )

    output = FlowOutput(
        design=design,
        state_machine=state_machine,
        reports=reports,
        records=records,
    )

    # -- bind + estimate ----------------------------------------------------
    boundary = set(script.output_scalars)
    if request.bind:
        started = time.perf_counter()
        output.lifetimes = LifetimeAnalysis(
            state_machine, boundary_live=boundary
        )
        output.register_binding = bind_registers(
            state_machine, boundary_live=boundary, lifetimes=output.lifetimes
        )
        output.fu_binding = bind_functional_units(state_machine, library)
        record("bind", started, False)
        if request.verify:
            check_binding(
                state_machine,
                output.lifetimes,
                output.register_binding,
                output.fu_binding,
                library=library,
                context="at the bind stage boundary",
            )
        started = time.perf_counter()
        output.area = estimate_area(
            state_machine,
            library=library,
            fu_binding=output.fu_binding,
            register_binding=output.register_binding,
            boundary_live=boundary,
        )
        output.timing = estimate_timing(state_machine)
        record("estimate", started, False)

    # -- emit ---------------------------------------------------------------
    if request.emit or request.lint_rtl:
        interface = request.interface or DesignInterface(
            name=design.main.name
        )
        # The emit stage boundary: lint both backends against the
        # schedule.  Emission is a pure function of the schedule plus
        # the interface reference, so a recalled schedule that linted
        # clean once in this process (under the same entity and
        # environment) needs no re-check — and when the caller did not
        # ask for the HDL text itself, no re-emission either.
        # Anything scheduled in this run is always emitted and linted.
        memo_key = None
        if request.lint_rtl and schedule_recalled and keys.get("schedule"):
            memo_key = (
                "rtl",
                keys["schedule"],
                request.entity,
                request.environment,
                tuple(request.environment_args),
            )
        memo_hit = memo_key is not None and memo_key in _VERIFIED_BOUNDARIES
        if request.emit or not memo_hit:
            started = time.perf_counter()
            output.vhdl = emit_vhdl(state_machine, interface)
            output.verilog = emit_verilog(state_machine, interface)
            record("emit", started, False)
        else:
            record("emit", time.perf_counter(), True)
        if request.lint_rtl:
            started = time.perf_counter()
            _boundary_check(
                memo_key,
                lambda: check_rtl(
                    state_machine,
                    interface=interface,
                    verilog=output.verilog,
                    vhdl=output.vhdl,
                    context="at the emit stage boundary",
                ),
            )
            record("rtl-lint", started, memo_hit)
    return output


def _frontend_and_transform(
    request: FlowRequest,
    store: Optional[StageArtifactStore],
    keys: Dict[str, str],
    records: List[StageRecord],
) -> Tuple[Design, List[PassReport], bool]:
    """Source-driven frontend + transform with artifact reuse.

    Probes the *transform* artifact first — a hit subsumes the
    frontend entirely (recorded as a zero-cost hit) — then falls back
    to the frontend artifact, then to parsing.  The trailing bool
    reports whether the transform artifact was *recalled* (True) or
    computed by running the pass pipeline here (False).
    """

    def record(stage: str, started: float, cached: bool) -> None:
        _record(records, stage, started, cached)

    if store is not None:
        started = time.perf_counter()
        artifact = _as_transform_artifact(store.get(keys["transform"]))
        if artifact is not None:
            design, reports = artifact
            records.append(StageRecord(stage="frontend", cached=True))
            record("transform", started, True)
            return design, reports, True

    started = time.perf_counter()
    design: Optional[Design] = None
    if store is not None:
        artifact = store.get(keys["frontend"])
        if isinstance(artifact, Design):
            design = artifact
        elif artifact is not None:
            store.drop(keys["frontend"])
    frontend_hit = design is not None
    if design is None:
        design = design_from_source(request.source)
        if request.verify:
            check_design(
                design,
                pure_functions=request.script.pure_functions,
                context="after the frontend stage",
            )
    record("frontend", started, frontend_hit)
    if store is not None and not frontend_hit:
        store.put(keys["frontend"], design)

    started = time.perf_counter()
    manager = build_pass_manager(
        request.script,
        verifier=make_pass_verifier(request.script) if request.verify else None,
    )
    manager.run_until_fixpoint(design)
    record("transform", started, False)
    if store is not None:
        store.put(keys["transform"], (design, list(manager.reports)))
    return design, manager.reports, False
