"""The staged synthesis flow: named stages, typed artifacts, keys.

``repro.flow`` makes the paper's implicit pipeline explicit — the
stage names live in :data:`repro.transforms.base.SYNTHESIS_STAGES`
(``frontend -> transform -> schedule -> bind -> estimate -> emit``)
alongside the script-knob partition that says which knobs each stage
consumes:

* :mod:`repro.flow.pipeline` — :func:`run_flow` executes the stage
  graph, timing each stage and recalling/persisting the expensive
  early stages through an artifact store;
* :mod:`repro.flow.keys` — cumulative content hashes: a stage's key
  covers exactly the inputs consumed so far, so corners differing
  only in later-stage knobs share earlier artifacts automatically;
* :mod:`repro.flow.artifacts` — the pickled snapshot store living
  beside the outcome cache and governed by the same lock/LRU-gc
  service.

``docs/architecture.md`` describes the stage graph and the cache-key
contract in full.
"""

from repro.flow.artifacts import STAGE_SUFFIX, StageArtifactStore
from repro.flow.keys import (
    STAGE_FORMAT,
    job_stage_key,
    job_stage_keys,
    stage_key,
    stage_prefix_data,
)
from repro.flow.pipeline import (
    PERSISTED_STAGES,
    FlowOutput,
    FlowRequest,
    StageRecord,
    build_pass_manager,
    run_flow,
)
from repro.transforms.base import (
    STAGE_SCRIPT_FIELDS,
    SYNTHESIS_STAGES,
    stage_for_script_field,
)

__all__ = [
    "FlowOutput",
    "FlowRequest",
    "PERSISTED_STAGES",
    "STAGE_FORMAT",
    "STAGE_SCRIPT_FIELDS",
    "STAGE_SUFFIX",
    "SYNTHESIS_STAGES",
    "StageArtifactStore",
    "StageRecord",
    "build_pass_manager",
    "job_stage_key",
    "job_stage_keys",
    "run_flow",
    "stage_for_script_field",
    "stage_key",
    "stage_prefix_data",
]
