"""A library of microprocessor functional blocks.

The paper's conclusion: "Similar, short behavioral descriptions can be
used to describe several such low latency functional blocks in
microprocessors."  This subpackage collects such blocks — each one a
behavioral description, a golden Python model, and a port interface —
so the coordinated-transformation flow can be evaluated across a suite
rather than a single case study:

=====================  ==================================================
priority encoder       find-first-set over a request vector (allocators,
                       schedulers, the ILD's own marking chain)
leading-zero counter   normalization shifts, floating-point pipelines
population count       branch predictors, bit-manipulation units
tag comparator         branch target buffer / TLB hit logic
=====================  ==================================================

Every block synthesizes to a single cycle under the µP-block script
(validated exhaustively or on dense random sweeps in the tests), and
to a small multi-cycle FSM under the ASIC script.
"""

from repro.blocks.library import (
    BLOCKS,
    FunctionalBlock,
    leading_zero_counter,
    popcount,
    priority_encoder,
    tag_comparator,
)

__all__ = [
    "BLOCKS",
    "FunctionalBlock",
    "leading_zero_counter",
    "popcount",
    "priority_encoder",
    "tag_comparator",
]
