"""Behavioral descriptions + golden models for classic µP blocks.

Each :class:`FunctionalBlock` bundles what the flow needs: the
behavioral C source (a natural loop-based description, as the paper
advocates), the port interface, a golden Python model, and a stimulus
generator.  ``synthesize()`` runs the microprocessor-block script and
returns the session + result, ready for RTL-vs-golden validation.

Bit vectors are passed as 1-based arrays (``bits[1..width]``), matching
the ILD's 1-based buffer convention.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.backend.interface import DesignInterface
from repro.spark import SparkSession, SynthesisResult
from repro.transforms.base import SynthesisScript


@dataclass(frozen=True)
class FunctionalBlock:
    """One functional block: source, interface, golden model."""

    name: str
    width: int
    source: str
    interface: DesignInterface
    #: golden model: bit list (1-based, index 0 unused) -> scalar outputs
    golden: Callable[[Sequence[int]], Dict[str, int]]
    #: names of the scalar outputs, in report order
    outputs: Tuple[str, ...]

    def synthesize(
        self, script: SynthesisScript = None
    ) -> Tuple[SparkSession, SynthesisResult]:
        """Run the flow (µP-block script unless overridden)."""
        session = SparkSession(
            self.source,
            script=script or SynthesisScript.microprocessor_block(),
            interface=self.interface,
        )
        return session, session.run()

    def random_vector(self, rng: random.Random) -> List[int]:
        """A 1-based random bit vector for the block's width."""
        return [0] + [rng.randrange(2) for _ in range(self.width)]

    def vector_from_int(self, value: int) -> List[int]:
        """1-based bit vector from an integer (bit 1 = LSB)."""
        return [0] + [
            (value >> (k - 1)) & 1 for k in range(1, self.width + 1)
        ]


# --------------------------------------------------------------------------
# Priority encoder (find-first-set)
# --------------------------------------------------------------------------

def priority_encoder(width: int = 8) -> FunctionalBlock:
    """First set bit position (LSB-first), 0 when empty."""
    source = f"""
    int bits[{width + 1}];
    int pos; int found; int i;
    pos = 0;
    found = 0;
    for (i = 1; i <= {width}; i++) {{
      if (found == 0) {{
        if (bits[i] != 0) {{
          pos = i;
          found = 1;
        }}
      }}
    }}
    """

    def golden(bits: Sequence[int]) -> Dict[str, int]:
        for position in range(1, width + 1):
            if bits[position]:
                return {"pos": position, "found": 1}
        return {"pos": 0, "found": 0}

    return FunctionalBlock(
        name="priority_encoder",
        width=width,
        source=source,
        interface=DesignInterface(
            name="priority_encoder",
            input_arrays={"bits": width + 1},
            scalar_outputs=["pos", "found"],
        ),
        golden=golden,
        outputs=("pos", "found"),
    )


# --------------------------------------------------------------------------
# Leading-zero counter
# --------------------------------------------------------------------------

def leading_zero_counter(width: int = 8) -> FunctionalBlock:
    """Zeros before the first set bit, scanning MSB-first
    (bit ``width`` is the MSB)."""
    source = f"""
    int bits[{width + 1}];
    int count; int done; int i;
    count = 0;
    done = 0;
    for (i = {width}; i >= 1; i--) {{
      if (done == 0) {{
        if (bits[i] != 0) {{
          done = 1;
        }} else {{
          count = count + 1;
        }}
      }}
    }}
    """

    def golden(bits: Sequence[int]) -> Dict[str, int]:
        count = 0
        for position in range(width, 0, -1):
            if bits[position]:
                break
            count += 1
        return {"count": count}

    return FunctionalBlock(
        name="leading_zero_counter",
        width=width,
        source=source,
        interface=DesignInterface(
            name="leading_zero_counter",
            input_arrays={"bits": width + 1},
            scalar_outputs=["count"],
        ),
        golden=golden,
        outputs=("count",),
    )


# --------------------------------------------------------------------------
# Population count
# --------------------------------------------------------------------------

def popcount(width: int = 8) -> FunctionalBlock:
    """Number of set bits — after unrolling this is a pure adder
    tree, the all-data no-control extreme of the block spectrum."""
    source = f"""
    int bits[{width + 1}];
    int ones; int i;
    ones = 0;
    for (i = 1; i <= {width}; i++) {{
      ones = ones + bits[i];
    }}
    """

    def golden(bits: Sequence[int]) -> Dict[str, int]:
        return {"ones": sum(bits[1 : width + 1])}

    return FunctionalBlock(
        name="popcount",
        width=width,
        source=source,
        interface=DesignInterface(
            name="popcount",
            input_arrays={"bits": width + 1},
            scalar_outputs=["ones"],
        ),
        golden=golden,
        outputs=("ones",),
    )


# --------------------------------------------------------------------------
# Tag comparator (BTB/TLB hit logic)
# --------------------------------------------------------------------------

def tag_comparator(entries: int = 4) -> FunctionalBlock:
    """Fully-associative tag match: which of ``entries`` valid tags
    equals the lookup tag (one-hot index + hit flag) — the control
    heavy extreme, all comparison and steering."""
    source = f"""
    int tags[{entries + 1}];
    int valid[{entries + 1}];
    int hit; int way; int i;
    hit = 0;
    way = 0;
    for (i = 1; i <= {entries}; i++) {{
      if (hit == 0) {{
        if (valid[i] != 0) {{
          if (tags[i] == lookup) {{
            hit = 1;
            way = i;
          }}
        }}
      }}
    }}
    """

    def golden(state: Sequence[int]) -> Dict[str, int]:
        # state packs [unused, tag1..tagN, valid1..validN, lookup]
        tags = state[1 : entries + 1]
        valid = state[entries + 1 : 2 * entries + 1]
        lookup = state[2 * entries + 1]
        for way in range(entries):
            if valid[way] and tags[way] == lookup:
                return {"hit": 1, "way": way + 1}
        return {"hit": 0, "way": 0}

    return FunctionalBlock(
        name="tag_comparator",
        width=entries,
        source=source,
        interface=DesignInterface(
            name="tag_comparator",
            scalar_inputs=["lookup"],
            input_arrays={"tags": entries + 1, "valid": entries + 1},
            scalar_outputs=["hit", "way"],
        ),
        golden=golden,
        outputs=("hit", "way"),
    )


#: The default evaluation suite.
BLOCKS: Dict[str, Callable[[], FunctionalBlock]] = {
    "priority_encoder": priority_encoder,
    "leading_zero_counter": leading_zero_counter,
    "popcount": popcount,
    "tag_comparator": tag_comparator,
}
