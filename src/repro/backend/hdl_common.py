"""Shared helpers for the HDL emitters."""

from __future__ import annotations

from typing import Dict, List, Set

from repro.ir import expr_utils
from repro.scheduler.schedule import IfItem, Item, OpItem, StateMachine


def collect_scalars(sm: StateMachine) -> Set[str]:
    """Every scalar variable appearing anywhere in the schedule."""
    names: Set[str] = set()

    def walk(items: List[Item]) -> None:
        for item in items:
            if isinstance(item, OpItem):
                names.update(item.op.reads())
                names.update(item.op.writes())
            else:
                names.update(expr_utils.variables_read(item.cond))
                walk(item.then_items)
                walk(item.else_items)

    for state in sm.reachable_states():
        walk(state.items)
        if state.branch is not None:
            names.update(expr_utils.variables_read(state.branch.cond))
    return names


def collect_externals(sm: StateMachine) -> Set[str]:
    """External function names used by the schedule."""
    names: Set[str] = set()

    def walk(items: List[Item]) -> None:
        for item in items:
            if isinstance(item, OpItem):
                for call in expr_utils.calls_in(item.op.expr):
                    names.add(call.name)
                if item.op.target is not None:
                    for call in expr_utils.calls_in(item.op.target):
                        names.add(call.name)
            else:
                for call in expr_utils.calls_in(item.cond):
                    names.add(call.name)
                walk(item.then_items)
                walk(item.else_items)

    for state in sm.reachable_states():
        walk(state.items)
        if state.branch is not None:
            for call in expr_utils.calls_in(state.branch.cond):
                names.add(call.name)
    return names


def state_constant_name(state_id: int) -> str:
    """Symbolic FSM-state constant name for HDL case arms."""
    return f"S{state_id}"
