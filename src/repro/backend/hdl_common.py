"""Shared helpers for the HDL emitters and the RTL linter."""

from __future__ import annotations

from typing import Iterator, List, Sequence, Set

from repro.frontend.ast_nodes import Expr
from repro.ir import expr_utils
from repro.scheduler.schedule import IfItem, Item, OpItem, StateMachine


def walk_items(items: Sequence[Item]) -> Iterator[Item]:
    """Pre-order traversal of a scheduled item tree: every item in
    emission order, recursing through both branches of each chained
    conditional.  The one traversal the emitters and the RTL linter
    build their collectors on."""
    for item in items:
        yield item
        if isinstance(item, IfItem):
            yield from walk_items(item.then_items)
            yield from walk_items(item.else_items)


def schedule_items(sm: StateMachine) -> Iterator[Item]:
    """Every item of every reachable state, in state/emission order."""
    for state in sm.reachable_states():
        yield from walk_items(state.items)


def schedule_conditions(sm: StateMachine) -> Iterator[Expr]:
    """Every condition the FSMD evaluates: chained-conditional guards
    and state-level branch conditions, over reachable states."""
    for state in sm.reachable_states():
        for item in walk_items(state.items):
            if isinstance(item, IfItem):
                yield item.cond
        if state.branch is not None:
            yield state.branch.cond


def collect_scalars(sm: StateMachine) -> Set[str]:
    """Every scalar variable appearing anywhere in the schedule."""
    names: Set[str] = set()
    for item in schedule_items(sm):
        if isinstance(item, OpItem):
            names.update(item.op.reads())
            names.update(item.op.writes())
    for cond in schedule_conditions(sm):
        names.update(expr_utils.variables_read(cond))
    return names


def collect_externals(sm: StateMachine) -> Set[str]:
    """External function names used by the schedule."""
    names: Set[str] = set()
    exprs: List[Expr] = []
    for item in schedule_items(sm):
        if isinstance(item, OpItem):
            if item.op.expr is not None:
                exprs.append(item.op.expr)
            if item.op.target is not None:
                exprs.append(item.op.target)
    exprs.extend(schedule_conditions(sm))
    for expr in exprs:
        for call in expr_utils.calls_in(expr):
            names.add(call.name)
    return names


def state_constant_name(state_id: int) -> str:
    """Symbolic FSM-state constant name for HDL case arms."""
    return f"S{state_id}"
