"""Cycle-accurate simulation of the scheduled FSMD.

Each simulated clock cycle executes one FSM state: the state's item
tree runs with sequential (VHDL-process-variable) semantics — a value
written earlier in the cycle is visible to later readers through the
chaining wires, which is exactly what the wire-variable transformation
guarantees the hardware does — and the state transition is evaluated
from the end-of-cycle values.

The simulator is the reproduction's hardware oracle: tests run the
same inputs through the behavioral interpreter and the RTL simulator
and require identical observable state, plus they assert on the cycle
count (the ILD must finish in ONE cycle after the full transformation
pipeline).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.frontend.ast_nodes import (
    ArrayRef,
    BinOp,
    Call,
    Expr,
    IntLit,
    Ternary,
    UnaryOp,
    Var,
)
from repro.ir import expr_utils
from repro.ir.operations import Operation, OpKind
from repro.scheduler.schedule import IfItem, Item, OpItem, StateMachine


class RTLSimulationError(Exception):
    """Raised on undefined reads, bad array accesses or runaway FSMs."""


@dataclass
class RTLResult:
    """Observable state after the FSM halts."""

    scalars: Dict[str, int] = field(default_factory=dict)
    arrays: Dict[str, List[int]] = field(default_factory=dict)
    cycles: int = 0
    state_trace: List[int] = field(default_factory=list)

    def snapshot(self) -> Dict[str, object]:
        """Scalars and arrays as one dict (interpreter-compatible)."""
        return {
            "scalars": dict(self.scalars),
            "arrays": {name: list(vals) for name, vals in self.arrays.items()},
        }


class RTLSimulator:
    """Executes a :class:`StateMachine` cycle by cycle."""

    def __init__(
        self,
        sm: StateMachine,
        externals: Optional[Dict[str, Callable[..., int]]] = None,
        max_cycles: int = 100_000,
    ) -> None:
        self.sm = sm
        self.externals = externals or {}
        self.max_cycles = max_cycles

    def run(
        self,
        inputs: Optional[Dict[str, int]] = None,
        array_inputs: Optional[Dict[str, List[int]]] = None,
    ) -> RTLResult:
        """Reset, load inputs, and clock the FSM until it halts."""
        env: Dict[str, int] = dict(inputs or {})
        arrays: Dict[str, List[int]] = {}
        for name, size in self.sm.func.arrays.items():
            arrays[name] = [0] * size
        if array_inputs:
            for name, values in array_inputs.items():
                if name in arrays:
                    for index in range(min(len(arrays[name]), len(values))):
                        arrays[name][index] = values[index]
                else:
                    arrays[name] = list(values)

        result = RTLResult(scalars=env, arrays=arrays)
        state_id = self.sm.entry_state
        while state_id is not None:
            if result.cycles >= self.max_cycles:
                raise RTLSimulationError(
                    f"FSM did not halt within {self.max_cycles} cycles"
                )
            state = self.sm.states[state_id]
            result.cycles += 1
            result.state_trace.append(state_id)
            self._exec_items(state.items, env, arrays)
            if state.branch is not None:
                taken = bool(self._eval(state.branch.cond, env, arrays))
                state_id = (
                    state.branch.true_next if taken else state.branch.false_next
                )
            else:
                state_id = state.default_next
        return result

    # -- execution ------------------------------------------------------------

    def _exec_items(
        self, items: List[Item], env: Dict[str, int], arrays: Dict[str, List[int]]
    ) -> None:
        for item in items:
            if isinstance(item, OpItem):
                self._exec_op(item.op, env, arrays)
            else:
                if bool(self._eval(item.cond, env, arrays)):
                    self._exec_items(item.then_items, env, arrays)
                else:
                    self._exec_items(item.else_items, env, arrays)

    def _exec_op(
        self, op: Operation, env: Dict[str, int], arrays: Dict[str, List[int]]
    ) -> None:
        expr = op.expr
        if expr is None:
            if op.kind is OpKind.ASSIGN:
                raise RTLSimulationError(
                    f"assignment without an expression: {op}"
                )
            return  # a call/return payload is optional; nothing to do
        if op.kind is OpKind.ASSIGN:
            value = self._eval(expr, env, arrays)
            if isinstance(op.target, Var):
                env[op.target.name] = value
            elif isinstance(op.target, ArrayRef):
                index = self._eval(op.target.index, env, arrays)
                array = arrays.get(op.target.name)
                if array is None:
                    raise RTLSimulationError(
                        f"store to undeclared array {op.target.name!r}"
                    )
                if not 0 <= index < len(array):
                    raise RTLSimulationError(
                        f"array store out of bounds: "
                        f"{op.target.name}[{index}] (size {len(array)})"
                    )
                array[index] = value
        elif op.kind is OpKind.CALL:
            self._eval(expr, env, arrays)
        elif op.kind is OpKind.RETURN:
            env["__return"] = self._eval(expr, env, arrays)

    def _eval(
        self, expr: Expr, env: Dict[str, int], arrays: Dict[str, List[int]]
    ) -> int:
        if isinstance(expr, IntLit):
            return expr.value
        if isinstance(expr, Var):
            try:
                return env[expr.name]
            except KeyError:
                raise RTLSimulationError(
                    f"read of undriven net {expr.name!r}"
                ) from None
        if isinstance(expr, ArrayRef):
            index = self._eval(expr.index, env, arrays)
            array = arrays.get(expr.name)
            if array is None:
                raise RTLSimulationError(f"read of undeclared array {expr.name!r}")
            if not 0 <= index < len(array):
                raise RTLSimulationError(
                    f"array read out of bounds: {expr.name}[{index}] "
                    f"(size {len(array)})"
                )
            return array[index]
        if isinstance(expr, BinOp):
            if expr.op == "&&":
                return int(
                    bool(self._eval(expr.left, env, arrays))
                    and bool(self._eval(expr.right, env, arrays))
                )
            if expr.op == "||":
                return int(
                    bool(self._eval(expr.left, env, arrays))
                    or bool(self._eval(expr.right, env, arrays))
                )
            return expr_utils.eval_binary(
                expr.op,
                self._eval(expr.left, env, arrays),
                self._eval(expr.right, env, arrays),
            )
        if isinstance(expr, UnaryOp):
            return expr_utils.eval_unary(
                expr.op, self._eval(expr.operand, env, arrays)
            )
        if isinstance(expr, Ternary):
            if self._eval(expr.cond, env, arrays):
                return self._eval(expr.if_true, env, arrays)
            return self._eval(expr.if_false, env, arrays)
        if isinstance(expr, Call):
            args = [self._eval(arg, env, arrays) for arg in expr.args]
            fn = self.externals.get(expr.name)
            if fn is None:
                raise RTLSimulationError(
                    f"no library block bound for external {expr.name!r}"
                )
            if getattr(fn, "wants_state", False):
                from repro.interp.evaluator import MachineState

                state = MachineState(scalars=env, arrays=arrays)
                return int(fn(*args, state=state))
            return int(fn(*args))
        raise RTLSimulationError(f"unknown expression {expr!r}")
