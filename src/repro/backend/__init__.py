"""RTL backend: FSMD simulation and HDL emission.

* :mod:`repro.backend.rtl_sim` — cycle-accurate execution of the
  scheduled :class:`~repro.scheduler.schedule.StateMachine`.  Used by
  the test suite to prove the synthesized design computes the same
  result as the behavioral interpreter, cycle counts included.
* :mod:`repro.backend.vhdl` — synthesizable register-transfer VHDL,
  following the paper's mapping: registers become VHDL *signals*,
  wire-variables become VHDL *variables* (footnote 1).
* :mod:`repro.backend.verilog` — the same FSMD as Verilog-2001.
"""

from repro.backend.interface import DesignInterface
from repro.backend.rtl_sim import RTLResult, RTLSimulator
from repro.backend.vhdl import VHDLEmitter, emit_vhdl
from repro.backend.verilog import VerilogEmitter, emit_verilog

__all__ = [
    "DesignInterface",
    "RTLResult",
    "RTLSimulator",
    "VHDLEmitter",
    "VerilogEmitter",
    "emit_verilog",
    "emit_vhdl",
]
