"""Design interface: which storage is a port, which is internal.

The microprocessor-block architecture of Fig 1(b) stores block inputs
and outputs "in memory elements such as buffers and queues"; for the
ILD the instruction buffer is the input bus and the ``Mark`` bit
vector is the output.  The interface declaration tells the HDL
emitters what to expose as ports and the estimators what not to count
as internal registers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class DesignInterface:
    """Port declaration for a synthesized function.

    Attributes
    ----------
    name:
        entity/module name.
    scalar_inputs:
        scalar variables driven from outside (read at cycle start).
    scalar_outputs:
        scalar results observable outside.
    input_arrays / output_arrays:
        array name -> element count; exposed as flat buses.
    internal_arrays:
        arrays kept inside the design (scratch memories).
    """

    name: str = "design"
    scalar_inputs: List[str] = field(default_factory=list)
    scalar_outputs: List[str] = field(default_factory=list)
    input_arrays: Dict[str, int] = field(default_factory=dict)
    output_arrays: Dict[str, int] = field(default_factory=dict)
    internal_arrays: Dict[str, int] = field(default_factory=dict)

    def all_arrays(self) -> Dict[str, int]:
        """Every array the design touches, merged across port roles."""
        merged = dict(self.input_arrays)
        merged.update(self.output_arrays)
        merged.update(self.internal_arrays)
        return merged

    def is_port_array(self, name: str) -> bool:
        """True when *name* is an input or output array port."""
        return name in self.input_arrays or name in self.output_arrays
