"""Abstract syntax tree for the behavioral C subset.

Every node records its source line so that later passes can report
diagnostics in terms of the original behavioral description.  Nodes are
plain dataclasses; the tree is immutable by convention (transformations
operate on the HTG IR, never on the AST).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass
class Node:
    """Base class for all AST nodes."""

    line: int = field(default=0, compare=False)


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr(Node):
    """Base class for expressions."""


@dataclass
class IntLit(Expr):
    """Integer literal, e.g. ``42``."""

    value: int = 0

    def __str__(self) -> str:
        return str(self.value)


@dataclass
class Var(Expr):
    """Reference to a scalar variable."""

    name: str = ""

    def __str__(self) -> str:
        return self.name


@dataclass
class ArrayRef(Expr):
    """Reference to an array element, ``name[index]``."""

    name: str = ""
    index: Optional[Expr] = None

    def __str__(self) -> str:
        return f"{self.name}[{self.index}]"


@dataclass
class BinOp(Expr):
    """Binary operation, e.g. ``a + b`` or ``x && y``."""

    op: str = ""
    left: Optional[Expr] = None
    right: Optional[Expr] = None

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass
class UnaryOp(Expr):
    """Unary operation: ``-x``, ``!cond`` or ``~bits``."""

    op: str = ""
    operand: Optional[Expr] = None

    def __str__(self) -> str:
        return f"({self.op}{self.operand})"


@dataclass
class Call(Expr):
    """Function call expression, ``f(a, b)``."""

    name: str = ""
    args: List[Expr] = field(default_factory=list)

    def __str__(self) -> str:
        rendered = ", ".join(str(a) for a in self.args)
        return f"{self.name}({rendered})"


@dataclass
class Ternary(Expr):
    """Conditional expression ``cond ? a : b`` (C ternary operator)."""

    cond: Optional[Expr] = None
    if_true: Optional[Expr] = None
    if_false: Optional[Expr] = None

    def __str__(self) -> str:
        return f"({self.cond} ? {self.if_true} : {self.if_false})"


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt(Node):
    """Base class for statements."""


@dataclass
class Decl(Stmt):
    """Variable declaration: ``int x;``, ``int x = e;`` or ``int a[N];``."""

    name: str = ""
    array_size: Optional[int] = None
    init: Optional[Expr] = None


@dataclass
class Assign(Stmt):
    """Assignment ``lhs = rhs;``.

    Compound assignments (``+=`` etc.) and increments (``i++``) are
    desugared by the parser into plain assignments, so ``op`` is always
    ``"="`` after parsing.
    """

    target: Optional[Expr] = None  # Var or ArrayRef
    value: Optional[Expr] = None


@dataclass
class ExprStmt(Stmt):
    """An expression evaluated for its side effects — in this language
    only a call statement, e.g. ``ResetArray(Mark);``."""

    expr: Optional[Expr] = None


@dataclass
class If(Stmt):
    """``if (cond) then_body else else_body``."""

    cond: Optional[Expr] = None
    then_body: List[Stmt] = field(default_factory=list)
    else_body: List[Stmt] = field(default_factory=list)


@dataclass
class For(Stmt):
    """``for (init; cond; step) body``.

    ``init`` and ``step`` are single statements (assignments after
    desugaring); either may be ``None`` for degenerate loops.
    """

    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    step: Optional[Stmt] = None
    body: List[Stmt] = field(default_factory=list)


@dataclass
class While(Stmt):
    """``while (cond) body``.  ``while(1)`` is the paper's Fig 16 form."""

    cond: Optional[Expr] = None
    body: List[Stmt] = field(default_factory=list)


@dataclass
class Break(Stmt):
    """``break;`` — exits the innermost loop."""


@dataclass
class Return(Stmt):
    """``return expr;`` (or bare ``return;`` when ``value`` is None)."""

    value: Optional[Expr] = None


@dataclass
class Block(Stmt):
    """A braced statement list used as a single statement."""

    body: List[Stmt] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Top level
# ---------------------------------------------------------------------------


@dataclass
class FuncDef(Node):
    """Function definition.

    ``return_type`` is ``"int"`` or ``"void"``; parameters are scalar
    ``int`` names (the paper's examples never pass arrays by value —
    arrays are globals shared with the caller, as in Fig 10).
    """

    name: str = ""
    params: List[str] = field(default_factory=list)
    body: List[Stmt] = field(default_factory=list)
    return_type: str = "int"


@dataclass
class Program(Node):
    """A translation unit: function definitions plus the top-level
    statements (the behavioral "main" body, as in the paper's Fig 10
    where the decode loop appears at top level next to
    ``CalculateLength``)."""

    functions: List[FuncDef] = field(default_factory=list)
    main_body: List[Stmt] = field(default_factory=list)

    def function(self, name: str) -> FuncDef:
        """Look up a function definition by name."""
        for func in self.functions:
            if func.name == name:
                return func
        raise KeyError(f"no function named {name!r}")


def walk_expr(expr: Optional[Expr]):
    """Yield *expr* and all of its sub-expressions, pre-order."""
    if expr is None:
        return
    yield expr
    if isinstance(expr, BinOp):
        yield from walk_expr(expr.left)
        yield from walk_expr(expr.right)
    elif isinstance(expr, UnaryOp):
        yield from walk_expr(expr.operand)
    elif isinstance(expr, ArrayRef):
        yield from walk_expr(expr.index)
    elif isinstance(expr, Call):
        for arg in expr.args:
            yield from walk_expr(arg)
    elif isinstance(expr, Ternary):
        yield from walk_expr(expr.cond)
        yield from walk_expr(expr.if_true)
        yield from walk_expr(expr.if_false)


def walk_stmts(stmts: List[Stmt]):
    """Yield every statement in *stmts*, recursing into control bodies."""
    for stmt in stmts:
        yield stmt
        if isinstance(stmt, If):
            yield from walk_stmts(stmt.then_body)
            yield from walk_stmts(stmt.else_body)
        elif isinstance(stmt, For):
            if stmt.init is not None:
                yield stmt.init
            if stmt.step is not None:
                yield stmt.step
            yield from walk_stmts(stmt.body)
        elif isinstance(stmt, While):
            yield from walk_stmts(stmt.body)
        elif isinstance(stmt, Block):
            yield from walk_stmts(stmt.body)


def expr_variables(expr: Optional[Expr]) -> Tuple[str, ...]:
    """Names of all scalar variables read by *expr* (arrays excluded)."""
    names = []
    for node in walk_expr(expr):
        if isinstance(node, Var):
            names.append(node.name)
    return tuple(names)
