"""Tokenizer for the behavioral C subset.

A small hand-written lexer: no external dependencies, precise source
locations for error reporting, and a token stream that the
recursive-descent parser consumes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List, Optional


class LexerError(Exception):
    """Raised when the input contains a character sequence that is not
    part of the language."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} at line {line}, column {column}")
        self.line = line
        self.column = column


class TokenType(enum.Enum):
    """Classification of lexical tokens."""

    INT_LITERAL = "int_literal"
    IDENT = "ident"
    KEYWORD = "keyword"
    OPERATOR = "operator"
    PUNCT = "punct"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "int",
        "void",
        "if",
        "else",
        "for",
        "while",
        "return",
        "break",
        "bool",
        "true",
        "false",
    }
)

# Longest-match-first operator table.  Three-character operators must be
# listed before their two-character prefixes, and so on.
_OPERATORS = (
    "<<=",
    ">>=",
    "&&",
    "||",
    "==",
    "!=",
    "<=",
    ">=",
    "<<",
    ">>",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "++",
    "--",
    "+",
    "-",
    "*",
    "/",
    "%",
    "<",
    ">",
    "=",
    "!",
    "&",
    "|",
    "^",
    "~",
    "?",
    ":",
)

_PUNCTUATION = ("(", ")", "{", "}", "[", "]", ";", ",")


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source location."""

    type: TokenType
    value: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.type.name}, {self.value!r}, {self.line}:{self.column})"


class Lexer:
    """Converts source text into a list of :class:`Token` objects.

    Supports ``//`` line comments and ``/* ... */`` block comments,
    decimal and hexadecimal (``0x``) integer literals, C identifiers,
    and the operator/punctuation set of the behavioral subset.
    """

    def __init__(self, source: str) -> None:
        self._source = source
        self._pos = 0
        self._line = 1
        self._column = 1

    def tokens(self) -> List[Token]:
        """Tokenize the entire input and return the token list,
        terminated by a single EOF token."""
        result = list(self._iter_tokens())
        result.append(Token(TokenType.EOF, "", self._line, self._column))
        return result

    def _iter_tokens(self) -> Iterator[Token]:
        while True:
            self._skip_whitespace_and_comments()
            if self._pos >= len(self._source):
                return
            token = self._next_token()
            yield token

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        if index < len(self._source):
            return self._source[index]
        return ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self._pos >= len(self._source):
                return
            if self._source[self._pos] == "\n":
                self._line += 1
                self._column = 1
            else:
                self._column += 1
            self._pos += 1

    def _skip_whitespace_and_comments(self) -> None:
        while self._pos < len(self._source):
            char = self._peek()
            if char.isspace():
                self._advance()
            elif char == "/" and self._peek(1) == "/":
                while self._pos < len(self._source) and self._peek() != "\n":
                    self._advance()
            elif char == "/" and self._peek(1) == "*":
                self._skip_block_comment()
            else:
                return

    def _skip_block_comment(self) -> None:
        start_line, start_col = self._line, self._column
        self._advance(2)
        while self._pos < len(self._source):
            if self._peek() == "*" and self._peek(1) == "/":
                self._advance(2)
                return
            self._advance()
        raise LexerError("unterminated block comment", start_line, start_col)

    def _next_token(self) -> Token:
        char = self._peek()
        line, column = self._line, self._column

        if char.isdigit():
            return self._lex_number(line, column)
        if char.isalpha() or char == "_":
            return self._lex_ident(line, column)

        for op in _OPERATORS:
            if self._source.startswith(op, self._pos):
                self._advance(len(op))
                return Token(TokenType.OPERATOR, op, line, column)
        if char in _PUNCTUATION:
            self._advance()
            return Token(TokenType.PUNCT, char, line, column)
        raise LexerError(f"unexpected character {char!r}", line, column)

    def _lex_number(self, line: int, column: int) -> Token:
        start = self._pos
        if self._peek() == "0" and self._peek(1) in ("x", "X"):
            self._advance(2)
            if not self._is_hex_digit(self._peek()):
                raise LexerError("malformed hex literal", line, column)
            while self._is_hex_digit(self._peek()):
                self._advance()
        else:
            while self._peek().isdigit():
                self._advance()
        text = self._source[start : self._pos]
        if self._peek().isalpha() or self._peek() == "_":
            raise LexerError(f"malformed number {text!r}", line, column)
        return Token(TokenType.INT_LITERAL, text, line, column)

    @staticmethod
    def _is_hex_digit(char: str) -> bool:
        return bool(char) and (char.isdigit() or char.lower() in "abcdef")

    def _lex_ident(self, line: int, column: int) -> Token:
        start = self._pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self._source[start : self._pos]
        token_type = TokenType.KEYWORD if text in KEYWORDS else TokenType.IDENT
        return Token(token_type, text, line, column)


def tokenize(source: str) -> List[Token]:
    """Tokenize *source* and return the full token list (EOF-terminated)."""
    return Lexer(source).tokens()


def literal_value(token: Token) -> int:
    """Decode the integer value of an ``INT_LITERAL`` token."""
    if token.type is not TokenType.INT_LITERAL:
        raise ValueError(f"not an integer literal: {token!r}")
    return int(token.value, 0)


def find_token(
    tokens: List[Token], value: str, start: int = 0
) -> Optional[int]:
    """Return the index of the first token with the given *value* at or
    after *start*, or ``None`` when absent.  Utility for tooling/tests."""
    for index in range(start, len(tokens)):
        if tokens[index].value == value:
            return index
    return None
