"""Behavioral C-subset frontend for the Spark-style HLS flow.

The paper's input language is ANSI-C (Section 4: "This synthesis system
takes a behavioral description in ANSI-C as input").  This package
implements the subset of C that covers every code figure in the paper
(Figures 2, 4, 10, 12-16): integer scalars and arrays, arithmetic /
logical / relational / bitwise expressions, ``if``/``else``, ``for`` and
``while`` loops, function definitions and calls, and ``return``.

The public entry point is :func:`parse`, which turns source text into a
:class:`~repro.frontend.ast_nodes.Program` AST.
"""

from repro.frontend.ast_nodes import (
    ArrayRef,
    Assign,
    BinOp,
    Block,
    Break,
    Call,
    Decl,
    ExprStmt,
    For,
    FuncDef,
    If,
    IntLit,
    Node,
    Program,
    Return,
    UnaryOp,
    Var,
    While,
)
from repro.frontend.lexer import Lexer, LexerError, Token, TokenType, tokenize
from repro.frontend.parser import ParseError, Parser, parse

__all__ = [
    "ArrayRef",
    "Assign",
    "BinOp",
    "Block",
    "Break",
    "Call",
    "Decl",
    "ExprStmt",
    "For",
    "FuncDef",
    "If",
    "IntLit",
    "Lexer",
    "LexerError",
    "Node",
    "ParseError",
    "Parser",
    "Program",
    "Return",
    "Token",
    "TokenType",
    "UnaryOp",
    "Var",
    "While",
    "parse",
    "tokenize",
]
