"""Recursive-descent parser for the behavioral C subset.

Grammar (statements)::

    program   := (funcdef | stmt)*
    funcdef   := ("int"|"void") IDENT "(" params? ")" "{" stmt* "}"
    stmt      := decl | assign | call ";" | if | for | while
               | "return" expr? ";" | "break" ";" | "{" stmt* "}"
    decl      := ("int"|"bool") IDENT ("[" expr "]")? ("=" expr)? ";"
    assign    := lvalue ("="|"+="|"-="|...) expr ";"  |  lvalue ("++"|"--") ";"

Expressions use standard C precedence: ``?:``, ``||``, ``&&``, ``|``,
``^``, ``&``, equality, relational, shifts, additive, multiplicative,
unary.  Compound assignments and ``++``/``--`` are desugared into plain
assignments so downstream passes see a single assignment form.
"""

from __future__ import annotations

from typing import List, Optional

from repro.frontend import ast_nodes as ast
from repro.frontend.lexer import Token, TokenType, tokenize


class ParseError(Exception):
    """Raised on a syntax error, with the offending source location."""

    def __init__(self, message: str, token: Token) -> None:
        super().__init__(
            f"{message} (got {token.value!r} at line {token.line}, "
            f"column {token.column})"
        )
        self.token = token


_COMPOUND_OPS = {"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}

# Binary operator precedence levels, weakest first.  Each level is
# left-associative, matching C.
_BINARY_LEVELS = (
    ("||",),
    ("&&",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", ">", "<=", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
)


class Parser:
    """Parses a token stream into a :class:`~repro.frontend.ast_nodes.Program`."""

    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token helpers ------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _check(self, value: str) -> bool:
        return self._peek().value == value and self._peek().type is not TokenType.EOF

    def _match(self, value: str) -> bool:
        if self._check(value):
            self._advance()
            return True
        return False

    def _expect(self, value: str) -> Token:
        if not self._check(value):
            raise ParseError(f"expected {value!r}", self._peek())
        return self._advance()

    def _expect_ident(self) -> Token:
        token = self._peek()
        if token.type is not TokenType.IDENT:
            raise ParseError("expected identifier", token)
        return self._advance()

    # -- top level ----------------------------------------------------

    def parse_program(self) -> ast.Program:
        """Parse the whole translation unit."""
        program = ast.Program(line=1)
        while self._peek().type is not TokenType.EOF:
            if self._looks_like_funcdef():
                program.functions.append(self._parse_funcdef())
            else:
                program.main_body.append(self._parse_statement())
        return program

    def _looks_like_funcdef(self) -> bool:
        """A function definition starts ``int|void IDENT (`` where the
        matching ``)`` is followed by ``{``."""
        if self._peek().value not in ("int", "void", "bool"):
            return False
        if self._peek(1).type is not TokenType.IDENT:
            return False
        if self._peek(2).value != "(":
            return False
        depth = 0
        offset = 2
        while True:
            token = self._peek(offset)
            if token.type is TokenType.EOF:
                return False
            if token.value == "(":
                depth += 1
            elif token.value == ")":
                depth -= 1
                if depth == 0:
                    return self._peek(offset + 1).value == "{"
            offset += 1

    def _parse_funcdef(self) -> ast.FuncDef:
        return_type = self._advance().value  # int / void / bool
        name_tok = self._expect_ident()
        self._expect("(")
        params: List[str] = []
        if not self._check(")"):
            while True:
                if self._peek().value in ("int", "bool"):
                    self._advance()
                params.append(self._expect_ident().value)
                if not self._match(","):
                    break
        self._expect(")")
        body = self._parse_braced_body()
        return ast.FuncDef(
            line=name_tok.line,
            name=name_tok.value,
            params=params,
            body=body,
            return_type=return_type,
        )

    def _parse_braced_body(self) -> List[ast.Stmt]:
        self._expect("{")
        body: List[ast.Stmt] = []
        while not self._check("}"):
            if self._peek().type is TokenType.EOF:
                raise ParseError("unterminated block", self._peek())
            body.append(self._parse_statement())
        self._expect("}")
        return body

    # -- statements ---------------------------------------------------

    def _parse_statement(self) -> ast.Stmt:
        token = self._peek()
        if token.value in ("int", "bool"):
            return self._parse_decl()
        if token.value == "if":
            return self._parse_if()
        if token.value == "for":
            return self._parse_for()
        if token.value == "while":
            return self._parse_while()
        if token.value == "return":
            return self._parse_return()
        if token.value == "break":
            self._advance()
            self._expect(";")
            return ast.Break(line=token.line)
        if token.value == "{":
            line = token.line
            return ast.Block(line=line, body=self._parse_braced_body())
        if token.value == ";":
            self._advance()
            return ast.Block(line=token.line, body=[])
        return self._parse_simple_statement(require_semicolon=True)

    def _parse_decl(self) -> ast.Decl:
        type_tok = self._advance()  # int / bool
        name_tok = self._expect_ident()
        array_size: Optional[int] = None
        if self._match("["):
            size_expr = self._parse_expression()
            if not isinstance(size_expr, ast.IntLit):
                raise ParseError(
                    "array sizes must be integer literals", self._peek()
                )
            array_size = size_expr.value
            self._expect("]")
        init: Optional[ast.Expr] = None
        if self._match("="):
            init = self._parse_expression()
        self._expect(";")
        return ast.Decl(
            line=type_tok.line,
            name=name_tok.value,
            array_size=array_size,
            init=init,
        )

    def _parse_simple_statement(self, require_semicolon: bool) -> ast.Stmt:
        """An assignment, increment, or call statement."""
        token = self._peek()
        expr = self._parse_expression()
        stmt: ast.Stmt
        if self._peek().value in ("++", "--"):
            op_tok = self._advance()
            self._require_lvalue(expr)
            delta = ast.BinOp(
                line=op_tok.line,
                op="+" if op_tok.value == "++" else "-",
                left=expr,
                right=ast.IntLit(line=op_tok.line, value=1),
            )
            stmt = ast.Assign(line=token.line, target=expr, value=delta)
        elif self._peek().value == "=" or self._peek().value in _COMPOUND_OPS:
            op_tok = self._advance()
            self._require_lvalue(expr)
            rhs = self._parse_expression()
            if op_tok.value != "=":
                rhs = ast.BinOp(
                    line=op_tok.line,
                    op=op_tok.value[:-1],
                    left=expr,
                    right=rhs,
                )
            stmt = ast.Assign(line=token.line, target=expr, value=rhs)
        else:
            if not isinstance(expr, ast.Call):
                raise ParseError("expected assignment or call", self._peek())
            stmt = ast.ExprStmt(line=token.line, expr=expr)
        if require_semicolon:
            self._expect(";")
        return stmt

    @staticmethod
    def _require_lvalue(expr: ast.Expr) -> None:
        if not isinstance(expr, (ast.Var, ast.ArrayRef)):
            raise ParseError(
                "assignment target must be a variable or array element",
                Token(TokenType.OPERATOR, "=", expr.line, 0),
            )

    def _parse_if(self) -> ast.If:
        token = self._expect("if")
        self._expect("(")
        cond = self._parse_expression()
        self._expect(")")
        then_body = self._parse_stmt_or_block()
        else_body: List[ast.Stmt] = []
        if self._match("else"):
            else_body = self._parse_stmt_or_block()
        return ast.If(
            line=token.line, cond=cond, then_body=then_body, else_body=else_body
        )

    def _parse_stmt_or_block(self) -> List[ast.Stmt]:
        if self._check("{"):
            return self._parse_braced_body()
        return [self._parse_statement()]

    def _parse_for(self) -> ast.For:
        token = self._expect("for")
        self._expect("(")
        init: Optional[ast.Stmt] = None
        if not self._check(";"):
            if self._peek().value in ("int", "bool"):
                init = self._parse_decl()
            else:
                init = self._parse_simple_statement(require_semicolon=True)
        else:
            self._expect(";")
        cond: Optional[ast.Expr] = None
        if not self._check(";"):
            cond = self._parse_expression()
        self._expect(";")
        step: Optional[ast.Stmt] = None
        if not self._check(")"):
            step = self._parse_simple_statement(require_semicolon=False)
        self._expect(")")
        body = self._parse_stmt_or_block()
        return ast.For(line=token.line, init=init, cond=cond, step=step, body=body)

    def _parse_while(self) -> ast.While:
        token = self._expect("while")
        self._expect("(")
        cond = self._parse_expression()
        self._expect(")")
        body = self._parse_stmt_or_block()
        return ast.While(line=token.line, cond=cond, body=body)

    def _parse_return(self) -> ast.Return:
        token = self._expect("return")
        value: Optional[ast.Expr] = None
        if not self._check(";"):
            value = self._parse_expression()
        self._expect(";")
        return ast.Return(line=token.line, value=value)

    # -- expressions ---------------------------------------------------

    def _parse_expression(self) -> ast.Expr:
        return self._parse_ternary()

    def _parse_ternary(self) -> ast.Expr:
        cond = self._parse_binary(0)
        if self._match("?"):
            if_true = self._parse_expression()
            self._expect(":")
            if_false = self._parse_ternary()
            return ast.Ternary(
                line=cond.line, cond=cond, if_true=if_true, if_false=if_false
            )
        return cond

    def _parse_binary(self, level: int) -> ast.Expr:
        if level >= len(_BINARY_LEVELS):
            return self._parse_unary()
        ops = _BINARY_LEVELS[level]
        left = self._parse_binary(level + 1)
        while self._peek().value in ops and self._peek().type is TokenType.OPERATOR:
            op_tok = self._advance()
            right = self._parse_binary(level + 1)
            left = ast.BinOp(line=op_tok.line, op=op_tok.value, left=left, right=right)
        return left

    def _parse_unary(self) -> ast.Expr:
        token = self._peek()
        if token.value in ("-", "!", "~", "+") and token.type is TokenType.OPERATOR:
            self._advance()
            operand = self._parse_unary()
            if token.value == "+":
                return operand
            if token.value == "-" and isinstance(operand, ast.IntLit):
                return ast.IntLit(line=token.line, value=-operand.value)
            return ast.UnaryOp(line=token.line, op=token.value, operand=operand)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        token = self._peek()
        if token.type is TokenType.INT_LITERAL:
            self._advance()
            return ast.IntLit(line=token.line, value=int(token.value, 0))
        if token.value in ("true", "false"):
            self._advance()
            return ast.IntLit(line=token.line, value=1 if token.value == "true" else 0)
        if token.type is TokenType.IDENT:
            self._advance()
            if self._check("("):
                return self._parse_call(token)
            if self._match("["):
                index = self._parse_expression()
                self._expect("]")
                return ast.ArrayRef(line=token.line, name=token.value, index=index)
            return ast.Var(line=token.line, name=token.value)
        if self._match("("):
            expr = self._parse_expression()
            self._expect(")")
            return expr
        raise ParseError("expected expression", token)

    def _parse_call(self, name_tok: Token) -> ast.Call:
        self._expect("(")
        args: List[ast.Expr] = []
        if not self._check(")"):
            while True:
                args.append(self._parse_expression())
                if not self._match(","):
                    break
        self._expect(")")
        return ast.Call(line=name_tok.line, name=name_tok.value, args=args)


def parse(source: str) -> ast.Program:
    """Parse behavioral C *source* text into a Program AST."""
    return Parser(tokenize(source)).parse_program()


def parse_expression(source: str) -> ast.Expr:
    """Parse a single expression — convenience for tests and tools."""
    parser = Parser(tokenize(source))
    expr = parser._parse_expression()
    if parser._peek().type is not TokenType.EOF:
        raise ParseError("trailing tokens after expression", parser._peek())
    return expr
