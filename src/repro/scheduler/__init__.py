"""Scheduling: packing operations into clock cycles.

The scheduler turns a transformed HTG into a finite-state machine with
datapath (:class:`~repro.scheduler.schedule.StateMachine`).  Chaining
is first-class: operations whose combined combinational delay fits the
clock period share a state, including operations in different basic
blocks separated by conditional boundaries (paper Section 3.1) — the
delay of the steering logic (multiplexors) at each conditional join is
part of the timing model, reflecting the paper's point that synthesis
cost models must charge for steering and control logic (Section 2).

Resource-constrained (ASIC-style, Fig 1a) and unlimited-resource
(microprocessor-block, Fig 1b) schedules come from the same
:class:`~repro.scheduler.list_scheduler.ChainingScheduler` with
different :class:`~repro.scheduler.resources.ResourceAllocation`
settings.
"""

from repro.scheduler.resources import (
    FunctionalUnit,
    ResourceAllocation,
    ResourceLibrary,
)
from repro.scheduler.schedule import (
    BranchTransition,
    IfItem,
    OpItem,
    State,
    StateMachine,
)
from repro.scheduler.list_scheduler import ChainingScheduler, SchedulingError
from repro.scheduler.ready_list import PRIORITIES, ReadyList, schedule_order
from repro.scheduler.timing import expr_delay, operation_delay, operation_units

__all__ = [
    "BranchTransition",
    "ChainingScheduler",
    "PRIORITIES",
    "ReadyList",
    "schedule_order",
    "FunctionalUnit",
    "IfItem",
    "OpItem",
    "ResourceAllocation",
    "ResourceLibrary",
    "SchedulingError",
    "State",
    "StateMachine",
    "expr_delay",
    "operation_delay",
    "operation_units",
]
