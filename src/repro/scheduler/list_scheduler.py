"""The chaining-aware scheduler.

Walks a (transformed) function's HTG in control order, packing
operations into states greedily while the chained combinational delay
fits the clock period and the resource allocation is satisfied:

* straight-line operations chain through their operand ready times;
* a conditional chains *entirely inside a state* when its full cone —
  condition, both branches, plus a mux delay at every joined variable —
  fits ("scheduling with operation chaining across conditional
  boundaries has to use a modified resource utilization and operation
  scheduling model that looks across the conditional boundaries",
  Section 3.1); mutually exclusive branch operations share FU
  instances (elementwise max, Section 2);
* a conditional that cannot chain becomes FSM-level branching
  (multi-cycle control flow);
* loops become FSM cycles: the loop condition folds into the branch
  transition of the preceding/last-body state when its delay allows.

With an unlimited allocation and a long clock the scheduler yields the
paper's single-cycle microprocessor-block architecture; with an ASIC
allocation and a short clock it produces the classic multi-cycle FSMD
of Fig 1(a).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.frontend.ast_nodes import Expr, IntLit
from repro.ir.htg import (
    BlockNode,
    BreakNode,
    FunctionHTG,
    HTGNode,
    IfNode,
    LoopNode,
)
from repro.ir.operations import Operation, OpKind
from repro.scheduler.ready_list import DagCache, PRIORITIES, schedule_order
from repro.scheduler.resources import ResourceAllocation, ResourceLibrary
from repro.scheduler.schedule import (
    BranchTransition,
    IfItem,
    Item,
    OpItem,
    State,
    StateMachine,
)
from repro.scheduler.timing import (
    expr_delay,
    expr_units,
    max_usage,
    merge_usage,
    operation_delay,
    operation_units,
)

Usage = Dict[str, int]
Ready = Dict[str, float]


class SchedulingError(Exception):
    """Raised when an operation cannot be scheduled at all (slower than
    a whole empty cycle, or needs more resources than allocated)."""


class ChainingScheduler:
    """Schedules a function into a :class:`StateMachine`."""

    def __init__(
        self,
        library: Optional[ResourceLibrary] = None,
        clock_period: float = 10.0,
        allocation: Optional[ResourceAllocation] = None,
        allow_state_branching: bool = True,
        priority: str = "source",
        dag_cache: Optional[DagCache] = None,
    ) -> None:
        if priority not in PRIORITIES:
            raise SchedulingError(
                f"unknown scheduler priority {priority!r}; "
                f"expected one of {PRIORITIES}"
            )
        self.library = library or ResourceLibrary()
        self.clock_period = clock_period
        self.allocation = allocation or ResourceAllocation.unlimited()
        self.allow_state_branching = allow_state_branching
        self.priority = priority
        #: Incremental mode: a shared :class:`DagCache` reuses each
        #: block's dependence DAG + priority computation across
        #: scheduler instances that differ only in clock period or
        #: resource allocation (those inputs affect state *placement*,
        #: never the DAG or the ready order).  The caller must scope
        #: the cache to one in-memory design + one library.
        self.dag_cache = dag_cache

    def schedule(self, func: FunctionHTG) -> StateMachine:
        """Produce the FSMD for *func*."""
        sm = StateMachine(func, self.clock_period)
        run = _Run(self, sm)
        state = sm.new_state(label="entry")
        final_state, terminated = run.schedule_list(
            func.body, state, {}, {}, loop_exits=[]
        )
        if not terminated and final_state is not None:
            final_state.default_next = None  # halt
        _prune_empty_states(sm)
        return sm


class _Run:
    """Mutable scheduling pass state."""

    def __init__(self, config: ChainingScheduler, sm: StateMachine) -> None:
        self.cfg = config
        self.sm = sm
        self.library = config.library
        self.clock = config.clock_period
        self.allocation = config.allocation

    # -- main walk ---------------------------------------------------------

    def schedule_list(
        self,
        nodes: List[HTGNode],
        state: State,
        ready: Ready,
        usage: Usage,
        loop_exits: List[int],
    ) -> Tuple[Optional[State], bool]:
        """Schedule *nodes* starting in *state* with the given chaining
        context.  Returns (open state, terminated) where terminated
        means control left this list (break/return)."""
        for index, node in enumerate(nodes):
            if isinstance(node, BlockNode):
                for op in schedule_order(
                    node.ops,
                    self.cfg.priority,
                    self.library,
                    dag_cache=self.cfg.dag_cache,
                ):
                    state, halted = self.place_op(op, state, ready, usage)
                    if halted:
                        return state, True
            elif isinstance(node, IfNode):
                state, terminated = self.place_if(
                    node, state, ready, usage, loop_exits
                )
                if terminated:
                    return state, True
            elif isinstance(node, LoopNode):
                state = self.place_loop(node, state, ready, usage, loop_exits)
                ready.clear()
                usage.clear()
            elif isinstance(node, BreakNode):
                if not loop_exits:
                    raise SchedulingError("break outside of loop")
                state.default_next = loop_exits[-1]
                return state, True
            else:
                raise SchedulingError(f"unschedulable node {node!r}")
        return state, False

    # -- operations ----------------------------------------------------------

    def place_op(
        self, op: Operation, state: State, ready: Ready, usage: Usage
    ) -> Tuple[State, bool]:
        """Place one operation, opening a new state when the chain or
        the allocation overflows.  Returns (open state, halted)."""
        if op.kind is OpKind.RETURN:
            finish = operation_delay(op, self.library, ready)
            if finish > self.clock:
                state = self.close_state(state, ready, usage)
                finish = operation_delay(op, self.library, ready)
            start = self._op_start(op, ready)
            state.items.append(OpItem(op=op, start=start, finish=finish))
            state.default_next = None
            state.branch = None
            return state, True

        needs = operation_units(op, self.library)
        start = self._op_start(op, ready)
        finish = operation_delay(op, self.library, ready)
        merged = merge_usage(usage, needs)
        if finish > self.clock or not self.allocation.fits(merged):
            state = self.close_state(state, ready, usage)
            start = 0.0
            finish = operation_delay(op, self.library, ready)
            merged = merge_usage(usage, needs)
            if finish > self.clock:
                raise SchedulingError(
                    f"operation `{op}` needs {finish:.2f} > clock "
                    f"{self.clock:.2f} even from registers"
                )
            if not self.allocation.fits(merged):
                raise SchedulingError(
                    f"operation `{op}` exceeds the resource allocation "
                    f"even in an empty state: needs {needs}"
                )
        state.items.append(OpItem(op=op, start=start, finish=finish))
        usage.clear()
        usage.update(merged)
        for name in op.writes() | op.arrays_written():
            ready[name] = finish
        return state, False

    def _op_start(self, op: Operation, ready: Ready) -> float:
        start = 0.0
        for name in op.reads() | op.arrays_read():
            start = max(start, ready.get(name, 0.0))
        return start

    def close_state(self, state: State, ready: Ready, usage: Usage) -> State:
        """Finish the current cycle; everything now sits in registers."""
        new_state = self.sm.new_state()
        state.default_next = new_state.state_id
        ready.clear()
        usage.clear()
        return new_state

    # -- conditionals ----------------------------------------------------------

    def place_if(
        self,
        node: IfNode,
        state: State,
        ready: Ready,
        usage: Usage,
        loop_exits: List[int],
    ) -> Tuple[State, bool]:
        # Attempt 1: chain the whole conditional into the current state.
        attempt = self._try_chain_if(node, ready, usage)
        if attempt is not None:
            item, new_ready, new_usage = attempt
            state.items.append(item)
            ready.clear()
            ready.update(new_ready)
            usage.clear()
            usage.update(new_usage)
            return state, False

        # Attempt 2: chain it into a fresh state.
        fresh_ready: Ready = {}
        fresh_usage: Usage = {}
        attempt = self._try_chain_if(node, fresh_ready, fresh_usage)
        if attempt is not None:
            state = self.close_state(state, ready, usage)
            item, new_ready, new_usage = attempt
            state.items.append(item)
            ready.update(new_ready)
            usage.update(new_usage)
            return state, False

        # Attempt 3: FSM-level branching.
        if not self.cfg.allow_state_branching:
            raise SchedulingError(
                f"conditional (cond: {node.cond}) cannot chain within "
                f"clock {self.clock:.2f} and state branching is disabled"
            )
        return self._branch_if(node, state, ready, usage, loop_exits)

    def _try_chain_if(
        self, node: IfNode, ready: Ready, usage: Usage
    ) -> Optional[Tuple[IfItem, Ready, Usage]]:
        """Try to schedule the conditional as a chained IfItem given the
        entry context.  Returns None when it cannot fit in this cycle."""
        cond_ready = expr_delay(node.cond, self.library, ready)
        if cond_ready > self.clock:
            return None
        cond_usage = expr_units(node.cond, self.library)

        then_result = self._chain_branch(node.then_branch, dict(ready))
        if then_result is None:
            return None
        else_result = self._chain_branch(node.else_branch, dict(ready))
        if else_result is None:
            return None
        then_items, then_ready, then_usage = then_result
        else_items, else_ready, else_usage = else_result

        # Joined values: anything written by either branch leaves the
        # conditional through steering logic -> mux delay on top of the
        # latest producer and the condition itself.
        joined: Ready = dict(ready)
        written = self._items_written(then_items) | self._items_written(else_items)
        mux_delay = self.library.mux.delay
        mux_count = 0
        for name in written:
            candidates = [
                then_ready.get(name, ready.get(name, 0.0)),
                else_ready.get(name, ready.get(name, 0.0)),
                cond_ready,
            ]
            joined[name] = max(candidates) + mux_delay
            mux_count += 1
            if joined[name] > self.clock:
                return None

        branch_usage = max_usage(then_usage, else_usage)
        total_usage = merge_usage(usage, merge_usage(cond_usage, branch_usage))
        total_usage["mux"] = total_usage.get("mux", 0) + mux_count
        if not self.allocation.fits(total_usage):
            return None

        item = IfItem(
            cond=node.cond,
            cond_ready=cond_ready,
            then_items=then_items,
            else_items=else_items,
        )
        return item, joined, total_usage

    def _chain_branch(
        self, nodes: List[HTGNode], ready: Ready
    ) -> Optional[Tuple[List[Item], Ready, Usage]]:
        """Chain a whole branch combinationally; None when impossible
        (loops, breaks, returns, or delay overflow)."""
        items: List[Item] = []
        usage: Usage = {}
        for node in nodes:
            if isinstance(node, BlockNode):
                for op in node.ops:
                    if op.kind is OpKind.RETURN:
                        return None
                    start = self._op_start(op, ready)
                    finish = operation_delay(op, self.library, ready)
                    if finish > self.clock:
                        return None
                    items.append(OpItem(op=op, start=start, finish=finish))
                    usage = merge_usage(usage, operation_units(op, self.library))
                    for name in op.writes() | op.arrays_written():
                        ready[name] = finish
            elif isinstance(node, IfNode):
                nested = self._try_chain_if(node, ready, {})
                if nested is None:
                    return None
                item, new_ready, nested_usage = nested
                items.append(item)
                ready.clear()
                ready.update(new_ready)
                usage = merge_usage(usage, nested_usage)
            else:
                return None  # loops and breaks never chain
        return items, ready, usage

    @staticmethod
    def _items_written(items: List[Item]) -> Set[str]:
        written: Set[str] = set()
        for item in items:
            if isinstance(item, OpItem):
                written |= item.op.writes() | item.op.arrays_written()
            else:
                written |= _Run._items_written(item.then_items)
                written |= _Run._items_written(item.else_items)
        return written

    def _branch_if(
        self,
        node: IfNode,
        state: State,
        ready: Ready,
        usage: Usage,
        loop_exits: List[int],
    ) -> Tuple[State, bool]:
        """Multi-cycle conditional: branch transition + per-branch state
        chains + join state."""
        cond_ready = expr_delay(node.cond, self.library, ready)
        if cond_ready > self.clock:
            state = self.close_state(state, ready, usage)
            cond_ready = expr_delay(node.cond, self.library, ready)
            if cond_ready > self.clock:
                raise SchedulingError(
                    f"condition `{node.cond}` is slower than the clock"
                )

        then_entry = self.sm.new_state(label="then")
        else_entry = self.sm.new_state(label="else")
        join = self.sm.new_state(label="join")
        state.branch = BranchTransition(
            cond=node.cond,
            true_next=then_entry.state_id,
            false_next=else_entry.state_id,
        )
        state.default_next = None

        then_tail, then_term = self.schedule_list(
            node.then_branch, then_entry, {}, {}, loop_exits
        )
        if not then_term and then_tail is not None:
            then_tail.default_next = join.state_id
        else_tail, else_term = self.schedule_list(
            node.else_branch, else_entry, {}, {}, loop_exits
        )
        if not else_term and else_tail is not None:
            else_tail.default_next = join.state_id

        ready.clear()
        usage.clear()
        if then_term and else_term:
            return join, False  # join unreachable but keeps flow simple
        return join, False

    # -- loops -------------------------------------------------------------------

    def place_loop(
        self,
        node: LoopNode,
        state: State,
        ready: Ready,
        usage: Usage,
        loop_exits: List[int],
    ) -> State:
        """Rolled loop -> FSM cycle.  The loop condition folds into the
        branch transition of the state preceding each iteration."""
        for op in node.init:
            state, halted = self.place_op(op, state, ready, usage)
            if halted:
                raise SchedulingError("return inside loop init")

        exit_state = self.sm.new_state(label="loop-exit")
        body_entry = self.sm.new_state(label="loop-body")

        cond = node.cond if node.cond is not None else IntLit(value=1)
        self._attach_loop_branch(state, cond, ready, body_entry, exit_state)

        loop_exits.append(exit_state.state_id)
        body_tail, terminated = self.schedule_list(
            node.body, body_entry, {}, {}, loop_exits
        )
        loop_exits.pop()

        if not terminated and body_tail is not None:
            tail_ready: Ready = {}
            tail_usage: Usage = {}
            tail = body_tail
            for op in node.update:
                tail, halted = self.place_op(op, tail, tail_ready, tail_usage)
                if halted:
                    raise SchedulingError("return inside loop update")
            self._attach_loop_branch(tail, cond, tail_ready, body_entry, exit_state)

        return exit_state

    def _attach_loop_branch(
        self,
        state: State,
        cond: Expr,
        ready: Ready,
        body_entry: State,
        exit_state: State,
    ) -> None:
        """Fold the loop-condition test into *state*'s transition; fall
        back to a dedicated test state when it does not fit the cycle."""
        cond_ready = expr_delay(cond, self.library, ready)
        if cond_ready > self.clock or state.branch is not None:
            test = self.sm.new_state(label="loop-test")
            state.default_next = test.state_id
            state = test
        state.branch = BranchTransition(
            cond=cond,
            true_next=body_entry.state_id,
            false_next=exit_state.state_id,
        )
        state.default_next = None


def _prune_empty_states(sm: StateMachine) -> None:
    """Merge away states with no items and an unconditional successor."""
    redirect: Dict[int, Optional[int]] = {}

    def resolve(state_id: Optional[int]) -> Optional[int]:
        seen = set()
        while (
            state_id is not None
            and state_id in sm.states
            and not sm.states[state_id].items
            and sm.states[state_id].branch is None
            and sm.states[state_id].default_next is not None
            and state_id not in seen
        ):
            seen.add(state_id)
            state_id = sm.states[state_id].default_next
        return state_id

    for state in list(sm.states.values()):
        if state.default_next is not None:
            state.default_next = resolve(state.default_next)
        if state.branch is not None:
            state.branch.true_next = resolve(state.branch.true_next)
            state.branch.false_next = resolve(state.branch.false_next)
    if sm.entry_state is not None:
        sm.entry_state = resolve(sm.entry_state)

    # Drop unreachable states.
    reachable = {state.state_id for state in sm.reachable_states()}
    for state_id in list(sm.states):
        if state_id not in reachable:
            del sm.states[state_id]
