"""Functional-unit library and resource allocation.

Delays are in normalized gate-delay units (an `add` is 1.0) and areas
in normalized gate-equivalents.  The numbers model relative magnitudes
— a comparator is faster than an adder, a mux is cheap but not free —
which is the level the paper operates at: its claims are about *shape*
(who fits in a cycle, how much steering logic appears), not absolute
nanoseconds.

``ResourceAllocation`` captures the paper's two regimes:

* microprocessor blocks: "little or no resource constraints but tight
  bounds on the cycle time" — :meth:`ResourceAllocation.unlimited`;
* ASICs: "usually area constrained, which often limits the extent of
  parallelism" — bounded FU counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass(frozen=True)
class FunctionalUnit:
    """A functional-unit class in the library."""

    name: str
    delay: float
    area: float


# Operator -> functional unit class name.
OPERATOR_UNIT = {
    "+": "alu",
    "-": "alu",
    "*": "mul",
    "/": "div",
    "%": "div",
    "==": "cmp",
    "!=": "cmp",
    "<": "cmp",
    ">": "cmp",
    "<=": "cmp",
    ">=": "cmp",
    "&&": "logic",
    "||": "logic",
    "!": "logic",
    "&": "logic",
    "|": "logic",
    "^": "logic",
    "~": "logic",
    "<<": "shift",
    ">>": "shift",
}


DEFAULT_UNITS = {
    "alu": FunctionalUnit("alu", delay=1.0, area=32.0),
    "mul": FunctionalUnit("mul", delay=3.0, area=256.0),
    "div": FunctionalUnit("div", delay=8.0, area=384.0),
    "cmp": FunctionalUnit("cmp", delay=0.6, area=12.0),
    "logic": FunctionalUnit("logic", delay=0.2, area=4.0),
    "shift": FunctionalUnit("shift", delay=0.5, area=20.0),
    "mux": FunctionalUnit("mux", delay=0.3, area=6.0),
    "mem": FunctionalUnit("mem", delay=0.8, area=24.0),
    "reg": FunctionalUnit("reg", delay=0.0, area=8.0),
}


class ResourceLibrary:
    """Delay/area lookup for operators, steering logic, memory accesses
    and external combinational blocks.

    External functions (the ILD's ``LengthContribution_k`` /
    ``Need_kth_Byte`` lookup logic) are registered with their own delay
    and area via :meth:`register_external`.
    """

    def __init__(self, units: Optional[Dict[str, FunctionalUnit]] = None) -> None:
        self.units: Dict[str, FunctionalUnit] = dict(units or DEFAULT_UNITS)
        self.externals: Dict[str, FunctionalUnit] = {}

    def unit_for_operator(self, operator: str) -> FunctionalUnit:
        try:
            return self.units[OPERATOR_UNIT[operator]]
        except KeyError:
            raise KeyError(f"no functional unit for operator {operator!r}") from None

    def unit_class(self, operator: str) -> str:
        return OPERATOR_UNIT[operator]

    @property
    def mux(self) -> FunctionalUnit:
        return self.units["mux"]

    @property
    def mem(self) -> FunctionalUnit:
        return self.units["mem"]

    @property
    def register(self) -> FunctionalUnit:
        return self.units["reg"]

    def register_external(
        self, name: str, delay: float = 1.0, area: float = 40.0
    ) -> None:
        """Declare an external combinational block."""
        self.externals[name] = FunctionalUnit(name, delay=delay, area=area)

    def external(self, name: str) -> FunctionalUnit:
        if name not in self.externals:
            # Unregistered externals get a default block so exploratory
            # runs never crash; register real numbers for benchmarks.
            self.externals[name] = FunctionalUnit(name, delay=1.0, area=40.0)
        return self.externals[name]


@dataclass
class ResourceAllocation:
    """Per-FU-class instance limits for one schedule.

    ``limits`` maps unit class name to instance count; classes absent
    from the map are unlimited.  ``unlimited()`` is the paper's
    microprocessor-block allocation.
    """

    limits: Dict[str, int] = field(default_factory=dict)

    @staticmethod
    def unlimited() -> "ResourceAllocation":
        return ResourceAllocation(limits={})

    @staticmethod
    def asic_default() -> "ResourceAllocation":
        """A small ASIC-style allocation: 2 ALUs, 1 comparator, plenty
        of cheap logic."""
        return ResourceAllocation(limits={"alu": 2, "cmp": 1, "mul": 1})

    def limit_for(self, unit_class: str) -> Optional[int]:
        return self.limits.get(unit_class)

    def fits(self, usage: Dict[str, int]) -> bool:
        """True when *usage* (class -> count) satisfies every limit."""
        for unit_class, count in usage.items():
            limit = self.limits.get(unit_class)
            if limit is not None and count > limit:
                return False
        return True
