"""Combinational delay and functional-unit demand of expressions.

``expr_delay`` computes the critical path through an expression tree
given operand-ready times; ``operation_units`` counts how many
instances of each FU class an operation's expression consumes — the
resource-usage model for bounded allocations.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.frontend.ast_nodes import (
    ArrayRef,
    BinOp,
    Call,
    Expr,
    IntLit,
    Ternary,
    UnaryOp,
    Var,
)
from repro.ir.operations import Operation, OpKind
from repro.scheduler.resources import ResourceLibrary

ReadyTimes = Dict[str, float]


def expr_delay(
    expr: Optional[Expr],
    library: ResourceLibrary,
    ready: Optional[ReadyTimes] = None,
) -> float:
    """Finish time of *expr*'s combinational cone.

    *ready* maps variable/array names to the time their value becomes
    valid within the current cycle (absent = 0.0, i.e. straight out of
    a register at the clock edge).  Every operator adds its unit delay
    on top of the latest-arriving operand.
    """
    times = ready or {}

    def visit(node: Optional[Expr]) -> float:
        if node is None or isinstance(node, IntLit):
            return 0.0
        if isinstance(node, Var):
            return times.get(node.name, 0.0)
        if isinstance(node, ArrayRef):
            base = max(times.get(node.name, 0.0), visit(node.index))
            return base + library.mem.delay
        if isinstance(node, BinOp):
            unit = library.unit_for_operator(node.op)
            return max(visit(node.left), visit(node.right)) + unit.delay
        if isinstance(node, UnaryOp):
            unit = library.unit_for_operator(node.op)
            return visit(node.operand) + unit.delay
        if isinstance(node, Call):
            block = library.external(node.name)
            args = max((visit(a) for a in node.args), default=0.0)
            return args + block.delay
        if isinstance(node, Ternary):
            data = max(visit(node.if_true), visit(node.if_false))
            return max(visit(node.cond), data) + library.mux.delay
        raise TypeError(f"unknown expression {node!r}")

    return visit(expr)


def operation_delay(
    op: Operation,
    library: ResourceLibrary,
    ready: Optional[ReadyTimes] = None,
) -> float:
    """Finish time of an operation scheduled with the given operand
    ready times.  Array stores pay the memory-port delay."""
    finish = expr_delay(op.expr, library, ready)
    if op.kind is OpKind.ASSIGN and isinstance(op.target, ArrayRef):
        index = expr_delay(op.target.index, library, ready)
        finish = max(finish, index) + library.mem.delay
    return finish


def expr_units(expr: Optional[Expr], library: ResourceLibrary) -> Dict[str, int]:
    """FU-class demand of an expression tree (one instance per operator
    node — no within-expression sharing, the conservative model)."""
    usage: Dict[str, int] = {}

    def bump(unit_class: str) -> None:
        usage[unit_class] = usage.get(unit_class, 0) + 1

    def visit(node: Optional[Expr]) -> None:
        if node is None or isinstance(node, (IntLit, Var)):
            return
        if isinstance(node, ArrayRef):
            bump("mem")
            visit(node.index)
        elif isinstance(node, BinOp):
            bump(library.unit_class(node.op))
            visit(node.left)
            visit(node.right)
        elif isinstance(node, UnaryOp):
            bump(library.unit_class(node.op))
            visit(node.operand)
        elif isinstance(node, Call):
            bump(f"ext:{node.name}")
            for arg in node.args:
                visit(arg)
        elif isinstance(node, Ternary):
            bump("mux")
            visit(node.cond)
            visit(node.if_true)
            visit(node.if_false)
        else:
            raise TypeError(f"unknown expression {node!r}")

    visit(expr)
    return usage


def operation_units(op: Operation, library: ResourceLibrary) -> Dict[str, int]:
    """FU-class demand of a whole operation."""
    usage = expr_units(op.expr, library)
    if op.kind is OpKind.ASSIGN and isinstance(op.target, ArrayRef):
        usage["mem"] = usage.get("mem", 0) + 1
        for unit_class, count in expr_units(op.target.index, library).items():
            usage[unit_class] = usage.get(unit_class, 0) + count
    return usage


def merge_usage(a: Dict[str, int], b: Dict[str, int]) -> Dict[str, int]:
    """Elementwise sum of two usage maps."""
    merged = dict(a)
    for unit_class, count in b.items():
        merged[unit_class] = merged.get(unit_class, 0) + count
    return merged


def max_usage(a: Dict[str, int], b: Dict[str, int]) -> Dict[str, int]:
    """Elementwise max — the mutual-exclusion model: operations in the
    two branches of one conditional can share FU instances in the same
    cycle ("in synthesis, mutually exclusive operations can be
    scheduled in the same clock cycle on the same resource",
    Section 2)."""
    merged = dict(a)
    for unit_class, count in b.items():
        merged[unit_class] = max(merged.get(unit_class, 0), count)
    return merged
