"""Heap-based ready list for in-block operation scheduling.

The chaining scheduler's hot inner loop places the operations of one
basic block into clock cycles.  Instead of walking ``block.ops`` in
raw program order, the scheduler drains a :class:`ReadyList`: a
dependence DAG over the block's operations plus a ``heapq`` priority
queue of the operations whose predecessors have all been issued.

Two priority functions are provided:

``source``
    program order — the pop sequence is *identical* to the legacy
    in-order walk (program order is a topological order of the DAG,
    and every dependence edge points forward in it), so schedules are
    bit-for-bit reproducible;

``critical``
    longest-downstream-delay first — operations heading the longest
    chain of dependent combinational delay issue earlier, which can
    pack tighter states under short clocks (ties broken by program
    order, so the result is still deterministic).

The DAG is built in one linear scan with last-writer/reader maps, so
construction is O(ops x operands) rather than the O(ops^2) pairwise
comparison a naive dependence test would cost.  Per-operation read /
write sets are computed once and cached on the entry, where the legacy
walk rebuilt them on every placement attempt.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.ir.operations import Operation, OpKind
from repro.scheduler.resources import ResourceLibrary
from repro.scheduler.timing import operation_delay

#: Recognized priority function names.
PRIORITIES = ("source", "critical")

#: Pseudo-location modelling "any memory": operations containing calls
#: may read shared arrays through stateful externals, so they order
#: against every array write (but not against each other — library
#: externals are combinational blocks).
_ANY_MEMORY = "@__mem__"


class _Entry:
    """One operation in the dependence DAG."""

    __slots__ = (
        "op",
        "seq",
        "reads",
        "writes",
        "succs",
        "pending",
        "height",
    )

    def __init__(self, op: Operation, seq: int) -> None:
        self.op = op
        self.seq = seq
        self.reads: Set[str] = set(op.reads())
        self.writes: Set[str] = set(op.writes())
        # Array accesses live in the same namespace, prefixed so that
        # an array and a scalar sharing a name cannot alias.
        for name in op.arrays_read():
            self.reads.add("@" + name)
        for name in op.arrays_written():
            self.writes.add("@" + name)
            self.writes.add(_ANY_MEMORY)
        if op.has_call():
            self.reads.add(_ANY_MEMORY)
        self.succs: List[int] = []
        self.pending = 0
        self.height = 0.0

    @property
    def is_barrier(self) -> bool:
        """Control operations never reorder: a RETURN ends the region
        and a bare CALL statement exists only for its side effects."""
        return self.op.kind in (OpKind.RETURN, OpKind.CALL)


def build_dependence_dag(ops: List[Operation]) -> List[_Entry]:
    """Construct the intra-block dependence DAG.

    Edges cover RAW, WAR and WAW on scalars and arrays (arrays as
    whole-object locations), calls ordered against array writes via
    the any-memory token, and full barriers for RETURN / bare CALL.
    """
    entries = [_Entry(op, seq) for seq, op in enumerate(ops)]
    edges: Set[Tuple[int, int]] = set()

    def add_edge(src: int, dst: int) -> None:
        if src != dst and (src, dst) not in edges:
            edges.add((src, dst))
            entries[src].succs.append(dst)
            entries[dst].pending += 1

    last_write: Dict[str, int] = {}
    readers: Dict[str, List[int]] = {}
    last_barrier: Optional[int] = None
    since_barrier: List[int] = []

    for entry in entries:
        seq = entry.seq
        if last_barrier is not None:
            add_edge(last_barrier, seq)
        for name in entry.reads:
            if name in last_write:
                add_edge(last_write[name], seq)  # RAW
            readers.setdefault(name, []).append(seq)
        for name in entry.writes:
            if name in last_write:
                add_edge(last_write[name], seq)  # WAW
            for reader in readers.get(name, ()):
                add_edge(reader, seq)  # WAR
            last_write[name] = seq
            readers[name] = []
        if entry.is_barrier:
            for earlier in since_barrier:
                add_edge(earlier, seq)
            last_barrier = seq
            since_barrier = []
        else:
            since_barrier.append(seq)
    return entries


def _compute_heights(
    entries: List[_Entry], library: ResourceLibrary
) -> None:
    """Longest downstream chained-delay from each operation (its own
    from-register delay included).  Entries are in program order, which
    is a topological order, so one reverse sweep suffices."""
    for entry in reversed(entries):
        tail = max(
            (entries[succ].height for succ in entry.succs), default=0.0
        )
        entry.height = operation_delay(entry.op, library, {}) + tail


class ReadyList:
    """Dependence-respecting iterator over a block's operations.

    Draining the list yields every operation exactly once, in an order
    that satisfies all dependence edges and, among ready operations,
    follows the configured priority function.
    """

    def __init__(
        self,
        ops: List[Operation],
        priority: str = "source",
        library: Optional[ResourceLibrary] = None,
    ) -> None:
        if priority not in PRIORITIES:
            raise ValueError(
                f"unknown scheduler priority {priority!r}; "
                f"expected one of {PRIORITIES}"
            )
        self.priority = priority
        self.entries = build_dependence_dag(ops)
        if priority == "critical":
            _compute_heights(self.entries, library or ResourceLibrary())

    def _key(self, entry: _Entry) -> Tuple:
        if self.priority == "critical":
            return (-entry.height, entry.seq)
        return (entry.seq,)

    def __iter__(self) -> Iterator[Operation]:
        # Pending counts are copied per iteration so the list can be
        # drained more than once.
        pending = [entry.pending for entry in self.entries]
        heap: List[Tuple] = []
        for entry in self.entries:
            if pending[entry.seq] == 0:
                heapq.heappush(heap, (*self._key(entry), entry.seq))
        issued = 0
        while heap:
            popped = heapq.heappop(heap)
            entry = self.entries[popped[-1]]
            issued += 1
            yield entry.op
            for succ in entry.succs:
                pending[succ] -= 1
                if pending[succ] == 0:
                    succ_entry = self.entries[succ]
                    heapq.heappush(
                        heap, (*self._key(succ_entry), succ_entry.seq)
                    )
        if issued != len(self.entries):  # pragma: no cover - defensive
            raise RuntimeError("dependence DAG contains a cycle")


class DagCache:
    """Memoized :class:`ReadyList` construction for incremental sweeps.

    Corners of a design-space sweep that differ only in resource
    limits or clock period schedule the *same* operation lists under
    the same priority function: the dependence DAG and the priority
    computation (heights) depend only on the operations and the
    library, never on the allocation or the clock.  A ``DagCache``
    shared across those corners builds each block's ``ReadyList``
    once and re-drains it per corner (iteration copies the pending
    counts, so a cached list is safely re-drainable); only the
    resource-availability state — which lives in the scheduler's
    ``_Run``, not here — is rebuilt per corner.

    Entries are keyed by the identity of the ops list (plus the
    priority name) and hold a strong reference to the list itself:
    the reference pins the object alive, so ``id()`` reuse can never
    alias two different blocks, and the ``is`` check below makes the
    hit exact rather than probabilistic.  The caller must scope one
    cache per (in-memory design snapshot, library configuration) —
    the exploration batch runner keys its caches by transform-stage
    prefix and environment factory reference accordingly.
    """

    def __init__(self) -> None:
        self._entries: Dict[
            Tuple[int, str], Tuple[List[Operation], ReadyList]
        ] = {}
        self.hits = 0
        self.misses = 0

    def ready_list(
        self,
        ops: List[Operation],
        priority: str,
        library: Optional[ResourceLibrary] = None,
    ) -> ReadyList:
        key = (id(ops), priority)
        entry = self._entries.get(key)
        if entry is not None and entry[0] is ops:
            self.hits += 1
            return entry[1]
        self.misses += 1
        ready = ReadyList(ops, priority=priority, library=library)
        self._entries[key] = (ops, ready)
        return ready


def schedule_order(
    ops: List[Operation],
    priority: str = "source",
    library: Optional[ResourceLibrary] = None,
    dag_cache: Optional[DagCache] = None,
) -> Iterator[Operation]:
    """The block's operations in ready-list order.

    With ``source`` priority this is exactly program order (program
    order is a topological order of the DAG, and source priority pops
    by sequence number), so the DAG/heap machinery is skipped
    entirely — the common case costs nothing.  Other priorities
    reorder only independent operations, so executing the result
    sequentially is behavior-preserving.

    With a :class:`DagCache` the DAG and heights are reused across
    calls over the same ops list (incremental scheduling); the pop
    order is identical either way, because ``ReadyList`` iteration is
    deterministic and re-drainable.
    """
    if priority == "source" or len(ops) <= 1:
        return iter(ops)
    if dag_cache is not None:
        return iter(dag_cache.ready_list(ops, priority, library))
    return iter(ReadyList(ops, priority=priority, library=library))
