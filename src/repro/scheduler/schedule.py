"""Schedule data structures: the FSMD (finite-state machine + datapath).

A :class:`StateMachine` is the scheduler's output and the backend's
input: each :class:`State` executes a tree of scheduled items (plain
operations and *chained* conditionals) in one clock cycle, then follows
its transition — either an unconditional ``default_next`` or a
:class:`BranchTransition` on a condition (multi-cycle control flow:
rolled loops, conditionals too slow to chain).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Union

from repro.frontend.ast_nodes import Expr
from repro.ir.htg import FunctionHTG
from repro.ir.operations import Operation


@dataclass
class OpItem:
    """An operation placed in a state, with its chaining window."""

    op: Operation
    start: float
    finish: float

    def __str__(self) -> str:
        return f"[{self.start:.2f}-{self.finish:.2f}] {self.op}"


@dataclass
class IfItem:
    """A conditional chained entirely inside one state.

    The branches execute combinationally under steering logic; joined
    values pay the mux delay (modelled during scheduling).
    """

    cond: Expr
    cond_ready: float
    then_items: List["Item"] = field(default_factory=list)
    else_items: List["Item"] = field(default_factory=list)

    def __str__(self) -> str:
        return f"if ({self.cond}) chained"


Item = Union[OpItem, IfItem]


@dataclass
class BranchTransition:
    """State-level two-way branch: multi-cycle control flow."""

    cond: Expr
    true_next: Optional[int]
    false_next: Optional[int]


@dataclass
class State:
    """One FSM state = one clock cycle of datapath activity."""

    state_id: int
    items: List[Item] = field(default_factory=list)
    default_next: Optional[int] = None
    branch: Optional[BranchTransition] = None
    label: str = ""

    def operations(self) -> Iterator[OpItem]:
        """All op items in the state, branches included."""

        def walk(items: List[Item]) -> Iterator[OpItem]:
            for item in items:
                if isinstance(item, OpItem):
                    yield item
                else:
                    yield from walk(item.then_items)
                    yield from walk(item.else_items)

        return walk(self.items)

    def critical_path(self) -> float:
        """Longest combinational finish time within the state."""
        finish = 0.0
        for op_item in self.operations():
            finish = max(finish, op_item.finish)

        def cond_depth(items: List[Item]) -> float:
            depth = 0.0
            for item in items:
                if isinstance(item, IfItem):
                    depth = max(depth, item.cond_ready)
                    depth = max(depth, cond_depth(item.then_items))
                    depth = max(depth, cond_depth(item.else_items))
            return depth

        return max(finish, cond_depth(self.items))

    def op_count(self) -> int:
        return sum(1 for _ in self.operations())


class StateMachine:
    """The complete FSMD for one function."""

    def __init__(self, func: FunctionHTG, clock_period: float) -> None:
        self.func = func
        self.clock_period = clock_period
        self.states: Dict[int, State] = {}
        self.entry_state: Optional[int] = None
        self._next_id = 0

    def new_state(self, label: str = "") -> State:
        state = State(state_id=self._next_id, label=label)
        self._next_id += 1
        self.states[state.state_id] = state
        if self.entry_state is None:
            self.entry_state = state.state_id
        return state

    def state(self, state_id: int) -> State:
        return self.states[state_id]

    @property
    def num_states(self) -> int:
        return len(self.states)

    def total_operations(self) -> int:
        return sum(state.op_count() for state in self.states.values())

    def max_critical_path(self) -> float:
        if not self.states:
            return 0.0
        return max(state.critical_path() for state in self.states.values())

    def is_single_cycle(self) -> bool:
        """True when the design finishes in one state with no loops —
        the paper's target for the ILD ("the whole buffer must be
        decoded in one cycle")."""
        if len(self.states) != 1:
            return False
        only = next(iter(self.states.values()))
        return only.default_next is None and only.branch is None

    def reachable_states(self) -> List[State]:
        """States reachable from the entry, in BFS order."""
        if self.entry_state is None:
            return []
        seen: List[State] = []
        visited: Set[int] = set()
        frontier: List[Optional[int]] = [self.entry_state]
        while frontier:
            state_id = frontier.pop(0)
            if state_id in visited or state_id is None:
                continue
            visited.add(state_id)
            state = self.states[state_id]
            seen.append(state)
            if state.branch is not None:
                frontier.append(state.branch.true_next)
                frontier.append(state.branch.false_next)
            if state.default_next is not None:
                frontier.append(state.default_next)
        return seen

    def describe(self) -> str:
        """Human-readable dump used by examples and benchmarks."""
        lines = [
            f"StateMachine({self.func.name}): {self.num_states} states, "
            f"clock {self.clock_period:.2f}, "
            f"critical path {self.max_critical_path():.2f}"
        ]
        for state in self.reachable_states():
            lines.append(
                f"  S{state.state_id} ({state.op_count()} ops, "
                f"cp {state.critical_path():.2f})"
                + (f" [{state.label}]" if state.label else "")
            )
            for item in state.items:
                lines.extend(_describe_item(item, indent=4))
            if state.branch is not None:
                lines.append(
                    f"    -> if ({state.branch.cond}) "
                    f"S{state.branch.true_next} else S{state.branch.false_next}"
                )
            elif state.default_next is not None:
                lines.append(f"    -> S{state.default_next}")
            else:
                lines.append("    -> halt")
        return "\n".join(lines)


def _describe_item(item: Item, indent: int) -> List[str]:
    pad = " " * indent
    if isinstance(item, OpItem):
        return [f"{pad}{item}"]
    lines = [f"{pad}if ({item.cond}) {{  // chained, cond@{item.cond_ready:.2f}"]
    for child in item.then_items:
        lines.extend(_describe_item(child, indent + 2))
    if item.else_items:
        lines.append(f"{pad}}} else {{")
        for child in item.else_items:
            lines.extend(_describe_item(child, indent + 2))
    lines.append(f"{pad}}}")
    return lines
