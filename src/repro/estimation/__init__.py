"""Area and timing estimation of the synthesized datapath.

The paper argues that synthesis transformations need cost models that
charge for steering logic, storage and control (Section 2), and its
evaluation reasons about cycle counts and cycle time rather than
absolute silicon numbers.  These estimators work at that fidelity:
normalized gate-equivalents for area and normalized gate-delays for
timing, computed from the bound FSMD.
"""

from repro.estimation.area import AreaEstimate, estimate_area
from repro.estimation.delay import TimingEstimate, estimate_timing

__all__ = [
    "AreaEstimate",
    "TimingEstimate",
    "estimate_area",
    "estimate_timing",
]
