"""Timing estimation of the scheduled design.

Reports the critical (chained) path of each state, the overall minimum
feasible clock period, and latency bounds.  Latency in cycles is
data-dependent for multi-cycle FSMs with loops, so the estimator
reports both the static state count and, when given stimuli, measured
cycle counts via the RTL simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.backend.rtl_sim import RTLSimulator
from repro.scheduler.schedule import StateMachine


@dataclass
class TimingEstimate:
    """Critical-path and latency summary."""

    per_state_critical_path: Dict[int, float] = field(default_factory=dict)
    min_clock_period: float = 0.0
    state_count: int = 0
    is_single_cycle: bool = False
    measured_cycles: Optional[int] = None

    def __str__(self) -> str:
        text = (
            f"timing: {self.state_count} states, min clock "
            f"{self.min_clock_period:.2f}"
        )
        if self.measured_cycles is not None:
            text += f", measured latency {self.measured_cycles} cycles"
        if self.is_single_cycle:
            text += " [single-cycle]"
        return text


def estimate_timing(
    sm: StateMachine,
    stimuli: Optional[dict] = None,
    externals: Optional[dict] = None,
) -> TimingEstimate:
    """Estimate timing; when *stimuli* is given (``inputs`` /
    ``array_inputs`` keys), also measure the actual cycle count."""
    estimate = TimingEstimate()
    for state in sm.reachable_states():
        estimate.per_state_critical_path[state.state_id] = state.critical_path()
    estimate.min_clock_period = max(
        estimate.per_state_critical_path.values(), default=0.0
    )
    estimate.state_count = len(sm.reachable_states())
    estimate.is_single_cycle = sm.is_single_cycle()
    if stimuli is not None:
        sim = RTLSimulator(sm, externals=externals)
        result = sim.run(
            inputs=stimuli.get("inputs"),
            array_inputs=stimuli.get("array_inputs"),
        )
        estimate.measured_cycles = result.cycles
    return estimate


def latency_area_product(
    timing: TimingEstimate, area_total: float
) -> float:
    """The classic latency x area figure of merit (uses measured cycles
    when available, otherwise the static state count)."""
    cycles = (
        timing.measured_cycles
        if timing.measured_cycles is not None
        else timing.state_count
    )
    return cycles * timing.min_clock_period * area_total
