"""Datapath area model.

Area = functional-unit instances (after binding, so mutually exclusive
sharing is already reflected) + registers (after register binding, so
lifetime sharing is reflected) + steering logic + FSM control.

Steering (mux) area charges one 2:1-mux-equivalent per extra writer of
each register and per extra source of each shared FU instance — the
cost the paper says compilers ignore but synthesis must price
("mapping an operation to a resource can lead to the generation of
additional steering logic and associated control logic", Section 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.binding.fu_binding import FUBinding, bind_functional_units
from repro.binding.lifetimes import LifetimeAnalysis
from repro.binding.register_binding import RegisterBinding, bind_registers
from repro.frontend.ast_nodes import Var
from repro.scheduler.resources import ResourceLibrary
from repro.scheduler.schedule import IfItem, OpItem, StateMachine


@dataclass
class AreaEstimate:
    """Normalized gate-equivalent breakdown."""

    functional_units: float = 0.0
    registers: float = 0.0
    steering: float = 0.0
    control: float = 0.0
    per_class: Dict[str, float] = field(default_factory=dict)
    register_count: int = 0
    mux_count: int = 0

    @property
    def total(self) -> float:
        """Sum of all area components, in gate equivalents."""
        return self.functional_units + self.registers + self.steering + self.control

    def __str__(self) -> str:
        return (
            f"area total={self.total:.1f} (fu={self.functional_units:.1f}, "
            f"regs={self.registers:.1f} x{self.register_count}, "
            f"steer={self.steering:.1f} x{self.mux_count}, "
            f"ctrl={self.control:.1f})"
        )


def estimate_area(
    sm: StateMachine,
    library: Optional[ResourceLibrary] = None,
    fu_binding: Optional[FUBinding] = None,
    register_binding: Optional[RegisterBinding] = None,
    boundary_live: Optional[Set[str]] = None,
) -> AreaEstimate:
    """Estimate the area of the bound design."""
    library = library or ResourceLibrary()
    fu_binding = fu_binding or bind_functional_units(sm, library)
    register_binding = register_binding or bind_registers(
        sm, boundary_live=boundary_live
    )

    estimate = AreaEstimate()

    for unit_class, count in fu_binding.instance_counts.items():
        if unit_class.startswith("ext:"):
            unit_area = library.external(unit_class[4:]).area
        elif unit_class in library.units:
            unit_area = library.units[unit_class].area
        else:
            unit_area = library.units["logic"].area
        class_area = unit_area * count
        estimate.per_class[unit_class] = class_area
        estimate.functional_units += class_area

    estimate.register_count = register_binding.register_count
    estimate.registers = estimate.register_count * library.register.area

    estimate.mux_count = _count_steering(sm, fu_binding, register_binding)
    estimate.steering = estimate.mux_count * library.mux.area

    # FSM control: a one-hot-ish cost per state plus per transition.
    states = sm.reachable_states()
    transitions = sum(
        2 if state.branch is not None else (1 if state.default_next is not None else 0)
        for state in states
    )
    estimate.control = 4.0 * len(states) + 2.0 * transitions
    return estimate


def _count_steering(
    sm: StateMachine, fu_binding: FUBinding, register_binding: RegisterBinding
) -> int:
    """Count 2:1-mux equivalents for register input steering, FU input
    steering, and conditional joins."""
    mux_count = 0

    # Register input steering: one mux per extra writer of a register.
    writers: Dict[int, int] = {}
    for state in sm.reachable_states():
        for op_item in state.operations():
            target = op_item.op.target
            if isinstance(target, Var) and target.name in register_binding.assignment:
                reg = register_binding.assignment[target.name]
                writers[reg] = writers.get(reg, 0) + 1
    for count in writers.values():
        mux_count += max(0, count - 1)

    # FU input steering: one mux per extra operation bound to the same
    # physical instance.
    instance_users: Dict[tuple, int] = {}
    for assignments in fu_binding.op_assignment.values():
        for key in assignments:
            instance_users[key] = instance_users.get(key, 0) + 1
    for count in instance_users.values():
        mux_count += max(0, count - 1)

    # Conditional joins inside chained states (the Fig 4/6 muxes).
    def join_muxes(items) -> int:
        total = 0
        for item in items:
            if isinstance(item, IfItem):
                written = set()
                for sub in (item.then_items, item.else_items):
                    for op_item in _walk_ops(sub):
                        target = op_item.op.target
                        if isinstance(target, Var):
                            written.add(target.name)
                total += len(written)
                total += join_muxes(item.then_items)
                total += join_muxes(item.else_items)
        return total

    for state in sm.reachable_states():
        mux_count += join_muxes(state.items)
    return mux_count


def _walk_ops(items):
    for item in items:
        if isinstance(item, OpItem):
            yield item
        else:
            yield from _walk_ops(item.then_items)
            yield from _walk_ops(item.else_items)
