"""Function inlining (paper Fig 12).

"Inlining refers to replacing a call to a function or a subroutine with
the body of the function ... This transformation allows the
optimization of the inlined function with the rest of the code."

Scalars of the callee (parameters and locals) are renamed into a
private namespace; arrays are shared storage (Fig 10's
``CalculateLength`` reads the same instruction buffer the main loop
marks) and keep their names.  ``return`` is supported in *tail
position* — the last operation of the function body or the last
operation of both branches of a trailing if-tree — which covers every
function in the paper; anything else raises :class:`InlineError`.
"""

from __future__ import annotations

import itertools
from typing import List, Optional

from repro.frontend.ast_nodes import Call, Expr, Var
from repro.ir import expr_utils
from repro.ir.basic_block import BasicBlock
from repro.ir.htg import (
    BlockNode,
    Design,
    FunctionHTG,
    HTGNode,
    IfNode,
    LoopNode,
    normalize_blocks,
    replace_node,
)
from repro.ir.operations import Operation, OpKind
from repro.transforms.base import Pass, PassReport


class InlineError(Exception):
    """Raised when a function cannot be inlined (non-tail returns,
    recursion, unknown callee)."""


class FunctionInliner(Pass):
    """Inlines calls to defined functions.

    Parameters
    ----------
    functions:
        names to inline; ``["*"]`` (default) inlines every defined
        function.  External functions are never inlined — they become
        combinational library blocks during synthesis.
    """

    name = "function-inlining"

    def __init__(self, functions: Optional[List[str]] = None) -> None:
        self.functions = functions if functions is not None else ["*"]
        self._inlined = 0
        # Per-pass instance numbering keeps inlined-frame temp names
        # deterministic for a given design run (a module-global
        # counter would make them depend on process history, which
        # leaks into emitted RTL and breaks outcome memoization).
        self._instances = itertools.count(1)

    def _should_inline(self, name: str, design: Design) -> bool:
        if name not in design.functions or name == Design.MAIN:
            return False
        return "*" in self.functions or name in self.functions

    def run_on_design(self, design: Design) -> List[PassReport]:
        reports = []
        for func in list(design.functions.values()):
            reports.append(self.run_on_function(func, design))
        return reports

    def run_on_function(self, func: FunctionHTG, design: Design) -> PassReport:
        report = self._start_report(func)
        self._inlined = 0
        extracted = extract_nested_calls(func, design)
        # Iterate because inlining can expose further calls (callee
        # calling a third function).  A recursion guard bounds this.
        for _ in range(50):
            if not self._inline_one(func, design):
                break
        else:
            raise InlineError(
                f"inlining did not converge in {func.name}; recursive calls?"
            )
        func.body = normalize_blocks(func.body)
        report.changed = self._inlined > 0 or extracted > 0
        report.details["inlined_calls"] = self._inlined
        report.details["extracted_calls"] = extracted
        return self._finish_report(report, func)

    # -- locating inlinable calls ------------------------------------------

    def _inline_one(self, func: FunctionHTG, design: Design) -> bool:
        """Find and inline a single call; returns True when one was
        inlined."""
        for node in func.walk_nodes():
            if not isinstance(node, BlockNode):
                continue
            for index, op in enumerate(node.ops):
                call = self._inlinable_call(op, design)
                if call is not None:
                    self._inline_call(func, design, node, index, op, call)
                    self._inlined += 1
                    return True
        return False

    def _inlinable_call(self, op: Operation, design: Design) -> Optional[Call]:
        """A call is inlinable when it is the *entire* RHS of an assign
        or a call statement.  Nested calls inside larger expressions are
        first extracted by :func:`extract_nested_calls`."""
        if op.kind is OpKind.ASSIGN and isinstance(op.expr, Call):
            if self._should_inline(op.expr.name, design):
                return op.expr
        if op.kind is OpKind.CALL and isinstance(op.expr, Call):
            if self._should_inline(op.expr.name, design):
                return op.expr
        return None

    # -- the splice ----------------------------------------------------------

    def _inline_call(
        self,
        func: FunctionHTG,
        design: Design,
        node: BlockNode,
        op_index: int,
        op: Operation,
        call: Call,
    ) -> None:
        callee = design.function(call.name)
        if callee is func:
            # Direct recursion (or a call-graph cycle folded back into
            # this function by earlier inlining): splicing the body
            # into itself doubles the function every round, so fail
            # fast instead of letting the iteration guard melt down.
            raise InlineError(
                f"cannot inline recursive call to {call.name!r}"
            )
        if len(call.args) != len(callee.params):
            raise InlineError(
                f"{call.name} expects {len(callee.params)} arguments, "
                f"got {len(call.args)}"
            )
        instance = next(self._instances)
        prefix = f"{call.name}_i{instance}_"

        # Arrays are shared storage wherever they are declared (the
        # callee's own arrays AND the caller's/global arrays the callee
        # references, like Fig 10's shared instruction buffer).
        shared_arrays = set(callee.arrays)
        for other in design.functions.values():
            shared_arrays |= set(other.arrays)

        def renamer(name: str) -> str:
            if name in shared_arrays:
                return name
            return prefix + name

        body = [n.clone() for n in callee.body]
        _rename_scalars(body, renamer)

        # Parameter binding ops.
        param_block = BasicBlock()
        for param, arg in zip(callee.params, call.args):
            param_block.append(
                Operation.assign(Var(name=prefix + param), expr_utils.clone(arg))
            )

        # Rewrite tail returns into assignments to the result variable.
        result_var: Optional[str] = None
        if op.kind is OpKind.ASSIGN:
            result_var = func.fresh_variable(f"{call.name}_ret{instance}")
        return_count = _count_returns(body)
        rewritten = _rewrite_tail_returns(body, result_var)
        if rewritten != return_count:
            raise InlineError(
                f"{call.name} has a non-tail return; cannot inline"
            )

        # Declare the callee's arrays in the caller.  Snapshot the
        # name collections first — self-recursive inlining would
        # otherwise mutate the sets while iterating them.
        for name, size in list(callee.arrays.items()):
            func.arrays.setdefault(name, size)
        for local in list(callee.locals):
            func.locals.add(prefix + local)
        for param in list(callee.params):
            func.locals.add(prefix + param)

        # Assemble: pre-ops | param binds | body | result copy | post-ops
        pre = BlockNode(BasicBlock(ops=node.ops[:op_index]))
        post_ops = list(node.ops[op_index + 1 :])
        replacement: List[HTGNode] = []
        if pre.ops:
            replacement.append(pre)
        if param_block.ops:
            replacement.append(BlockNode(param_block))
        replacement.extend(body)
        if result_var is not None:
            copy_op = Operation.assign(
                expr_utils.clone(op.target), Var(name=result_var)
            )
            replacement.append(BlockNode(BasicBlock(ops=[copy_op])))
        if post_ops:
            replacement.append(BlockNode(BasicBlock(ops=post_ops)))
        if not replacement:
            replacement.append(BlockNode(BasicBlock()))
        replace_node(func.body, node, replacement)


def _rename_scalars(nodes: List[HTGNode], renamer) -> None:
    """Rename every scalar variable in the sub-HTG; array base names are
    preserved by the renamer itself."""

    def rename_expr(expr: Optional[Expr]) -> Optional[Expr]:
        return expr_utils.rename_variables(expr, renamer)

    from repro.ir.htg import map_expressions

    map_expressions(nodes, rename_expr)


def _count_returns(nodes: List[HTGNode]) -> int:
    from repro.ir.htg import walk_nodes

    count = 0
    for node in walk_nodes(nodes):
        if isinstance(node, BlockNode):
            count += sum(1 for op in node.ops if op.kind is OpKind.RETURN)
    return count


def _rewrite_tail_returns(nodes: List[HTGNode], result_var: Optional[str]) -> int:
    """Rewrite returns in tail position into ``result_var = expr``
    assignments (or drop them for void calls).  Returns how many were
    rewritten."""
    if not nodes:
        return 0
    rewritten = 0
    last = nodes[-1]
    if isinstance(last, BlockNode) and last.ops:
        tail_op = last.ops[-1]
        if tail_op.kind is OpKind.RETURN:
            if result_var is not None and tail_op.expr is not None:
                last.ops[-1] = Operation.assign(
                    Var(name=result_var), tail_op.expr
                )
            else:
                last.ops.pop()
            rewritten += 1
    elif isinstance(last, IfNode):
        rewritten += _rewrite_tail_returns(last.then_branch, result_var)
        rewritten += _rewrite_tail_returns(last.else_branch, result_var)
    return rewritten


def extract_nested_calls(func: FunctionHTG, design: Design) -> int:
    """Normalization: hoist calls to *defined* functions out of larger
    expressions into their own ``tmp = call(...)`` operations so the
    inliner can splice them.

    ``NextStartByte += CalculateLength(i)`` (Fig 10) becomes
    ``t = CalculateLength(i); NextStartByte = NextStartByte + t``.
    Returns the number of extracted calls.
    """
    extracted = 0
    work = True
    while work:
        work = False
        for node in func.walk_nodes():
            if not isinstance(node, BlockNode):
                continue
            for index, op in enumerate(node.ops):
                call = _find_nested_defined_call(op, design)
                if call is None:
                    continue
                temp = func.fresh_variable("call_t")
                call_op = Operation.assign(Var(name=temp), expr_utils.clone(call))
                _replace_call_with_var(op, call, temp)
                node.ops.insert(index, call_op)
                extracted += 1
                work = True
                break
            if work:
                break
    return extracted


def _find_nested_defined_call(op: Operation, design: Design) -> Optional[Call]:
    """A call that is *not* the entire RHS (or whose siblings make it
    nested), targeting a defined function."""
    candidates = []
    if op.expr is not None:
        top_level = isinstance(op.expr, Call) and op.kind in (
            OpKind.ASSIGN,
            OpKind.CALL,
        )
        for call in expr_utils.calls_in(op.expr):
            if call is op.expr and top_level:
                # direct call: also check for nested calls in its args
                continue
            candidates.append(call)
    if op.target is not None:
        for call in expr_utils.calls_in(op.target):
            candidates.append(call)
    for call in candidates:
        if call.name in design.functions and call.name != Design.MAIN:
            return call
    return None


def _replace_call_with_var(op: Operation, call: Call, var_name: str) -> None:
    replacement = Var(name=var_name)

    def rewrite(expr: Optional[Expr]) -> Optional[Expr]:
        if expr is None:
            return None
        if expr is call:
            return replacement
        if isinstance(expr, Call):
            expr.args = [rewrite(a) for a in expr.args]
            return expr
        from repro.frontend.ast_nodes import ArrayRef, BinOp, Ternary, UnaryOp

        if isinstance(expr, BinOp):
            expr.left = rewrite(expr.left)
            expr.right = rewrite(expr.right)
        elif isinstance(expr, UnaryOp):
            expr.operand = rewrite(expr.operand)
        elif isinstance(expr, ArrayRef):
            expr.index = rewrite(expr.index)
        elif isinstance(expr, Ternary):
            expr.cond = rewrite(expr.cond)
            expr.if_true = rewrite(expr.if_true)
            expr.if_false = rewrite(expr.if_false)
        return expr

    op.expr = rewrite(op.expr)
    if op.target is not None:
        op.target = rewrite(op.target)
