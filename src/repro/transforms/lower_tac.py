"""Lowering to three-address form (one operator per operation).

Resource-constrained scheduling binds each operator to a functional
unit instance, so multi-operator expressions such as
``Length = lc1 + lc2 + lc3 + lc4`` must be decomposed into single-
operator operations before an ASIC-style schedule (bounded ALUs) can
be computed.  The microprocessor-block flow can skip this pass — with
unlimited resources a whole expression tree maps to a combinational
cone and only its chained delay matters.
"""

from __future__ import annotations

from typing import List, Optional

from repro.frontend.ast_nodes import (
    ArrayRef,
    BinOp,
    Call,
    Expr,
    IntLit,
    Ternary,
    UnaryOp,
    Var,
)
from repro.ir.htg import (
    BlockNode,
    Design,
    FunctionHTG,
    IfNode,
    LoopNode,
    normalize_blocks,
)
from repro.ir.operations import Operation, OpKind
from repro.transforms.base import Pass, PassReport


def _is_atomic(expr: Optional[Expr]) -> bool:
    return isinstance(expr, (IntLit, Var))


class TACLowering(Pass):
    """Flatten every expression so each operation applies one operator.

    After the pass an assignment RHS is a literal, a variable, an array
    read with atomic index, a single unary/binary operator over atomic
    operands, a call with atomic arguments, or a ternary over atomics.
    """

    name = "tac-lowering"

    def __init__(self, temp_prefix: str = "tac_t") -> None:
        self.temp_prefix = temp_prefix
        self._introduced = 0

    def run_on_function(self, func: FunctionHTG, design: Design) -> PassReport:
        report = self._start_report(func)
        self._introduced = 0
        self._func = func
        for node in func.walk_nodes():
            if isinstance(node, BlockNode):
                node.block.ops = self._lower_ops(node.ops)
            elif isinstance(node, LoopNode):
                # Loop header ops must stay single ops; only lower when
                # already decomposable without extra statements.
                pass
        func.body = normalize_blocks(func.body)
        report.changed = self._introduced > 0
        report.details["temporaries"] = self._introduced
        return self._finish_report(report, func)

    def _fresh(self) -> str:
        self._introduced += 1
        return self._func.fresh_variable(self.temp_prefix)

    def _lower_ops(self, ops: List[Operation]) -> List[Operation]:
        result: List[Operation] = []
        for op in ops:
            if op.kind is OpKind.ASSIGN:
                expr = self._lower_expr(op.expr, result, top=True)
                target = op.target
                if isinstance(target, ArrayRef) and not _is_atomic(target.index):
                    index = self._lower_expr(target.index, result, top=False)
                    target = ArrayRef(line=target.line, name=target.name, index=index)
                lowered = Operation.assign(target, expr, line=op.source_line)
                lowered.is_speculated = op.is_speculated
                lowered.is_wire_copy = op.is_wire_copy
                result.append(lowered)
            elif op.kind is OpKind.CALL:
                call = self._lower_call_args(op.expr, result)
                result.append(Operation.call(call, line=op.source_line))
            elif op.kind is OpKind.RETURN:
                expr = op.expr
                if expr is not None and not _is_atomic(expr):
                    expr = self._lower_expr(expr, result, top=False)
                result.append(Operation.ret(expr, line=op.source_line))
        return result

    def _lower_expr(
        self, expr: Optional[Expr], out: List[Operation], top: bool
    ) -> Optional[Expr]:
        """Lower *expr*, emitting temp assignments into *out*.  When
        *top* is true the outermost operator stays in place (it becomes
        the op's single operator)."""
        if expr is None or _is_atomic(expr):
            return expr
        if isinstance(expr, BinOp):
            left = self._atomize(expr.left, out)
            right = self._atomize(expr.right, out)
            lowered = BinOp(line=expr.line, op=expr.op, left=left, right=right)
        elif isinstance(expr, UnaryOp):
            operand = self._atomize(expr.operand, out)
            lowered = UnaryOp(line=expr.line, op=expr.op, operand=operand)
        elif isinstance(expr, ArrayRef):
            index = self._atomize(expr.index, out)
            lowered = ArrayRef(line=expr.line, name=expr.name, index=index)
        elif isinstance(expr, Call):
            lowered = self._lower_call_args(expr, out)
        elif isinstance(expr, Ternary):
            cond = self._atomize(expr.cond, out)
            if_true = self._atomize(expr.if_true, out)
            if_false = self._atomize(expr.if_false, out)
            lowered = Ternary(
                line=expr.line, cond=cond, if_true=if_true, if_false=if_false
            )
        else:
            raise TypeError(f"unknown expression {expr!r}")
        if top:
            return lowered
        temp = self._fresh()
        out.append(Operation.assign(Var(name=temp), lowered))
        return Var(name=temp)

    def _atomize(self, expr: Optional[Expr], out: List[Operation]) -> Optional[Expr]:
        if expr is None or _is_atomic(expr):
            return expr
        return self._lower_expr(expr, out, top=False)

    def _lower_call_args(self, call: Call, out: List[Operation]) -> Call:
        args = [self._atomize(arg, out) for arg in call.args]
        return Call(line=call.line, name=call.name, args=args)
