"""Local common-subexpression elimination.

Within a basic block, repeated pure right-hand sides are computed once
into the first target and reused.  In synthesis terms this shares a
functional unit *and* removes wiring; the cost model difference the
paper highlights (Section 2: mux and control cost) is why this stays
local and conservative — cross-block CSE can *add* steering logic,
which is exactly what the paper warns about.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.frontend.ast_nodes import Var
from repro.ir import expr_utils
from repro.ir.htg import BlockNode, Design, FunctionHTG
from repro.ir.operations import Operation, OpKind
from repro.transforms.base import Pass, PassReport


class LocalCSE(Pass):
    """Basic-block-local CSE over pure expressions."""

    name = "local-cse"

    def __init__(self, pure_functions=None, min_size: int = 2) -> None:
        self.pure_functions = set(pure_functions or ())
        # Only share expressions of at least this many nodes; sharing a
        # lone variable or literal buys nothing in hardware.
        self.min_size = min_size
        self._replaced = 0

    def run_on_function(self, func: FunctionHTG, design: Design) -> PassReport:
        report = self._start_report(func)
        self._replaced = 0
        for node in func.walk_nodes():
            if isinstance(node, BlockNode):
                self._process_block(node)
        report.changed = self._replaced > 0
        report.details["reused_expressions"] = self._replaced
        return self._finish_report(report, func)

    def _process_block(self, node: BlockNode) -> None:
        # available: canonical expr text -> (expr, defining var)
        available: Dict[str, Tuple[object, str]] = {}
        for op in node.ops:
            if op.kind is not OpKind.ASSIGN:
                available.clear()
                continue
            rhs = op.expr
            key = str(rhs)
            if (
                key in available
                and expr_utils.expr_equal(available[key][0], rhs)
                and isinstance(op.target, Var)
            ):
                _, source = available[key]
                op.expr = Var(name=source)
                self._replaced += 1

            self._invalidate(available, op)

            if (
                isinstance(op.target, Var)
                and expr_utils.is_pure(op.expr, self.pure_functions)
                and not op.arrays_read()
                and expr_utils.expr_size(op.expr) >= self.min_size
            ):
                available[str(op.expr)] = (expr_utils.clone(op.expr), op.target.name)

    @staticmethod
    def _invalidate(available: Dict[str, Tuple[object, str]], op: Operation) -> None:
        written = op.writes()
        if not written:
            return
        stale = [
            key
            for key, (expr, source) in available.items()
            if source in written or (expr_utils.variables_read(expr) & written)
        ]
        for key in stale:
            del available[key]
