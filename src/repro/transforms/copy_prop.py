"""Copy propagation over the HTG.

Replaces reads of ``x`` with ``y`` after a copy ``x = y`` while the
copy is still valid.  In the paper's flow, copy propagation cleans up
after speculation and wire-variable insertion ("a dead code elimination
pass later removes any unnecessary variables and variable copies" —
copy propagation is what makes those copies dead).

Same structured abstract-interpretation skeleton as constant
propagation; the environment maps a variable to the variable it copies.
A binding ``x -> y`` dies when either x or y is reassigned.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.frontend.ast_nodes import ArrayRef, Expr, Var
from repro.ir import expr_utils
from repro.ir.htg import (
    BlockNode,
    BreakNode,
    Design,
    FunctionHTG,
    HTGNode,
    IfNode,
    LoopNode,
)
from repro.ir.operations import OpKind
from repro.transforms.base import Pass, PassReport

_Env = Dict[str, str]  # copy target -> copy source


class CopyPropagation(Pass):
    """Flow-sensitive scalar copy propagation.

    ``preserve_wire_copies``: the chaining pass inserts deliberate
    copies through wire-variables (Figs 6-7); with this flag set those
    are left intact so a post-scheduling cleanup does not undo the
    chaining transform.
    """

    name = "copy-propagation"

    def __init__(self, preserve_wire_copies: bool = True) -> None:
        self.preserve_wire_copies = preserve_wire_copies
        self._changed = False
        self._substitutions = 0

    def run_on_function(self, func: FunctionHTG, design: Design) -> PassReport:
        report = self._start_report(func)
        self._changed = False
        self._substitutions = 0
        self._process_nodes(func.body, {})
        report.changed = self._changed
        report.details["substitutions"] = self._substitutions
        return self._finish_report(report, func)

    # -- env helpers -----------------------------------------------------

    def _rewrite(self, expr: Optional[Expr], env: _Env) -> Optional[Expr]:
        if expr is None or not env:
            return expr
        mapping = {name: Var(name=source) for name, source in env.items()}
        rewritten = expr_utils.substitute(expr, mapping)
        if not expr_utils.expr_equal(rewritten, expr):
            self._changed = True
            self._substitutions += 1
            return rewritten
        return expr

    @staticmethod
    def _kill(env: _Env, name: str) -> None:
        env.pop(name, None)
        for target in [t for t, s in env.items() if s == name]:
            env.pop(target, None)

    @staticmethod
    def _merge(a: _Env, b: _Env) -> _Env:
        return {
            name: source
            for name, source in a.items()
            if b.get(name) == source
        }

    # -- structured walk ---------------------------------------------------

    def _process_nodes(self, nodes: List[HTGNode], env: _Env) -> (dict, bool):
        current = dict(env)
        for node in nodes:
            if isinstance(node, BlockNode):
                if not self._process_ops(node.ops, current):
                    return current, False
            elif isinstance(node, IfNode):
                node.cond = self._rewrite(node.cond, current)
                then_env, then_falls = self._process_nodes(
                    node.then_branch, current
                )
                else_env, else_falls = self._process_nodes(
                    node.else_branch, current
                )
                if then_falls and else_falls:
                    current = self._merge(then_env, else_env)
                elif then_falls:
                    current = then_env
                elif else_falls:
                    current = else_env
                else:
                    return current, False
            elif isinstance(node, LoopNode):
                current = self._process_loop(node, current)
            elif isinstance(node, BreakNode):
                return current, False
        return current, True

    def _process_ops(self, ops, env: _Env) -> bool:
        for op in ops:
            if not (op.is_wire_copy and self.preserve_wire_copies):
                op.expr = self._rewrite(op.expr, env)
                if isinstance(op.target, ArrayRef):
                    op.target = ArrayRef(
                        line=op.target.line,
                        name=op.target.name,
                        index=self._rewrite(op.target.index, env),
                    )
            if op.kind is OpKind.ASSIGN and isinstance(op.target, Var):
                name = op.target.name
                self._kill(env, name)
                if (
                    op.is_copy()
                    and op.expr.name != name
                    and not op.is_wire_copy
                ):
                    env[name] = op.expr.name
            elif op.kind is OpKind.RETURN:
                return False
        return True

    def _process_loop(self, node: LoopNode, env: _Env) -> _Env:
        current = dict(env)
        self._process_ops(node.init, current)
        written = self._loop_written(node)
        loop_env = {
            name: source
            for name, source in current.items()
            if name not in written and source not in written
        }
        if node.cond is not None:
            node.cond = self._rewrite(node.cond, loop_env)
        self._process_nodes(node.body, dict(loop_env))
        self._process_ops(node.update, dict(loop_env))
        return loop_env

    @staticmethod
    def _loop_written(node: LoopNode) -> Set[str]:
        from repro.ir.htg import walk_nodes

        written: Set[str] = set()
        for op in node.update:
            written |= op.writes()
        for inner in walk_nodes(node.body):
            if isinstance(inner, BlockNode):
                for op in inner.ops:
                    written |= op.writes()
            elif isinstance(inner, LoopNode):
                for op in inner.init:
                    written |= op.writes()
                for op in inner.update:
                    written |= op.writes()
        return written
