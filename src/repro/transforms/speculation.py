"""Speculation and early condition execution (paper Section 3, Fig 11).

"In speculative execution, operations are executed before the
conditions they depend on, have been evaluated."

:class:`Speculation` hoists pure assignments out of if-branches to just
before the if-node, one hierarchy level per step, iterating to a
fixpoint so deeply nested operations bubble all the way up (the Fig 11
result where every data computation of ``CalculateLength`` runs
up-front).  Two hoisting modes are chosen automatically per operation:

* **clobber hoist** — the operation moves unchanged.  Legal when the
  target has a unique write and all its readers live inside the same
  branch subtree, so executing it unconditionally is unobservable
  elsewhere (the ``lc2``/``need3`` pattern).
* **renaming hoist** — the computation moves into a fresh speculation
  temporary and a copy ``v = temp`` stays in the branch (the
  ``TempLength1..3`` pattern for the multiply-written ``Length``).

:class:`EarlyConditionExecution` materializes each if-condition as an
explicit operation ``c = <cond>`` ahead of the if-node so that the
condition computation itself becomes speculatable — this is how
``need2 = Need_2nd_Byte(i)`` appears as a data operation in Fig 11.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.frontend.ast_nodes import Var
from repro.ir import expr_utils
from repro.ir.basic_block import BasicBlock
from repro.ir.htg import (
    BlockNode,
    Design,
    FunctionHTG,
    HTGNode,
    IfNode,
    LoopNode,
    normalize_blocks,
    parent_map,
    walk_nodes,
)
from repro.ir.operations import Operation, OpKind
from repro.transforms.base import Pass, PassReport


# ---------------------------------------------------------------------------
# Read/write summaries of HTG elements (ops or whole sub-nodes)
# ---------------------------------------------------------------------------


def node_reads(node: HTGNode) -> Set[str]:
    """Every scalar read anywhere inside *node*, conditions included."""
    reads: Set[str] = set()
    for inner in walk_nodes([node]):
        if isinstance(inner, BlockNode):
            for op in inner.ops:
                reads |= op.reads()
        elif isinstance(inner, (IfNode, LoopNode)):
            if getattr(inner, "cond", None) is not None:
                reads |= expr_utils.variables_read(inner.cond)
            if isinstance(inner, LoopNode):
                for op in inner.init + inner.update:
                    reads |= op.reads()
    return reads


def node_writes(node: HTGNode) -> Set[str]:
    """Every scalar written anywhere inside *node*."""
    writes: Set[str] = set()
    for inner in walk_nodes([node]):
        if isinstance(inner, BlockNode):
            for op in inner.ops:
                writes |= op.writes()
        elif isinstance(inner, LoopNode):
            for op in inner.init + inner.update:
                writes |= op.writes()
    return writes


def node_arrays_read(node: HTGNode) -> Set[str]:
    arrays: Set[str] = set()
    for inner in walk_nodes([node]):
        if isinstance(inner, BlockNode):
            for op in inner.ops:
                arrays |= op.arrays_read()
        elif isinstance(inner, LoopNode):
            for op in inner.init + inner.update:
                arrays |= op.arrays_read()
    return arrays


def node_arrays_written(node: HTGNode) -> Set[str]:
    arrays: Set[str] = set()
    for inner in walk_nodes([node]):
        if isinstance(inner, BlockNode):
            for op in inner.ops:
                arrays |= op.arrays_written()
        elif isinstance(inner, LoopNode):
            for op in inner.init + inner.update:
                arrays |= op.arrays_written()
    return arrays


def node_has_impure(node: HTGNode, pure_functions: Set[str], design: Design) -> bool:
    """True when the subtree contains calls that are not known pure."""
    for inner in walk_nodes([node]):
        if isinstance(inner, BlockNode):
            for op in inner.ops:
                if op.has_call() and not _op_calls_pure(op, pure_functions, design):
                    return True
    return False


def _op_calls_pure(op: Operation, pure_functions: Set[str], design: Design) -> bool:
    for call in expr_utils.calls_in(op.expr):
        if call.name not in pure_functions:
            return False
    if op.target is not None:
        for call in expr_utils.calls_in(op.target):
            if call.name not in pure_functions:
                return False
    return True


# ---------------------------------------------------------------------------
# Speculation
# ---------------------------------------------------------------------------


class Speculation(Pass):
    """Hoist pure branch operations above their guarding conditional."""

    name = "speculation"

    def __init__(self, pure_functions: Optional[Set[str]] = None) -> None:
        self.pure_functions = set(pure_functions or ())
        self._hoisted = 0
        self._renamed = 0

    def run_on_function(self, func: FunctionHTG, design: Design) -> PassReport:
        report = self._start_report(func)
        self._hoisted = 0
        self._renamed = 0
        # Fixpoint: each step hoists one op one level.
        guard = 10_000
        while guard and self._hoist_one(func, design):
            guard -= 1
        func.body = normalize_blocks(func.body)
        report.changed = self._hoisted > 0
        report.details["speculated_ops"] = self._hoisted
        report.details["renamed_ops"] = self._renamed
        return self._finish_report(report, func)

    # -- one hoisting step -------------------------------------------------

    def _hoist_one(self, func: FunctionHTG, design: Design) -> bool:
        parents = parent_map(func.body)
        for node in func.walk_nodes():
            if not isinstance(node, IfNode):
                continue
            # Never hoist out of a loop body in this pass: that would
            # change how many times the op executes.  (Loop-invariant
            # motion is a different transformation.)
            for branch in (node.then_branch, node.else_branch):
                plan = self._find_hoistable(func, node, branch)
                if plan is None:
                    continue
                op, owner_block = plan
                self._apply_hoist(func, node, branch, op, owner_block, parents)
                return True
        return False

    def _find_hoistable(
        self, func: FunctionHTG, if_node: IfNode, branch: List[HTGNode]
    ) -> Optional[Tuple[Operation, BlockNode]]:
        """First operation in *branch* (top level only) that can legally
        move above *if_node*."""
        preceding_reads: Set[str] = set()
        preceding_writes: Set[str] = set()
        preceding_array_writes: Set[str] = set()

        for element in branch:
            if isinstance(element, BlockNode):
                for op in element.ops:
                    if self._op_hoistable(
                        func,
                        if_node,
                        branch,
                        op,
                        preceding_reads,
                        preceding_writes,
                        preceding_array_writes,
                    ):
                        return op, element
                    preceding_reads |= op.reads()
                    preceding_writes |= op.writes()
                    preceding_array_writes |= op.arrays_written()
            else:
                preceding_reads |= node_reads(element)
                preceding_writes |= node_writes(element)
                preceding_array_writes |= node_arrays_written(element)
        return None

    def _op_hoistable(
        self,
        func: FunctionHTG,
        if_node: IfNode,
        branch: List[HTGNode],
        op: Operation,
        preceding_reads: Set[str],
        preceding_writes: Set[str],
        preceding_array_writes: Set[str],
    ) -> bool:
        if op.kind is not OpKind.ASSIGN or not isinstance(op.target, Var):
            return False
        if op.is_wire_copy or op.is_speculated and op.is_copy():
            return False
        if op.has_call() and not _op_calls_pure(op, self.pure_functions, None):
            return False
        target = op.target.name
        reads = op.reads()
        # RAW: a preceding (unhoisted) branch element computes an input.
        if reads & preceding_writes:
            return False
        # WAR/WAW: preceding elements read or write the target.
        if target in preceding_reads or target in preceding_writes:
            return False
        # Array RAW: op reads an array a preceding element stores to.
        if op.arrays_read() & preceding_array_writes:
            return False
        # Hoisting a pure copy `v = v` is useless churn.
        if op.is_copy() and op.expr.name == target:
            return False
        return True

    def _apply_hoist(
        self,
        func: FunctionHTG,
        if_node: IfNode,
        branch: List[HTGNode],
        op: Operation,
        owner_block: BlockNode,
        parents,
    ) -> None:
        target = op.target.name
        clobber = self._clobber_safe(func, if_node, branch, op)
        original_index = owner_block.block._index_of(op)
        owner_block.block.remove(op)

        if clobber:
            hoisted = op
            hoisted.is_speculated = True
        else:
            temp = func.fresh_variable(f"{target}_spec")
            hoisted = Operation.assign(Var(name=temp), op.expr)
            hoisted.is_speculated = True
            commit = Operation.assign(Var(name=target), Var(name=temp))
            commit.is_speculated = True
            owner_block.block.ops.insert(original_index, commit)
            self._renamed += 1
        self._hoisted += 1

        # Place the hoisted op immediately before the if-node.
        _, owner_list = parents[if_node.uid]
        index = next(
            i for i, candidate in enumerate(owner_list) if candidate is if_node
        )
        if index > 0 and isinstance(owner_list[index - 1], BlockNode):
            owner_list[index - 1].block.append(hoisted)
        else:
            owner_list.insert(index, BlockNode(BasicBlock(ops=[hoisted])))

    def _clobber_safe(
        self,
        func: FunctionHTG,
        if_node: IfNode,
        branch: List[HTGNode],
        op: Operation,
    ) -> bool:
        """Hoisting without renaming is safe when the write is unique in
        the function, every reader lives inside this branch subtree, and
        the if condition does not read the target."""
        target = op.target.name
        if if_node.cond is not None and target in expr_utils.variables_read(
            if_node.cond
        ):
            return False

        writes = 0
        for other in func.walk_operations():
            if target in other.writes():
                writes += 1
        if writes != 1:
            return False

        subtree_ops = set()
        for element in branch:
            for inner in walk_nodes([element]):
                if isinstance(inner, BlockNode):
                    for inner_op in inner.ops:
                        subtree_ops.add(inner_op.uid)
                elif isinstance(inner, LoopNode):
                    for inner_op in inner.init + inner.update:
                        subtree_ops.add(inner_op.uid)
        for other in func.walk_operations():
            if target in other.reads() and other.uid not in subtree_ops:
                return False

        subtree_nodes = set()
        for element in branch:
            for inner in walk_nodes([element]):
                subtree_nodes.add(inner.uid)
        for node in func.walk_nodes():
            if isinstance(node, (IfNode, LoopNode)) and node.uid not in subtree_nodes:
                if node is if_node:
                    continue
                if node.cond is not None and target in expr_utils.variables_read(
                    node.cond
                ):
                    return False
        return True


class EarlyConditionExecution(Pass):
    """Materialize if-conditions as explicit operations.

    ``if (Need_2nd_Byte(i)) ...`` becomes ``need_t = Need_2nd_Byte(i);
    if (need_t) ...`` so the condition computation participates in
    speculation and scheduling like any other operation ("early
    condition execution", Section 3).
    """

    name = "early-condition-execution"

    def __init__(self, prefix: str = "cond_t") -> None:
        self.prefix = prefix
        self._extracted = 0

    def run_on_function(self, func: FunctionHTG, design: Design) -> PassReport:
        report = self._start_report(func)
        self._extracted = 0
        changed = True
        while changed:
            changed = self._extract_one(func)
        func.body = normalize_blocks(func.body)
        report.changed = self._extracted > 0
        report.details["extracted_conditions"] = self._extracted
        return self._finish_report(report, func)

    def _extract_one(self, func: FunctionHTG) -> bool:
        parents = parent_map(func.body)
        for node in func.walk_nodes():
            if not isinstance(node, IfNode):
                continue
            if isinstance(node.cond, Var):
                continue
            temp = func.fresh_variable(self.prefix)
            cond_op = Operation.assign(Var(name=temp), node.cond)
            node.cond = Var(name=temp)
            _, owner_list = parents[node.uid]
            index = next(
                i for i, candidate in enumerate(owner_list) if candidate is node
            )
            if index > 0 and isinstance(owner_list[index - 1], BlockNode):
                owner_list[index - 1].block.append(cond_op)
            else:
                owner_list.insert(index, BlockNode(BasicBlock(ops=[cond_op])))
            self._extracted += 1
            return True
        return False
