"""Dead-code elimination.

Removes scalar assignments whose results are never observed.  The
paper relies on DCE twice: after unrolling + constant propagation (the
eliminated loop index update ops) and after wire-variable insertion
("a dead code elimination pass later removes any unnecessary variables
and variable copies", Section 3.1.2).

Observability: array stores and impure calls are always live; return
values are live; scalars listed in ``output_scalars`` are live at
function exit.  The pass iterates liveness + sweep to a fixpoint so
chains of dead copies collapse.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.ir.cfg import build_cfg
from repro.ir.dataflow import compute_liveness
from repro.ir.htg import BlockNode, Design, FunctionHTG, normalize_blocks
from repro.ir.operations import OpKind
from repro.transforms.base import Pass, PassReport


class DeadCodeElimination(Pass):
    """Liveness-driven removal of dead scalar assignments.

    Parameters
    ----------
    output_scalars:
        scalars observable after the function ends (design outputs);
        ``None`` keeps every scalar live at exit for `main` (safe
        default so behavioral equivalence tests can inspect any
        variable) while helper functions only keep their return values.
    pure_functions:
        calls to these external functions may be deleted when their
        results are dead.
    """

    name = "dead-code-elimination"

    def __init__(
        self,
        output_scalars: Optional[Set[str]] = None,
        pure_functions: Optional[Set[str]] = None,
    ) -> None:
        self.output_scalars = output_scalars
        self.pure_functions = pure_functions or set()
        self._removed = 0

    def run_on_function(self, func: FunctionHTG, design: Design) -> PassReport:
        report = self._start_report(func)
        self._removed = 0
        while self._sweep_once(func, design):
            pass
        func.body = normalize_blocks(func.body)
        report.changed = self._removed > 0
        report.details["removed_ops"] = self._removed
        return self._finish_report(report, func)

    def _boundary_live(self, func: FunctionHTG) -> Set[str]:
        if self.output_scalars is not None:
            return set(self.output_scalars)
        if func.name == Design.MAIN:
            # Conservative default: every scalar main writes is treated
            # as an observable design output.
            live: Set[str] = set()
            for op in func.walk_operations():
                live |= op.writes()
            return live
        return set()

    def _sweep_once(self, func: FunctionHTG, design: Design) -> bool:
        cfg = build_cfg(func)
        liveness = compute_liveness(cfg, boundary_live=self._boundary_live(func))
        removed_any = False
        for node in func.walk_nodes():
            if not isinstance(node, BlockNode):
                continue
            survivors = []
            for op in node.ops:
                if self._is_dead(op, liveness, design):
                    removed_any = True
                    self._removed += 1
                else:
                    survivors.append(op)
            node.block.ops = survivors
        return removed_any

    def _is_dead(self, op, liveness, design: Design) -> bool:
        if op.kind is not OpKind.ASSIGN:
            return False
        writes = op.writes()
        if not writes:
            return False  # array store: observable
        if op.has_call() and not self._calls_are_pure(op, design):
            return False
        live_out = liveness.op_live_out.get(op.uid)
        if live_out is None:
            # Op not reached by the analysis (e.g. loop header ops kept
            # in the HTG but duplicated in the CFG); keep it.
            return False
        return not (writes & live_out)

    def _calls_are_pure(self, op, design: Design) -> bool:
        from repro.ir import expr_utils

        for call in expr_utils.calls_in(op.expr):
            defined = call.name in design.functions
            if not defined and call.name not in self.pure_functions:
                return False
            if defined:
                # Defined functions may write shared arrays or call
                # impure externals; treat either as impure.
                callee = design.function(call.name)
                for inner in callee.walk_operations():
                    if inner.arrays_written():
                        return False
                for inner_call in design.called_functions(callee):
                    if (
                        inner_call not in design.functions
                        and inner_call not in self.pure_functions
                    ):
                        return False
        return True
