"""Operation chaining across conditional boundaries (paper Section 3.1).

Two pieces:

* **Chaining trails** (Section 3.1.1, Fig 5): to chain an operation
  with the operations feeding it in the same cycle, the heuristic
  "traverses all the paths or trails backwards from the basic block
  that operation 4 is in, looking for operations that are scheduled in
  the same cycle".  :func:`enumerate_chaining_trails` enumerates those
  trails over the CFG.

* **Wire-variables** (Section 3.1.2, Figs 6-7): registers can only be
  read the cycle after they are written, so chained values must flow
  through *wire-variables*.  :class:`WireVariableInserter` rewrites
  writes ``v = rhs`` into ``t = rhs; v = t`` (with ``t`` marked as a
  wire and the ``v = t`` copy marked as a wire-copy), and inserts
  ``t = v`` copies on trails that do not write ``v`` (the Fig 7 case),
  so the reader can use ``t`` regardless of which trail executed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import networkx as nx

from repro.frontend.ast_nodes import Var
from repro.ir import expr_utils
from repro.ir.basic_block import BasicBlock
from repro.ir.cfg import build_cfg
from repro.ir.htg import (
    BlockNode,
    Design,
    FunctionHTG,
    HTGNode,
    IfNode,
    LoopNode,
    normalize_blocks,
    parent_map,
)
from repro.ir.operations import Operation, OpKind
from repro.transforms.base import Pass, PassReport


# ---------------------------------------------------------------------------
# Chaining trails (Fig 5)
# ---------------------------------------------------------------------------


@dataclass
class ChainingTrail:
    """One control path from the region entry down to a target block.

    ``blocks`` lists the basic blocks on the trail, top-down (the paper
    writes trails bottom-up, e.g. <BB8, BB7, BB5, BB3, BB2, BB1>; we
    store them entry-first and render them paper-style in __str__).
    ``conditions`` records the (condition expression, polarity) pairs
    taken along the trail.
    """

    blocks: List[BasicBlock] = field(default_factory=list)
    conditions: List[Tuple[object, bool]] = field(default_factory=list)

    def operations(self) -> List[Operation]:
        """All operations on the trail, in execution order."""
        ops: List[Operation] = []
        for block in self.blocks:
            ops.extend(block.ops)
        return ops

    def writes_to(self, variable: str) -> List[Operation]:
        """Operations on this trail writing *variable*."""
        return [op for op in self.operations() if variable in op.writes()]

    def last_write_to(self, variable: str) -> Optional[Operation]:
        writes = self.writes_to(variable)
        return writes[-1] if writes else None

    def __str__(self) -> str:
        labels = [block.label for block in reversed(self.blocks)]
        return "<" + ", ".join(labels) + ">"


def enumerate_chaining_trails(
    func: FunctionHTG, target_block: BasicBlock
) -> List[ChainingTrail]:
    """Enumerate every trail from the function entry to *target_block*.

    Returns one :class:`ChainingTrail` per simple CFG path; the target
    block itself is excluded from the trail (the paper's trails start
    at the block *above* the chained operation's block — BB8's trails
    contain BB7 upward; we include the target block last so callers
    can inspect it, mirroring <BB8, BB7, ...>).
    """
    cfg = build_cfg(func)
    target_node = cfg.node_for_block(target_block)
    trails: List[ChainingTrail] = []
    for path in nx.all_simple_paths(
        cfg.graph, cfg.entry.node_id, target_node.node_id
    ):
        trail = ChainingTrail()
        previous = None
        for node_id in path:
            node = cfg.node(node_id)
            if node.kind == "block" and node.block is not None:
                trail.blocks.append(node.block)
            if previous is not None:
                prev_node = cfg.node(previous)
                if prev_node.kind == "branch":
                    label = cfg.edge_label(prev_node, node)
                    if label in ("true", "false"):
                        trail.conditions.append(
                            (prev_node.cond, label == "true")
                        )
            previous = node_id
        trails.append(trail)
    return trails


def chaining_sources(
    func: FunctionHTG, reader: Operation, variable: str
) -> Dict[str, List[Operation]]:
    """For Fig-5-style validation: map each trail (rendered as a string)
    to the operations on it that write *variable*.  The chaining
    heuristic uses this to confirm every trail supplies a value."""
    target_block = _block_of(func, reader)
    sources: Dict[str, List[Operation]] = {}
    for trail in enumerate_chaining_trails(func, target_block):
        sources[str(trail)] = trail.writes_to(variable)
    return sources


def _block_of(func: FunctionHTG, op: Operation) -> BasicBlock:
    for node in func.walk_nodes():
        if isinstance(node, BlockNode):
            for candidate in node.ops:
                if candidate is op:
                    return node.block
    raise ValueError(f"operation {op} not found in {func.name}")


# ---------------------------------------------------------------------------
# Wire-variable insertion (Figs 6-7)
# ---------------------------------------------------------------------------


class WireVariableError(Exception):
    """Raised when a wire cannot be threaded to a reader."""


def insert_wire_variable(
    func: FunctionHTG, reader: Operation, variable: str
) -> str:
    """Thread the chained value of *variable* to *reader* through a
    wire-variable; returns the wire's name.

    Every trail from the region start to the reader either has its last
    write to *variable* rewritten (``v = rhs`` becomes ``t = rhs`` with
    a wire-copy ``v = t`` re-committing the register value), or gains a
    ``t = v`` copy where the trail carries no write (Fig 7).  The
    reader's uses of *variable* are redirected to the wire.
    """
    existing = _reuse_existing_wire(func, reader, variable)
    if existing is not None:
        _redirect_reader(reader, variable, existing)
        return existing

    wire = func.fresh_variable(f"{variable}_w")
    func.wire_variables.add(wire)
    inserter = _WireThreader(func, variable, wire)
    covered = inserter.cover_before(reader)
    if not covered:
        # No write anywhere before the reader: the value comes straight
        # from the register; a leading copy makes the wire total.
        lead = Operation.assign(Var(name=wire), Var(name=variable))
        lead.is_wire_copy = True
        _prepend_to_region(func, lead)
    _redirect_reader(reader, variable, wire)
    return wire


def _reuse_existing_wire(
    func: FunctionHTG, reader: Operation, variable: str
) -> Optional[str]:
    """When the variable's most recent writes are already wire-copy
    commits ``v = t``, the wire ``t`` can serve this reader as well.

    Uses a structured backward scan (not path enumeration, which is
    exponential in the number of sequential conditionals) collecting
    the possible last-write operations; reuse applies when every trail
    is covered and all collected writes commit the same wire.
    """
    collector: List[Operation] = []
    covered = _collect_last_writes(func, reader, variable, collector)
    if not covered or not collector:
        return None
    wires: Set[str] = set()
    for op in collector:
        if op.is_wire_copy and isinstance(op.expr, Var):
            wires.add(op.expr.name)
        else:
            return None
    if len(wires) == 1:
        return next(iter(wires))
    return None


def _collect_last_writes(
    func: FunctionHTG,
    reader: Operation,
    variable: str,
    collector: List[Operation],
) -> bool:
    """Collect a superset of the operations that may be the last write
    to *variable* before *reader*; returns True when every control path
    to the reader carries a write."""
    parents = parent_map(func.body)
    block_node = None
    for node in func.walk_nodes():
        if isinstance(node, BlockNode):
            for candidate in node.ops:
                if candidate is reader:
                    block_node = node
                    break
        if block_node is not None:
            break
    if block_node is None:
        raise ValueError(f"operation {reader} not found in {func.name}")

    reader_index = _index_in(block_node.ops, reader)
    for index in range(reader_index - 1, -1, -1):
        if variable in block_node.ops[index].writes():
            collector.append(block_node.ops[index])
            return True

    current: HTGNode = block_node
    while True:
        parent, owner_list = parents[current.uid]
        index = next(i for i, c in enumerate(owner_list) if c is current)
        for element in reversed(owner_list[:index]):
            if _scan_element_for_writes(element, variable, collector):
                return True
        if parent is None or isinstance(parent, LoopNode):
            return False
        current = parent


def _scan_element_for_writes(
    element: HTGNode, variable: str, collector: List[Operation]
) -> bool:
    """Scan one element backwards; True when all paths through it (and
    it is on every path) define the variable."""
    if isinstance(element, BlockNode):
        for op in reversed(element.ops):
            if variable in op.writes():
                collector.append(op)
                return True
        return False
    if isinstance(element, IfNode):
        then_cov = _scan_list_for_writes(element.then_branch, variable, collector)
        else_cov = _scan_list_for_writes(element.else_branch, variable, collector)
        return then_cov and else_cov
    if isinstance(element, LoopNode):
        for op in reversed(element.update):
            if variable in op.writes():
                collector.append(op)
                return True
        if _subtree_writes(element.body, variable):
            # Writes under a data-dependent trip count: unknown shape;
            # force fresh threading by poisoning the collector.
            collector.append(Operation.assign(Var(name=variable), Var(name=variable)))
            return True
        for op in reversed(element.init):
            if variable in op.writes():
                collector.append(op)
                return True
        return False
    return False


def _scan_list_for_writes(
    elements: List[HTGNode], variable: str, collector: List[Operation]
) -> bool:
    for element in reversed(elements):
        if _scan_element_for_writes(element, variable, collector):
            return True
    return False


def _index_in(ops: List[Operation], op: Operation) -> int:
    for index, candidate in enumerate(ops):
        if candidate is op:
            return index
    return len(ops)


def _redirect_reader(reader: Operation, variable: str, wire: str) -> None:
    mapping = {variable: Var(name=wire)}
    if reader.expr is not None:
        reader.expr = expr_utils.substitute(reader.expr, mapping)
    if reader.target is not None and not isinstance(reader.target, Var):
        reader.target = expr_utils.substitute(reader.target, mapping)


def _prepend_to_region(func: FunctionHTG, op: Operation) -> None:
    if func.body and isinstance(func.body[0], BlockNode):
        func.body[0].block.prepend(op)
    else:
        func.body.insert(0, BlockNode(BasicBlock(ops=[op])))


class _WireThreader:
    """Walks backwards from a reader through the HTG hierarchy making
    sure the wire is assigned on every trail.

    The paper's algorithm rewrites the last write on *every* trail
    (Fig 6: both ``o1 = a+b`` and ``o1 = d`` become wire writes).  So
    when one branch of a conditional lacks a write, the scan continues
    to earlier elements — only when no earlier write exists either does
    the write-free branch receive the explicit ``wire = variable`` copy
    of Fig 7 (reading the previous-cycle register value).
    """

    def __init__(self, func: FunctionHTG, variable: str, wire: str) -> None:
        self.func = func
        self.variable = variable
        self.wire = wire
        self.copies_inserted = 0
        # Branch node-lists that still need the wire defined when no
        # earlier write turns up.
        self._pending_branches: List[List[HTGNode]] = []

    # -- entry point -----------------------------------------------------

    def cover_before(self, reader: Operation) -> bool:
        """Ensure the wire is defined on every path reaching *reader*.
        Returns False when no write exists on any path (caller adds the
        leading register copy)."""
        parents = parent_map(self.func.body)
        block_node = self._block_node_of(reader)

        # 1. Writes earlier in the reader's own block.
        ops = block_node.ops
        reader_index = _index_in(ops, reader)
        if self._rewrite_last_write(block_node, before_index=reader_index):
            return True

        # 2. Walk up the hierarchy: previous siblings, then the parent.
        covered = False
        current: HTGNode = block_node
        while not covered:
            parent, owner_list = parents[current.uid]
            index = next(
                i for i, candidate in enumerate(owner_list) if candidate is current
            )
            for element in reversed(owner_list[:index]):
                if self._cover_element(element, owner_list):
                    covered = True
                    break
            if covered:
                break
            if parent is None or isinstance(parent, LoopNode):
                # Chaining never reaches across a loop back-edge: loop
                # bodies are their own scheduling regions.
                break
            current = parent

        if covered:
            # Earlier coverage also covers every pending write-free
            # branch trail (the write happens before the conditional).
            self._pending_branches.clear()
            return True
        # No earlier write: the pending branches read the register
        # value directly (paper Fig 7, op 4: `t1 = o1`).
        for branch in self._pending_branches:
            self._append_register_copy(branch)
        had_pending = bool(self._pending_branches)
        self._pending_branches.clear()
        return had_pending

    # -- element coverage --------------------------------------------------

    def _cover_element(
        self, element: HTGNode, owner_list: List[HTGNode]
    ) -> bool:
        if isinstance(element, BlockNode):
            return self._rewrite_last_write(element, before_index=len(element.ops))
        if isinstance(element, IfNode):
            then_writes = _subtree_writes(element.then_branch, self.variable)
            else_writes = _subtree_writes(element.else_branch, self.variable)
            if not then_writes and not else_writes:
                return False
            then_cov = self._cover_branch(element.then_branch)
            else_cov = self._cover_branch(element.else_branch)
            if then_cov and else_cov:
                return True
            if not then_cov:
                self._pending_branches.append(element.then_branch)
            if not else_cov:
                self._pending_branches.append(element.else_branch)
            return False  # keep scanning earlier for the missing trails
        if isinstance(element, LoopNode):
            if _subtree_writes(element.body, self.variable) or any(
                self.variable in op.writes()
                for op in element.init + element.update
            ):
                # A loop body is its own scheduling region, so the
                # value reaching this trail sits in a register after
                # the loop exits (whether the loop ran or not).  Tap
                # the register right after the loop — the same
                # previous-write rule as Fig 7's `t1 = o1` copy.
                self._tap_register_after(element, owner_list)
                return True
            return False
        return False

    def _tap_register_after(
        self, loop: LoopNode, owner_list: List[HTGNode]
    ) -> None:
        """Insert ``wire = variable`` immediately after *loop* in its
        owning node list."""
        copy = Operation.assign(Var(name=self.wire), Var(name=self.variable))
        copy.is_wire_copy = True
        self.copies_inserted += 1
        position = next(
            i for i, candidate in enumerate(owner_list) if candidate is loop
        )
        follower = (
            owner_list[position + 1]
            if position + 1 < len(owner_list)
            else None
        )
        if isinstance(follower, BlockNode):
            follower.block.prepend(copy)
        else:
            owner_list.insert(
                position + 1, BlockNode(BasicBlock(ops=[copy]))
            )

    def _cover_branch(self, branch: List[HTGNode]) -> bool:
        """Rewrite the branch's last write into the wire; False when the
        branch carries no write at all.  Pending sub-branches registered
        while scanning are dropped once an earlier write inside this
        branch covers them."""
        saved = len(self._pending_branches)
        for element in reversed(branch):
            if self._cover_element(element, branch):
                del self._pending_branches[saved:]
                return True
        return False

    def _append_register_copy(self, branch: List[HTGNode]) -> None:
        copy = Operation.assign(Var(name=self.wire), Var(name=self.variable))
        copy.is_wire_copy = True
        self.copies_inserted += 1
        if branch and isinstance(branch[-1], BlockNode):
            branch[-1].block.append(copy)
        else:
            branch.append(BlockNode(BasicBlock(ops=[copy])))

    def _rewrite_last_write(self, node: BlockNode, before_index: int) -> bool:
        """Rewrite the last write to the variable within ``node.ops[:
        before_index]`` into a wire write plus register commit."""
        for index in range(before_index - 1, -1, -1):
            op = node.ops[index]
            if self.variable not in op.writes():
                continue
            if op.is_wire_copy and isinstance(op.expr, Var):
                # Already `v = t_other`: chain through that wire.
                node.ops.insert(
                    index + 1, self._wire_copy(Var(name=op.expr.name))
                )
                return True
            # v = rhs  ->  t = rhs ; v = t
            commit = Operation.assign(
                Var(name=self.variable), Var(name=self.wire)
            )
            commit.is_wire_copy = True
            op.target = Var(name=self.wire)
            node.ops.insert(index + 1, commit)
            self.copies_inserted += 1
            return True
        return False

    def _wire_copy(self, source: Var) -> Operation:
        copy = Operation.assign(Var(name=self.wire), source)
        copy.is_wire_copy = True
        self.copies_inserted += 1
        return copy

    def _block_node_of(self, op: Operation) -> BlockNode:
        for node in self.func.walk_nodes():
            if isinstance(node, BlockNode):
                for candidate in node.ops:
                    if candidate is op:
                        return node
        raise ValueError(f"operation {op} not found in {self.func.name}")


class WireVariableInserter(Pass):
    """Whole-function wire insertion for single-cycle regions.

    Assuming the function body is scheduled into one cycle (the
    microprocessor-block target), every read of a variable written
    earlier in the body must go through a wire.  The pass finds each
    such read and applies :func:`insert_wire_variable`.

    The scheduler applies the same machinery per state for multi-cycle
    schedules.
    """

    name = "wire-variable-insertion"

    def __init__(self) -> None:
        self._wires = 0

    def run_on_function(self, func: FunctionHTG, design: Design) -> PassReport:
        report = self._start_report(func)
        self._wires = 0
        changed = True
        guard = 10_000
        while changed and guard:
            changed = self._insert_one(func)
            guard -= 1
        func.body = normalize_blocks(func.body)
        report.changed = self._wires > 0
        report.details["wires_inserted"] = self._wires
        return self._finish_report(report, func)

    def _insert_one(self, func: FunctionHTG) -> bool:
        found = self._find_chained(func, func.body, set())
        if found is None:
            return False
        kind, element, variable = found
        if kind == "op":
            insert_wire_variable(func, element, variable)
        else:
            # Conditions read registers unless the value was produced
            # this cycle; reroute the condition through a wire.
            self._wire_condition(func, element, variable)
        self._wires += 1
        return True

    def _find_chained(self, func: FunctionHTG, nodes, written: Set[str]):
        """Path-sensitive scan for the first read of a value written
        earlier on the same control path (same cycle).  Mutates
        *written* to reflect the nodes walked."""
        for node in nodes:
            if isinstance(node, BlockNode):
                for op in node.ops:
                    if not op.is_wire_copy:
                        chained = (op.reads() & written) - func.wire_variables
                        if chained:
                            return "op", op, sorted(chained)[0]
                    written |= op.writes()
            elif isinstance(node, IfNode):
                if node.cond is not None:
                    cond_reads = expr_utils.variables_read(node.cond)
                    chained = (cond_reads & written) - func.wire_variables
                    if chained:
                        return "cond", node, sorted(chained)[0]
                then_written = set(written)
                found = self._find_chained(func, node.then_branch, then_written)
                if found is not None:
                    return found
                else_written = set(written)
                found = self._find_chained(func, node.else_branch, else_written)
                if found is not None:
                    return found
                written |= then_written | else_written
            elif isinstance(node, LoopNode):
                # A loop body is its own scheduling region: values do
                # not chain across its boundary or back-edge.
                body_written: Set[str] = set()
                found = self._find_chained(func, node.body, body_written)
                if found is not None:
                    return found
                written.clear()
        return None

    def _wire_condition(self, func: FunctionHTG, node, variable: str) -> None:
        """Route a condition's read of a chained variable through a
        wire by treating the condition like a reader operation."""
        probe = Operation.assign(Var(name="__cond_probe"), node.cond)
        # Temporarily place the probe where the condition evaluates: we
        # only need the backward threading, then move the rewritten
        # expression back into the condition.
        parents = parent_map(func.body)
        _, owner_list = parents[node.uid]
        index = next(i for i, c in enumerate(owner_list) if c is node)
        carrier = BlockNode(BasicBlock(ops=[probe]))
        owner_list.insert(index, carrier)
        try:
            insert_wire_variable(func, probe, variable)
            node.cond = probe.expr
        finally:
            owner_list_now = parent_map(func.body)[carrier.uid][1]
            for position, candidate in enumerate(owner_list_now):
                if candidate is carrier:
                    del owner_list_now[position]
                    break


def _subtree_writes(nodes: List[HTGNode], variable: str) -> bool:
    from repro.ir.htg import walk_nodes

    for node in walk_nodes(nodes):
        if isinstance(node, BlockNode):
            for op in node.ops:
                if variable in op.writes():
                    return True
        elif isinstance(node, LoopNode):
            for op in node.init + node.update:
                if variable in op.writes():
                    return True
    return False


def _walk_in_order(nodes: List[HTGNode]):
    """Pre-order walk used by the single-cycle wire inserter: blocks,
    then if-condition, then branches."""
    for node in nodes:
        yield node
        if isinstance(node, IfNode):
            yield from _walk_in_order(node.then_branch)
            yield from _walk_in_order(node.else_branch)
        elif isinstance(node, LoopNode):
            yield from _walk_in_order(node.body)
