"""Source-level rewrite of the natural while(1) description (Fig 16).

The paper's conclusion: "the behavioral description we have used as a
starting point ... may not be the most simple way to describe the
design.  A more natural and succinct way to describe the ILD's behavior
could be as shown in Figure 16 ... This leads us to future work in
developing a new set of source-level transformations that can transform
these sort of descriptions into more easily synthesizable behavioral
descriptions."

This module implements that future-work transformation for the class of
*position-advancing* loops: an unbounded ``while(1)`` whose body
strictly increases a position variable each iteration (the ILD advances
``NextStartByte`` by the decoded length, which is at least one byte).
The rewrite produces the Fig-10 form: a bounded ``for`` loop over every
position ``start .. bound`` whose body is guarded by
``index == position`` — synthesizable because the trip count is now
static, which is exactly what :class:`~repro.transforms.unroll.LoopUnroller`
needs.
"""

from __future__ import annotations

from typing import List, Optional

from repro.frontend.ast_nodes import BinOp, IntLit, Var
from repro.ir import expr_utils
from repro.ir.htg import (
    BlockNode,
    Design,
    FunctionHTG,
    HTGNode,
    IfNode,
    LoopNode,
    normalize_blocks,
    replace_node,
    walk_nodes,
)
from repro.ir.operations import Operation
from repro.transforms.base import Pass, PassReport


class LoopRewriteError(Exception):
    """Raised when the while(1) loop does not match the
    position-advancing pattern."""


class WhileToForRewrite(Pass):
    """Rewrite ``while(1) { ...; pos += len; }`` into the bounded,
    guarded form of Fig 10.

    Parameters
    ----------
    position_var:
        the strictly-increasing position variable (``NextStartByte``).
    bound:
        the buffer size ``n``: the rewritten loop covers positions
        ``start .. bound``.
    index_var:
        name for the introduced loop index (default ``"i"``; a fresh
        name is derived when taken).
    """

    name = "while-to-for-rewrite"

    def __init__(
        self, position_var: str, bound: int, index_var: str = "i"
    ) -> None:
        self.position_var = position_var
        self.bound = bound
        self.index_var = index_var
        self._rewritten = 0

    def run_on_function(self, func: FunctionHTG, design: Design) -> PassReport:
        report = self._start_report(func)
        self._rewritten = 0
        target = self._find_candidate(func)
        if target is not None:
            replacement = self.rewrite_loop(func, target)
            replace_node(func.body, target, replacement)
            func.body = normalize_blocks(func.body)
            self._rewritten = 1
        report.changed = self._rewritten > 0
        report.details["rewritten_loops"] = self._rewritten
        return self._finish_report(report, func)

    def _find_candidate(self, func: FunctionHTG) -> Optional[LoopNode]:
        for node in func.walk_nodes():
            if not isinstance(node, LoopNode) or node.kind != "while":
                continue
            if not self._is_forever(node):
                continue
            if self._advances_position(node):
                return node
        return None

    @staticmethod
    def _is_forever(node: LoopNode) -> bool:
        return isinstance(node.cond, IntLit) and node.cond.value != 0

    def _advances_position(self, node: LoopNode) -> bool:
        """The body must contain ``pos = pos + <something>`` so that
        positions strictly increase (lengths are >= 1 by the decoder's
        construction; the rewrite's guard makes a zero advance merely
        re-decode, which the bounded loop tolerates)."""
        for inner in walk_nodes(node.body):
            if isinstance(inner, BlockNode):
                for op in inner.ops:
                    if self.position_var in op.writes():
                        expr = op.expr
                        if (
                            isinstance(expr, BinOp)
                            and expr.op == "+"
                            and self.position_var
                            in expr_utils.variables_read(expr)
                        ):
                            return True
        return False

    def rewrite_loop(self, func: FunctionHTG, loop: LoopNode) -> List[HTGNode]:
        """Build the Fig-10 form for *loop*."""
        index = self.index_var
        if index in func.variables() and index != self.position_var:
            index = func.fresh_variable(self.index_var + "_r")
        func.locals.add(index)

        # Guarded body: reads of the position become the index (valid
        # under the guard index == position); writes stay.  The
        # chunking guard `if (pos > bound) break;` — the executable
        # stand-in for the paper's infinite stream — is unreachable
        # under `index == position <= bound` and is stripped so the
        # result is a pure counted loop the unroller accepts.
        guarded = [n.clone() for n in loop.body]
        guarded = _strip_bound_breaks(guarded)
        _substitute_reads_only(guarded, self.position_var, index)

        guard = IfNode(
            cond=BinOp(
                op="==",
                left=Var(name=index),
                right=Var(name=self.position_var),
            ),
            then_branch=guarded,
        )
        for_loop = LoopNode(
            kind="for",
            cond=BinOp(op="<=", left=Var(name=index), right=IntLit(value=self.bound)),
            body=[guard],
            init=[Operation.assign(Var(name=index), IntLit(value=1))],
            update=[
                Operation.assign(
                    Var(name=index),
                    BinOp(op="+", left=Var(name=index), right=IntLit(value=1)),
                )
            ],
        )
        return [for_loop]


def _strip_bound_breaks(nodes: List[HTGNode]) -> List[HTGNode]:
    """Remove if-nodes whose entire effect is `break` (the buffer-bound
    chunking guard).  Only exact guard shapes are stripped: a branch
    containing nothing but break nodes / empty blocks."""
    from repro.ir.htg import BreakNode

    def is_pure_break(branch: List[HTGNode]) -> bool:
        saw_break = False
        for node in branch:
            if isinstance(node, BreakNode):
                saw_break = True
            elif isinstance(node, BlockNode) and not node.ops:
                continue
            else:
                return False
        return saw_break

    result: List[HTGNode] = []
    for node in nodes:
        if isinstance(node, IfNode) and is_pure_break(node.then_branch) and not node.else_branch:
            continue
        result.append(node)
    return result


def _substitute_reads_only(
    nodes: List[HTGNode], variable: str, replacement: str
) -> None:
    """Replace *reads* of ``variable`` with ``replacement`` throughout
    the sub-HTG while leaving assignment targets untouched."""
    mapping = {variable: Var(name=replacement)}

    for node in walk_nodes(nodes):
        if isinstance(node, BlockNode):
            for op in node.ops:
                op.expr = expr_utils.substitute(op.expr, mapping)
                if op.target is not None and not isinstance(op.target, Var):
                    op.target = expr_utils.substitute(op.target, mapping)
        elif isinstance(node, (IfNode, LoopNode)):
            if node.cond is not None:
                node.cond = expr_utils.substitute(node.cond, mapping)
            if isinstance(node, LoopNode):
                for op in node.init + node.update:
                    op.expr = expr_utils.substitute(op.expr, mapping)
                    if op.target is not None and not isinstance(op.target, Var):
                        op.target = expr_utils.substitute(op.target, mapping)
