"""The coordinated transformation suite (paper Section 3).

Fine-grain passes: constant propagation/folding, copy propagation,
dead-code elimination, local CSE.  Coarse-grain passes: function
inlining, loop unrolling, the Fig-16 while(1) source rewrite,
speculation and the supporting code motions, and operation chaining
with wire-variable insertion (Section 3.1).

All passes share the :class:`~repro.transforms.base.Pass` protocol and
can be sequenced with a :class:`~repro.transforms.base.PassManager`,
mirroring Spark's script-driven pass control ("it also allows the
designer to control the various passes ... through script files").
"""

from repro.transforms.base import Pass, PassManager, PassReport, SynthesisScript
from repro.transforms.chaining import (
    ChainingTrail,
    WireVariableInserter,
    enumerate_chaining_trails,
)
from repro.transforms.cond_speculation import (
    ConditionalSpeculation,
    ReverseSpeculation,
)
from repro.transforms.const_prop import ConstantPropagation
from repro.transforms.copy_prop import CopyPropagation
from repro.transforms.cse import LocalCSE
from repro.transforms.dce import DeadCodeElimination
from repro.transforms.inline import FunctionInliner, InlineError
from repro.transforms.loop_rewrite import WhileToForRewrite
from repro.transforms.lower_tac import TACLowering
from repro.transforms.speculation import EarlyConditionExecution, Speculation
from repro.transforms.unroll import LoopUnroller, UnrollError

__all__ = [
    "ChainingTrail",
    "ConditionalSpeculation",
    "ConstantPropagation",
    "CopyPropagation",
    "DeadCodeElimination",
    "EarlyConditionExecution",
    "FunctionInliner",
    "InlineError",
    "LocalCSE",
    "LoopUnroller",
    "Pass",
    "PassManager",
    "PassReport",
    "ReverseSpeculation",
    "Speculation",
    "SynthesisScript",
    "TACLowering",
    "UnrollError",
    "WhileToForRewrite",
    "WireVariableInserter",
    "enumerate_chaining_trails",
]
