"""Constant propagation and folding over the HTG.

The paper uses constant propagation as the *enabling* step after full
loop unrolling: "since the loop has been completely unrolled, the
constant assignment of i = 1 can be propagated throughout the code and
the loop index variable i can be eliminated" (Section 6, Fig 14).

The pass is a structured abstract interpretation over the HTG with a
flat constant lattice (constant / unknown).  Branch merges intersect
environments; loops conservatively invalidate everything the loop can
write.  Optionally the pass is restricted to a set of variables
(``only_vars``) so the reproduction can propagate *only the loop index*
and regenerate Fig 14 literally, where ``NextStartByte`` stays symbolic
even though its initial value is known.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.frontend.ast_nodes import Expr, IntLit, Var
from repro.ir import expr_utils
from repro.ir.htg import (
    BlockNode,
    BreakNode,
    Design,
    FunctionHTG,
    HTGNode,
    IfNode,
    LoopNode,
    normalize_blocks,
)
from repro.ir.operations import OpKind
from repro.transforms.base import Pass, PassReport

# Lattice: var -> int means "known constant"; absence means unknown.
_Env = Dict[str, int]


class ConstantPropagation(Pass):
    """Flow-sensitive constant propagation with folding.

    Parameters
    ----------
    fold_branches:
        when True, an if-node whose condition folds to a constant is
        replaced by the taken branch (and for-loops whose condition is
        statically false are deleted).
    only_vars:
        restrict propagation to these variables (None = all).  Folding
        of literal arithmetic still happens everywhere.
    """

    name = "constant-propagation"

    def __init__(
        self,
        fold_branches: bool = True,
        only_vars: Optional[Set[str]] = None,
    ) -> None:
        self.fold_branches = fold_branches
        self.only_vars = only_vars
        self._changed = False
        self._folded_branches = 0
        self._substitutions = 0

    def run_on_function(self, func: FunctionHTG, design: Design) -> PassReport:
        report = self._start_report(func)
        self._changed = False
        self._folded_branches = 0
        self._substitutions = 0
        func.body = self._process_nodes(func.body, {})[0]
        func.body = normalize_blocks(func.body)
        report.changed = self._changed
        report.details["folded_branches"] = self._folded_branches
        report.details["substitutions"] = self._substitutions
        return self._finish_report(report, func)

    # -- environment helpers ---------------------------------------------

    def _propagatable(self, name: str) -> bool:
        return self.only_vars is None or name in self.only_vars

    def _rewrite(self, expr: Optional[Expr], env: _Env) -> Optional[Expr]:
        """Substitute known constants into *expr* and fold."""
        if expr is None:
            return None
        mapping = {
            name: IntLit(value=value)
            for name, value in env.items()
            if self._propagatable(name)
        }
        substituted = expr_utils.substitute(expr, mapping) if mapping else expr
        folded = expr_utils.fold_constants(substituted)
        if not expr_utils.expr_equal(folded, expr):
            self._changed = True
            self._substitutions += 1
        return folded

    @staticmethod
    def _merge(a: _Env, b: _Env) -> _Env:
        """Lattice meet: keep bindings present and equal in both."""
        return {
            name: value
            for name, value in a.items()
            if name in b and b[name] == value
        }

    # -- structured walk ---------------------------------------------------

    def _process_nodes(
        self, nodes: List[HTGNode], env: _Env
    ) -> (List[HTGNode], _Env, bool):
        """Process a node list with incoming *env*.

        Returns (rewritten nodes, outgoing env, falls_through).  A
        sequence does not fall through when it unconditionally breaks
        or returns.
        """
        result: List[HTGNode] = []
        current = dict(env)
        for index, node in enumerate(nodes):
            if isinstance(node, BlockNode):
                falls = self._process_block(node, current)
                result.append(node)
                if not falls:
                    return result, current, False
            elif isinstance(node, IfNode):
                replacement, current, falls = self._process_if(node, current)
                result.extend(replacement)
                if not falls:
                    return result, current, False
            elif isinstance(node, LoopNode):
                replacement, current = self._process_loop(node, current)
                result.extend(replacement)
            elif isinstance(node, BreakNode):
                result.append(node)
                return result, current, False
            else:
                result.append(node)
        return result, current, True

    def _process_block(self, node: BlockNode, env: _Env) -> bool:
        """Rewrite a block's ops against *env*, updating it in place.
        Returns False when the block ends in a return."""
        for op in node.ops:
            op.expr = self._rewrite(op.expr, env)
            if op.target is not None and not isinstance(op.target, Var):
                op.target = self._rewrite_target(op.target, env)
            if op.kind is OpKind.ASSIGN and isinstance(op.target, Var):
                name = op.target.name
                if isinstance(op.expr, IntLit):
                    env[name] = op.expr.value
                else:
                    env.pop(name, None)
            elif op.kind is OpKind.RETURN:
                return False
        return True

    def _rewrite_target(self, target: Expr, env: _Env) -> Expr:
        """Array store targets: rewrite the index expression only."""
        from repro.frontend.ast_nodes import ArrayRef

        if isinstance(target, ArrayRef):
            return ArrayRef(
                line=target.line,
                name=target.name,
                index=self._rewrite(target.index, env),
            )
        return target

    def _process_if(self, node: IfNode, env: _Env):
        node.cond = self._rewrite(node.cond, env)
        if self.fold_branches and isinstance(node.cond, IntLit):
            taken = node.then_branch if node.cond.value else node.else_branch
            self._changed = True
            self._folded_branches += 1
            taken_nodes, out_env, falls = self._process_nodes(taken, env)
            return taken_nodes, out_env, falls

        then_nodes, then_env, then_falls = self._process_nodes(
            node.then_branch, env
        )
        else_nodes, else_env, else_falls = self._process_nodes(
            node.else_branch, env
        )
        node.then_branch = then_nodes
        node.else_branch = else_nodes
        if then_falls and else_falls:
            merged = self._merge(then_env, else_env)
        elif then_falls:
            merged = then_env
        elif else_falls:
            merged = else_env
        else:
            merged = {}
        return [node], merged, then_falls or else_falls

    def _process_loop(self, node: LoopNode, env: _Env):
        current = dict(env)
        init_block = BlockNode()
        init_block.block.ops = node.init
        self._process_block(init_block, current)

        # A loop whose condition is false on *entry* (with the init
        # values) never runs at all.  Probe on a clone without touching
        # the change-tracking flags.
        if self.fold_branches and node.cond is not None:
            saved = (self._changed, self._substitutions)
            entry_cond = self._rewrite(expr_utils.clone(node.cond), current)
            self._changed, self._substitutions = saved
            if isinstance(entry_cond, IntLit) and not entry_cond.value:
                self._changed = True
                self._folded_branches += 1
                replacement: List[HTGNode] = []
                if node.init:
                    replacement.append(init_block)
                return replacement, current

        # Anything the loop may write is unknown from the second
        # iteration on; invalidate before touching cond/body.
        written = self._loop_written_vars(node)
        loop_env = {
            name: value for name, value in current.items() if name not in written
        }
        if node.cond is not None:
            node.cond = self._rewrite(node.cond, loop_env)
        body_nodes, _, _ = self._process_nodes(node.body, dict(loop_env))
        node.body = body_nodes
        update_block = BlockNode()
        update_block.block.ops = node.update
        self._process_block(update_block, dict(loop_env))
        return [node], loop_env

    @staticmethod
    def _loop_written_vars(node: LoopNode) -> Set[str]:
        from repro.ir.htg import walk_nodes

        written: Set[str] = set()
        for op in node.update:
            written |= op.writes()
        for inner in walk_nodes(node.body):
            if isinstance(inner, BlockNode):
                for op in inner.ops:
                    written |= op.writes()
            elif isinstance(inner, LoopNode):
                for op in inner.init:
                    written |= op.writes()
                for op in inner.update:
                    written |= op.writes()
        return written
