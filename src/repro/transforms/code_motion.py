"""Parallelizing code motions (paper Sections 3 and 4).

The paper relies on "a range of code motion techniques" — Trailblazing
[18] hierarchical motion and percolation-style compaction — to turn the
unrolled, constant-propagated code into the maximally parallel form of
Fig 3(b) ("the code motion transformations can execute the Op1
operations concurrently followed by the concurrent execution of all
the Op2 operations").  Two motions live here:

:class:`DataflowLevelReorder`
    intra-block percolation: operations inside a basic block are
    reordered into ASAP dataflow levels, so independent operations
    (all the Op1 of Fig 3) become adjacent and the in-order chaining
    scheduler packs them into the same cycle.

:class:`TrailblazingHoist`
    hierarchical motion across compound nodes: an operation *after* an
    if- or loop-node that is independent of everything inside it moves
    *across* the node without entering it — Trailblazing's signature
    move ("a hierarchical approach to percolation scheduling").

Both motions respect a synthesis-grade dependence test: scalar RAW /
WAR / WAW, array dependences disambiguated at *element* granularity
when both indices are compile-time constants (the post-unroll case),
and calls serialized unless declared pure.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.frontend.ast_nodes import ArrayRef, BinOp, Call, Expr, IntLit, Ternary, UnaryOp, Var
from repro.ir import expr_utils
from repro.ir.htg import BlockNode, Design, FunctionHTG, HTGNode, IfNode, LoopNode
from repro.ir.operations import Operation, OpKind
from repro.transforms.base import Pass, PassReport


# --------------------------------------------------------------------------
# Dependence testing
# --------------------------------------------------------------------------

def array_refs_in(expr: Optional[Expr]) -> List[ArrayRef]:
    """Every ArrayRef appearing in *expr* (reads)."""
    refs: List[ArrayRef] = []

    def visit(node: Optional[Expr]) -> None:
        if node is None:
            return
        if isinstance(node, ArrayRef):
            refs.append(node)
            visit(node.index)
        elif isinstance(node, BinOp):
            visit(node.left)
            visit(node.right)
        elif isinstance(node, UnaryOp):
            visit(node.operand)
        elif isinstance(node, Call):
            for arg in node.args:
                visit(arg)
        elif isinstance(node, Ternary):
            visit(node.cond)
            visit(node.if_true)
            visit(node.if_false)

    visit(expr)
    return refs


def _read_refs(op: Operation) -> List[ArrayRef]:
    refs = array_refs_in(op.expr)
    if isinstance(op.target, ArrayRef):
        refs.extend(array_refs_in(op.target.index))
    return refs


def _write_ref(op: Operation) -> Optional[ArrayRef]:
    if op.kind is OpKind.ASSIGN and isinstance(op.target, ArrayRef):
        return op.target
    return None


def refs_may_alias(a: ArrayRef, b: ArrayRef) -> bool:
    """May *a* and *b* denote the same element?  Different arrays never
    alias; equal-constant indices alias; distinct-constant indices do
    not (the post-unroll disambiguation that makes Fig 3 legal); any
    symbolic index is conservatively assumed to alias."""
    if a.name != b.name:
        return False
    if isinstance(a.index, IntLit) and isinstance(b.index, IntLit):
        return a.index.value == b.index.value
    return True


class DependenceTest:
    """Pairwise dependence oracle over operations.

    *pure_functions* are calls with no side effects (the ILD length
    lookups); every other call is a barrier against reordering.
    """

    def __init__(self, pure_functions: Optional[Set[str]] = None) -> None:
        self.pure = set(pure_functions or set())

    def _impure(self, op: Operation) -> bool:
        for call in expr_utils.calls_in(op.expr):
            if call.name not in self.pure:
                return True
        if isinstance(op.target, ArrayRef):
            for call in expr_utils.calls_in(op.target.index):
                if call.name not in self.pure:
                    return True
        return False

    def depends(self, earlier: Operation, later: Operation) -> bool:
        """Must *later* stay after *earlier*?"""
        if earlier.kind is OpKind.RETURN or later.kind is OpKind.RETURN:
            return True
        if self._impure(earlier) or self._impure(later):
            return True

        # Scalar dependences.
        if earlier.writes() & later.reads():        # RAW
            return True
        if earlier.reads() & later.writes():        # WAR
            return True
        if earlier.writes() & later.writes():       # WAW
            return True

        # Array dependences at element granularity.
        w_early = _write_ref(earlier)
        w_late = _write_ref(later)
        if w_early is not None:
            for ref in _read_refs(later):            # RAW
                if refs_may_alias(w_early, ref):
                    return True
            if w_late is not None and refs_may_alias(w_early, w_late):  # WAW
                return True
        if w_late is not None:
            for ref in _read_refs(earlier):          # WAR
                if refs_may_alias(w_late, ref):
                    return True
        return False

    def independent_of_all(
        self, op: Operation, ops: List[Operation]
    ) -> bool:
        """May *op* move above every operation in *ops*?"""
        return not any(self.depends(other, op) for other in ops)


# --------------------------------------------------------------------------
# Intra-block percolation
# --------------------------------------------------------------------------

class DataflowLevelReorder(Pass):
    """Reorder every basic block into ASAP dataflow levels.

    Level(op) = 1 + max(level of ops it depends on); ties keep source
    order (the reorder is stable), so the result is deterministic and
    equivalent — only the interleaving changes.  After full unrolling
    this produces exactly Fig 3(b): every Op1 at level 1, every Op2 at
    level 2.
    """

    name = "dataflow-level-reorder"

    def __init__(self, pure_functions: Optional[Set[str]] = None) -> None:
        self.test = DependenceTest(pure_functions)

    def run_on_function(self, func: FunctionHTG, design: Design) -> PassReport:
        report = self._start_report(func)
        moved = 0
        for node in func.walk_nodes():
            if isinstance(node, BlockNode) and len(node.ops) > 1:
                moved += self._reorder_block(node.ops)
        report.changed = moved > 0
        report.details["ops_moved"] = moved
        return self._finish_report(report, func)

    def _reorder_block(self, ops: List[Operation]) -> int:
        n = len(ops)
        levels = [1] * n
        for j in range(n):
            for i in range(j):
                if self.test.depends(ops[i], ops[j]):
                    levels[j] = max(levels[j], levels[i] + 1)
        order = sorted(range(n), key=lambda idx: (levels[idx], idx))
        if order == list(range(n)):
            return 0
        reordered = [ops[idx] for idx in order]
        moved = sum(1 for pos, idx in enumerate(order) if pos != idx)
        ops[:] = reordered
        return moved

    def block_levels(self, ops: List[Operation]) -> Dict[int, int]:
        """Expose op-uid -> level for tests and benchmarks."""
        n = len(ops)
        levels = [1] * n
        for j in range(n):
            for i in range(j):
                if self.test.depends(ops[i], ops[j]):
                    levels[j] = max(levels[j], levels[i] + 1)
        return {ops[i].uid: levels[i] for i in range(n)}


# --------------------------------------------------------------------------
# Hierarchical (Trailblazing) motion
# --------------------------------------------------------------------------

def _node_operations(node: HTGNode) -> List[Operation]:
    """Every operation inside *node*, loop init/update included."""
    ops: List[Operation] = []

    def visit(item: HTGNode) -> None:
        if isinstance(item, BlockNode):
            ops.extend(item.ops)
            return
        if isinstance(item, LoopNode):
            ops.extend(item.init)
            ops.extend(item.update)
        for child_list in item.child_lists():
            for child in child_list:
                visit(child)

    visit(node)
    return ops


def _node_condition_reads(node: HTGNode) -> Set[str]:
    """Scalar reads of every condition inside *node* (if/loop conds are
    read at control time; an op writing them cannot cross)."""
    names: Set[str] = set()

    def visit(item: HTGNode) -> None:
        if isinstance(item, (IfNode, LoopNode)) and item.cond is not None:
            names.update(expr_utils.variables_read(item.cond))
        for child_list in item.child_lists():
            for child in child_list:
                visit(child)

    visit(node)
    return names


class TrailblazingHoist(Pass):
    """Move operations backwards *across* compound nodes they are
    independent of, without entering them.

    Within each node list, an operation sitting in a block after an
    if-/loop-node hops over the compound node (and lands at the end of
    the block before it) when no dependence ties it to anything inside
    the node or to the node's condition.  Iterates to a fixpoint within
    the region, so an op can hop over several compound nodes — the
    hierarchical percolation of Trailblazing [18].
    """

    name = "trailblazing-hoist"

    def __init__(self, pure_functions: Optional[Set[str]] = None) -> None:
        self.test = DependenceTest(pure_functions)

    def run_on_function(self, func: FunctionHTG, design: Design) -> PassReport:
        report = self._start_report(func)
        moved = self._hoist_in_list(func.body)
        for node in func.walk_nodes():
            for child_list in node.child_lists():
                moved += self._hoist_in_list(child_list)
        report.changed = moved > 0
        report.details["ops_hoisted"] = moved
        return self._finish_report(report, func)

    def _hoist_in_list(self, nodes: List[HTGNode]) -> int:
        moved_total = 0
        changed = True
        while changed:
            changed = False
            for position in range(1, len(nodes)):
                node = nodes[position]
                previous = nodes[position - 1]
                if not isinstance(node, BlockNode):
                    continue
                if not isinstance(previous, (IfNode, LoopNode)):
                    continue
                hops = self._hop_ops(node, previous, nodes, position)
                if hops:
                    moved_total += hops
                    changed = True
        return moved_total

    def _hop_ops(
        self,
        block: BlockNode,
        compound: HTGNode,
        nodes: List[HTGNode],
        position: int,
    ) -> int:
        """Move every movable op of *block* above *compound*."""
        inside = _node_operations(compound)
        cond_reads = _node_condition_reads(compound)
        landing = self._landing_block(nodes, position - 1)
        movable: List[Operation] = []
        blocked: List[Operation] = []
        for op in block.ops:
            # An op can hop only if nothing ahead of it in its own
            # block blocks it, and it is independent of the compound
            # node's contents and condition reads.
            if blocked and not self.test.independent_of_all(op, blocked):
                blocked.append(op)
                continue
            if not self.test.independent_of_all(op, inside):
                blocked.append(op)
                continue
            if op.writes() & cond_reads:
                blocked.append(op)
                continue
            if op.kind is OpKind.RETURN:
                blocked.append(op)
                continue
            movable.append(op)
        if not movable:
            return 0
        block.ops[:] = blocked
        landing.ops.extend(movable)
        return len(movable)

    @staticmethod
    def _landing_block(nodes: List[HTGNode], compound_pos: int) -> BlockNode:
        """The block immediately above the compound node; created if
        absent."""
        if compound_pos > 0 and isinstance(nodes[compound_pos - 1], BlockNode):
            return nodes[compound_pos - 1]
        landing = BlockNode()
        nodes.insert(compound_pos, landing)
        return landing
