"""Pass infrastructure: the Pass protocol, reports and the PassManager.

Spark drives its transformations from designer-controllable scripts
("the designer may specify which loops to unroll and by how much",
Section 4).  :class:`SynthesisScript` models those knobs; the
:class:`PassManager` applies a pass pipeline and collects before/after
metrics so the benchmarks can report exactly what each transformation
did to the design.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.ir.htg import Design, FunctionHTG

#: The staged synthesis flow, in execution order (see
#: :mod:`repro.flow`): C frontend -> scripted transformations ->
#: chaining-aware scheduling -> binding -> estimation -> RTL emission.
SYNTHESIS_STAGES: Tuple[str, ...] = (
    "frontend",
    "transform",
    "schedule",
    "bind",
    "estimate",
    "emit",
)

#: Which :class:`SynthesisScript` knobs each stage *consumes* — the
#: contract behind stage-level memoization.  A knob belongs to the
#: earliest stage whose behavior it can change; every later stage
#: inherits it through the cumulative key prefix (see
#: :func:`repro.flow.keys.stage_key`), so two scripts that differ only
#: in a schedule-stage knob (clock period, resource limits, scheduler
#: priority) share their frontend and transform artifacts.
#:
#: ``output_scalars`` sits in the transform stage because DCE treats
#: those scalars as live-at-exit; binding re-reads it downstream, but
#: by then it is already part of the prefix.  Every script field must
#: appear in exactly one stage — a test enforces the partition so a
#: new knob cannot silently poison stage cache keys.
STAGE_SCRIPT_FIELDS: Dict[str, Tuple[str, ...]] = {
    "frontend": (),
    "transform": (
        "unroll_loops",
        "inline_functions",
        "enable_speculation",
        "enable_early_condition_execution",
        "enable_constant_propagation",
        "enable_copy_propagation",
        "enable_dce",
        "enable_cse",
        "enable_code_motion",
        "enable_tac_lowering",
        "enable_reverse_speculation",
        "enable_conditional_speculation",
        "pure_functions",
        "output_scalars",
    ),
    "schedule": (
        "clock_period",
        "resource_limits",
        "scheduler_priority",
    ),
    "bind": (),
    "estimate": (),
    "emit": (),
}


def stage_for_script_field(field_name: str) -> str:
    """The earliest stage that consumes *field_name*."""
    for stage, fields in STAGE_SCRIPT_FIELDS.items():
        if field_name in fields:
            return stage
    raise KeyError(f"script field {field_name!r} is not assigned to a stage")


def canonical_script_value(value: object) -> object:
    """A deterministic plain-data spelling for hashing: sets become
    sorted lists and dicts become sorted item pairs, so the JSON
    encoding never depends on insertion order or ``PYTHONHASHSEED``
    (stage keys must agree across spawn/forkserver workers and across
    machines)."""
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    if isinstance(value, dict):
        return sorted(value.items())
    if isinstance(value, tuple):
        return list(value)
    return value


def script_stage_fields(script: "SynthesisScript", stage: str) -> Dict[str, object]:
    """The canonical plain-data view of the knobs *stage* consumes."""
    if stage not in STAGE_SCRIPT_FIELDS:
        raise KeyError(
            f"unknown stage {stage!r}; stages: {', '.join(SYNTHESIS_STAGES)}"
        )
    return {
        name: canonical_script_value(getattr(script, name))
        for name in STAGE_SCRIPT_FIELDS[stage]
    }


@dataclass
class PassReport:
    """Metrics recorded around one pass application."""

    pass_name: str
    function: str
    changed: bool = False
    ops_before: int = 0
    ops_after: int = 0
    blocks_before: int = 0
    blocks_after: int = 0
    details: Dict[str, int] = field(default_factory=dict)

    def __str__(self) -> str:
        delta_ops = self.ops_after - self.ops_before
        extra = ", ".join(f"{k}={v}" for k, v in sorted(self.details.items()))
        text = (
            f"{self.pass_name}({self.function}): ops {self.ops_before}->"
            f"{self.ops_after} ({delta_ops:+d}), blocks {self.blocks_before}->"
            f"{self.blocks_after}"
        )
        return f"{text} [{extra}]" if extra else text


class Pass:
    """Base class for all transformations.

    Subclasses implement :meth:`run_on_function` (most passes) or
    override :meth:`run_on_design` (whole-design passes such as the
    inliner).  Passes mutate the IR in place and report what they did.
    """

    name = "pass"

    #: Design-level verifier invariants (names from
    #: :mod:`repro.analysis.verifier`) this pass may leave *temporarily*
    #: broken, to be restored by a later pass before the transform
    #: stage boundary.  The ``--verify-each`` hook skips exactly these
    #: invariants right after the pass runs; the full battery still
    #: runs at the stage boundary.  Every pass in the current pipeline
    #: preserves every invariant, so the default is empty — a
    #: multi-step restructuring pass added later declares its
    #: intermediate breakage here instead of forcing verification off.
    may_break: Tuple[str, ...] = ()

    def run_on_function(self, func: FunctionHTG, design: Design) -> PassReport:
        raise NotImplementedError

    def run_on_design(self, design: Design) -> List[PassReport]:
        """Apply the pass to every function; override for passes with
        cross-function behaviour."""
        reports = []
        for func in list(design.functions.values()):
            reports.append(self.run_on_function(func, design))
        return reports

    def _start_report(self, func: FunctionHTG) -> PassReport:
        return PassReport(
            pass_name=self.name,
            function=func.name,
            ops_before=func.count_operations(),
            blocks_before=func.count_basic_blocks(),
        )

    def _finish_report(self, report: PassReport, func: FunctionHTG) -> PassReport:
        report.ops_after = func.count_operations()
        report.blocks_after = func.count_basic_blocks()
        return report


@dataclass
class SynthesisScript:
    """Designer-facing knobs for the transformation pipeline, modelled
    on Spark's script files.

    Attributes
    ----------
    unroll_loops:
        map from loop label (or ``"*"``) to unroll factor; ``0`` means
        *fully* unroll — the microprocessor-block setting where
        "latency constraints generally dictate the amount of unrolling".
    inline_functions:
        function names to inline (``["*"]`` inlines everything).
    enable_speculation / enable_early_condition_execution:
        the Section-3 code motions.
    pure_functions:
        external functions that are side-effect free and therefore
        speculatable (the ILD length-contribution logic).
    clock_period:
        target cycle time for the chaining-aware scheduler, in
        normalized gate-delay units.
    scheduler_priority:
        ready-list priority function for in-block scheduling:
        ``"source"`` (program order, the default) or ``"critical"``
        (longest downstream delay chain first — can pack tighter
        states under short clocks).
    resource_limits:
        FU-type -> count; empty means the unlimited allocation used for
        microprocessor blocks ("the Spark synthesis tool is given an
        unlimited resource allocation").
    output_scalars:
        scalar variables that must stay observable (treated live at
        exit by DCE).
    enable_code_motion:
        the Trailblazing-style parallelizing motions (hierarchical
        hoisting across compound nodes + intra-block dataflow-level
        reordering) that produce the Fig 3(b) interleaving.
    enable_tac_lowering:
        decompose multi-operator expressions to three-address form so
        bounded allocations can be honoured (required for the ASIC
        regime; the unlimited µP regime can schedule whole expression
        cones).
    enable_reverse_speculation / enable_conditional_speculation:
        the remaining Section-3 code motions: push ops *into* both
        branches (reverse speculation) and duplicate join-side ops
        into branch tails so mutually exclusive copies can share a
        functional unit (conditional speculation).  Off by default —
        they trade op count for resource sharing, which pays only
        under bounded allocations.
    """

    unroll_loops: Dict[str, int] = field(default_factory=dict)
    inline_functions: List[str] = field(default_factory=list)
    enable_speculation: bool = True
    enable_early_condition_execution: bool = True
    enable_constant_propagation: bool = True
    enable_copy_propagation: bool = True
    enable_dce: bool = True
    enable_cse: bool = False
    enable_code_motion: bool = False
    enable_tac_lowering: bool = False
    enable_reverse_speculation: bool = False
    enable_conditional_speculation: bool = False
    pure_functions: Set[str] = field(default_factory=set)
    clock_period: float = 10.0
    resource_limits: Dict[str, int] = field(default_factory=dict)
    output_scalars: Set[str] = field(default_factory=set)
    scheduler_priority: str = "source"

    @staticmethod
    def microprocessor_block(
        pure_functions: Optional[Set[str]] = None,
        clock_period: float = 1_000.0,
    ) -> "SynthesisScript":
        """The paper's target configuration: unlimited resources, full
        unrolling, all speculative motions on (Section 6: "the Spark
        synthesis tool is given an unlimited resource allocation and
        full freedom to unroll loops")."""
        return SynthesisScript(
            unroll_loops={"*": 0},
            inline_functions=["*"],
            enable_speculation=True,
            enable_early_condition_execution=True,
            enable_cse=True,
            enable_code_motion=True,
            pure_functions=pure_functions or set(),
            clock_period=clock_period,
            resource_limits={},
        )

    @staticmethod
    def asic(
        resource_limits: Optional[Dict[str, int]] = None,
        clock_period: float = 4.0,
    ) -> "SynthesisScript":
        """An ASIC-style configuration (Fig 1a): bounded resources,
        loops left rolled, multi-cycle schedule."""
        return SynthesisScript(
            unroll_loops={},
            inline_functions=["*"],
            enable_speculation=False,
            enable_early_condition_execution=True,
            enable_tac_lowering=True,
            pure_functions=set(),
            clock_period=clock_period,
            resource_limits=resource_limits or {"alu": 2, "cmp": 1},
        )


#: Post-pass verifier hook: called as ``verifier(design, pass_obj)``
#: right after each pass application; expected to raise (e.g.
#: :class:`repro.analysis.verifier.VerifierError`) on an invariant
#: violation, honouring ``pass_obj.may_break``.
PassVerifier = Callable[[Design, Pass], None]


class PassManager:
    """Applies a sequence of passes and accumulates their reports.

    With a *verifier* hook installed (the ``--verify-each`` mode of
    the flow), every pass application is immediately followed by an
    invariant check, so a mis-transformation is attributed to the
    exact pass (and fixpoint round) that introduced it rather than
    surfacing as a downstream scheduling or co-simulation failure.
    """

    def __init__(
        self,
        passes: Optional[Sequence[Pass]] = None,
        verifier: Optional[PassVerifier] = None,
    ) -> None:
        self.passes: List[Pass] = list(passes) if passes else []
        self.reports: List[PassReport] = []
        self.verifier = verifier

    def add(self, pass_obj: Pass) -> "PassManager":
        self.passes.append(pass_obj)
        return self

    def _verify(self, design: Design, pass_obj: Pass) -> None:
        if self.verifier is not None:
            self.verifier(design, pass_obj)

    def run(self, design: Design) -> List[PassReport]:
        """Run every pass over the design, in order."""
        for pass_obj in self.passes:
            self.reports.extend(pass_obj.run_on_design(design))
            self._verify(design, pass_obj)
        return self.reports

    def run_until_fixpoint(self, design: Design, max_rounds: int = 20) -> int:
        """Repeat the pipeline until no pass reports a change (the
        paper's "until no further improvements can be obtained").
        Returns the number of rounds executed."""
        for round_index in range(1, max_rounds + 1):
            round_changed = False
            for pass_obj in self.passes:
                pass_changed = False
                for report in pass_obj.run_on_design(design):
                    self.reports.append(report)
                    pass_changed = pass_changed or report.changed
                round_changed = round_changed or pass_changed
                if pass_changed:
                    self._verify(design, pass_obj)
            if not round_changed:
                return round_index
        return max_rounds

    def summary(self) -> str:
        return "\n".join(str(report) for report in self.reports if report.changed)
