"""Reverse and conditional speculation (paper Section 3).

"Conditional execution duplicates operations into the branches of
conditional blocks to enhance resource utilization. These
transformations have been explored and extended to a set of code
motions that include reverse speculation and early condition execution."

* :class:`ReverseSpeculation` moves operations from *before* an
  if-node *into both branches*: the op then executes under either
  guard, freeing the pre-condition cycle and letting mutually exclusive
  copies share one functional unit.
* :class:`ConditionalSpeculation` duplicates operations from *after*
  the join into the tails of both branches, again trading copies for
  schedule length.

Both are resource-utilization motions rather than enabling motions, so
in this reproduction they are opt-in passes with explicit selectors,
plus an automatic mode used by the benchmarks.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.frontend.ast_nodes import Var
from repro.ir import expr_utils
from repro.ir.basic_block import BasicBlock
from repro.ir.htg import (
    BlockNode,
    Design,
    FunctionHTG,
    HTGNode,
    IfNode,
    normalize_blocks,
    parent_map,
)
from repro.ir.operations import Operation, OpKind
from repro.transforms.base import Pass, PassReport
from repro.transforms.speculation import _op_calls_pure, node_reads, node_writes


def _branch_tail_block(branch: List[HTGNode]) -> BlockNode:
    """The trailing block of a branch, created if needed."""
    if branch and isinstance(branch[-1], BlockNode):
        return branch[-1]
    tail = BlockNode(BasicBlock())
    branch.append(tail)
    return tail


def _branch_head_block(branch: List[HTGNode]) -> BlockNode:
    if branch and isinstance(branch[0], BlockNode):
        return branch[0]
    head = BlockNode(BasicBlock())
    branch.insert(0, head)
    return head


class ReverseSpeculation(Pass):
    """Move ops immediately preceding an if-node into both branches.

    An op is movable when it is a pure scalar assignment, the condition
    does not read its target, and no other op between it and the
    if-node (there are none — only the block tail is considered)
    conflicts.  Moving is semantics-preserving because both branches
    together cover every path.
    """

    name = "reverse-speculation"

    def __init__(self, pure_functions: Optional[Set[str]] = None) -> None:
        self.pure_functions = set(pure_functions or ())
        self._moved = 0

    def run_on_function(self, func: FunctionHTG, design: Design) -> PassReport:
        report = self._start_report(func)
        self._moved = 0
        changed = True
        while changed:
            changed = self._move_one(func)
        func.body = normalize_blocks(func.body)
        report.changed = self._moved > 0
        report.details["reverse_speculated"] = self._moved
        return self._finish_report(report, func)

    def _move_one(self, func: FunctionHTG) -> bool:
        parents = parent_map(func.body)
        for node in func.walk_nodes():
            if not isinstance(node, IfNode):
                continue
            _, owner_list = parents[node.uid]
            index = next(
                i for i, candidate in enumerate(owner_list) if candidate is node
            )
            if index == 0 or not isinstance(owner_list[index - 1], BlockNode):
                continue
            block = owner_list[index - 1]
            if not block.ops:
                continue
            op = block.ops[-1]
            if not self._movable(op, node):
                continue
            block.block.remove(op)
            then_copy = op.clone()
            else_copy = op.clone()
            _branch_head_block(node.then_branch).block.prepend(then_copy)
            _branch_head_block(node.else_branch).block.prepend(else_copy)
            self._moved += 1
            return True
        return False

    def _movable(self, op: Operation, if_node: IfNode) -> bool:
        if op.kind is not OpKind.ASSIGN or not isinstance(op.target, Var):
            return False
        if op.has_call() and not _op_calls_pure(op, self.pure_functions, None):
            return False
        if op.is_wire_copy:
            return False
        cond_reads = expr_utils.variables_read(if_node.cond)
        if op.target.name in cond_reads:
            return False
        return True


class ConditionalSpeculation(Pass):
    """Duplicate ops following an if-node's join into both branch tails.

    "Conditional execution duplicates operations into the branches of
    conditional blocks" — profitable when the branches have spare
    resources in the same cycle, because the two copies are mutually
    exclusive and can share a functional unit (Section 2).
    """

    name = "conditional-speculation"

    def __init__(
        self,
        pure_functions: Optional[Set[str]] = None,
        max_ops_per_if: int = 4,
    ) -> None:
        self.pure_functions = set(pure_functions or ())
        self.max_ops_per_if = max_ops_per_if
        self._duplicated = 0

    def run_on_function(self, func: FunctionHTG, design: Design) -> PassReport:
        report = self._start_report(func)
        self._duplicated = 0
        budget = {}
        changed = True
        while changed:
            changed = self._duplicate_one(func, budget)
        func.body = normalize_blocks(func.body)
        report.changed = self._duplicated > 0
        report.details["conditionally_speculated"] = self._duplicated
        return self._finish_report(report, func)

    def _duplicate_one(self, func: FunctionHTG, budget) -> bool:
        parents = parent_map(func.body)
        for node in func.walk_nodes():
            if not isinstance(node, IfNode):
                continue
            if budget.get(node.uid, 0) >= self.max_ops_per_if:
                continue
            # The branches must fall through (no returns) or moving an
            # op into them would change whether it executes.
            if self._branch_exits(node.then_branch) or self._branch_exits(
                node.else_branch
            ):
                continue
            _, owner_list = parents[node.uid]
            index = next(
                i for i, candidate in enumerate(owner_list) if candidate is node
            )
            if index + 1 >= len(owner_list):
                continue
            follower = owner_list[index + 1]
            if not isinstance(follower, BlockNode) or not follower.ops:
                continue
            op = follower.ops[0]
            if not self._movable(op):
                continue
            follower.block.remove(op)
            _branch_tail_block(node.then_branch).block.append(op.clone())
            _branch_tail_block(node.else_branch).block.append(op.clone())
            budget[node.uid] = budget.get(node.uid, 0) + 1
            self._duplicated += 1
            return True
        return False

    @staticmethod
    def _branch_exits(branch: List[HTGNode]) -> bool:
        from repro.ir.htg import BreakNode, walk_nodes

        for inner in walk_nodes(branch):
            if isinstance(inner, BreakNode):
                return True
            if isinstance(inner, BlockNode):
                if any(op.kind is OpKind.RETURN for op in inner.ops):
                    return True
        return False

    def _movable(self, op: Operation) -> bool:
        if op.kind is not OpKind.ASSIGN or not isinstance(op.target, Var):
            return False
        if op.has_call() and not _op_calls_pure(op, self.pure_functions, None):
            return False
        if op.is_wire_copy:
            return False
        return True
