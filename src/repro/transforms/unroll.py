"""Loop unrolling (paper Figs 2 and 13).

"For microprocessor functional blocks, loops are only a programming
convenience and latency constraints generally dictate the amount of
unrolling a loop has to undergo ... Loops in single cycle designs must,
of course, be unrolled completely."

Full unrolling requires a statically-known trip count: a canonical
``for`` header ``i = c0; i </<=/!=/>/>= bound; i += step`` with literal
bounds (run constant propagation first when the bound is a variable
with a known value).  Each unrolled iteration substitutes
``i -> c0 + k*step`` directly, matching the paper's Fig 13/2(b)
presentation where iterations appear as ``i``, ``i+1``, ... rather
than through an explicit index update chain.

Partial unrolling by a factor u replicates the body u times per
iteration and adjusts the update; a remainder loop handles trip counts
not divisible by u ("loops are unrolled one iteration at a time,
followed by code compaction ... until no further improvements can be
obtained" — the software-compiler mode the paper contrasts with).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.frontend.ast_nodes import BinOp, Expr, IntLit, Var
from repro.ir import expr_utils
from repro.ir.htg import (
    BlockNode,
    BreakNode,
    Design,
    FunctionHTG,
    HTGNode,
    LoopNode,
    normalize_blocks,
    replace_node,
    walk_nodes,
)
from repro.ir.operations import Operation
from repro.transforms.base import Pass, PassReport


class UnrollError(Exception):
    """Raised when a loop cannot be unrolled as requested."""


@dataclass
class TripCount:
    """A statically analyzed counted loop."""

    index: str
    start: int
    step: int
    iterations: int

    def value_at(self, k: int) -> int:
        return self.start + k * self.step


def analyze_trip_count(loop: LoopNode) -> TripCount:
    """Extract the static trip count of a canonical counted loop.

    Raises :class:`UnrollError` when the loop is not in canonical form
    (single init ``i = c``, literal-bound comparison on ``i``, single
    additive update, index not written in the body).
    """
    if loop.kind != "for":
        raise UnrollError("only for-loops have static trip counts")
    if len(loop.init) != 1 or len(loop.update) != 1:
        raise UnrollError("loop must have exactly one init and one update op")

    init = loop.init[0]
    if not (isinstance(init.target, Var) and isinstance(init.expr, IntLit)):
        raise UnrollError("loop init must be `index = <literal>`")
    index = init.target.name
    start = init.expr.value

    update = loop.update[0]
    step = _additive_step(update, index)
    if step is None or step == 0:
        raise UnrollError("loop update must be `index = index +/- <literal>`")

    if loop.cond is None:
        raise UnrollError("loop has no condition")
    iterations = _iterations(loop.cond, index, start, step)
    if iterations is None:
        raise UnrollError(f"cannot derive trip count from `{loop.cond}`")

    written = _body_written_vars(loop)
    if index in written:
        raise UnrollError(f"loop body writes the index variable {index!r}")
    if _contains_break(loop):
        raise UnrollError("loop contains break; trip count is dynamic")
    return TripCount(index=index, start=start, step=step, iterations=iterations)


def _additive_step(update: Operation, index: str) -> Optional[int]:
    if not (isinstance(update.target, Var) and update.target.name == index):
        return None
    expr = update.expr
    if isinstance(expr, BinOp) and expr.op in ("+", "-"):
        left, right = expr.left, expr.right
        if (
            isinstance(left, Var)
            and left.name == index
            and isinstance(right, IntLit)
        ):
            return right.value if expr.op == "+" else -right.value
        if (
            expr.op == "+"
            and isinstance(right, Var)
            and right.name == index
            and isinstance(left, IntLit)
        ):
            return left.value
    return None


def _iterations(cond: Expr, index: str, start: int, step: int) -> Optional[int]:
    """Count iterations of ``for (i=start; cond; i+=step)`` by direct
    symbolic evaluation against the literal bound."""
    if not isinstance(cond, BinOp):
        return None
    if isinstance(cond.left, Var) and cond.left.name == index and isinstance(
        cond.right, IntLit
    ):
        op, bound = cond.op, cond.right.value
    elif (
        isinstance(cond.right, Var)
        and cond.right.name == index
        and isinstance(cond.left, IntLit)
    ):
        op = _mirror(cond.op)
        bound = cond.left.value
        if op is None:
            return None
    else:
        return None

    count = 0
    value = start
    # Evaluate the comparison directly; bail out if it clearly diverges.
    limit = 1_000_000
    while expr_utils.eval_binary(op, value, bound):
        count += 1
        value += step
        if count > limit:
            return None
    return count


def _mirror(op: str) -> Optional[str]:
    return {
        "<": ">",
        ">": "<",
        "<=": ">=",
        ">=": "<=",
        "==": "==",
        "!=": "!=",
    }.get(op)


def _body_written_vars(loop: LoopNode):
    written = set()
    for node in walk_nodes(loop.body):
        if isinstance(node, BlockNode):
            for op in node.ops:
                written |= op.writes()
        elif isinstance(node, LoopNode):
            for op in node.init:
                written |= op.writes()
            for op in node.update:
                written |= op.writes()
    return written


def _contains_break(loop: LoopNode) -> bool:
    # Breaks belonging to *nested* loops do not affect this loop.
    def scan(nodes: List[HTGNode]) -> bool:
        for node in nodes:
            if isinstance(node, BreakNode):
                return True
            if isinstance(node, BlockNode):
                continue
            if isinstance(node, LoopNode):
                continue  # its breaks are its own
            for child_list in node.child_lists():
                if scan(child_list):
                    return True
        return False

    return scan(loop.body)


class LoopUnroller(Pass):
    """Unrolls counted loops.

    ``factors`` maps a loop selector to an unroll amount: ``0`` = fully
    unroll, ``u > 1`` = partial unroll by u.  Selectors are loop index
    variable names or ``"*"`` for every unrollable loop.  Loops that do
    not match (or fail trip-count analysis when selected by ``"*"``)
    are left untouched.
    """

    name = "loop-unrolling"

    def __init__(self, factors: Optional[Dict[str, int]] = None) -> None:
        self.factors = factors if factors is not None else {"*": 0}
        self._unrolled = 0
        self._iterations_materialized = 0
        # Partial unrolling produces a new loop over the same index;
        # remember it so one run never re-unrolls its own output.
        self._processed: set = set()

    def run_on_function(self, func: FunctionHTG, design: Design) -> PassReport:
        report = self._start_report(func)
        self._unrolled = 0
        self._iterations_materialized = 0
        self._processed = set()
        # Repeat so nested loops unroll outside-in until stable.
        for _ in range(100):
            if not self._unroll_one(func):
                break
        func.body = normalize_blocks(func.body)
        report.changed = self._unrolled > 0
        report.details["unrolled_loops"] = self._unrolled
        report.details["iterations_materialized"] = self._iterations_materialized
        return self._finish_report(report, func)

    def _factor_for(self, loop: LoopNode) -> Optional[int]:
        index_name = None
        if len(loop.init) == 1 and isinstance(loop.init[0].target, Var):
            index_name = loop.init[0].target.name
        if index_name is not None and index_name in self.factors:
            return self.factors[index_name]
        if "*" in self.factors:
            return self.factors["*"]
        return None

    def _unroll_one(self, func: FunctionHTG) -> bool:
        for node in func.walk_nodes():
            if not isinstance(node, LoopNode) or node.uid in self._processed:
                continue
            factor = self._factor_for(node)
            if factor is None:
                continue
            try:
                trip = analyze_trip_count(node)
            except UnrollError:
                if self._is_explicit_selection(node):
                    raise
                continue
            if factor == 0:
                replacement = fully_unroll(node, trip)
            elif factor > 1:
                replacement = partially_unroll(node, trip, factor)
                for new_node in replacement:
                    if isinstance(new_node, LoopNode):
                        self._processed.add(new_node.uid)
            else:
                continue
            replace_node(func.body, node, replacement)
            self._unrolled += 1
            self._iterations_materialized += trip.iterations
            return True
        return False

    def _is_explicit_selection(self, loop: LoopNode) -> bool:
        if len(loop.init) == 1 and isinstance(loop.init[0].target, Var):
            return loop.init[0].target.name in self.factors
        return False


def fully_unroll(loop: LoopNode, trip: Optional[TripCount] = None) -> List[HTGNode]:
    """Fully unroll a counted loop into a flat node sequence.

    Iteration k's body is cloned with ``index -> index + k*step``
    substituted symbolically (Fig 13's presentation); the single init
    op ``index = start`` is kept in front so that constant propagation
    can later eliminate the index entirely (Fig 14).
    """
    if trip is None:
        trip = analyze_trip_count(loop)
    result: List[HTGNode] = [BlockNode_with_ops([loop.init[0].clone()])]
    index = trip.index
    for k in range(trip.iterations):
        iteration = [n.clone() for n in loop.body]
        offset = k * trip.step
        if offset:
            substitution = {
                index: BinOp(op="+", left=Var(name=index), right=IntLit(value=offset))
            }
            _substitute_everywhere(iteration, substitution)
        result.extend(iteration)
    # After a normal exit the index holds its first failing value; keep
    # that visible in case the index is read after the loop (DCE removes
    # this when dead).
    final_value = trip.value_at(trip.iterations)
    result.append(
        BlockNode_with_ops(
            [Operation.assign(Var(name=index), IntLit(value=final_value))]
        )
    )
    return normalize_blocks(result)


def partially_unroll(
    loop: LoopNode, trip: Optional[TripCount] = None, factor: int = 2
) -> List[HTGNode]:
    """Unroll by *factor*: the loop body is replicated ``factor`` times
    (iteration j uses ``index + j*step``), the update becomes
    ``index += factor*step``.  A fully-unrolled remainder handles trip
    counts not divisible by the factor."""
    if factor < 2:
        raise UnrollError("partial unroll factor must be >= 2")
    if trip is None:
        trip = analyze_trip_count(loop)

    main_iterations = trip.iterations - (trip.iterations % factor)
    index = trip.index

    new_body: List[HTGNode] = []
    for j in range(factor):
        iteration = [n.clone() for n in loop.body]
        offset = j * trip.step
        if offset:
            substitution = {
                index: BinOp(op="+", left=Var(name=index), right=IntLit(value=offset))
            }
            _substitute_everywhere(iteration, substitution)
        new_body.extend(iteration)

    new_update = Operation.assign(
        Var(name=index),
        BinOp(
            op="+",
            left=Var(name=index),
            right=IntLit(value=factor * trip.step),
        ),
    )
    stop = trip.start + main_iterations * trip.step
    main_cond_op = "<" if trip.step > 0 else ">"
    main_loop = LoopNode(
        kind="for",
        cond=BinOp(op=main_cond_op, left=Var(name=index), right=IntLit(value=stop)),
        body=normalize_blocks(new_body),
        init=[loop.init[0].clone()],
        update=[new_update],
    )

    result: List[HTGNode] = [main_loop]
    # Remainder iterations, fully unrolled.
    for k in range(main_iterations, trip.iterations):
        iteration = [n.clone() for n in loop.body]
        value = trip.value_at(k)
        _substitute_everywhere(iteration, {index: IntLit(value=value)})
        result.extend(iteration)
    if main_iterations != trip.iterations:
        final_value = trip.value_at(trip.iterations)
        result.append(
            BlockNode_with_ops(
                [Operation.assign(Var(name=index), IntLit(value=final_value))]
            )
        )
    return normalize_blocks(result)


def BlockNode_with_ops(ops: List[Operation]) -> BlockNode:
    """Build a BlockNode around an op list (splice helper)."""
    from repro.ir.basic_block import BasicBlock

    return BlockNode(BasicBlock(ops=ops))


def _substitute_everywhere(nodes: List[HTGNode], mapping: Dict[str, Expr]) -> None:
    from repro.ir.htg import map_expressions

    def rewrite(expr):
        return expr_utils.substitute(expr, mapping) if expr is not None else None

    map_expressions(nodes, rewrite)
