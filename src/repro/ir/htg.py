"""Hierarchical Task Graph (HTG) — the structured IR.

The HTG keeps compound control structures (if-nodes, loop-nodes) as
first-class hierarchy instead of flattening to a CFG, exactly as in the
paper's Figures 5-7.  Coarse-grain transformations (loop unrolling,
speculation, chaining-trail analysis) walk this hierarchy; a flat CFG
view is derived on demand by :mod:`repro.ir.cfg` for the data-flow
analyses.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

from repro.frontend.ast_nodes import Expr
from repro.ir import expr_utils
from repro.ir.basic_block import BasicBlock
from repro.ir.operations import Operation

_node_counter = itertools.count(1)


def next_node_uid() -> int:
    """Allocate a process-unique HTG node id."""
    return next(_node_counter)


class HTGNode:
    """Base class for HTG nodes."""

    def __init__(self) -> None:
        self.uid = next_node_uid()

    def clone(self) -> "HTGNode":
        raise NotImplementedError

    def child_lists(self) -> List[List["HTGNode"]]:
        """The lists of child nodes this node owns (empty for leaves)."""
        return []


class BlockNode(HTGNode):
    """Leaf node wrapping a basic block of straight-line operations."""

    def __init__(self, block: Optional[BasicBlock] = None) -> None:
        super().__init__()
        self.block = block if block is not None else BasicBlock()

    @property
    def ops(self) -> List[Operation]:
        return self.block.ops

    def clone(self) -> "BlockNode":
        return BlockNode(self.block.clone())

    def __str__(self) -> str:
        return str(self.block)


class IfNode(HTGNode):
    """A two-way conditional: ``if (cond) then_branch else else_branch``.

    The condition is an expression over variables defined by earlier
    operations; in hardware it drives the steering logic (Fig 4b).
    """

    def __init__(
        self,
        cond: Expr,
        then_branch: Optional[List[HTGNode]] = None,
        else_branch: Optional[List[HTGNode]] = None,
    ) -> None:
        super().__init__()
        self.cond = cond
        self.then_branch: List[HTGNode] = then_branch or []
        self.else_branch: List[HTGNode] = else_branch or []

    def child_lists(self) -> List[List[HTGNode]]:
        return [self.then_branch, self.else_branch]

    def clone(self) -> "IfNode":
        return IfNode(
            cond=expr_utils.clone(self.cond),
            then_branch=[child.clone() for child in self.then_branch],
            else_branch=[child.clone() for child in self.else_branch],
        )


class LoopNode(HTGNode):
    """A structured loop.

    ``for`` loops carry init/update operation lists; ``while`` loops
    leave them empty.  The loop condition is re-evaluated before every
    iteration (C semantics).
    """

    def __init__(
        self,
        kind: str,
        cond: Optional[Expr],
        body: Optional[List[HTGNode]] = None,
        init: Optional[List[Operation]] = None,
        update: Optional[List[Operation]] = None,
    ) -> None:
        super().__init__()
        if kind not in ("for", "while"):
            raise ValueError(f"unknown loop kind {kind!r}")
        self.kind = kind
        self.cond = cond
        self.body: List[HTGNode] = body or []
        self.init: List[Operation] = init or []
        self.update: List[Operation] = update or []

    def child_lists(self) -> List[List[HTGNode]]:
        return [self.body]

    def clone(self) -> "LoopNode":
        return LoopNode(
            kind=self.kind,
            cond=expr_utils.clone(self.cond),
            body=[child.clone() for child in self.body],
            init=[op.clone() for op in self.init],
            update=[op.clone() for op in self.update],
        )


class BreakNode(HTGNode):
    """``break`` — exits the innermost enclosing loop."""

    def clone(self) -> "BreakNode":
        return BreakNode()


class FunctionHTG:
    """A function body as an HTG plus its symbol information."""

    def __init__(
        self,
        name: str,
        params: Optional[List[str]] = None,
        return_type: str = "int",
    ) -> None:
        self.name = name
        self.params: List[str] = params or []
        self.return_type = return_type
        self.body: List[HTGNode] = []
        # Array name -> declared size.  Arrays declared at top level are
        # shared between main and functions (paper Fig 10 style).
        self.arrays: Dict[str, int] = {}
        # Scalar variables declared in the function (excluding params).
        self.locals: Set[str] = set()
        # Variables explicitly marked as wires by the chaining pass;
        # register binding must never allocate a register for them.
        self.wire_variables: Set[str] = set()

    # -- traversal ------------------------------------------------------

    def walk_nodes(self) -> Iterator[HTGNode]:
        """Yield every HTG node in the body, pre-order."""
        yield from walk_nodes(self.body)

    def walk_operations(self) -> Iterator[Operation]:
        """Yield every operation in the function, in syntactic order
        (loop init/update operations included)."""
        for node in self.walk_nodes():
            if isinstance(node, BlockNode):
                yield from node.ops
            elif isinstance(node, LoopNode):
                yield from node.init
                yield from node.update

    def count_operations(self) -> int:
        """Total operation count (a size metric used by the benches)."""
        return sum(1 for _ in self.walk_operations())

    def count_basic_blocks(self) -> int:
        """Number of BlockNodes in the body."""
        return sum(1 for n in self.walk_nodes() if isinstance(n, BlockNode))

    def variables(self) -> Set[str]:
        """Every scalar variable mentioned anywhere in the function."""
        names: Set[str] = set(self.params) | set(self.locals)
        for op in self.walk_operations():
            names |= op.reads() | op.writes()
        for node in self.walk_nodes():
            if isinstance(node, (IfNode, LoopNode)) and node.cond is not None:
                names |= expr_utils.variables_read(node.cond)
        return names

    def fresh_variable(self, prefix: str) -> str:
        """Generate a variable name not yet used in the function."""
        existing = self.variables() | self.wire_variables
        for index in itertools.count():
            candidate = f"{prefix}{index}" if index else prefix
            if candidate not in existing:
                self.locals.add(candidate)
                return candidate
        raise AssertionError("unreachable")

    def clone(self) -> "FunctionHTG":
        """Deep-copy the function."""
        copy = FunctionHTG(self.name, list(self.params), self.return_type)
        copy.body = [node.clone() for node in self.body]
        copy.arrays = dict(self.arrays)
        copy.locals = set(self.locals)
        copy.wire_variables = set(self.wire_variables)
        return copy


class Design:
    """A whole behavioral design: the top-level body (``main``) plus the
    helper functions it calls, and the set of *external* functions that
    are left to be bound to combinational library blocks (the ILD's
    ``LengthContribution_k`` / ``Need_kth_Byte``)."""

    MAIN = "main"

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionHTG] = {}
        self.external_functions: Set[str] = set()

    @property
    def main(self) -> FunctionHTG:
        return self.functions[self.MAIN]

    def function(self, name: str) -> FunctionHTG:
        try:
            return self.functions[name]
        except KeyError:
            raise KeyError(f"no function named {name!r} in design") from None

    def add_function(self, func: FunctionHTG) -> None:
        self.functions[func.name] = func

    def called_functions(self, func: FunctionHTG) -> Set[str]:
        """Names of functions called (directly) from *func*."""
        names: Set[str] = set()
        for op in func.walk_operations():
            for call in expr_utils.calls_in(op.expr):
                names.add(call.name)
            if op.target is not None:
                for call in expr_utils.calls_in(op.target):
                    names.add(call.name)
        for node in func.walk_nodes():
            if isinstance(node, (IfNode, LoopNode)) and node.cond is not None:
                for call in expr_utils.calls_in(node.cond):
                    names.add(call.name)
        return names

    def clone(self) -> "Design":
        copy = Design()
        for name, func in self.functions.items():
            copy.functions[name] = func.clone()
        copy.external_functions = set(self.external_functions)
        return copy


# ---------------------------------------------------------------------------
# Generic traversal / rewriting helpers
# ---------------------------------------------------------------------------


def walk_nodes(nodes: List[HTGNode]) -> Iterator[HTGNode]:
    """Yield every node in *nodes*, pre-order, recursing into children."""
    for node in nodes:
        yield node
        for child_list in node.child_lists():
            yield from walk_nodes(child_list)


def parent_map(
    body: List[HTGNode],
) -> Dict[int, Tuple[Optional[HTGNode], List[HTGNode]]]:
    """Map node uid -> (parent node or None, owning child list).

    The owning list is the actual Python list containing the node, so
    callers can splice replacements in place.
    """
    mapping: Dict[int, Tuple[Optional[HTGNode], List[HTGNode]]] = {}

    def visit(parent: Optional[HTGNode], child_list: List[HTGNode]) -> None:
        for node in child_list:
            mapping[node.uid] = (parent, child_list)
            for owned in node.child_lists():
                visit(node, owned)

    visit(None, body)
    return mapping


def replace_node(
    body: List[HTGNode], old: HTGNode, replacement: List[HTGNode]
) -> None:
    """Replace *old* (located anywhere under *body*) with the node list
    *replacement*, splicing in place."""
    parents = parent_map(body)
    if old.uid not in parents:
        raise ValueError(f"node uid={old.uid} not found in body")
    _, owner = parents[old.uid]
    for index, node in enumerate(owner):
        if node is old:
            owner[index : index + 1] = replacement
            return
    raise AssertionError("parent map and owner list disagree")


def map_expressions(
    nodes: List[HTGNode], fn: Callable[[Optional[Expr]], Optional[Expr]]
) -> None:
    """Apply *fn* to every expression in the sub-HTG, in place: operation
    targets and RHSs, if-conditions and loop-conditions."""
    for node in walk_nodes(nodes):
        if isinstance(node, BlockNode):
            for op in node.ops:
                op.expr = fn(op.expr)
                if op.target is not None:
                    op.target = fn(op.target)
        elif isinstance(node, IfNode):
            node.cond = fn(node.cond)
        elif isinstance(node, LoopNode):
            if node.cond is not None:
                node.cond = fn(node.cond)
            for op in node.init:
                op.expr = fn(op.expr)
                if op.target is not None:
                    op.target = fn(op.target)
            for op in node.update:
                op.expr = fn(op.expr)
                if op.target is not None:
                    op.target = fn(op.target)


def normalize_blocks(body: List[HTGNode]) -> List[HTGNode]:
    """Merge adjacent BlockNodes and drop empty ones, recursively.

    Transformations freely splice block nodes; this pass restores the
    maximal-basic-block property so block counts stay meaningful.
    """
    result: List[HTGNode] = []
    for node in body:
        if isinstance(node, IfNode):
            node.then_branch = normalize_blocks(node.then_branch)
            node.else_branch = normalize_blocks(node.else_branch)
        elif isinstance(node, LoopNode):
            node.body = normalize_blocks(node.body)
        if isinstance(node, BlockNode):
            if not node.ops:
                continue
            if result and isinstance(result[-1], BlockNode):
                result[-1].block.ops.extend(node.ops)
                continue
        result.append(node)
    return result
