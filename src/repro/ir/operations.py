"""Three-address-style operations — the atoms of the IR.

Each operation is an assignment, a call statement, or a return.  The
paper's transformations annotate operations (speculated, wire-copy) and
the scheduler later attaches cycle/chaining information, so operations
carry a small set of mutable flags alongside their expression payload.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional, Set

from repro.frontend.ast_nodes import ArrayRef, Call, Expr, Var
from repro.ir import expr_utils

_uid_counter = itertools.count(1)


def next_op_uid() -> int:
    """Allocate a process-unique operation id."""
    return next(_uid_counter)


class OpKind(enum.Enum):
    """Kinds of IR operations."""

    ASSIGN = "assign"          # target = expr  (target: Var or ArrayRef)
    CALL = "call"              # expr is a Call evaluated for effects
    RETURN = "return"          # return expr (expr may be None)


@dataclass
class Operation:
    """A single IR operation inside a basic block.

    Attributes
    ----------
    kind:
        assignment / call statement / return.
    target:
        destination lvalue for assignments (``Var`` or ``ArrayRef``).
    expr:
        right-hand side (assign), the call (call), or return value.
    is_speculated:
        set by the speculation pass when the op was hoisted above the
        condition that originally guarded it (paper Fig 11).
    is_wire_copy:
        set by the chaining pass on the copy operations it inserts when
        creating wire-variables (paper Figs 6-7, ops 4 and 5 in Fig 6b).
    source_line:
        line in the original behavioral description, for diagnostics.
    """

    kind: OpKind
    target: Optional[Expr] = None
    expr: Optional[Expr] = None
    uid: int = field(default_factory=next_op_uid)
    is_speculated: bool = False
    is_wire_copy: bool = False
    source_line: int = 0

    # -- constructors ---------------------------------------------------

    @staticmethod
    def assign(target: Expr, expr: Expr, line: int = 0) -> "Operation":
        """Build an assignment operation."""
        if not isinstance(target, (Var, ArrayRef)):
            raise TypeError(f"invalid assignment target: {target!r}")
        return Operation(OpKind.ASSIGN, target=target, expr=expr, source_line=line)

    @staticmethod
    def call(call_expr: Call, line: int = 0) -> "Operation":
        """Build a call-statement operation."""
        return Operation(OpKind.CALL, expr=call_expr, source_line=line)

    @staticmethod
    def ret(expr: Optional[Expr], line: int = 0) -> "Operation":
        """Build a return operation."""
        return Operation(OpKind.RETURN, expr=expr, source_line=line)

    # -- analysis -------------------------------------------------------

    def reads(self) -> Set[str]:
        """Scalar variables read by this operation (RHS plus any array
        index on the LHS)."""
        names = expr_utils.variables_read(self.expr)
        if isinstance(self.target, ArrayRef):
            names |= expr_utils.variables_read(self.target.index)
        return names

    def writes(self) -> Set[str]:
        """Scalar variables written by this operation."""
        if self.kind is OpKind.ASSIGN and isinstance(self.target, Var):
            return {self.target.name}
        return set()

    def arrays_read(self) -> Set[str]:
        """Array base names read by this operation."""
        return expr_utils.arrays_read(self.expr)

    def arrays_written(self) -> Set[str]:
        """Array base names written by this operation."""
        if self.kind is OpKind.ASSIGN and isinstance(self.target, ArrayRef):
            return {self.target.name}
        return set()

    def has_call(self) -> bool:
        """True if the operation invokes any function."""
        if any(True for _ in expr_utils.calls_in(self.expr)):
            return True
        if isinstance(self.target, ArrayRef):
            return any(True for _ in expr_utils.calls_in(self.target.index))
        return False

    def is_copy(self) -> bool:
        """True for a simple scalar copy ``x = y``."""
        return (
            self.kind is OpKind.ASSIGN
            and isinstance(self.target, Var)
            and isinstance(self.expr, Var)
        )

    def is_constant_assign(self) -> bool:
        """True for ``x = <literal>``."""
        from repro.frontend.ast_nodes import IntLit

        return (
            self.kind is OpKind.ASSIGN
            and isinstance(self.target, Var)
            and isinstance(self.expr, IntLit)
        )

    def clone(self) -> "Operation":
        """Deep-copy this operation with a fresh uid."""
        return Operation(
            kind=self.kind,
            target=expr_utils.clone(self.target),
            expr=expr_utils.clone(self.expr),
            is_speculated=self.is_speculated,
            is_wire_copy=self.is_wire_copy,
            source_line=self.source_line,
        )

    def __str__(self) -> str:
        if self.kind is OpKind.ASSIGN:
            text = f"{self.target} = {self.expr};"
        elif self.kind is OpKind.CALL:
            text = f"{self.expr};"
        elif self.expr is not None:
            text = f"return {self.expr};"
        else:
            text = "return;"
        tags = []
        if self.is_speculated:
            tags.append("spec")
        if self.is_wire_copy:
            tags.append("wire-copy")
        if tags:
            text += "  /* " + ", ".join(tags) + " */"
        return text
