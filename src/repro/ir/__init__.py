"""Intermediate representation for the Spark-style HLS flow.

The IR mirrors the paper's internal program representation:

* three-address-style :class:`~repro.ir.operations.Operation` objects
  grouped into :class:`~repro.ir.basic_block.BasicBlock` lists, and
* a **Hierarchical Task Graph** (HTG, [Gupta et al. DAC'01]) that keeps
  the structured control flow (if-nodes, loop-nodes) visible to the
  coarse-grain transformations — exactly the representation drawn in
  Figures 5, 6 and 7 of the paper.

Expressions reuse the frontend AST expression nodes; the helpers in
:mod:`repro.ir.expr_utils` provide cloning, substitution and constant
folding over them.
"""

from repro.ir.basic_block import BasicBlock
from repro.ir.builder import build_design, build_function
from repro.ir.cfg import ControlFlowGraph, build_cfg
from repro.ir.htg import (
    BlockNode,
    BreakNode,
    Design,
    FunctionHTG,
    HTGNode,
    IfNode,
    LoopNode,
)
from repro.ir.operations import Operation, OpKind
from repro.ir.printer import print_design, print_function, print_htg

__all__ = [
    "BasicBlock",
    "BlockNode",
    "BreakNode",
    "ControlFlowGraph",
    "Design",
    "FunctionHTG",
    "HTGNode",
    "IfNode",
    "LoopNode",
    "OpKind",
    "Operation",
    "build_cfg",
    "build_design",
    "build_function",
    "print_design",
    "print_function",
    "print_htg",
]
