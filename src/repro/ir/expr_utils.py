"""Utilities over IR expressions.

IR expressions are the frontend AST expression nodes (``IntLit``,
``Var``, ``ArrayRef``, ``BinOp``, ``UnaryOp``, ``Call``, ``Ternary``).
Transformations need to clone them, substitute variables, collect reads
and fold constants; those helpers live here so the AST classes stay
plain data.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Set

from repro.frontend.ast_nodes import (
    ArrayRef,
    BinOp,
    Call,
    Expr,
    IntLit,
    Ternary,
    UnaryOp,
    Var,
)


def clone(expr: Optional[Expr]) -> Optional[Expr]:
    """Deep-copy an expression tree."""
    if expr is None:
        return None
    if isinstance(expr, IntLit):
        return IntLit(line=expr.line, value=expr.value)
    if isinstance(expr, Var):
        return Var(line=expr.line, name=expr.name)
    if isinstance(expr, ArrayRef):
        return ArrayRef(line=expr.line, name=expr.name, index=clone(expr.index))
    if isinstance(expr, BinOp):
        return BinOp(
            line=expr.line, op=expr.op, left=clone(expr.left), right=clone(expr.right)
        )
    if isinstance(expr, UnaryOp):
        return UnaryOp(line=expr.line, op=expr.op, operand=clone(expr.operand))
    if isinstance(expr, Call):
        return Call(
            line=expr.line, name=expr.name, args=[clone(a) for a in expr.args]
        )
    if isinstance(expr, Ternary):
        return Ternary(
            line=expr.line,
            cond=clone(expr.cond),
            if_true=clone(expr.if_true),
            if_false=clone(expr.if_false),
        )
    raise TypeError(f"unknown expression node: {expr!r}")


def substitute(expr: Optional[Expr], mapping: Dict[str, Expr]) -> Optional[Expr]:
    """Return a copy of *expr* with every scalar ``Var`` whose name is in
    *mapping* replaced by a clone of the mapped expression.

    Array base names are not substituted (arrays are storage, not
    values); array *indices* are.
    """
    if expr is None:
        return None
    if isinstance(expr, Var):
        replacement = mapping.get(expr.name)
        if replacement is not None:
            return clone(replacement)
        return Var(line=expr.line, name=expr.name)
    if isinstance(expr, IntLit):
        return IntLit(line=expr.line, value=expr.value)
    if isinstance(expr, ArrayRef):
        return ArrayRef(
            line=expr.line, name=expr.name, index=substitute(expr.index, mapping)
        )
    if isinstance(expr, BinOp):
        return BinOp(
            line=expr.line,
            op=expr.op,
            left=substitute(expr.left, mapping),
            right=substitute(expr.right, mapping),
        )
    if isinstance(expr, UnaryOp):
        return UnaryOp(
            line=expr.line, op=expr.op, operand=substitute(expr.operand, mapping)
        )
    if isinstance(expr, Call):
        return Call(
            line=expr.line,
            name=expr.name,
            args=[substitute(a, mapping) for a in expr.args],
        )
    if isinstance(expr, Ternary):
        return Ternary(
            line=expr.line,
            cond=substitute(expr.cond, mapping),
            if_true=substitute(expr.if_true, mapping),
            if_false=substitute(expr.if_false, mapping),
        )
    raise TypeError(f"unknown expression node: {expr!r}")


def rename_variables(
    expr: Optional[Expr], renamer: Callable[[str], str]
) -> Optional[Expr]:
    """Return a copy of *expr* with every variable *and array base name*
    renamed through *renamer*.  Used by function inlining to give the
    inlined body a private namespace."""
    if expr is None:
        return None
    if isinstance(expr, Var):
        return Var(line=expr.line, name=renamer(expr.name))
    if isinstance(expr, ArrayRef):
        return ArrayRef(
            line=expr.line,
            name=renamer(expr.name),
            index=rename_variables(expr.index, renamer),
        )
    if isinstance(expr, IntLit):
        return IntLit(line=expr.line, value=expr.value)
    if isinstance(expr, BinOp):
        return BinOp(
            line=expr.line,
            op=expr.op,
            left=rename_variables(expr.left, renamer),
            right=rename_variables(expr.right, renamer),
        )
    if isinstance(expr, UnaryOp):
        return UnaryOp(
            line=expr.line,
            op=expr.op,
            operand=rename_variables(expr.operand, renamer),
        )
    if isinstance(expr, Call):
        return Call(
            line=expr.line,
            name=expr.name,
            args=[rename_variables(a, renamer) for a in expr.args],
        )
    if isinstance(expr, Ternary):
        return Ternary(
            line=expr.line,
            cond=rename_variables(expr.cond, renamer),
            if_true=rename_variables(expr.if_true, renamer),
            if_false=rename_variables(expr.if_false, renamer),
        )
    raise TypeError(f"unknown expression node: {expr!r}")


def variables_read(expr: Optional[Expr]) -> Set[str]:
    """Scalar variable names read by *expr* (includes array index reads,
    excludes array base names — see :func:`arrays_read`)."""
    names: Set[str] = set()

    def visit(node: Optional[Expr]) -> None:
        if node is None:
            return
        if isinstance(node, Var):
            names.add(node.name)
        elif isinstance(node, ArrayRef):
            visit(node.index)
        elif isinstance(node, BinOp):
            visit(node.left)
            visit(node.right)
        elif isinstance(node, UnaryOp):
            visit(node.operand)
        elif isinstance(node, Call):
            for arg in node.args:
                visit(arg)
        elif isinstance(node, Ternary):
            visit(node.cond)
            visit(node.if_true)
            visit(node.if_false)

    visit(expr)
    return names


def arrays_read(expr: Optional[Expr]) -> Set[str]:
    """Array base names referenced (read) by *expr*."""
    names: Set[str] = set()

    def visit(node: Optional[Expr]) -> None:
        if node is None:
            return
        if isinstance(node, ArrayRef):
            names.add(node.name)
            visit(node.index)
        elif isinstance(node, BinOp):
            visit(node.left)
            visit(node.right)
        elif isinstance(node, UnaryOp):
            visit(node.operand)
        elif isinstance(node, Call):
            for arg in node.args:
                visit(arg)
        elif isinstance(node, Ternary):
            visit(node.cond)
            visit(node.if_true)
            visit(node.if_false)

    visit(expr)
    return names


def calls_in(expr: Optional[Expr]) -> Iterable[Call]:
    """Yield every Call node in *expr*, pre-order."""
    if expr is None:
        return
    if isinstance(expr, Call):
        yield expr
        for arg in expr.args:
            yield from calls_in(arg)
    elif isinstance(expr, BinOp):
        yield from calls_in(expr.left)
        yield from calls_in(expr.right)
    elif isinstance(expr, UnaryOp):
        yield from calls_in(expr.operand)
    elif isinstance(expr, ArrayRef):
        yield from calls_in(expr.index)
    elif isinstance(expr, Ternary):
        yield from calls_in(expr.cond)
        yield from calls_in(expr.if_true)
        yield from calls_in(expr.if_false)


_BINARY_EVAL: Dict[str, Callable[[int, int], int]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: _c_div(a, b),
    "%": lambda a, b: _c_mod(a, b),
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
    "<<": lambda a, b: a << b,
    ">>": lambda a, b: a >> b,
    "==": lambda a, b: int(a == b),
    "!=": lambda a, b: int(a != b),
    "<": lambda a, b: int(a < b),
    ">": lambda a, b: int(a > b),
    "<=": lambda a, b: int(a <= b),
    ">=": lambda a, b: int(a >= b),
    "&&": lambda a, b: int(bool(a) and bool(b)),
    "||": lambda a, b: int(bool(a) or bool(b)),
}

_UNARY_EVAL: Dict[str, Callable[[int], int]] = {
    "-": lambda a: -a,
    "!": lambda a: int(not a),
    "~": lambda a: ~a,
}


def _c_div(a: int, b: int) -> int:
    """C semantics: integer division truncates toward zero."""
    if b == 0:
        raise ZeroDivisionError("division by zero in behavioral code")
    quotient = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        quotient = -quotient
    return quotient


def _c_mod(a: int, b: int) -> int:
    """C semantics: remainder has the sign of the dividend."""
    return a - _c_div(a, b) * b


def eval_binary(op: str, left: int, right: int) -> int:
    """Evaluate a binary operator on integer values with C semantics."""
    try:
        return _BINARY_EVAL[op](left, right)
    except KeyError:
        raise ValueError(f"unknown binary operator {op!r}") from None


def eval_unary(op: str, operand: int) -> int:
    """Evaluate a unary operator on an integer value."""
    try:
        return _UNARY_EVAL[op](operand)
    except KeyError:
        raise ValueError(f"unknown unary operator {op!r}") from None


def fold_constants(expr: Optional[Expr]) -> Optional[Expr]:
    """Bottom-up constant folding.  Returns a new tree; sub-trees whose
    operands are all literals become literals.  Division by a zero
    literal is left unfolded (it would be a runtime fault)."""
    if expr is None:
        return None
    if isinstance(expr, (IntLit, Var)):
        return clone(expr)
    if isinstance(expr, ArrayRef):
        return ArrayRef(line=expr.line, name=expr.name, index=fold_constants(expr.index))
    if isinstance(expr, UnaryOp):
        operand = fold_constants(expr.operand)
        if isinstance(operand, IntLit):
            return IntLit(line=expr.line, value=eval_unary(expr.op, operand.value))
        return UnaryOp(line=expr.line, op=expr.op, operand=operand)
    if isinstance(expr, BinOp):
        left = fold_constants(expr.left)
        right = fold_constants(expr.right)
        if isinstance(left, IntLit) and isinstance(right, IntLit):
            divide_by_zero = expr.op in ("/", "%") and right.value == 0
            if not divide_by_zero:
                return IntLit(
                    line=expr.line,
                    value=eval_binary(expr.op, left.value, right.value),
                )
        folded = _fold_algebraic_identity(expr.op, left, right, expr.line)
        if folded is not None:
            return folded
        return BinOp(line=expr.line, op=expr.op, left=left, right=right)
    if isinstance(expr, Call):
        return Call(
            line=expr.line,
            name=expr.name,
            args=[fold_constants(a) for a in expr.args],
        )
    if isinstance(expr, Ternary):
        cond = fold_constants(expr.cond)
        if_true = fold_constants(expr.if_true)
        if_false = fold_constants(expr.if_false)
        if isinstance(cond, IntLit):
            return if_true if cond.value else if_false
        return Ternary(line=expr.line, cond=cond, if_true=if_true, if_false=if_false)
    raise TypeError(f"unknown expression node: {expr!r}")


def _fold_algebraic_identity(
    op: str, left: Optional[Expr], right: Optional[Expr], line: int
) -> Optional[Expr]:
    """Simplify ``x + 0``, ``x * 1``, ``x * 0`` and friends.

    Only identities that are safe for side-effect-free operands are
    applied; ``x * 0 -> 0`` is restricted to operands without calls.
    """
    left_lit = left.value if isinstance(left, IntLit) else None
    right_lit = right.value if isinstance(right, IntLit) else None
    if op == "+":
        if left_lit == 0:
            return right
        if right_lit == 0:
            return left
    elif op == "-":
        if right_lit == 0:
            return left
    elif op == "*":
        if left_lit == 1:
            return right
        if right_lit == 1:
            return left
        if left_lit == 0 and not any(True for _ in calls_in(right)):
            return IntLit(line=line, value=0)
        if right_lit == 0 and not any(True for _ in calls_in(left)):
            return IntLit(line=line, value=0)
    return None


def is_pure(expr: Optional[Expr], pure_calls: Optional[Set[str]] = None) -> bool:
    """True when evaluating *expr* has no side effects.

    Calls are impure unless their callee name is listed in
    *pure_calls* (external combinational functions such as the ILD's
    ``LengthContribution_k`` are pure by construction).
    """
    if expr is None:
        return True
    for call in calls_in(expr):
        if pure_calls is None or call.name not in pure_calls:
            return False
    return True


def expr_equal(a: Optional[Expr], b: Optional[Expr]) -> bool:
    """Structural equality of two expression trees."""
    if a is None or b is None:
        return a is b
    if type(a) is not type(b):
        return False
    if isinstance(a, IntLit):
        return a.value == b.value
    if isinstance(a, Var):
        return a.name == b.name
    if isinstance(a, ArrayRef):
        return a.name == b.name and expr_equal(a.index, b.index)
    if isinstance(a, BinOp):
        return (
            a.op == b.op
            and expr_equal(a.left, b.left)
            and expr_equal(a.right, b.right)
        )
    if isinstance(a, UnaryOp):
        return a.op == b.op and expr_equal(a.operand, b.operand)
    if isinstance(a, Call):
        return (
            a.name == b.name
            and len(a.args) == len(b.args)
            and all(expr_equal(x, y) for x, y in zip(a.args, b.args))
        )
    if isinstance(a, Ternary):
        return (
            expr_equal(a.cond, b.cond)
            and expr_equal(a.if_true, b.if_true)
            and expr_equal(a.if_false, b.if_false)
        )
    return False


def expr_size(expr: Optional[Expr]) -> int:
    """Number of nodes in the expression tree (a complexity measure used
    by cost models and benchmarks)."""
    if expr is None:
        return 0
    if isinstance(expr, (IntLit, Var)):
        return 1
    if isinstance(expr, ArrayRef):
        return 1 + expr_size(expr.index)
    if isinstance(expr, BinOp):
        return 1 + expr_size(expr.left) + expr_size(expr.right)
    if isinstance(expr, UnaryOp):
        return 1 + expr_size(expr.operand)
    if isinstance(expr, Call):
        return 1 + sum(expr_size(a) for a in expr.args)
    if isinstance(expr, Ternary):
        return (
            1
            + expr_size(expr.cond)
            + expr_size(expr.if_true)
            + expr_size(expr.if_false)
        )
    raise TypeError(f"unknown expression node: {expr!r}")
