"""Lowering from the frontend AST to the HTG IR.

Declarations are split into symbol-table entries (arrays, locals) plus
ordinary assignment operations for initializers; control statements
become IfNode/LoopNode hierarchy; everything else becomes operations in
basic blocks.  Calls appearing in statement position become CALL
operations; calls inside expressions are preserved (the inliner or the
interpreter handles them).
"""

from __future__ import annotations

from typing import List, Optional

from repro.frontend import ast_nodes as ast
from repro.frontend.parser import parse
from repro.ir.basic_block import BasicBlock
from repro.ir.htg import (
    BlockNode,
    BreakNode,
    Design,
    FunctionHTG,
    HTGNode,
    IfNode,
    LoopNode,
    normalize_blocks,
)
from repro.ir.operations import Operation


class LoweringError(Exception):
    """Raised when the AST uses a construct the IR cannot express."""


class _FunctionLowering:
    """Lowers one function's statement list into HTG nodes."""

    def __init__(self, func: FunctionHTG) -> None:
        self.func = func

    def lower_body(self, stmts: List[ast.Stmt]) -> List[HTGNode]:
        nodes: List[HTGNode] = []
        current = BasicBlock()

        def flush() -> None:
            nonlocal current
            if current.ops:
                nodes.append(BlockNode(current))
                current = BasicBlock()

        for stmt in stmts:
            if isinstance(stmt, ast.Decl):
                self._lower_decl(stmt, current)
            elif isinstance(stmt, ast.Assign):
                current.append(
                    Operation.assign(stmt.target, stmt.value, line=stmt.line)
                )
            elif isinstance(stmt, ast.ExprStmt):
                if not isinstance(stmt.expr, ast.Call):
                    raise LoweringError(
                        f"expression statement must be a call (line {stmt.line})"
                    )
                current.append(Operation.call(stmt.expr, line=stmt.line))
            elif isinstance(stmt, ast.Return):
                current.append(Operation.ret(stmt.value, line=stmt.line))
            elif isinstance(stmt, ast.If):
                flush()
                nodes.append(self._lower_if(stmt))
            elif isinstance(stmt, ast.For):
                flush()
                nodes.append(self._lower_for(stmt))
            elif isinstance(stmt, ast.While):
                flush()
                nodes.append(self._lower_while(stmt))
            elif isinstance(stmt, ast.Break):
                flush()
                nodes.append(BreakNode())
            elif isinstance(stmt, ast.Block):
                flush()
                nodes.extend(self.lower_body(stmt.body))
            else:
                raise LoweringError(f"cannot lower statement {stmt!r}")
        flush()
        return normalize_blocks(nodes)

    def _lower_decl(self, decl: ast.Decl, current: BasicBlock) -> None:
        if decl.array_size is not None:
            self.func.arrays[decl.name] = decl.array_size
            if decl.init is not None:
                raise LoweringError(
                    f"array initializers are not supported (line {decl.line})"
                )
            return
        self.func.locals.add(decl.name)
        if decl.init is not None:
            target = ast.Var(line=decl.line, name=decl.name)
            current.append(Operation.assign(target, decl.init, line=decl.line))

    def _lower_if(self, stmt: ast.If) -> IfNode:
        return IfNode(
            cond=stmt.cond,
            then_branch=self.lower_body(stmt.then_body),
            else_branch=self.lower_body(stmt.else_body),
        )

    def _lower_for(self, stmt: ast.For) -> LoopNode:
        init_ops: List[Operation] = []
        if stmt.init is not None:
            init_ops = self._lower_loop_header_stmt(stmt.init)
        update_ops: List[Operation] = []
        if stmt.step is not None:
            update_ops = self._lower_loop_header_stmt(stmt.step)
        return LoopNode(
            kind="for",
            cond=stmt.cond,
            body=self.lower_body(stmt.body),
            init=init_ops,
            update=update_ops,
        )

    def _lower_loop_header_stmt(self, stmt: ast.Stmt) -> List[Operation]:
        if isinstance(stmt, ast.Decl):
            if stmt.array_size is not None:
                raise LoweringError("array declaration in loop header")
            self.func.locals.add(stmt.name)
            if stmt.init is None:
                return []
            target = ast.Var(line=stmt.line, name=stmt.name)
            return [Operation.assign(target, stmt.init, line=stmt.line)]
        if isinstance(stmt, ast.Assign):
            return [Operation.assign(stmt.target, stmt.value, line=stmt.line)]
        raise LoweringError(f"unsupported loop header statement {stmt!r}")

    def _lower_while(self, stmt: ast.While) -> LoopNode:
        return LoopNode(kind="while", cond=stmt.cond, body=self.lower_body(stmt.body))


def build_function(funcdef: ast.FuncDef) -> FunctionHTG:
    """Lower a single AST function definition into a FunctionHTG."""
    func = FunctionHTG(
        funcdef.name, params=list(funcdef.params), return_type=funcdef.return_type
    )
    lowering = _FunctionLowering(func)
    func.body = lowering.lower_body(funcdef.body)
    return func


def build_design(
    program: ast.Program, external_functions: Optional[List[str]] = None
) -> Design:
    """Lower a whole AST program into a Design.

    *external_functions* names functions that are intentionally not
    defined in the source — they will be bound to combinational library
    blocks during synthesis (the ILD's length-contribution logic) or to
    Python callables during interpretation.
    """
    design = Design()
    for funcdef in program.functions:
        design.add_function(build_function(funcdef))

    main = FunctionHTG(Design.MAIN, params=[], return_type="void")
    lowering = _FunctionLowering(main)
    main.body = lowering.lower_body(program.main_body)
    design.add_function(main)

    if external_functions is not None:
        design.external_functions = set(external_functions)
    else:
        design.external_functions = _infer_external(design)
    return design


def _infer_external(design: Design) -> set:
    """Functions called but not defined anywhere are external."""
    external = set()
    for func in design.functions.values():
        for name in design.called_functions(func):
            if name not in design.functions:
                external.add(name)
    return external


def design_from_source(
    source: str, external_functions: Optional[List[str]] = None
) -> Design:
    """Parse behavioral C *source* and lower it to a Design in one step."""
    return build_design(parse(source), external_functions=external_functions)
