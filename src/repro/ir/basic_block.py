"""Basic blocks: maximal straight-line operation sequences.

In the HTG a basic block is always wrapped in a
:class:`~repro.ir.htg.BlockNode`; the block itself is a thin container
over its operation list with the analysis conveniences the
transformations need.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, List, Optional, Set

from repro.ir.operations import Operation

_bb_counter = itertools.count(0)


def next_bb_id() -> int:
    """Allocate a process-unique basic block id."""
    return next(_bb_counter)


class BasicBlock:
    """An ordered list of operations with no internal control flow."""

    def __init__(self, ops: Optional[Iterable[Operation]] = None, label: str = "") -> None:
        self.bb_id = next_bb_id()
        self.label = label or f"BB{self.bb_id}"
        self.ops: List[Operation] = list(ops) if ops is not None else []

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.ops)

    def __len__(self) -> int:
        return len(self.ops)

    def append(self, op: Operation) -> None:
        """Append an operation at the end of the block."""
        self.ops.append(op)

    def prepend(self, op: Operation) -> None:
        """Insert an operation at the start of the block."""
        self.ops.insert(0, op)

    def insert_before(self, anchor: Operation, op: Operation) -> None:
        """Insert *op* immediately before *anchor* (by identity)."""
        index = self._index_of(anchor)
        self.ops.insert(index, op)

    def insert_after(self, anchor: Operation, op: Operation) -> None:
        """Insert *op* immediately after *anchor* (by identity)."""
        index = self._index_of(anchor)
        self.ops.insert(index + 1, op)

    def remove(self, op: Operation) -> None:
        """Remove *op* (by identity)."""
        index = self._index_of(op)
        del self.ops[index]

    def replace(self, old: Operation, new: Operation) -> None:
        """Replace *old* with *new* in place."""
        index = self._index_of(old)
        self.ops[index] = new

    def _index_of(self, op: Operation) -> int:
        for index, candidate in enumerate(self.ops):
            if candidate is op:
                return index
        raise ValueError(f"operation {op} not in block {self.label}")

    # -- analysis -------------------------------------------------------

    def variables_read(self) -> Set[str]:
        """All scalar variables read anywhere in the block."""
        names: Set[str] = set()
        for op in self.ops:
            names |= op.reads()
        return names

    def variables_written(self) -> Set[str]:
        """All scalar variables written anywhere in the block."""
        names: Set[str] = set()
        for op in self.ops:
            names |= op.writes()
        return names

    def upward_exposed_reads(self) -> Set[str]:
        """Variables read before any write within the block — the
        block-local `use` set for liveness analysis."""
        written: Set[str] = set()
        exposed: Set[str] = set()
        for op in self.ops:
            exposed |= op.reads() - written
            written |= op.writes()
        return exposed

    def clone(self) -> "BasicBlock":
        """Deep-copy the block (fresh block id, fresh operation uids)."""
        return BasicBlock(ops=[op.clone() for op in self.ops])

    def __str__(self) -> str:
        body = "\n".join(f"  {op}" for op in self.ops)
        return f"{self.label}:\n{body}" if body else f"{self.label}: (empty)"
