"""Pretty-printer: re-emit the HTG IR as C-like source.

This is how the reproduction regenerates the paper's code figures —
Fig 11 (speculated CalculateLength), Fig 13 (unrolled loop), Fig 14
(constant-propagated code) are all obtained by printing the IR after
the corresponding transformation.
"""

from __future__ import annotations

from typing import List

from repro.ir.htg import (
    BlockNode,
    BreakNode,
    Design,
    FunctionHTG,
    HTGNode,
    IfNode,
    LoopNode,
)

_INDENT = "  "


def print_htg(nodes: List[HTGNode], indent: int = 0) -> str:
    """Render a node list as C-like text."""
    lines: List[str] = []
    _emit_nodes(nodes, indent, lines)
    return "\n".join(lines)


def _emit_nodes(nodes: List[HTGNode], indent: int, lines: List[str]) -> None:
    pad = _INDENT * indent
    for node in nodes:
        if isinstance(node, BlockNode):
            for op in node.ops:
                lines.append(f"{pad}{op}")
        elif isinstance(node, IfNode):
            lines.append(f"{pad}if ({node.cond}) {{")
            _emit_nodes(node.then_branch, indent + 1, lines)
            if node.else_branch:
                lines.append(f"{pad}}} else {{")
                _emit_nodes(node.else_branch, indent + 1, lines)
            lines.append(f"{pad}}}")
        elif isinstance(node, LoopNode):
            if node.kind == "for":
                init = " ".join(str(op) for op in node.init) or ";"
                update = ", ".join(str(op).rstrip(";") for op in node.update)
                lines.append(f"{pad}for ({init} {node.cond}; {update}) {{")
            else:
                lines.append(f"{pad}while ({node.cond}) {{")
            _emit_nodes(node.body, indent + 1, lines)
            lines.append(f"{pad}}}")
        elif isinstance(node, BreakNode):
            lines.append(f"{pad}break;")
        else:
            raise TypeError(f"unknown HTG node {node!r}")


def print_function(func: FunctionHTG) -> str:
    """Render a function definition as C-like text."""
    params = ", ".join(f"int {p}" for p in func.params)
    header = f"{func.return_type} {func.name}({params}) {{"
    decls = [
        f"{_INDENT}int {name}[{size}];" for name, size in sorted(func.arrays.items())
    ]
    body = print_htg(func.body, indent=1)
    parts = [header]
    parts.extend(decls)
    if body:
        parts.append(body)
    parts.append("}")
    return "\n".join(parts)


def print_design(design: Design) -> str:
    """Render a whole design: helper functions first, then the top-level
    (main) body, mirroring the paper's presentation in Fig 10."""
    chunks: List[str] = []
    for name, func in design.functions.items():
        if name == Design.MAIN:
            continue
        chunks.append(print_function(func))
    main = design.main
    decls = [f"int {name}[{size}];" for name, size in sorted(main.arrays.items())]
    chunks.extend(decls)
    chunks.append(print_htg(main.body))
    return "\n\n".join(chunk for chunk in chunks if chunk)


def htg_structure(nodes: List[HTGNode], indent: int = 0) -> str:
    """Render only the hierarchical structure (node kinds and basic block
    labels), the way the paper draws HTGs in Figures 5-7."""
    lines: List[str] = []
    pad = _INDENT * indent
    for node in nodes:
        if isinstance(node, BlockNode):
            lines.append(f"{pad}{node.block.label} ({len(node.ops)} ops)")
        elif isinstance(node, IfNode):
            lines.append(f"{pad}IfNode (cond: {node.cond})")
            lines.append(f"{pad}{_INDENT}then:")
            lines.append(htg_structure(node.then_branch, indent + 2))
            if node.else_branch:
                lines.append(f"{pad}{_INDENT}else:")
                lines.append(htg_structure(node.else_branch, indent + 2))
        elif isinstance(node, LoopNode):
            lines.append(f"{pad}LoopNode[{node.kind}] (cond: {node.cond})")
            lines.append(htg_structure(node.body, indent + 1))
        elif isinstance(node, BreakNode):
            lines.append(f"{pad}Break")
    return "\n".join(line for line in lines if line)
