"""Graphviz DOT export for the HTG and the scheduled FSMD.

The paper communicates its IR and results as diagrams (the HTGs of
Figs 5-7, the FSMD states S0..S2 of Fig 5).  These exporters let a
user regenerate that view for any design::

    from repro.ir.dot_export import htg_to_dot, fsmd_to_dot
    print(htg_to_dot(design.main))     # Figs 5-7 style boxes
    print(fsmd_to_dot(state_machine))  # states + transitions

The output is plain DOT text (no graphviz dependency): render with
``dot -Tsvg`` or any online viewer.
"""

from __future__ import annotations

from typing import List

from repro.ir.htg import (
    BlockNode,
    BreakNode,
    FunctionHTG,
    HTGNode,
    IfNode,
    LoopNode,
)
from repro.scheduler.schedule import IfItem, OpItem, StateMachine


def _escape(text: str) -> str:
    return (
        text.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\l")
    )


def htg_to_dot(func: FunctionHTG, graph_name: str = "htg") -> str:
    """Render a function's HTG as DOT: basic blocks as record boxes,
    compound nodes as labelled clusters (the Figs 5-7 drawing)."""
    lines: List[str] = [
        f'digraph "{_escape(graph_name)}" {{',
        "  node [shape=box, fontname=monospace, fontsize=10];",
        f'  label="{_escape(func.name)}";',
    ]
    cluster_counter = [0]

    def emit_block(node: BlockNode, indent: str) -> str:
        name = f"bb{node.uid}"
        body = "\\l".join(_escape(str(op)) for op in node.ops) or "(empty)"
        lines.append(
            f'{indent}{name} [shape=record, '
            f'label="{_escape(node.block.label)}\\n{body}\\l"];'
        )
        return name

    def emit_nodes(nodes: List[HTGNode], indent: str) -> None:
        previous_exit = None
        for node in nodes:
            if isinstance(node, BlockNode):
                emit_block(node, indent)
            elif isinstance(node, IfNode):
                cluster_counter[0] += 1
                lines.append(f"{indent}subgraph cluster_{cluster_counter[0]} {{")
                lines.append(
                    f'{indent}  label="If Node: {_escape(str(node.cond))}";'
                )
                lines.append(f'{indent}  style=rounded;')
                emit_nodes(node.then_branch, indent + "  ")
                if node.else_branch:
                    emit_nodes(node.else_branch, indent + "  ")
                lines.append(f"{indent}}}")
            elif isinstance(node, LoopNode):
                cluster_counter[0] += 1
                lines.append(f"{indent}subgraph cluster_{cluster_counter[0]} {{")
                cond = str(node.cond) if node.cond is not None else "1"
                lines.append(
                    f'{indent}  label="Loop ({node.kind}): {_escape(cond)}";'
                )
                lines.append(f'{indent}  style=rounded;')
                emit_nodes(node.body, indent + "  ")
                lines.append(f"{indent}}}")
            elif isinstance(node, BreakNode):
                lines.append(
                    f'{indent}brk{node.uid} [label="break", shape=plaintext];'
                )

    emit_nodes(func.body, "  ")
    lines.append("}")
    return "\n".join(lines)


def fsmd_to_dot(sm: StateMachine, graph_name: str = "fsmd") -> str:
    """Render the FSMD as DOT: one node per state (its scheduled
    operations listed), edges for transitions (branch edges labelled
    with the condition polarity) — the S0/S1/S2 drawing of Fig 5."""
    lines: List[str] = [
        f'digraph "{_escape(graph_name)}" {{',
        "  node [shape=record, fontname=monospace, fontsize=10];",
        "  rankdir=TB;",
    ]

    def item_lines(items, depth=0) -> List[str]:
        rendered = []
        pad = "  " * depth
        for item in items:
            if isinstance(item, OpItem):
                rendered.append(pad + str(item.op))
            elif isinstance(item, IfItem):
                rendered.append(pad + f"if ({item.cond}) chained:")
                rendered.extend(item_lines(item.then_items, depth + 1))
                if item.else_items:
                    rendered.append(pad + "else:")
                    rendered.extend(item_lines(item.else_items, depth + 1))
        return rendered

    for state in sm.reachable_states():
        body = "\\l".join(_escape(line) for line in item_lines(state.items))
        label = f"S{state.state_id}"
        if state.label:
            label += f" ({_escape(state.label)})"
        lines.append(
            f'  s{state.state_id} [label="{{{label}|{body}\\l}}"];'
        )
    for state in sm.reachable_states():
        if state.branch is not None:
            cond = _escape(str(state.branch.cond))
            if state.branch.true_next is not None:
                lines.append(
                    f'  s{state.state_id} -> s{state.branch.true_next} '
                    f'[label="{cond}"];'
                )
            if state.branch.false_next is not None:
                lines.append(
                    f'  s{state.state_id} -> s{state.branch.false_next} '
                    f'[label="!({cond})"];'
                )
        elif state.default_next is not None:
            lines.append(f"  s{state.state_id} -> s{state.default_next};")
    lines.append("}")
    return "\n".join(lines)
